// Ablation: atomic vs regular semantics (paper section 6: "modifying DQVL
// to provide different consistency semantics (e.g. atomic semantics) and
// comparing the cost difference").
//
// The atomic client (core/dq_atomic_client.h) confirms every read's value
// at an IQS write quorum before returning.  This bench quantifies the cost:
// reads lose their locality (one WAN write-quorum round each), writes are
// unchanged, and message counts rise accordingly.
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  header("Ablation", "regular DQVL vs atomic DQVL (read write-back)");
  row({"write%", "variant", "read(ms)", "write(ms)", "overall", "msgs/req"},
      12);
  const std::vector<double> writes{0.05, 0.3};
  const std::string variants[] = {"dqvl",
                                         "dqvl-atomic"};
  std::vector<workload::ExperimentParams> trials;
  for (double w : writes) {
    for (std::string proto : variants) {
      workload::ExperimentParams p;
      p.protocol = proto;
      p.write_ratio = w;
      p.requests_per_client = 300;
      p.seed = 21;
      trials.push_back(p);
    }
  }
  const auto results =
      run::run_experiments(trials, jobs_from_argv(argc, argv));
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& r = results[i];
    row({fmt(100 * trials[i].write_ratio, 0),
         trials[i].protocol == "dqvl" ? "regular"
                                                         : "atomic",
         fmt(r.read_ms.mean()), fmt(r.write_ms.mean()),
         fmt(r.all_ms.mean()), fmt(r.messages_per_request, 1)},
        12);
  }
  std::printf("\natomic semantics costs every read one IQS write-quorum "
              "confirmation round\n(~80 ms RTT + 2|iwq| messages); this is "
              "the price of ruling out new-old\nread inversions that regular "
              "semantics permits\n");
  return 0;
}
