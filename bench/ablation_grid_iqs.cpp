// Ablation: grid-quorum IQS (paper section 6: "we can also configure IQS as
// a grid quorum system to reduce the overall system load").
//
// A rows x cols grid reads from `cols` nodes and writes to
// `rows + cols - 1`, vs a majority system's (n/2 + 1) for both.  For a
// 3x3 grid over 9 IQS nodes: read quorum 3 vs 5, write quorum 5 vs 5 --
// fewer messages per renewal / LC-read round, at some availability cost
// (checked against exact enumeration).
#include "analysis/availability.h"
#include "bench_util.h"
#include "quorum/quorum.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  Reporter rep("ablation_grid_iqs", argc, argv);
  header("Ablation", "grid-quorum IQS vs majority IQS (9 IQS members)");

  // Protocol-level comparison, including the per-IQS-node load that
  // motivates the grid ("reduce the overall system load").
  row({"IQS", "read(ms)", "write(ms)", "msgs/req", "max-node-load",
       "violations"}, 14);
  std::vector<workload::ExperimentParams> trials;
  for (bool grid : {false, true}) {
    workload::ExperimentParams p;
    p.protocol = "dqvl";
    p.iqs = grid ? workload::QuorumSpec::grid(3, 3)
                 : workload::QuorumSpec::majority(9);
    p.write_ratio = 0.3;
    p.requests_per_client = 300;
    p.seed = 41;
    p.choose_object = [](Rng&) { return ObjectId(1); };
    trials.push_back(p);
  }
  const auto results = rep.run_batch(trials);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const bool grid = i == 1;
    const auto& r = results[i];
    // Per-IQS-node request load straight from the metrics registry.
    std::uint64_t max_load = 0;
    for (const auto& [node, load] :
         r.metrics.counters_with_prefix("iqs.load.")) {
      max_load = std::max(max_load, load);
    }
    row({grid ? "grid 3x3" : "majority 9", fmt(r.read_ms.mean()),
         fmt(r.write_ms.mean()), fmt(r.messages_per_request, 1),
         std::to_string(max_load), std::to_string(r.violations.size())},
        14);
  }

  // Availability comparison by exact enumeration.
  std::printf("\nexact quorum UNavailability at p = 0.01 (enumeration over "
              "all 2^9 states):\n");
  std::vector<NodeId> members;
  for (std::uint32_t i = 0; i < 9; ++i) members.emplace_back(i);
  quorum::GridQuorum grid(members, 3, 3);
  auto maj = quorum::ThresholdQuorum::majority(members);
  row({"system", "read unavail", "write unavail"}, 15);
  row({"grid 3x3",
       fmt_sci(1 - quorum::exact_availability(grid, quorum::Kind::kRead,
                                              0.01)),
       fmt_sci(1 - quorum::exact_availability(grid, quorum::Kind::kWrite,
                                              0.01))},
      15);
  row({"majority 9",
       fmt_sci(1 - quorum::exact_availability(*maj, quorum::Kind::kRead,
                                              0.01)),
       fmt_sci(1 - quorum::exact_availability(*maj, quorum::Kind::kWrite,
                                              0.01))},
      15);
  std::printf("\nthe grid trades a little availability for smaller read "
              "quorums (lower load)\n");
  return 0;
}
