// Ablation: volume lease length L (DESIGN.md section 5.2).
//
// Short leases bound how long a write can block on an unreachable reader
// (write availability) but cost more renewal traffic; long leases amortize
// renewals but extend the blocking window.  The basic dual-quorum protocol
// (L = infinity) is the degenerate end: a blocked write waits for the
// reader to return.
#include "bench_util.h"
#include "protocols/dq_adapter.h"

using namespace dq;
using namespace dq::bench;

namespace {

struct Probe {
  double blocked_write_ms;   // write latency with the warm reader partitioned
  double msgs_per_request;   // renewal overhead on a read-heavy workload
};

Probe probe(sim::Duration lease, bool basic) {
  // Part 1: blocked-write latency.
  workload::ExperimentParams p;
  p.protocol = basic ? "dq-basic" : "dqvl";
  p.lease_length = lease;
  p.requests_per_client = 0;
  workload::Deployment dep(p);
  auto& w = dep.world();
  // Use the deployment's own front ends via app-style messages is overkill;
  // drive the protocol directly through two embedded clients.
  protocols::DqServiceClient reader(w, w.topology().server(0),
                                    dep.dq_config());
  protocols::DqServiceClient writer(w, w.topology().server(1),
                                    dep.dq_config());
  dep.server_node(0).add_handler(
      [&](const sim::Envelope& e) { return reader.on_message(e); });
  dep.server_node(1).add_handler(
      [&](const sim::Envelope& e) { return writer.on_message(e); });

  auto run_until = [&](bool& flag, sim::Duration cap) {
    const sim::Time deadline = w.now() + cap;
    while (!flag && w.now() < deadline) w.run_for(sim::milliseconds(20));
  };
  bool done = false;
  writer.write(ObjectId(1), "v1", [&](bool, LogicalClock) { done = true; });
  run_until(done, sim::seconds(60));
  done = false;
  reader.read(ObjectId(1), [&](bool, VersionedValue) { done = true; });
  run_until(done, sim::seconds(60));

  w.set_up(w.topology().server(0), false);  // reader vanishes, leases warm
  done = false;
  const sim::Time t0 = w.now();
  writer.write(ObjectId(1), "v2", [&](bool, LogicalClock) { done = true; });
  run_until(done, sim::seconds(120));
  const double blocked_ms =
      done ? sim::to_ms(w.now() - t0) : -1.0;  // -1: still blocked at cap

  // Part 2: renewal overhead on a read-heavy workload.
  workload::ExperimentParams q;
  q.protocol = p.protocol;
  q.lease_length = lease;
  q.write_ratio = 0.01;
  q.requests_per_client = 300;
  q.think_time = sim::milliseconds(50);  // stretch wall-clock across leases
  q.seed = 77;
  const auto r = workload::run_experiment(q);
  return Probe{blocked_ms, r.messages_per_request};
}

}  // namespace

int main(int argc, char** argv) {
  header("Ablation", "volume lease length L: write blocking vs renewal cost");
  row({"lease", "blocked-write(ms)", "msgs/request"}, 20);
  // Each probe drives its own pair of Worlds, so the configurations fan out
  // across --jobs threads like any other trial batch.
  struct Config {
    sim::Duration lease;
    bool basic;
  };
  const std::vector<Config> configs{
      {sim::milliseconds(500), false}, {sim::seconds(1), false},
      {sim::seconds(2), false},        {sim::seconds(5), false},
      {sim::seconds(10), false},       {sim::kTimeInfinity, true}};
  std::vector<Probe> probes(configs.size());
  run::parallel_for_index(
      configs.size(), bench::jobs_from_argv(argc, argv),
      [&](std::size_t i) { probes[i] = probe(configs[i].lease,
                                             configs[i].basic); });
  for (std::size_t i = 0; i + 1 < configs.size(); ++i) {
    const Probe& pr = probes[i];
    row({fmt(sim::to_ms(configs[i].lease), 0) + " ms",
         pr.blocked_write_ms < 0 ? "blocked" : fmt(pr.blocked_write_ms, 0),
         fmt(pr.msgs_per_request, 2)},
        20);
  }
  const Probe& basic = probes.back();
  row({"infinite (basic DQ)",
       basic.blocked_write_ms < 0 ? "blocked (>120 s)"
                                  : fmt(basic.blocked_write_ms, 0),
       fmt(basic.msgs_per_request, 2)},
      20);
  std::printf("\nshorter leases bound write blocking at ~L but renew more "
              "often;\nthe basic protocol (section 3.1) blocks until the "
              "reader returns\n");
  return 0;
}
