// Ablation: finite object leases (paper footnote 4: "generalizing to
// finite-length object leases is straightforward and can help optimize
// space and network costs").
//
// With callbacks (infinite object leases), the IQS must invalidate -- or
// queue a delayed invalidation for -- every node that ever read an object.
// Finite object leases let cold readers' interest lapse: writes then skip
// them entirely.  The cost is extra renewals for readers whose interest
// persists longer than the lease.
//
// Workload: readers touch an object once and move on (a scan), while a
// writer keeps updating the scanned objects.
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

namespace {

struct Probe {
  double msgs_per_request;
  std::uint64_t invals;
  double read_ms;
};

Probe probe(sim::Duration object_lease) {
  workload::ExperimentParams p;
  p.protocol = "dqvl";
  p.object_lease_length = object_lease;
  p.lease_length = sim::seconds(60);  // volume lease held throughout
  p.write_ratio = 0.3;
  p.requests_per_client = 400;
  p.think_time = sim::milliseconds(40);
  p.seed = 33;
  // Scan-like access: each request touches one of 40 objects nearly
  // round-robin, so per-object interest is short-lived.
  auto counter = std::make_shared<std::uint64_t>(0);
  p.choose_object = [counter](Rng&) {
    return ObjectId(++*counter % 40);
  };
  const auto r = workload::run_experiment(p);
  return {r.messages_per_request,
          r.message_table.count("DqInval") ? r.message_table.at("DqInval")
                                           : 0,
          r.read_ms.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  header("Ablation",
         "object lease length under scan-like access (footnote 4)");
  row({"object lease", "msgs/req", "DqInval msgs", "read(ms)"}, 16);
  const std::vector<sim::Duration> leases{
      sim::milliseconds(250), sim::milliseconds(500), sim::seconds(1),
      sim::seconds(5), sim::kTimeInfinity};
  std::vector<Probe> probes(leases.size());
  run::parallel_for_index(leases.size(), bench::jobs_from_argv(argc, argv),
                          [&](std::size_t i) { probes[i] = probe(leases[i]); });
  for (std::size_t i = 0; i + 1 < leases.size(); ++i) {
    const Probe& pr = probes[i];
    row({fmt(sim::to_ms(leases[i]), 0) + " ms", fmt(pr.msgs_per_request, 2),
         std::to_string(pr.invals), fmt(pr.read_ms, 1)},
        16);
  }
  const Probe& inf = probes.back();
  row({"infinite (cb)", fmt(inf.msgs_per_request, 2),
       std::to_string(inf.invals), fmt(inf.read_ms, 1)},
      16);
  std::printf("\nshort object leases let cold readers' interest lapse, so "
              "writes skip their\ninvalidations; callbacks (infinite) "
              "invalidate every past reader forever\n");
  return 0;
}
