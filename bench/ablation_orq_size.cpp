// Ablation: OQS read quorum size (paper section 6 future work: "we can
// configure the read quorum size in OQS to be larger than one to avoid
// timeouts on invalidations").
//
// |orq| = 1 gives local reads but forces writes to invalidate every OQS
// node; |orq| = r > 1 adds a WAN hop to reads but shrinks the OQS write
// quorum to n - r + 1, making write-throughs cheaper and more available.
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  header("Ablation", "OQS read quorum size (9 OQS nodes, IQS majority of 5)");
  row({"|orq|", "|owq|", "read(ms)", "write(ms)", "overall(ms)",
       "msgs/req"});
  const std::vector<std::size_t> sizes{1u, 2u, 3u, 5u};
  std::vector<workload::ExperimentParams> trials;
  for (std::size_t r : sizes) {
    workload::ExperimentParams p;
    p.protocol = "dqvl";
    p.oqs_read_quorum = r;
    p.write_ratio = 0.2;
    p.requests_per_client = 250;
    p.seed = 5;
    p.choose_object = [](Rng&) { return ObjectId(3); };
    trials.push_back(p);
  }
  const auto results =
      run::run_experiments(trials, jobs_from_argv(argc, argv));
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& res = results[i];
    row({std::to_string(sizes[i]), std::to_string(9 - sizes[i] + 1),
         fmt(res.read_ms.mean()), fmt(res.write_ms.mean()),
         fmt(res.all_ms.mean()), fmt(res.messages_per_request, 1)});
  }
  std::printf("\n|orq| = 1 is the paper's headline configuration: local "
              "reads, all-node\ninvalidation.  Larger read quorums trade "
              "read latency for cheaper writes.\n");
  return 0;
}
