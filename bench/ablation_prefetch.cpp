// Ablation: cold-start warmup via volume prefetch (bulk revalidation).
//
// A restarted edge server has an empty cache; without help, the first read
// of each object pays a renewal round trip (a "miss storm").  One
// DqVolFetch per IQS member warms the whole volume in a single exchange.
#include "bench_util.h"
#include "protocols/dq_adapter.h"

using namespace dq;
using namespace dq::bench;

namespace {

struct Probe {
  double first_pass_read_ms;   // mean read latency right after restart
  std::uint64_t messages;      // messages spent warming + reading
};

Probe run(bool prefetch, std::size_t objects) {
  workload::ExperimentParams p;
  p.protocol = workload::Protocol::kDqvl;
  p.requests_per_client = 0;
  workload::Deployment dep(p);
  auto& w = dep.world();
  auto client = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  auto writer = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(1), dep.dq_config());
  dep.server_node(0).add_handler(
      [client](const sim::Envelope& e) { return client->on_message(e); });
  dep.server_node(1).add_handler(
      [writer](const sim::Envelope& e) { return writer->on_message(e); });
  auto spin = [&](bool& f) {
    while (!f) w.run_for(sim::milliseconds(5));
  };
  for (std::uint64_t k = 0; k < objects; ++k) {
    bool done = false;
    writer->write(ObjectId(k), "v", [&](bool, LogicalClock) { done = true; });
    spin(done);
  }
  // Simulate the restart: server 0 is cold.
  const NodeId s0 = w.topology().server(0);
  w.crash(s0);
  w.restart(s0);

  const auto msgs_before = w.message_stats().total();
  if (prefetch) {
    bool done = false;
    dep.oqs_server(s0)->prefetch(VolumeId(0), [&](bool) { done = true; });
    spin(done);
  }
  Summary reads;
  for (std::uint64_t k = 0; k < objects; ++k) {
    bool done = false;
    const sim::Time t0 = w.now();
    client->read(ObjectId(k), [&](bool, VersionedValue) { done = true; });
    spin(done);
    reads.add(sim::to_ms(w.now() - t0));
  }
  return {reads.mean(), w.message_stats().total() - msgs_before};
}

}  // namespace

int main() {
  header("Ablation", "cold-start warmup: per-object misses vs volume prefetch");
  row({"objects", "policy", "first-pass read(ms)", "messages"}, 22);
  for (std::size_t n : {10u, 50u, 200u}) {
    for (bool pf : {false, true}) {
      const Probe pr = run(pf, n);
      row({std::to_string(n), pf ? "prefetch" : "miss storm",
           fmt(pr.first_pass_read_ms, 1), std::to_string(pr.messages)},
          22);
    }
  }
  std::printf("\none bulk fetch per IQS member replaces a renewal round "
              "trip per object\n");
  return 0;
}
