// Ablation: cold-start warmup via volume prefetch (bulk revalidation).
//
// A restarted edge server has an empty cache; without help, the first read
// of each object pays a renewal round trip (a "miss storm").  One
// DqVolFetch per IQS member warms the whole volume in a single exchange.
#include "bench_util.h"
#include "protocols/dq_adapter.h"

using namespace dq;
using namespace dq::bench;

namespace {

struct Probe {
  double first_pass_read_ms;   // mean read latency right after restart
  std::uint64_t messages;      // messages spent warming + reading
};

Probe probe(bool prefetch, std::size_t objects) {
  workload::ExperimentParams p;
  p.protocol = "dqvl";
  p.requests_per_client = 0;
  workload::Deployment dep(p);
  auto& w = dep.world();
  auto client = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  auto writer = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(1), dep.dq_config());
  dep.server_node(0).add_handler(
      [client](const sim::Envelope& e) { return client->on_message(e); });
  dep.server_node(1).add_handler(
      [writer](const sim::Envelope& e) { return writer->on_message(e); });
  auto spin = [&](bool& f) {
    while (!f) w.run_for(sim::milliseconds(5));
  };
  for (std::uint64_t k = 0; k < objects; ++k) {
    bool done = false;
    writer->write(ObjectId(k), "v", [&](bool, LogicalClock) { done = true; });
    spin(done);
  }
  // Simulate the restart: server 0 is cold.
  const NodeId s0 = w.topology().server(0);
  w.crash(s0);
  w.restart(s0);

  const auto msgs_before = w.message_stats().total();
  if (prefetch) {
    bool done = false;
    dep.oqs_server(s0)->prefetch(VolumeId(0), [&](bool) { done = true; });
    spin(done);
  }
  Summary reads;
  for (std::uint64_t k = 0; k < objects; ++k) {
    bool done = false;
    const sim::Time t0 = w.now();
    client->read(ObjectId(k), [&](bool, VersionedValue) { done = true; });
    spin(done);
    reads.add(sim::to_ms(w.now() - t0));
  }
  return {reads.mean(), w.message_stats().total() - msgs_before};
}

}  // namespace

int main(int argc, char** argv) {
  header("Ablation", "cold-start warmup: per-object misses vs volume prefetch");
  row({"objects", "policy", "first-pass read(ms)", "messages"}, 22);
  // Each probe owns its World, so the six configurations fan out across
  // --jobs threads.
  struct Cfg {
    std::size_t objects;
    bool prefetch;
  };
  std::vector<Cfg> cfgs;
  for (std::size_t n : {10u, 50u, 200u}) {
    for (bool pf : {false, true}) cfgs.push_back({n, pf});
  }
  std::vector<Probe> probes(cfgs.size());
  run::parallel_for_index(
      cfgs.size(), bench::jobs_from_argv(argc, argv),
      [&](std::size_t i) { probes[i] = probe(cfgs[i].prefetch,
                                             cfgs[i].objects); });
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    row({std::to_string(cfgs[i].objects),
         cfgs[i].prefetch ? "prefetch" : "miss storm",
         fmt(probes[i].first_pass_read_ms, 1),
         std::to_string(probes[i].messages)},
        22);
  }
  std::printf("\none bulk fetch per IQS member replaces a renewal round "
              "trip per object\n");
  return 0;
}
