// Ablation: proactive volume-lease renewal and batching.
//
// Three configurations over a 16-volume namespace with short leases:
//   * on-demand     -- renew on the first miss after expiry (paper default)
//   * proactive     -- per-volume renewal loops ahead of expiry
//   * proactive+batch -- one DqVolRenewBatch per IQS member per round
//
// Proactive renewal trades background messages for removing the periodic
// ~80 ms read-miss hiccup; batching claws the message cost back.
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

namespace {

workload::ExperimentParams renewal_params(bool proactive, bool batch) {
  workload::ExperimentParams p;
  p.protocol = "dqvl";
  p.lease_length = sim::seconds(1);
  p.num_volumes = 16;
  p.proactive_renewal = proactive;
  p.batch_renewals = batch;
  p.write_ratio = 0.02;
  p.requests_per_client = 500;
  p.think_time = sim::milliseconds(50);  // stretch across many lease periods
  p.seed = 71;
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(32)); };
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  header("Ablation",
         "volume renewal policy (1 s leases, 16 volumes, read-heavy)");
  row({"policy", "read(ms)", "p99(ms)", "msgs/req", "bytes/req"}, 18);
  struct Cfg {
    const char* name;
    bool proactive, batch;
  };
  const std::vector<Cfg> cfgs{{"on-demand", false, false},
                              {"proactive", true, false},
                              {"proactive+batch", true, true}};
  std::vector<workload::ExperimentParams> trials;
  for (const Cfg& c : cfgs) trials.push_back(renewal_params(c.proactive,
                                                            c.batch));
  const auto results =
      run::run_experiments(trials, jobs_from_argv(argc, argv));
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const auto& r = results[i];
    row({cfgs[i].name, fmt(r.read_ms.mean(), 1),
         fmt(r.read_ms.percentile(99), 1), fmt(r.messages_per_request, 1),
         fmt(r.bytes_per_request, 0)},
        18);
  }
  std::printf("\nproactive renewal removes the periodic read-miss hiccup "
              "(p99); batching\nfolds the per-volume renewal traffic into "
              "one message per IQS member per round\n");
  return 0;
}
