// Ablation: write-suppress fast path (DESIGN.md section 5.4).
//
// The IQS tracks which OQS nodes may hold valid cached copies
// (lastReadLC / lastAckLC callback state).  With suppression disabled, every
// write re-invalidates nodes already known to be invalid -- correctness is
// unchanged (the consistency tests assert this) but write-burst workloads
// pay an invalidation round per write instead of per burst.
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

namespace {

workload::ExperimentParams suppression_params(bool suppression,
                                              double write_ratio) {
  workload::ExperimentParams p;
  p.protocol = "dqvl";
  p.suppression = suppression;
  p.write_ratio = write_ratio;
  p.requests_per_client = 250;
  p.seed = 9;
  p.choose_object = [](Rng&) { return ObjectId(3); };
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  header("Ablation", "write-suppression fast path on/off");
  row({"write%", "suppress", "write(ms)", "msgs/req", "DqInval msgs"}, 16);
  std::vector<workload::ExperimentParams> trials;
  for (double w : {0.2, 0.5, 0.9}) {
    for (bool s : {true, false}) {
      trials.push_back(suppression_params(s, w));
    }
  }
  const auto results =
      run::run_experiments(trials, jobs_from_argv(argc, argv));
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& r = results[i];
    row({fmt(100 * trials[i].write_ratio, 0),
         trials[i].suppression ? "on" : "off", fmt(r.write_ms.mean()),
         fmt(r.messages_per_request, 1),
         std::to_string(r.message_table.count("DqInval")
                            ? r.message_table.at("DqInval")
                            : 0)},
        16);
  }
  std::printf("\nsuppression removes redundant invalidation rounds on "
              "write bursts; the\ndifference grows with the write ratio\n");
  return 0;
}
