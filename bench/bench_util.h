// Shared helpers for the figure-regeneration benches: experiment shortcuts,
// aligned table printing, and the snapshot reporter.
//
// Every bench prints (a) what the paper's figure shows, (b) the series this
// implementation produces, so EXPERIMENTS.md can record paper-vs-measured
// for each figure.  Benches additionally drop a machine-readable
// BENCH_<name>.json next to that output (see Reporter), so figure data can
// be regenerated and diffed without scraping stdout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "run/parallel_runner.h"
#include "workload/experiment.h"
#include "workload/report.h"

namespace dq::bench {

// ---------------------------------------------------------------------------
// Hardware provenance.  Perf baselines are only comparable when they were
// captured on the same hardware; every dq.bench.v1 envelope therefore
// carries a "host" block, and `baseline_comparable` says whether the
// checked-in baseline at the same path was captured on this host (false =
// the absolute numbers explain a drift like ROADMAP's 18.7M vs the current
// BENCH_sim_throughput.json, not a regression).
// ---------------------------------------------------------------------------

struct HostInfo {
  std::string cpu_model = "unknown";
  unsigned hardware_threads = 1;
};

inline HostInfo host_info() {
  HostInfo h;
  h.hardware_threads = static_cast<unsigned>(run::resolve_jobs(0));
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return h;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) break;
    std::string v = colon + 1;
    while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
      v.erase(v.begin());
    }
    while (!v.empty() && (v.back() == '\n' || v.back() == '\r' ||
                          v.back() == ' ')) {
      v.pop_back();
    }
    if (!v.empty()) h.cpu_model = v;
    break;
  }
  std::fclose(f);
  return h;
}

inline std::string host_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Does the existing baseline at `path` (about to be replaced) carry a host
// block matching this machine?  A missing file or a pre-provenance envelope
// has nothing to drift from and counts as comparable.
inline bool baseline_comparable(const std::string& path, const HostInfo& h) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return true;
  std::string doc;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) doc.append(buf, n);
  std::fclose(f);
  if (doc.find("\"host\":") == std::string::npos) return true;
  const bool cpu_ok =
      doc.find("\"cpu_model\":\"" + host_escape(h.cpu_model) + "\"") !=
      std::string::npos;
  const bool threads_ok =
      doc.find("\"hardware_threads\":" + std::to_string(h.hardware_threads)) !=
      std::string::npos;
  return cpu_ok && threads_ok;
}

inline std::string host_json(const HostInfo& h, bool comparable) {
  return "{\"cpu_model\":\"" + host_escape(h.cpu_model) +
         "\",\"hardware_threads\":" + std::to_string(h.hardware_threads) +
         ",\"baseline_comparable\":" + (comparable ? "true" : "false") + "}";
}

// Parse --jobs=N from a bench command line (0 = one per hardware thread;
// default 1 = serial).  Benches without a Reporter use this directly with
// run::parallel_for_index / run::run_experiments.
inline std::size_t jobs_from_argv(int argc, char** argv) {
  std::size_t jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--jobs=", 0) == 0) {
      jobs = run::resolve_jobs(
          static_cast<std::size_t>(std::strtoul(a.c_str() + 7, nullptr, 10)));
    }
  }
  return jobs;
}

inline void header(const char* fig, const char* what) {
  std::printf("==================================================================\n");
  std::printf("%s -- %s\n", fig, what);
  std::printf("==================================================================\n");
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2e", v);
  return buf;
}

// The paper's section 4.1 response-time setup: 9 edge servers, 3 application
// clients, 8/86/80 ms RTTs, closed loop.
inline workload::ExperimentParams response_time_params(
    std::string proto, double write_ratio, double locality,
    std::uint64_t seed = 42, std::size_t requests = 400) {
  workload::ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = write_ratio;
  p.locality = locality;
  p.requests_per_client = requests;
  p.seed = seed;
  return p;
}

inline workload::ExperimentResult response_time_run(
    std::string proto, double write_ratio, double locality,
    std::uint64_t seed = 42, std::size_t requests = 400) {
  return workload::run_experiment(
      response_time_params(proto, write_ratio, locality, seed, requests));
}

// Collects one dq.report.v1 document per recorded run and writes them as a
// dq.bench.v1 envelope on destruction:
//
//   {"schema": "dq.bench.v1", "bench": "<name>", "runs": [<report>, ...]}
//
// Default output path is BENCH_<name>.json in the working directory;
// --json=PATH on the bench command line overrides it.
//
// Command-line flags parsed by every bench:
//   --json=PATH   write the envelope to PATH
//   --jobs=N      fan run_batch trials across N threads (0 = one per
//                 hardware thread; default 1).  Trials are independent
//                 simulations, so the output -- table rows, report order,
//                 every byte of the envelope -- is identical at any N.
class Reporter {
 public:
  explicit Reporter(std::string name, int argc = 0, char** argv = nullptr)
      : name_(std::move(name)), path_("BENCH_" + name_ + ".json") {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--json=", 0) == 0) path_ = a.substr(7);
    }
    jobs_ = jobs_from_argv(argc, argv);
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  ~Reporter() { write(); }

  // Run an experiment and record its report.
  workload::ExperimentResult run(const workload::ExperimentParams& p) {
    workload::ExperimentResult r = workload::run_experiment(p);
    record(p, r);
    return r;
  }

  // Run a batch of independent trials through the parallel runner (--jobs
  // threads) and record each report.  Results come back in trial order, so
  // callers print their tables from the returned vector exactly as if they
  // had looped over run() serially.
  std::vector<workload::ExperimentResult> run_batch(
      const std::vector<workload::ExperimentParams>& ps) {
    std::vector<workload::ExperimentResult> rs = run::run_experiments(ps, jobs_);
    for (std::size_t i = 0; i < ps.size(); ++i) record(ps[i], rs[i]);
    return rs;
  }

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  // Record a run executed elsewhere (e.g. via a Deployment).
  void record(const workload::ExperimentParams& p,
              const workload::ExperimentResult& r) {
    runs_.push_back(workload::report::to_json(p, r));
  }

  void write() {
    if (written_) return;
    written_ = true;
    // Compare against the baseline being replaced BEFORE truncating it.
    const HostInfo host = host_info();
    const bool comparable = baseline_comparable(path_, host);
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f,
                 "{\"schema\":\"dq.bench.v1\",\"bench\":\"%s\",\"host\":%s,"
                 "\"runs\":[",
                 name_.c_str(), host_json(host, comparable).c_str());
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",", runs_[i].c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu runs)\n", path_.c_str(), runs_.size());
  }

 private:
  std::string name_;
  std::string path_;
  std::size_t jobs_ = 1;
  std::vector<std::string> runs_;
  bool written_ = false;
};

}  // namespace dq::bench
