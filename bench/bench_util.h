// Shared helpers for the figure-regeneration benches: experiment shortcuts
// and aligned table printing.
//
// Every bench prints (a) what the paper's figure shows, (b) the series this
// implementation produces, so EXPERIMENTS.md can record paper-vs-measured
// for each figure.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "workload/experiment.h"

namespace dq::bench {

inline void header(const char* fig, const char* what) {
  std::printf("==================================================================\n");
  std::printf("%s -- %s\n", fig, what);
  std::printf("==================================================================\n");
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2e", v);
  return buf;
}

// A response-time experiment with the paper's section 4.1 setup: 9 edge
// servers, 3 application clients, 8/86/80 ms RTTs, closed loop.
inline workload::ExperimentResult response_time_run(
    workload::Protocol proto, double write_ratio, double locality,
    std::uint64_t seed = 42, std::size_t requests = 400) {
  workload::ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = write_ratio;
  p.locality = locality;
  p.requests_per_client = requests;
  p.seed = seed;
  return workload::run_experiment(p);
}

}  // namespace dq::bench
