// Figure 6(a): response time per protocol at the target workload -- 5%
// writes (the TPC-W profile-object update rate), 100% access locality.
//
// Paper's claims to reproduce:
//   * DQVL reads are >= 6x faster than primary/backup and majority quorum.
//   * DQVL read time is comparable to ROWA / ROWA-Async (local reads).
//   * Strong consistency is preserved (checker reports zero violations).
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  Reporter rep("fig6a", argc, argv);
  header("Figure 6(a)", "response time at 5% write ratio, locality 100%");
  row({"protocol", "read(ms)", "write(ms)", "overall(ms)", "p99(ms)",
       "violations"});
  const auto protos = workload::paper_protocols();
  std::vector<workload::ExperimentParams> trials;
  for (std::string proto : protos) {
    trials.push_back(response_time_params(proto, 0.05, 1.0));
  }
  const auto results = rep.run_batch(trials);
  double dqvl_read = 0, pb_read = 0, maj_read = 0;
  for (std::size_t i = 0; i < protos.size(); ++i) {
    const std::string proto = protos[i];
    const auto& r = results[i];
    row({workload::protocol_name(proto), fmt(r.read_ms.mean()),
         fmt(r.write_ms.mean()), fmt(r.all_ms.mean()),
         fmt(r.all_ms.p99()), std::to_string(r.violations.size())});
    if (proto == "dqvl") dqvl_read = r.read_ms.mean();
    if (proto == "pb") pb_read = r.read_ms.mean();
    if (proto == "majority") maj_read = r.read_ms.mean();
  }
  std::printf("\npaper: DQVL read >= 6x better than primary/backup and "
              "majority\n");
  std::printf("measured: %.1fx vs primary/backup, %.1fx vs majority\n",
              pb_read / dqvl_read, maj_read / dqvl_read);
  return 0;
}
