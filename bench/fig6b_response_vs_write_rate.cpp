// Figure 6(b): sensitivity of overall response time to the write ratio,
// locality 100%.
//
// Paper's claims to reproduce:
//   * As writes dominate, DQVL's response time approaches the majority
//     quorum's (both pay two quorum rounds per write).
//   * Primary/backup and ROWA writes need one round, so they win at high
//     write ratios; ROWA-Async stays local throughout.
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  Reporter rep("fig6b", argc, argv);
  header("Figure 6(b)", "avg response time (ms) vs write ratio, locality 100%");
  const auto protos = workload::paper_protocols();
  std::vector<std::string> head{"write%"};
  for (auto p : protos) head.push_back(workload::protocol_name(p));
  row(head);
  const std::vector<double> writes{0.0, 0.05, 0.1, 0.2, 0.3,
                                   0.5, 0.7,  0.9, 1.0};
  std::vector<workload::ExperimentParams> trials;
  for (double w : writes) {
    for (auto proto : protos) {
      trials.push_back(response_time_params(proto, w, 1.0, /*seed=*/7, 250));
    }
  }
  const auto results = rep.run_batch(trials);
  double dqvl_at_1 = 0, maj_at_1 = 0;
  for (std::size_t wi = 0; wi < writes.size(); ++wi) {
    const double w = writes[wi];
    std::vector<std::string> cells{fmt(100 * w, 0)};
    for (std::size_t pi = 0; pi < protos.size(); ++pi) {
      const auto proto = protos[pi];
      const auto& r = results[wi * protos.size() + pi];
      cells.push_back(fmt(r.all_ms.mean()));
      if (w == 1.0 && proto == "dqvl") {
        dqvl_at_1 = r.all_ms.mean();
      }
      if (w == 1.0 && proto == "majority") {
        maj_at_1 = r.all_ms.mean();
      }
    }
    row(cells);
  }
  std::printf("\npaper: DQVL approaches majority as writes dominate\n");
  std::printf("measured at w=100%%: DQVL %.1f ms vs majority %.1f ms "
              "(ratio %.2f)\n",
              dqvl_at_1, maj_at_1, dqvl_at_1 / maj_at_1);
  return 0;
}
