// Figure 7(a): response time per protocol at 5% writes and 90% access
// locality (10% of requests routed to a distant replica -- redirection
// misses / client mobility).
//
// Paper's claims to reproduce:
//   * DQVL still outperforms primary/backup and majority at 90% locality.
//   * ROWA-Async remains optimal (it serves potentially stale data at the
//     distant replica, which the others refuse to do).
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  Reporter rep("fig7a", argc, argv);
  header("Figure 7(a)", "response time at 5% writes, 90% access locality");
  row({"protocol", "read(ms)", "write(ms)", "overall(ms)", "violations"});
  const auto protos = workload::paper_protocols();
  std::vector<workload::ExperimentParams> trials;
  for (std::string proto : protos) {
    trials.push_back(response_time_params(proto, 0.05, 0.9, /*seed=*/19));
  }
  const auto results = rep.run_batch(trials);
  double dqvl = 0, pb = 0, maj = 0;
  for (std::size_t i = 0; i < protos.size(); ++i) {
    const std::string proto = protos[i];
    const auto& r = results[i];
    row({workload::protocol_name(proto), fmt(r.read_ms.mean()),
         fmt(r.write_ms.mean()), fmt(r.all_ms.mean()),
         std::to_string(r.violations.size())});
    if (proto == "dqvl") dqvl = r.all_ms.mean();
    if (proto == "pb") pb = r.all_ms.mean();
    if (proto == "majority") maj = r.all_ms.mean();
  }
  std::printf("\npaper: at 90%% locality DQVL outperforms both strong "
              "baselines\n");
  std::printf("measured overall: DQVL %.1f ms, primary/backup %.1f ms, "
              "majority %.1f ms\n", dqvl, pb, maj);
  return 0;
}
