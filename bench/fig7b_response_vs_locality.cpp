// Figure 7(b): overall response time vs access locality at 5% writes.
//
// Paper's claims to reproduce:
//   * DQVL (and ROWA / ROWA-Async) improve monotonically with locality.
//   * Majority and primary/backup are essentially flat -- they pay WAN
//     round trips to a quorum / the primary regardless of which edge server
//     is closest.
//   * There is a crossover locality above which DQVL beats both strong
//     baselines (the paper reports ~70% on its testbed).
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  Reporter rep("fig7b", argc, argv);
  header("Figure 7(b)", "avg response time (ms) vs access locality, 5% writes");
  const auto protos = workload::paper_protocols();
  std::vector<std::string> head{"locality%"};
  for (auto p : protos) head.push_back(workload::protocol_name(p));
  row(head);

  const std::vector<double> locs{0.0, 0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0};
  std::vector<workload::ExperimentParams> trials;
  for (double loc : locs) {
    for (auto proto : protos) {
      trials.push_back(response_time_params(proto, 0.05, loc, /*seed=*/3, 300));
    }
  }
  const auto results = rep.run_batch(trials);
  double crossover = -1;
  for (std::size_t li = 0; li < locs.size(); ++li) {
    const double loc = locs[li];
    std::vector<std::string> cells{fmt(100 * loc, 0)};
    double dqvl = 0, pb = 1e18, maj = 1e18;
    for (std::size_t pi = 0; pi < protos.size(); ++pi) {
      const auto proto = protos[pi];
      const auto& r = results[li * protos.size() + pi];
      cells.push_back(fmt(r.all_ms.mean()));
      if (proto == "dqvl") dqvl = r.all_ms.mean();
      if (proto == "pb") pb = r.all_ms.mean();
      if (proto == "majority") maj = r.all_ms.mean();
    }
    row(cells);
    if (crossover < 0 && dqvl < pb && dqvl < maj) crossover = loc;
  }
  std::printf("\npaper: prefer DQVL over both strong baselines above ~70%% "
              "locality\n");
  if (crossover >= 0) {
    std::printf("measured: DQVL beats both from %.0f%% locality upward\n",
                100 * crossover);
  } else {
    std::printf("measured: no crossover in the sweep\n");
  }
  return 0;
}
