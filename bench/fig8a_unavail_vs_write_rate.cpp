// Figure 8(a): system unavailability (log scale) vs write ratio.
// Analytical model with n = 15 replicas (IQS and OQS), per-node
// unavailability p = 0.01 -- exactly the paper's setup -- plus a
// Monte-Carlo simulation cross-check in a coarser regime where event counts
// are measurable.
//
// Paper's claims to reproduce:
//   * DQVL's availability tracks the majority quorum's.
//   * ROWA-Async with stale reads allowed is the most available; forbidding
//     stale reads makes it orders of magnitude worse than quorum protocols.
//   * ROWA collapses as the write ratio grows (write-all).
#include "analysis/availability.h"
#include "bench_util.h"
#include "sim/failure.h"

using namespace dq;
using namespace dq::bench;

namespace {

// Monte-Carlo cross-check: run the real protocols with failure injection
// and per-op deadlines; measure the rejected fraction.
workload::ExperimentParams unavailability_params(std::string proto,
                                                 double w, double p_node,
                                                 std::uint64_t seed) {
  workload::ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = w;
  p.requests_per_client = 400;
  p.seed = seed;
  p.topo.num_servers = 5;
  p.iqs = workload::QuorumSpec::majority(5);
  p.lease_length = sim::seconds(1);
  // Repairs (mean ~11 s) far exceed the per-op deadline (3 s), so a request
  // that needs an unreachable quorum is rejected rather than waiting out
  // the failure -- matching the model's instantaneous-availability view.
  p.op_deadline = sim::seconds(3);
  p.think_time = sim::milliseconds(300);
  p.failures =
      sim::FailureInjector::Params::for_unavailability(p_node,
                                                       sim::seconds(100));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Reporter rep("fig8a", argc, argv);
  header("Figure 8(a)",
         "unavailability vs write ratio (analytical; n = 15, p = 0.01)");
  row({"write%", "DQVL", "majority", "p/backup", "ROWA", "ROWA-A(ns)",
       "ROWA-A(st)"});
  analysis::AvailabilityModel m;  // n = iqs = 15, p = 0.01
  for (double w : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    row({fmt(100 * w, 0), fmt_sci(1 - m.dqvl(w)), fmt_sci(1 - m.majority(w)),
         fmt_sci(1 - m.primary_backup(w)), fmt_sci(1 - m.rowa(w)),
         fmt_sci(1 - m.rowa_async_no_stale(w)),
         fmt_sci(1 - m.rowa_async_stale_ok(w))});
  }
  std::printf("\n(ns = no stale reads allowed, st = stale reads allowed)\n");
  std::printf("paper: DQVL tracks majority; ROWA-Async(ns) is orders worse\n");

  std::printf("\nMonte-Carlo cross-check (simulated protocols, n = 5, "
              "p = 0.10, 1200 requests):\n");
  row({"write%", "DQVL(sim)", "DQVL(model)", "majority(sim)",
       "majority(model)"});
  analysis::AvailabilityModel coarse;
  coarse.n = 5;
  coarse.iqs = 5;
  coarse.p = 0.10;
  const std::vector<double> writes{0.1, 0.5};
  std::vector<workload::ExperimentParams> trials;
  for (double w : writes) {
    trials.push_back(
        unavailability_params("dqvl", w, 0.10, 91));
    trials.push_back(
        unavailability_params("majority", w, 0.10, 91));
  }
  const auto results = rep.run_batch(trials);
  for (std::size_t wi = 0; wi < writes.size(); ++wi) {
    const double w = writes[wi];
    const double dq_sim = 1.0 - results[wi * 2].availability();
    const double mj_sim = 1.0 - results[wi * 2 + 1].availability();
    row({fmt(100 * w, 0), fmt_sci(dq_sim), fmt_sci(1 - coarse.dqvl(w)),
         fmt_sci(mj_sim), fmt_sci(1 - coarse.majority(w))});
  }
  std::printf("(simulated rejection rates should be the same order of "
              "magnitude as the model;\n DQVL's lease grace lets some short "
              "failures go unnoticed, as the paper notes)\n");
  return 0;
}
