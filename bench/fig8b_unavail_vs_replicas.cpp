// Figure 8(b): system unavailability vs number of replicas at a fixed 25%
// write ratio (analytical; per-node unavailability p = 0.01).
//
// Paper's claims to reproduce:
//   * DQVL's unavailability matches the majority quorum's and both improve
//     as replicas are added.
//   * ROWA and no-stale-reads ROWA-Async are insensitive to (or hurt by)
//     more replicas; primary/backup is flat at the single-node availability.
#include "analysis/availability.h"
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

int main(int argc, char** argv) {
  Reporter rep("fig8b", argc, argv);  // analytical only: empty runs array
  header("Figure 8(b)",
         "unavailability vs #replicas (analytical; w = 0.25, p = 0.01)");
  row({"replicas", "DQVL", "majority", "p/backup", "ROWA", "ROWA-A(ns)"});
  const double w = 0.25;
  for (std::size_t n : {3u, 5u, 7u, 9u, 11u, 13u, 15u, 17u, 19u}) {
    analysis::AvailabilityModel m;
    m.n = n;
    m.iqs = n;
    row({std::to_string(n), fmt_sci(1 - m.dqvl(w)),
         fmt_sci(1 - m.majority(w)), fmt_sci(1 - m.primary_backup(w)),
         fmt_sci(1 - m.rowa(w)), fmt_sci(1 - m.rowa_async_no_stale(w))});
  }
  std::printf("\npaper: quorum-based availability improves with n; "
              "ROWA/ROWA-Async(ns)/primary-backup do not\n");

  std::printf("\nvariant: moderate IQS (5 nodes) while the OQS grows -- the "
              "deployment the\noverhead analysis recommends; availability is "
              "then bounded by the IQS:\n");
  row({"oqs size", "DQVL(iqs=5)", "DQVL(iqs=n)"});
  for (std::size_t n : {5u, 9u, 15u, 19u}) {
    analysis::AvailabilityModel fixed;
    fixed.n = n;
    fixed.iqs = 5;
    analysis::AvailabilityModel grown;
    grown.n = n;
    grown.iqs = n;
    row({std::to_string(n), fmt_sci(1 - fixed.dqvl(w)),
         fmt_sci(1 - grown.dqvl(w))});
  }
  return 0;
}
