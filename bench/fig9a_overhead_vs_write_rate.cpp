// Figure 9(a): communication overhead (messages per client request, log
// scale in the paper) vs write ratio -- the worst case for DQVL, where
// reads and writes to one object interleave so most reads miss and most
// writes go through.
//
// Both the analytical model (n = 15 replicas, majority IQS of 15) and
// messages counted by the simulator (9 replicas, majority IQS of 5, one
// contended object) are printed; the shapes must agree.
//
// Paper's claims to reproduce:
//   * DQVL's overhead peaks when reads and writes interleave (w ~= 50%),
//     exceeding traditional quorum protocols there.
//   * At the extremes DQVL is cheap: read hits at w -> 0, write suppresses
//     at w -> 1.
#include "analysis/overhead.h"
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

namespace {

workload::ExperimentParams hot_object_params(std::string proto,
                                             double w, std::uint64_t seed) {
  workload::ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = w;
  p.requests_per_client = 300;
  p.seed = seed;
  // One hot object maximizes read-miss / write-through interleaving.
  p.choose_object = [](Rng&) { return ObjectId(7); };
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Reporter rep("fig9a", argc, argv);
  header("Figure 9(a)",
         "messages per request vs write ratio (worst-case interleaving)");
  std::printf("analytical model (n = 15, IQS = majority of 15):\n");
  row({"write%", "DQVL", "majority", "p/backup", "ROWA", "ROWA-Async"});
  analysis::OverheadModel m;  // n = iqs = 15
  for (double w : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    row({fmt(100 * w, 0), fmt(m.dqvl_avg(w), 1), fmt(m.majority_avg(w), 1),
         fmt(m.pb_avg(w), 1), fmt(m.rowa_avg(w), 1),
         fmt(m.rowa_async_avg(w), 1)});
  }

  std::printf("\nsimulator cross-check (9 replicas, IQS = majority of 5, one "
              "hot object;\nincludes lease renewals and retransmission "
              "machinery):\n");
  row({"write%", "DQVL", "majority", "ROWA"});
  const std::vector<double> writes{0.0, 0.25, 0.5, 0.75, 1.0};
  const std::string protos[] = {"dqvl",
                                       "majority",
                                       "rowa"};
  std::vector<workload::ExperimentParams> trials;
  for (double w : writes) {
    for (std::string proto : protos) {
      trials.push_back(hot_object_params(proto, w, 57));
    }
  }
  const auto results = rep.run_batch(trials);
  for (std::size_t wi = 0; wi < writes.size(); ++wi) {
    row({fmt(100 * writes[wi], 0),
         fmt(results[wi * 3 + 0].messages_per_request, 1),
         fmt(results[wi * 3 + 1].messages_per_request, 1),
         fmt(results[wi * 3 + 2].messages_per_request, 1)});
  }
  std::printf("\npaper: DQVL's overhead peaks near w = 50%% and exceeds "
              "majority there;\nits extremes (read hits / write suppresses) "
              "are cheap\n");
  return 0;
}
