// Figure 9(b): communication overhead vs system size when the IQS is fixed
// at a moderate size (5) and the OQS grows with the system.
//
// Paper's claims to reproduce:
//   * With a fixed IQS, DQVL's overhead stays comparable to the majority
//     quorum protocol as the system grows, "without requiring many read
//     hits in the workload" -- the write-side quorum rounds are bounded by
//     the small IQS while majority rounds grow with n.
#include "analysis/overhead.h"
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

namespace {

workload::ExperimentParams sized_params(std::size_t servers, double w,
                                        std::uint64_t seed) {
  workload::ExperimentParams p;
  p.protocol = "dqvl";
  p.topo.num_servers = servers;
  p.iqs = workload::QuorumSpec::majority(5);
  p.write_ratio = w;
  p.requests_per_client = 250;
  p.seed = seed;
  p.choose_object = [](Rng&) { return ObjectId(7); };
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Reporter rep("fig9b", argc, argv);
  header("Figure 9(b)",
         "messages per request vs replica count (IQS fixed at 5)");
  std::printf("analytical model, w = 0.25 worst-case interleaving:\n");
  row({"replicas", "DQVL(iqs=5)", "majority(n)", "DQVL(iqs=n)"});
  const double w = 0.25;
  for (std::size_t n : {5u, 9u, 15u, 21u, 31u, 45u}) {
    analysis::OverheadModel fixed{n, 5};
    analysis::OverheadModel maj{n, n};
    analysis::OverheadModel grown{n, n};
    row({std::to_string(n), fmt(fixed.dqvl_avg(w), 1),
         fmt(maj.majority_avg(w), 1), fmt(grown.dqvl_avg(w), 1)});
  }

  std::printf("\nsimulator cross-check (w = 0.25, one hot object):\n");
  row({"replicas", "DQVL(iqs=5)"});
  const std::vector<std::size_t> sizes{5u, 9u, 13u, 17u};
  std::vector<workload::ExperimentParams> trials;
  for (std::size_t n : sizes) trials.push_back(sized_params(n, w, 61));
  const auto results = rep.run_batch(trials);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    row({std::to_string(sizes[i]),
         fmt(results[i].messages_per_request, 1)});
  }
  std::printf("\npaper: with a moderate fixed IQS, DQVL overhead is "
              "comparable to majority\nas the OQS grows\n");
  return 0;
}
