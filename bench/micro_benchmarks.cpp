// Micro-benchmarks (google-benchmark): throughput of the simulation and
// protocol machinery itself.  These guard against performance regressions
// in the substrate that the figure benches run on.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "analysis/availability.h"
#include "quorum/quorum.h"
#include "run/parallel_runner.h"
#include "sim/scheduler.h"
#include "workload/experiment.h"

namespace {

using namespace dq;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(i, [&sink] { ++sink; });
    }
    s.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleRun);

// Steady state: one scheduler reused across batches, the regime a real
// trial runs in (millions of events through a single scheduler, slab slots
// recycling).  This is the events/sec headline; BM_SchedulerScheduleRun
// above keeps the seed-comparable cold-start shape.
void BM_SchedulerSteadyState(benchmark::State& state) {
  sim::Scheduler s;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(s.now() + i, [&sink] { ++sink; });
    }
    s.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerSteadyState);

// Cancel-heavy variant: half the scheduled events are cancelled before the
// drain, exercising lazy heap deletion and slab-slot recycling.
void BM_SchedulerCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    int sink = 0;
    std::vector<sim::TimerToken> tokens;
    tokens.reserve(500);
    for (int i = 0; i < 1000; ++i) {
      auto tok = s.schedule_at(i, [&sink] { ++sink; });
      if (i % 2 == 0) tokens.push_back(tok);
    }
    for (auto& tok : tokens) tok.cancel();
    s.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancelHeavy);

// Steady-state churn: a bounded pending set with constant schedule/fire
// turnover, the shape the protocol timers actually produce.  The slab pool
// should recycle the same few slots instead of growing.
void BM_SchedulerSteadyChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    int remaining = 2000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) s.schedule_at(s.now() + 1, tick);
    };
    for (int c = 0; c < 8; ++c) s.schedule_at(c, tick);
    s.run_all();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SchedulerSteadyChurn);

void BM_QuorumPickMajority(benchmark::State& state) {
  std::vector<NodeId> members;
  for (std::uint32_t i = 0; i < 15; ++i) members.emplace_back(i);
  auto q = quorum::ThresholdQuorum::majority(members);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->pick(quorum::Kind::kRead, rng, NodeId(3)));
  }
}
BENCHMARK(BM_QuorumPickMajority);

void BM_ExactAvailabilityEnumeration15(benchmark::State& state) {
  std::vector<NodeId> members;
  for (std::uint32_t i = 0; i < 15; ++i) members.emplace_back(i);
  auto q = quorum::ThresholdQuorum::majority(members);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quorum::exact_availability(*q, quorum::Kind::kRead, 0.01));
  }
}
BENCHMARK(BM_ExactAvailabilityEnumeration15);

// End-to-end: simulated operations per wall-clock second for the full DQVL
// deployment (9 servers, 3 closed-loop clients).
void BM_DqvlEndToEndOps(benchmark::State& state) {
  for (auto _ : state) {
    workload::ExperimentParams p;
    p.protocol = "dqvl";
    p.requests_per_client = 100;
    p.write_ratio = 0.2;
    p.seed = 3;
    auto r = workload::run_experiment(p);
    benchmark::DoNotOptimize(r.all_ms.mean());
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_DqvlEndToEndOps)->Unit(benchmark::kMillisecond);

// The parallel runner over a fixed 4-trial suite; Arg is the job count.
// On a single-core host both arms serialize -- the interesting number is
// the per-trial overhead of the fan-out machinery itself.
void BM_ParallelTrialSuite(benchmark::State& state) {
  std::vector<workload::ExperimentParams> trials;
  for (std::uint64_t seed : {7u, 11u, 23u, 42u}) {
    workload::ExperimentParams p;
    p.protocol = "dqvl";
    p.requests_per_client = 100;
    p.write_ratio = 0.2;
    p.seed = seed;
    trials.push_back(p);
  }
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto rs = run::run_experiments(trials, jobs);
    benchmark::DoNotOptimize(rs.front().all_ms.mean());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ParallelTrialSuite)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MajorityEndToEndOps(benchmark::State& state) {
  for (auto _ : state) {
    workload::ExperimentParams p;
    p.protocol = "majority";
    p.requests_per_client = 100;
    p.write_ratio = 0.2;
    p.seed = 3;
    auto r = workload::run_experiment(p);
    benchmark::DoNotOptimize(r.all_ms.mean());
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_MajorityEndToEndOps)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
