// Micro-benchmarks (google-benchmark): throughput of the simulation and
// protocol machinery itself.  These guard against performance regressions
// in the substrate that the figure benches run on.
#include <benchmark/benchmark.h>

#include "analysis/availability.h"
#include "quorum/quorum.h"
#include "sim/scheduler.h"
#include "workload/experiment.h"

namespace {

using namespace dq;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(i, [&sink] { ++sink; });
    }
    s.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleRun);

void BM_QuorumPickMajority(benchmark::State& state) {
  std::vector<NodeId> members;
  for (std::uint32_t i = 0; i < 15; ++i) members.emplace_back(i);
  auto q = quorum::ThresholdQuorum::majority(members);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->pick(quorum::Kind::kRead, rng, NodeId(3)));
  }
}
BENCHMARK(BM_QuorumPickMajority);

void BM_ExactAvailabilityEnumeration15(benchmark::State& state) {
  std::vector<NodeId> members;
  for (std::uint32_t i = 0; i < 15; ++i) members.emplace_back(i);
  auto q = quorum::ThresholdQuorum::majority(members);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quorum::exact_availability(*q, quorum::Kind::kRead, 0.01));
  }
}
BENCHMARK(BM_ExactAvailabilityEnumeration15);

// End-to-end: simulated operations per wall-clock second for the full DQVL
// deployment (9 servers, 3 closed-loop clients).
void BM_DqvlEndToEndOps(benchmark::State& state) {
  for (auto _ : state) {
    workload::ExperimentParams p;
    p.protocol = workload::Protocol::kDqvl;
    p.requests_per_client = 100;
    p.write_ratio = 0.2;
    p.seed = 3;
    auto r = workload::run_experiment(p);
    benchmark::DoNotOptimize(r.all_ms.mean());
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_DqvlEndToEndOps)->Unit(benchmark::kMillisecond);

void BM_MajorityEndToEndOps(benchmark::State& state) {
  for (auto _ : state) {
    workload::ExperimentParams p;
    p.protocol = workload::Protocol::kMajority;
    p.requests_per_client = 100;
    p.write_ratio = 0.2;
    p.seed = 3;
    auto r = workload::run_experiment(p);
    benchmark::DoNotOptimize(r.all_ms.mean());
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_MajorityEndToEndOps)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
