// Open-loop workload scale: how fast the aggregated generators emit.
//
// The headline trial aggregates >= 1M logical clients over >= 100k objects
// (8 sites x 131072 clients, Zipf over 131072 objects) into 8 SiteGenerator
// rate processes driving sink servers on the partitioned engine, and
// measures emitted requests per wall second against the raw scheduler
// ceiling re-measured in the same binary (the same measurement
// BENCH_sim_throughput.json records).  The acceptance bar is a ceiling
// ratio of ~2x: an emitted open-loop request costs about one scheduler
// event plus sampling and network accounting.
//
// A second trial demonstrates the rate shaping (diurnal sinusoid + flash
// crowd) by snapshotting per-phase offered counts, and a tiny full-stack
// DQVL open-loop run is recorded as the envelope's dq.report.v1 document.
//
// Tiny-parameter mode for CI smokes:
//   --sites=N --clients-per-site=N --objects=N --seconds=S --json=PATH
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/parallel_world.h"
#include "sim/scheduler.h"
#include "workload/open_loop.h"

using namespace dq;
using namespace dq::bench;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

double wall_ms() {
  // dqlint:allow(det-wall-clock): this bench measures real elapsed time by
  // design; the dq.report.v1 document it records stays seed-deterministic.
  using clk = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clk::now().time_since_epoch())
      .count();
}

// The same steady-state measurement BENCH_sim_throughput.json records,
// re-run here so the ceiling ratio compares numbers from one binary on one
// host (~0.3 s).
double scheduler_events_per_sec() {
  constexpr int kBatch = 1000;
  sim::Scheduler s;
  int sink = 0;
  std::uint64_t fired = 0;
  const double t0 = wall_ms();
  double t1 = t0;
  while (t1 - t0 < 300.0) {
    for (int i = 0; i < kBatch; ++i) {
      s.schedule_at(s.now() + i, [&sink] { ++sink; });
    }
    s.run_all();
    fired += kBatch;
    t1 = wall_ms();
  }
  return fired / ((t1 - t0) / 1000.0);
}

// Servers that swallow requests: the bench measures emission, not protocol
// execution.
class SinkServer final : public sim::Actor {
 public:
  void on_message(const sim::Envelope&) override {}
};

struct ScaleConfig {
  std::size_t sites = 8;
  std::size_t clients_per_site = 131072;
  std::size_t objects = 131072;
  double seconds = 4.0;
  double client_rate_hz = 1.0;
  double diurnal = 0.0;
  std::optional<workload::FlashCrowd> flash;
};

// A sink world with one generator per site; returns per-site offered counts
// sampled at each requested sim time (cumulative).
struct ScaleRun {
  std::uint64_t emitted = 0;
  std::size_t events = 0;
  double wall = 0.0;  // ms
  std::vector<std::uint64_t> per_site;
  std::vector<std::uint64_t> phase_offered;  // cumulative at each phase mark
};

ScaleRun run_scale(const ScaleConfig& cfg,
                   const std::vector<sim::Time>& phase_marks) {
  sim::Topology::Params tp;
  tp.num_servers = cfg.sites;
  tp.num_clients = cfg.sites;  // client i homes at server i
  tp.jitter = 0.0;
  sim::Topology topo(tp);
  sim::World::Parallelism par;
  par.partitions = sim::par::default_partition_count(topo);
  par.threads = 1;
  sim::World world(std::move(topo), /*seed=*/42, par);

  std::vector<std::unique_ptr<SinkServer>> sinks;
  for (std::size_t i = 0; i < cfg.sites; ++i) {
    auto s = std::make_unique<SinkServer>();
    world.attach(world.topology().server(i), *s);
    sinks.push_back(std::move(s));
  }

  workload::OpenLoopParams ol;
  ol.clients_per_site = cfg.clients_per_site;
  ol.client_rate_hz = cfg.client_rate_hz;
  ol.objects = cfg.objects;
  ol.zipf_s = 0.99;
  ol.diurnal_amplitude = cfg.diurnal;
  ol.flash = cfg.flash;
  ol.horizon = sim::milliseconds(static_cast<std::int64_t>(cfg.seconds * 1e3));
  ol.track_replies = false;  // fire-and-forget: pure emission throughput

  auto zipf = std::make_shared<const workload::ZipfAliasTable>(ol.zipf_s,
                                                               ol.objects);
  std::vector<std::unique_ptr<workload::SiteGenerator>> gens;
  for (std::size_t i = 0; i < cfg.sites; ++i) {
    workload::SiteGenerator::Params gp;
    gp.ol = ol;
    gp.write_ratio = 0.0;
    gp.locality = 1.0;
    gp.site = i;
    gp.seed = 42;
    gp.zipf = zipf;
    auto g = std::make_unique<workload::SiteGenerator>(std::move(gp));
    world.attach(world.topology().client(i), *g);
    gens.push_back(std::move(g));
  }
  for (auto& g : gens) g->start();

  ScaleRun out;
  const double t0 = wall_ms();
  std::uint64_t last_total = 0;
  for (const sim::Time mark : phase_marks) {
    world.run_until(mark);
    std::uint64_t total = 0;
    for (const auto& g : gens) total += g->offered();
    out.phase_offered.push_back(total);
    last_total = total;
  }
  world.run_until(ol.horizon + sim::seconds(1));  // drain in-flight deliveries
  out.wall = wall_ms() - t0;
  (void)last_total;
  for (const auto& g : gens) {
    out.per_site.push_back(g->offered());
    out.emitted += g->offered();
  }
  out.events = world.executed_events();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ScaleConfig cfg;
  std::string json_path = "BENCH_open_loop_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&a](const char* pfx) -> const char* {
      const std::size_t n = std::strlen(pfx);
      return a.rfind(pfx, 0) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = val("--json=")) json_path = v;
    if (const char* v = val("--sites=")) cfg.sites = std::strtoul(v, nullptr, 10);
    if (const char* v = val("--clients-per-site=")) {
      cfg.clients_per_site = std::strtoul(v, nullptr, 10);
    }
    if (const char* v = val("--objects=")) {
      cfg.objects = std::strtoul(v, nullptr, 10);
    }
    if (const char* v = val("--seconds=")) cfg.seconds = std::atof(v);
  }

  header("Open-loop scale",
         "aggregated generators vs the raw scheduler ceiling");

  // Headline: flat rate, maximum emission pressure.  The ceiling and the
  // trial are measured in alternating passes and compared median-to-median:
  // on a frequency-throttled host a single (ceiling, trial) pair can land on
  // opposite sides of a thermal step and skew the ratio 1.5x either way.
  // The trial itself is seed-deterministic, so only its wall time varies.
  constexpr int kPasses = 3;
  std::vector<double> ceilings;
  std::vector<double> walls;
  ScaleRun peak;
  for (int p = 0; p < kPasses; ++p) {
    ceilings.push_back(scheduler_events_per_sec());
    peak = run_scale(cfg, {});
    walls.push_back(peak.wall);
  }
  const double ceiling = median(ceilings);
  const double wall = median(walls);
  row({"scheduler", "events/sec", fmt_sci(ceiling)}, 18);
  const double emitted_per_sec = peak.emitted / (wall / 1e3);
  const double events_per_sec = peak.events / (wall / 1e3);
  const double ratio = emitted_per_sec > 0 ? ceiling / emitted_per_sec : 0.0;
  row({"open-loop", "requests", std::to_string(peak.emitted)}, 18);
  row({"", "requests/sec", fmt_sci(emitted_per_sec)}, 18);
  row({"", "events/sec", fmt_sci(events_per_sec)}, 18);
  row({"", "ceiling ratio", fmt(ratio, 2) + "x"}, 18);
  std::uint64_t max_site = 0;
  for (const std::uint64_t v : peak.per_site) {
    max_site = v > max_site ? v : max_site;
  }
  const double mean_site =
      peak.per_site.empty()
          ? 0.0
          : static_cast<double>(peak.emitted) /
                static_cast<double>(peak.per_site.size());
  const double skew =
      mean_site > 0 ? static_cast<double>(max_site) / mean_site : 0.0;
  row({"", "load skew", fmt(skew, 3)}, 18);

  // Rate-shaping demo: diurnal sinusoid + a mid-run flash crowd, offered
  // counts snapshotted before / during / after the flash window.
  ScaleConfig shaped = cfg;
  shaped.client_rate_hz = cfg.client_rate_hz / 8.0;
  shaped.diurnal = 0.4;
  workload::FlashCrowd flash;
  const double fs = cfg.seconds * 0.5, fd = cfg.seconds * 0.25;
  flash.start = sim::milliseconds(static_cast<std::int64_t>(fs * 1e3));
  flash.duration = sim::milliseconds(static_cast<std::int64_t>(fd * 1e3));
  flash.multiplier = 5.0;
  shaped.flash = flash;
  const ScaleRun demo =
      run_scale(shaped, {flash.start, flash.start + flash.duration});
  const std::uint64_t before = demo.phase_offered.at(0);
  const std::uint64_t during = demo.phase_offered.at(1) - before;
  const double base_rate = fs > 0 ? before / fs : 0.0;
  const double flash_rate = fd > 0 ? during / fd : 0.0;
  const double observed_mult = base_rate > 0 ? flash_rate / base_rate : 0.0;
  row({"flash crowd", "base req/s", fmt_sci(base_rate)}, 18);
  row({"", "flash req/s", fmt_sci(flash_rate)}, 18);
  row({"", "multiplier", fmt(observed_mult, 2) + "x"}, 18);

  // A tiny full-stack DQVL open-loop trial: the envelope's dq.report.v1
  // document (exercises the report's open_loop section end to end).
  workload::ExperimentParams rp;
  rp.protocol = "dqvl";
  rp.topo.num_servers = 9;
  rp.topo.num_clients = 3;
  rp.write_ratio = 0.1;
  rp.seed = 7;
  workload::OpenLoopParams rol;
  rol.clients_per_site = 1000;
  rol.client_rate_hz = 0.1;
  rol.objects = 4096;
  rol.horizon = sim::seconds(2);
  rp.open_loop = rol;
  const workload::ExperimentResult rr = workload::run_experiment(rp);
  const std::string report = workload::report::to_json(rp, rr);

  const HostInfo host = host_info();
  const bool comparable = baseline_comparable(json_path, host);
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return 0;
  }
  std::fprintf(f, "{\"schema\":\"dq.bench.v1\",\"bench\":\"open_loop_scale\"");
  std::fprintf(f, ",\"host\":%s", host_json(host, comparable).c_str());
  std::fprintf(
      f,
      ",\"open_loop_scale\":{\"sites\":%zu,\"clients_per_site\":%zu,"
      "\"logical_clients\":%zu,\"objects\":%zu,\"sim_seconds\":%.2f,"
      "\"emitted\":%llu,\"wall_ms\":%.1f,\"emitted_per_sec\":%.0f,"
      "\"executed_events\":%zu,\"events_per_sec\":%.0f,"
      "\"scheduler_events_per_sec\":%.0f,\"ceiling_ratio\":%.2f,"
      "\"load_skew\":%.3f",
      cfg.sites, cfg.clients_per_site, cfg.sites * cfg.clients_per_site,
      cfg.objects, cfg.seconds,
      static_cast<unsigned long long>(peak.emitted), wall,
      emitted_per_sec, peak.events, events_per_sec, ceiling, ratio, skew);
  std::fprintf(f, ",\"passes\":%d,\"ceiling_samples\":[", kPasses);
  for (int p = 0; p < kPasses; ++p) {
    std::fprintf(f, "%s%.0f", p == 0 ? "" : ",", ceilings[p]);
  }
  std::fprintf(f, "],\"wall_ms_samples\":[");
  for (int p = 0; p < kPasses; ++p) {
    std::fprintf(f, "%s%.1f", p == 0 ? "" : ",", walls[p]);
  }
  std::fprintf(f, "]");
  std::fprintf(f, ",\"per_site_offered\":[");
  for (std::size_t i = 0; i < peak.per_site.size(); ++i) {
    std::fprintf(f, "%s%llu", i == 0 ? "" : ",",
                 static_cast<unsigned long long>(peak.per_site[i]));
  }
  std::fprintf(f, "]");
  std::fprintf(f,
               ",\"flash_demo\":{\"diurnal\":%.2f,\"multiplier\":%.1f,"
               "\"base_req_per_sec\":%.0f,\"flash_req_per_sec\":%.0f,"
               "\"observed_multiplier\":%.2f}",
               shaped.diurnal, flash.multiplier, base_rate, flash_rate,
               observed_mult);
  std::fprintf(f, "}");
  std::fprintf(f, ",\"runs\":[%s]}\n", report.c_str());
  std::fclose(f);
  std::printf("\nwrote %s (1 run)\n", json_path.c_str());
  return 0;
}
