// Intra-trial parallelism: wall-clock scaling of ONE large simulation on the
// partitioned conservative engine (sim/parallel_world.h).
//
// The workload is a single DQVL trial big enough that partition queues
// dominate round overhead: 64 edge servers, 32 application clients, multiple
// volumes, jitter and loss on.  The trial runs once on the classic serial
// engine (the reference semantics) and then on the partitioned engine at
// --world-threads 1, 2, 4, and 8.  Speedups are reported against the
// partitioned engine's own single-thread time (same schedule, so the ratio
// isolates the worker pool) plus the serial engine's time for context.
//
// Byte-identity is a HARD CHECK, not a spot check: every thread count must
// render the identical dq.report.v1 document, or the bench fails.  On a
// single-hardware-thread host the timing table is recorded anyway with a
// warning; regenerate BENCH_parallel_world.json on a multi-core machine.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/parallel_world.h"

using namespace dq;
using namespace dq::bench;

namespace {

double wall_ms() {
  // dqlint:allow(det-wall-clock): this bench measures real elapsed time by
  // design; the dq.report.v1 documents it emits stay seed-deterministic.
  using clk = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clk::now().time_since_epoch())
      .count();
}

workload::ExperimentParams big_trial() {
  workload::ExperimentParams p;
  p.protocol = "dqvl";
  p.topo.num_servers = 64;
  p.topo.num_clients = 32;
  p.topo.jitter = 0.1;
  p.iqs = workload::QuorumSpec::majority(5);
  p.num_volumes = 8;
  p.write_ratio = 0.2;
  p.locality = 0.9;
  p.requests_per_client = 400;
  p.loss = 0.01;
  p.seed = 7;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_parallel_world.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) json_path = a.substr(7);
  }
  const auto hw = static_cast<unsigned>(run::resolve_jobs(0));

  header("Parallel world",
         "one 64-server DQVL trial on the partitioned engine");

  const workload::ExperimentParams base = big_trial();
  const sim::par::PartitionPlan plan = sim::par::make_partition_plan(
      sim::Topology(base.topo), sim::par::default_partition_count(
                                    sim::Topology(base.topo)));
  std::printf("partitions: %zu   lookahead: %.1f ms   nodes: %zu\n\n",
              plan.count, sim::to_ms(plan.lookahead), plan.of_node.size());

  // Reference: the classic serial engine (different schedule, exact
  // injector-capable semantics) -- context for what opting in costs/buys.
  double t0 = wall_ms();
  const auto serial_result = workload::run_experiment(base);
  const double serial_ms = wall_ms() - t0;
  row({"serial engine", "ms", fmt(serial_ms, 1)}, 18);

  struct Point {
    std::size_t threads;
    double ms;
  };
  std::vector<Point> points;
  std::string report_at1;
  workload::ExperimentParams at1_params;
  bool identical = true;
  row({"partitioned", "threads", "ms", "speedup vs wt=1"}, 18);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    workload::ExperimentParams p = base;
    p.world_threads = threads;
    t0 = wall_ms();
    const auto result = workload::run_experiment(p);
    const double ms = wall_ms() - t0;
    points.push_back({threads, ms});
    const std::string doc = workload::report::to_json(p, result);
    if (threads == 1) {
      report_at1 = doc;
      at1_params = p;
    } else if (doc != report_at1) {
      // Thread count must be unobservable in the report; a mismatch means
      // the engine leaked scheduling into the simulation.
      std::fprintf(stderr,
                   "FAIL: dq.report.v1 differs between --world-threads 1 "
                   "and %zu\n",
                   threads);
      identical = false;
    }
    row({"", std::to_string(threads), fmt(ms, 1),
         fmt(points.front().ms / ms, 2) + "x"},
        18);
  }
  if (!identical) return 1;
  std::printf("\nbyte-identity: PASS (dq.report.v1 identical at "
              "--world-threads 1/2/4/8)\n");
  std::printf("hardware threads: %u\n", hw);
  const bool single_core = hw == 1;
  if (single_core) {
    std::fprintf(stderr,
                 "warning: this host has a single hardware thread; the "
                 "scaling table cannot show parallel speedup -- regenerate "
                 "%s on a multi-core machine\n",
                 json_path.c_str());
  }

  const HostInfo host = host_info();
  const bool comparable = baseline_comparable(json_path, host);
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return 0;
  }
  std::fprintf(f, "{\"schema\":\"dq.bench.v1\",\"bench\":\"parallel_world\"");
  std::fprintf(f, ",\"host\":%s", host_json(host, comparable).c_str());
  std::fprintf(f,
               ",\"parallel_world\":{\"servers\":%zu,\"clients\":%zu,"
               "\"volumes\":%zu,\"partitions\":%zu,\"lookahead_ms\":%.1f,"
               "\"serial_engine_ms\":%.1f,\"hardware_threads\":%u,"
               "\"byte_identical\":true",
               base.topo.num_servers, base.topo.num_clients, base.num_volumes,
               plan.count, sim::to_ms(plan.lookahead), serial_ms, hw);
  std::fprintf(f, ",\"scaling\":[");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "%s{\"world_threads\":%zu,\"ms\":%.1f,\"speedup\":%.2f}",
                 i == 0 ? "" : ",", points[i].threads, points[i].ms,
                 points.front().ms / points[i].ms);
  }
  std::fprintf(f, "]");
  if (single_core) {
    std::fprintf(f,
                 ",\"warning\":\"single hardware thread: speedups are not "
                 "meaningful; regenerate on a multi-core machine\"");
  }
  std::fprintf(f, "}");
  // One run document: the partitioned engine's report (identical at every
  // thread count, as checked above).  The serial engine's differing
  // schedule is intentionally NOT recorded as a run -- it would read as two
  // conflicting results for one parameter set.
  std::fprintf(f, ",\"runs\":[%s]}\n", report_at1.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  (void)serial_result;
  return 0;
}
