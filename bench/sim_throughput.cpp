// Simulator throughput: how fast the substrate itself runs.
//
// Two measurements, both recorded in a dq.bench.v1 envelope
// (BENCH_sim_throughput.json, checked in as the reference baseline):
//
//   * scheduler events/sec -- raw schedule+fire throughput of the slab-pool
//     event core (plus a cancel-heavy variant exercising lazy heap
//     deletion), the number the ISSUE's >=2x acceptance bar is measured on;
//   * trial-suite wall-clock -- a fixed 8-trial suite run serially and
//     again through the parallel runner at --jobs N, with the speedup.
//
// Timing a simulator takes a wall clock, so unlike every other bench this
// one's numbers vary run to run; the dq.report.v1 documents it records (the
// serial suite's reports) stay byte-identical at any --jobs.
#include <chrono>
#include <cstdint>

#include "bench_util.h"
#include "sim/scheduler.h"

using namespace dq;
using namespace dq::bench;

namespace {

double wall_ms() {
  using clk = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clk::now().time_since_epoch())
      .count();
}

// Events/sec through schedule_at + run_all in the steady state -- one
// scheduler reused across batches, the regime a real trial runs in (a World
// pushes millions of events through a single scheduler, so construction
// cost amortizes to nothing and the slab pool recycles hot slots).
// Measured over ~0.3 s.
double scheduler_events_per_sec(bool cancel_half) {
  constexpr int kBatch = 1000;
  sim::Scheduler s;
  int sink = 0;
  std::vector<sim::TimerToken> tokens;
  tokens.reserve(kBatch / 2);
  std::uint64_t fired = 0;
  const double t0 = wall_ms();
  double t1 = t0;
  while (t1 - t0 < 300.0) {
    tokens.clear();
    for (int i = 0; i < kBatch; ++i) {
      auto tok = s.schedule_at(s.now() + i, [&sink] { ++sink; });
      if (cancel_half && i % 2 == 0) tokens.push_back(tok);
    }
    for (auto& tok : tokens) tok.cancel();
    s.run_all();
    fired += kBatch;  // cancelled events count: cancel+skip is the work
    t1 = wall_ms();
  }
  return fired / ((t1 - t0) / 1000.0);
}

std::vector<workload::ExperimentParams> suite() {
  std::vector<workload::ExperimentParams> trials;
  for (auto proto :
       {workload::Protocol::kDqvl, workload::Protocol::kMajority}) {
    for (std::uint64_t seed : {7u, 11u, 23u, 42u}) {
      workload::ExperimentParams p;
      p.protocol = proto;
      p.write_ratio = 0.2;
      p.locality = 0.9;
      p.requests_per_client = 150;
      p.seed = seed;
      trials.push_back(p);
    }
  }
  return trials;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) json_path = a.substr(7);
  }
  const std::size_t jobs = jobs_from_argv(argc, argv);
  const auto hw = static_cast<unsigned>(run::resolve_jobs(0));

  header("Throughput", "event-core and trial-suite performance");

  const double sched = scheduler_events_per_sec(/*cancel_half=*/false);
  const double sched_cancel = scheduler_events_per_sec(/*cancel_half=*/true);
  row({"scheduler", "events/sec", fmt_sci(sched)}, 16);
  row({"  50% cancelled", "events/sec", fmt_sci(sched_cancel)}, 16);

  const auto trials = suite();
  double t0 = wall_ms();
  const auto serial = run::run_experiments(trials, 1);
  const double serial_ms = wall_ms() - t0;
  t0 = wall_ms();
  const auto fanned = run::run_experiments(trials, jobs);
  const double jobs_ms = wall_ms() - t0;

  row({"suite (8 trials)", "serial ms", fmt(serial_ms, 1)}, 16);
  row({"  --jobs=" + std::to_string(jobs), "ms", fmt(jobs_ms, 1),
       "speedup " + fmt(serial_ms / jobs_ms, 2) + "x"},
      16);
  std::printf("hardware threads: %u\n", hw);

  // Determinism spot-check rides along: the fanned-out suite must reproduce
  // the serial reports byte for byte.
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (workload::report::to_json(trials[i], serial[i]) !=
        workload::report::to_json(trials[i], fanned[i])) {
      std::fprintf(stderr, "FAIL: trial %zu differs at --jobs=%zu\n", i,
                   jobs);
      return 1;
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return 0;
  }
  std::fprintf(f, "{\"schema\":\"dq.bench.v1\",\"bench\":\"sim_throughput\"");
  std::fprintf(f,
               ",\"throughput\":{\"scheduler_events_per_sec\":%.0f,"
               "\"scheduler_events_per_sec_cancel_heavy\":%.0f,"
               "\"suite_trials\":%zu,\"suite_serial_ms\":%.1f,"
               "\"suite_jobs\":%zu,\"suite_jobs_ms\":%.1f,"
               "\"suite_speedup\":%.2f,\"hardware_threads\":%u}",
               sched, sched_cancel, trials.size(), serial_ms, jobs, jobs_ms,
               serial_ms / jobs_ms, hw);
  std::fprintf(f, ",\"runs\":[");
  for (std::size_t i = 0; i < trials.size(); ++i) {
    std::fprintf(f, "%s%s", i == 0 ? "" : ",",
                 workload::report::to_json(trials[i], serial[i]).c_str());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu runs)\n", json_path.c_str(), trials.size());
  return 0;
}
