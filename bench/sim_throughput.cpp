// Simulator throughput: how fast the substrate itself runs.
//
// Two measurements, both recorded in a dq.bench.v1 envelope
// (BENCH_sim_throughput.json, checked in as the reference baseline):
//
//   * scheduler events/sec -- raw schedule+fire throughput of the slab-pool
//     event core (plus a cancel-heavy variant exercising lazy heap
//     deletion), the number the ISSUE's >=2x acceptance bar is measured on;
//   * trial-suite scaling -- a fixed 8-trial suite run through the parallel
//     runner at every jobs in {1, 2, 4, 8}, with per-point speedups (on a
//     single-hardware-thread host the table is recorded anyway, with a
//     warning: regenerate on a multi-core machine).
//
// Timing a simulator takes a wall clock, so unlike every other bench this
// one's numbers vary run to run; the dq.report.v1 documents it records (the
// serial suite's reports) stay byte-identical at any --jobs.
#include <chrono>
#include <cstdint>

#include "bench_util.h"
#include "sim/scheduler.h"

using namespace dq;
using namespace dq::bench;

namespace {

double wall_ms() {
  // dqlint:allow(det-wall-clock): this bench measures real elapsed time by
  // design; the dq.report.v1 documents it emits stay seed-deterministic.
  using clk = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clk::now().time_since_epoch())
      .count();
}

// Events/sec through schedule_at + run_all in the steady state -- one
// scheduler reused across batches, the regime a real trial runs in (a World
// pushes millions of events through a single scheduler, so construction
// cost amortizes to nothing and the slab pool recycles hot slots).
// Measured over ~0.3 s.
double scheduler_events_per_sec(bool cancel_half) {
  constexpr int kBatch = 1000;
  sim::Scheduler s;
  int sink = 0;
  std::vector<sim::TimerToken> tokens;
  tokens.reserve(kBatch / 2);
  std::uint64_t fired = 0;
  const double t0 = wall_ms();
  double t1 = t0;
  while (t1 - t0 < 300.0) {
    tokens.clear();
    for (int i = 0; i < kBatch; ++i) {
      auto tok = s.schedule_at(s.now() + i, [&sink] { ++sink; });
      if (cancel_half && i % 2 == 0) tokens.push_back(tok);
    }
    for (auto& tok : tokens) tok.cancel();
    s.run_all();
    fired += kBatch;  // cancelled events count: cancel+skip is the work
    t1 = wall_ms();
  }
  return fired / ((t1 - t0) / 1000.0);
}

std::vector<workload::ExperimentParams> suite() {
  std::vector<workload::ExperimentParams> trials;
  for (auto proto :
       {"dqvl", "majority"}) {
    for (std::uint64_t seed : {7u, 11u, 23u, 42u}) {
      workload::ExperimentParams p;
      p.protocol = proto;
      p.write_ratio = 0.2;
      p.locality = 0.9;
      p.requests_per_client = 150;
      p.seed = seed;
      trials.push_back(p);
    }
  }
  return trials;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) json_path = a.substr(7);
  }
  const auto hw = static_cast<unsigned>(run::resolve_jobs(0));

  header("Throughput", "event-core and trial-suite performance");

  const double sched = scheduler_events_per_sec(/*cancel_half=*/false);
  const double sched_cancel = scheduler_events_per_sec(/*cancel_half=*/true);
  row({"scheduler", "events/sec", fmt_sci(sched)}, 16);
  row({"  50% cancelled", "events/sec", fmt_sci(sched_cancel)}, 16);

  // Trial-suite scaling table: the same fixed suite at every jobs value (the
  // thread count is passed through raw, deliberately bypassing the --jobs
  // hardware clamp, so the table measures the machine as configured).
  const auto trials = suite();
  struct ScalePoint {
    std::size_t jobs;
    double ms;
    double speedup;
  };
  std::vector<ScalePoint> scale;
  std::vector<workload::ExperimentResult> serial;
  double serial_ms = 0.0;
  row({"suite (8 trials)", "jobs", "ms", "speedup"}, 16);
  for (const std::size_t j : {1u, 2u, 4u, 8u}) {
    const double t0 = wall_ms();
    auto rs = run::run_experiments(trials, j);
    const double ms = wall_ms() - t0;
    if (j == 1) {
      serial = std::move(rs);
      serial_ms = ms;
    } else {
      // Determinism check rides along: every fanned-out suite must
      // reproduce the jobs=1 reports byte for byte.
      for (std::size_t i = 0; i < trials.size(); ++i) {
        if (workload::report::to_json(trials[i], serial[i]) !=
            workload::report::to_json(trials[i], rs[i])) {
          std::fprintf(stderr, "FAIL: trial %zu differs at --jobs=%zu\n", i,
                       j);
          return 1;
        }
      }
    }
    scale.push_back({j, ms, serial_ms / ms});
    row({"", std::to_string(j), fmt(ms, 1), fmt(serial_ms / ms, 2) + "x"},
        16);
  }
  std::printf("hardware threads: %u\n", hw);
  const bool single_core = hw == 1;
  if (single_core) {
    std::fprintf(stderr,
                 "warning: this host has a single hardware thread; the "
                 "scaling table cannot show parallel speedup -- regenerate "
                 "%s on a multi-core machine\n",
                 json_path.c_str());
  }

  const HostInfo host = host_info();
  const bool comparable = baseline_comparable(json_path, host);
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return 0;
  }
  std::fprintf(f, "{\"schema\":\"dq.bench.v1\",\"bench\":\"sim_throughput\"");
  std::fprintf(f, ",\"host\":%s", host_json(host, comparable).c_str());
  std::fprintf(f,
               ",\"throughput\":{\"scheduler_events_per_sec\":%.0f,"
               "\"scheduler_events_per_sec_cancel_heavy\":%.0f,"
               "\"suite_trials\":%zu,\"suite_serial_ms\":%.1f,"
               "\"hardware_threads\":%u",
               sched, sched_cancel, trials.size(), serial_ms, hw);
  std::fprintf(f, ",\"suite_scaling\":[");
  for (std::size_t i = 0; i < scale.size(); ++i) {
    std::fprintf(f, "%s{\"jobs\":%zu,\"ms\":%.1f,\"speedup\":%.2f}",
                 i == 0 ? "" : ",", scale[i].jobs, scale[i].ms,
                 scale[i].speedup);
  }
  std::fprintf(f, "]");
  if (single_core) {
    std::fprintf(f,
                 ",\"warning\":\"single hardware thread: speedups are not "
                 "meaningful; regenerate on a multi-core machine\"");
  }
  std::fprintf(f, "}");
  std::fprintf(f, ",\"runs\":[");
  for (std::size_t i = 0; i < trials.size(); ++i) {
    std::fprintf(f, "%s%s", i == 0 ? "" : ",",
                 workload::report::to_json(trials[i], serial[i]).c_str());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu runs)\n", json_path.c_str(), trials.size());
  return 0;
}
