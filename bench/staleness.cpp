// Staleness as a first-class metric: age-of-information of reads, per
// protocol, under one contended lossy workload (docs/PROTOCOL.md §§7-8).
//
// Every trial shares the paper's edge topology plus 2% message loss and
// delay jitter, all clients hammering a handful of shared objects, with
// --staleness post-hoc scoring enabled: a read is stale when some write
// with a higher version committed before the read was invoked, and its
// age is how long the returned version had already been superseded when
// the read began.
//
// The table is the figure: strongly consistent protocols (DQVL with
// volume leases, Hermes invalidation, majority quorums) must sit at zero
// stale reads, while the eventual protocols (Dynamo sloppy quorums,
// ROWA-Async anti-entropy) trade staleness for latency.  The bench
// self-checks the half of that claim the paper stakes out: DQVL must
// report zero regular-semantics violations AND zero stale reads, or the
// bench exits nonzero before the numbers reach EXPERIMENTS.md.
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

namespace {

workload::ExperimentParams staleness_params(const std::string& proto) {
  workload::ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = 0.2;
  p.locality = 0.9;
  p.requests_per_client = 200;
  // Contended: every client touches the same 4 objects.
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(4)); };
  p.loss = 0.02;
  p.topo.jitter = 0.1;
  p.staleness = true;
  p.seed = 29;
  return p;
}

double hist_mean(const workload::ExperimentResult& r, const char* name) {
  const obs::HistogramData* h = r.metrics.histogram(name);
  return h == nullptr ? 0.0 : h->mean();
}

double hist_max(const workload::ExperimentResult& r, const char* name) {
  const obs::HistogramData* h = r.metrics.histogram(name);
  return h == nullptr ? 0.0 : h->max;
}

}  // namespace

int main(int argc, char** argv) {
  Reporter rep("staleness", argc, argv);
  header("Staleness", "read age-of-information per protocol, shared objects, "
                      "2% loss");
  row({"protocol", "reads", "stale", "stale%", "age.mean(ms)", "age.max(ms)",
       "read(ms)"});

  const char* protos[] = {"dqvl", "hermes", "majority", "dynamo", "rowa-async"};
  std::vector<workload::ExperimentParams> trials;
  for (const char* proto : protos) trials.push_back(staleness_params(proto));
  const auto results = rep.run_batch(trials);

  bool ok = true;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& r = results[i];
    const std::uint64_t reads = r.metrics.counter("staleness.reads");
    const std::uint64_t stale = r.metrics.counter("staleness.stale_reads");
    const double pct = reads == 0 ? 0.0 : 100.0 * double(stale) / double(reads);
    row({workload::protocol_name(trials[i].protocol), std::to_string(reads),
         std::to_string(stale), fmt(pct, 1),
         fmt(hist_mean(r, "staleness.read_age_ms")),
         fmt(hist_max(r, "staleness.read_age_ms")), fmt(r.read_ms.mean())});

    if (trials[i].protocol == "dqvl") {
      if (!r.violations.empty()) {
        std::fprintf(stderr, "FAIL: DQVL reported %zu regular-semantics "
                             "violations\n", r.violations.size());
        ok = false;
      }
      if (stale != 0) {
        std::fprintf(stderr, "FAIL: DQVL served %llu stale reads\n",
                     static_cast<unsigned long long>(stale));
        ok = false;
      }
    }
  }

  std::printf("\nDQVL control: %s (zero violations, zero stale reads)\n",
              ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
