// WAL sync-policy overhead on the DQVL write path (docs/PROTOCOL.md §6).
//
// Same workload per cell; the only knob is the durability policy:
//   off    -- no WAL (the legacy durable-fiction model; the floor)
//   sync   -- fsync every write (pipelined), 2 ms medium latency
//   group  -- group commit, 10 ms flush interval
//   async  -- ack without waiting for the medium (unsafe under crashes;
//             the negative control: durability-free latency WITH the log)
//
// The bench self-checks the orderings that make the model meaningful:
// sync-every-write syncs once per append while group commit batches
// (fewer syncs than appends), and a record's commit latency -- append to
// medium-durable, wal.commit_ms -- is lowest under sync-every-write (the
// 2 ms sync latency) and roughly the flush interval under both batching
// policies (group commit, and async's background flush).  Async's edge is
// not commit latency but that acks never wait for it.  A policy change
// that silently broke the cost model would fail here before it skewed a
// paper figure.
#include <optional>

#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

namespace {

workload::ExperimentParams wal_params(std::optional<store::SyncPolicy> policy) {
  workload::ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 0.3;
  p.locality = 0.85;
  p.requests_per_client = 250;
  p.seed = 17;
  if (policy.has_value()) {
    store::WalParams w;
    w.policy = *policy;
    w.sync_latency = sim::milliseconds(2);
    w.flush_interval = sim::milliseconds(10);
    p.wal = w;
  }
  return p;
}

double commit_ms(const workload::ExperimentResult& r) {
  const obs::HistogramData* h = r.metrics.histogram("wal.commit_ms");
  return h == nullptr ? 0.0 : h->mean();
}

}  // namespace

int main(int argc, char** argv) {
  Reporter rep("wal_overhead", argc, argv);
  header("Durability", "WAL sync-policy overhead on the DQVL write path");
  row({"policy", "write(ms)", "read(ms)", "appends", "syncs", "commit(ms)"});

  const std::optional<store::SyncPolicy> policies[] = {
      std::nullopt,
      store::SyncPolicy::kSyncEveryWrite,
      store::SyncPolicy::kGroupCommit,
      store::SyncPolicy::kAsync,
  };
  std::vector<workload::ExperimentParams> trials;
  for (const auto& pol : policies) trials.push_back(wal_params(pol));
  const auto results = rep.run_batch(trials);

  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& r = results[i];
    const char* name = trials[i].wal.has_value()
                           ? store::to_string(trials[i].wal->policy)
                           : "off";
    if (!r.violations.empty()) {
      std::fprintf(stderr, "FAIL: %zu violations under policy %s\n",
                   r.violations.size(), name);
      return 1;
    }
    row({name, fmt(r.write_ms.mean()), fmt(r.read_ms.mean()),
         std::to_string(r.metrics.counter("wal.appends")),
         std::to_string(r.metrics.counter("wal.syncs")), fmt(commit_ms(r), 3)});
  }

  const auto& r_sync = results[1];
  const auto& r_group = results[2];
  const auto& r_async = results[3];
  bool ok = true;
  if (r_sync.metrics.counter("wal.syncs") !=
      r_sync.metrics.counter("wal.appends")) {
    std::fprintf(stderr, "FAIL: sync-every-write did not sync per append\n");
    ok = false;
  }
  if (r_group.metrics.counter("wal.syncs") >=
      r_group.metrics.counter("wal.appends")) {
    std::fprintf(stderr, "FAIL: group commit did not batch\n");
    ok = false;
  }
  if (r_sync.metrics.counter("wal.syncs") <
      r_group.metrics.counter("wal.syncs")) {
    std::fprintf(stderr, "FAIL: sync-every-write issued fewer syncs than "
                         "group commit\n");
    ok = false;
  }
  if (!(commit_ms(r_sync) < commit_ms(r_group) &&
        commit_ms(r_sync) < commit_ms(r_async))) {
    std::fprintf(stderr, "FAIL: per-record commit latency is not lowest "
                         "under sync-every-write\n");
    ok = false;
  }
  std::printf("\nordering checks: %s (sync: one sync per append, lowest "
              "commit latency; group/async: batched)\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
