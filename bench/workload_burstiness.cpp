// Workload burstiness sweep: the paper's target workload property (b) made
// quantitative.
//
// DQVL is "designed for workloads whose reads (or writes) arrive in bursts":
// the first read of a burst re-validates the OQS cache and the rest are
// hits; the first write of a burst invalidates it and the rest are
// suppressed.  This bench sweeps the burst parameter at a fixed 30% write
// fraction: DQVL's response time and message cost fall sharply with
// burstiness while the majority quorum (which has no cache to warm) is
// flat.
#include "bench_util.h"

using namespace dq;
using namespace dq::bench;

namespace {

workload::ExperimentParams bursty_params(std::string proto,
                                         double burstiness) {
  workload::ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = 0.3;
  p.burstiness = burstiness;
  p.requests_per_client = 400;
  p.seed = 63;
  p.choose_object = [](Rng&) { return ObjectId(5); };
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  header("Workload study",
         "response time and overhead vs burstiness (30% writes, one object)");
  row({"burst", "DQVL(ms)", "DQVL msg/req", "majority(ms)", "maj msg/req"},
      14);
  const std::vector<double> bursts{0.0, 0.3, 0.6, 0.8, 0.9, 0.95};
  std::vector<workload::ExperimentParams> trials;
  for (double b : bursts) {
    trials.push_back(bursty_params("dqvl", b));
    trials.push_back(bursty_params("majority", b));
  }
  const auto results =
      run::run_experiments(trials, jobs_from_argv(argc, argv));
  double dqvl_iid = 0, dqvl_bursty = 0;
  for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
    const double b = bursts[bi];
    const auto& dq = results[bi * 2];
    const auto& mj = results[bi * 2 + 1];
    row({fmt(b, 2), fmt(dq.all_ms.mean(), 1),
         fmt(dq.messages_per_request, 1), fmt(mj.all_ms.mean(), 1),
         fmt(mj.messages_per_request, 1)},
        14);
    if (b == 0.0) dqvl_iid = dq.all_ms.mean();
    if (b == 0.95) dqvl_bursty = dq.all_ms.mean();
  }
  std::printf("\npaper (section 1): dual-quorum replication targets objects "
              "whose accesses\n\"tend to exhibit bursts of read-dominated or "
              "write-dominated behavior\"\nmeasured: burstiness 0 -> 0.95 "
              "improves DQVL by %.1fx; majority is flat\n",
              dqvl_iid / dqvl_bursty);
  return 0;
}
