file(REMOVE_RECURSE
  "CMakeFiles/ablation_atomic.dir/ablation_atomic.cpp.o"
  "CMakeFiles/ablation_atomic.dir/ablation_atomic.cpp.o.d"
  "ablation_atomic"
  "ablation_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
