# Empty dependencies file for ablation_atomic.
# This may be replaced when dependencies are built.
