file(REMOVE_RECURSE
  "CMakeFiles/ablation_grid_iqs.dir/ablation_grid_iqs.cpp.o"
  "CMakeFiles/ablation_grid_iqs.dir/ablation_grid_iqs.cpp.o.d"
  "ablation_grid_iqs"
  "ablation_grid_iqs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grid_iqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
