# Empty dependencies file for ablation_grid_iqs.
# This may be replaced when dependencies are built.
