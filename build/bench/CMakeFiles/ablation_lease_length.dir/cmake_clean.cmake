file(REMOVE_RECURSE
  "CMakeFiles/ablation_lease_length.dir/ablation_lease_length.cpp.o"
  "CMakeFiles/ablation_lease_length.dir/ablation_lease_length.cpp.o.d"
  "ablation_lease_length"
  "ablation_lease_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lease_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
