# Empty compiler generated dependencies file for ablation_lease_length.
# This may be replaced when dependencies are built.
