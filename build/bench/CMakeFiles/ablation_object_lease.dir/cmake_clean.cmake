file(REMOVE_RECURSE
  "CMakeFiles/ablation_object_lease.dir/ablation_object_lease.cpp.o"
  "CMakeFiles/ablation_object_lease.dir/ablation_object_lease.cpp.o.d"
  "ablation_object_lease"
  "ablation_object_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_object_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
