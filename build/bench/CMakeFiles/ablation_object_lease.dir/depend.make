# Empty dependencies file for ablation_object_lease.
# This may be replaced when dependencies are built.
