file(REMOVE_RECURSE
  "CMakeFiles/ablation_orq_size.dir/ablation_orq_size.cpp.o"
  "CMakeFiles/ablation_orq_size.dir/ablation_orq_size.cpp.o.d"
  "ablation_orq_size"
  "ablation_orq_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_orq_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
