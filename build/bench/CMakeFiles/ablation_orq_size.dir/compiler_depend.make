# Empty compiler generated dependencies file for ablation_orq_size.
# This may be replaced when dependencies are built.
