file(REMOVE_RECURSE
  "CMakeFiles/ablation_renewal_batching.dir/ablation_renewal_batching.cpp.o"
  "CMakeFiles/ablation_renewal_batching.dir/ablation_renewal_batching.cpp.o.d"
  "ablation_renewal_batching"
  "ablation_renewal_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_renewal_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
