# Empty dependencies file for ablation_renewal_batching.
# This may be replaced when dependencies are built.
