file(REMOVE_RECURSE
  "CMakeFiles/fig6a_response_time_5pct.dir/fig6a_response_time_5pct.cpp.o"
  "CMakeFiles/fig6a_response_time_5pct.dir/fig6a_response_time_5pct.cpp.o.d"
  "fig6a_response_time_5pct"
  "fig6a_response_time_5pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_response_time_5pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
