# Empty compiler generated dependencies file for fig6a_response_time_5pct.
# This may be replaced when dependencies are built.
