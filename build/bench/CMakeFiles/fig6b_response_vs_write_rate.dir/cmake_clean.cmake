file(REMOVE_RECURSE
  "CMakeFiles/fig6b_response_vs_write_rate.dir/fig6b_response_vs_write_rate.cpp.o"
  "CMakeFiles/fig6b_response_vs_write_rate.dir/fig6b_response_vs_write_rate.cpp.o.d"
  "fig6b_response_vs_write_rate"
  "fig6b_response_vs_write_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_response_vs_write_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
