# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6b_response_vs_write_rate.
