# Empty dependencies file for fig6b_response_vs_write_rate.
# This may be replaced when dependencies are built.
