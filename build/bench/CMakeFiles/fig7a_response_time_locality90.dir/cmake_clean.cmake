file(REMOVE_RECURSE
  "CMakeFiles/fig7a_response_time_locality90.dir/fig7a_response_time_locality90.cpp.o"
  "CMakeFiles/fig7a_response_time_locality90.dir/fig7a_response_time_locality90.cpp.o.d"
  "fig7a_response_time_locality90"
  "fig7a_response_time_locality90.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_response_time_locality90.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
