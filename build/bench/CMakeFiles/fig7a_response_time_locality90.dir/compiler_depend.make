# Empty compiler generated dependencies file for fig7a_response_time_locality90.
# This may be replaced when dependencies are built.
