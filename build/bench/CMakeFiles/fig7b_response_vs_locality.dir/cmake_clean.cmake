file(REMOVE_RECURSE
  "CMakeFiles/fig7b_response_vs_locality.dir/fig7b_response_vs_locality.cpp.o"
  "CMakeFiles/fig7b_response_vs_locality.dir/fig7b_response_vs_locality.cpp.o.d"
  "fig7b_response_vs_locality"
  "fig7b_response_vs_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_response_vs_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
