# Empty dependencies file for fig7b_response_vs_locality.
# This may be replaced when dependencies are built.
