file(REMOVE_RECURSE
  "CMakeFiles/fig8a_unavail_vs_write_rate.dir/fig8a_unavail_vs_write_rate.cpp.o"
  "CMakeFiles/fig8a_unavail_vs_write_rate.dir/fig8a_unavail_vs_write_rate.cpp.o.d"
  "fig8a_unavail_vs_write_rate"
  "fig8a_unavail_vs_write_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_unavail_vs_write_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
