# Empty compiler generated dependencies file for fig8a_unavail_vs_write_rate.
# This may be replaced when dependencies are built.
