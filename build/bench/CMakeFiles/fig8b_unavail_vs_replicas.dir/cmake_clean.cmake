file(REMOVE_RECURSE
  "CMakeFiles/fig8b_unavail_vs_replicas.dir/fig8b_unavail_vs_replicas.cpp.o"
  "CMakeFiles/fig8b_unavail_vs_replicas.dir/fig8b_unavail_vs_replicas.cpp.o.d"
  "fig8b_unavail_vs_replicas"
  "fig8b_unavail_vs_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_unavail_vs_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
