# Empty compiler generated dependencies file for fig8b_unavail_vs_replicas.
# This may be replaced when dependencies are built.
