file(REMOVE_RECURSE
  "CMakeFiles/fig9a_overhead_vs_write_rate.dir/fig9a_overhead_vs_write_rate.cpp.o"
  "CMakeFiles/fig9a_overhead_vs_write_rate.dir/fig9a_overhead_vs_write_rate.cpp.o.d"
  "fig9a_overhead_vs_write_rate"
  "fig9a_overhead_vs_write_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_overhead_vs_write_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
