# Empty dependencies file for fig9a_overhead_vs_write_rate.
# This may be replaced when dependencies are built.
