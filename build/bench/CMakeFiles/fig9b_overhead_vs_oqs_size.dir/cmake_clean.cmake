file(REMOVE_RECURSE
  "CMakeFiles/fig9b_overhead_vs_oqs_size.dir/fig9b_overhead_vs_oqs_size.cpp.o"
  "CMakeFiles/fig9b_overhead_vs_oqs_size.dir/fig9b_overhead_vs_oqs_size.cpp.o.d"
  "fig9b_overhead_vs_oqs_size"
  "fig9b_overhead_vs_oqs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_overhead_vs_oqs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
