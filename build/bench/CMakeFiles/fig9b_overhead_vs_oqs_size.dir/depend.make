# Empty dependencies file for fig9b_overhead_vs_oqs_size.
# This may be replaced when dependencies are built.
