file(REMOVE_RECURSE
  "CMakeFiles/workload_burstiness.dir/workload_burstiness.cpp.o"
  "CMakeFiles/workload_burstiness.dir/workload_burstiness.cpp.o.d"
  "workload_burstiness"
  "workload_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
