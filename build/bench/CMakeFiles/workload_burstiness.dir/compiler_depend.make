# Empty compiler generated dependencies file for workload_burstiness.
# This may be replaced when dependencies are built.
