file(REMOVE_RECURSE
  "CMakeFiles/edge_profile_service.dir/edge_profile_service.cpp.o"
  "CMakeFiles/edge_profile_service.dir/edge_profile_service.cpp.o.d"
  "edge_profile_service"
  "edge_profile_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_profile_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
