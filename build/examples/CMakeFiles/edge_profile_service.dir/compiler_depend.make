# Empty compiler generated dependencies file for edge_profile_service.
# This may be replaced when dependencies are built.
