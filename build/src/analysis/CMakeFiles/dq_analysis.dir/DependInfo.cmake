
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/availability.cpp" "src/analysis/CMakeFiles/dq_analysis.dir/availability.cpp.o" "gcc" "src/analysis/CMakeFiles/dq_analysis.dir/availability.cpp.o.d"
  "/root/repo/src/analysis/overhead.cpp" "src/analysis/CMakeFiles/dq_analysis.dir/overhead.cpp.o" "gcc" "src/analysis/CMakeFiles/dq_analysis.dir/overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/dq_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
