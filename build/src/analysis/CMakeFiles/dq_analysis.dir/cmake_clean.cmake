file(REMOVE_RECURSE
  "CMakeFiles/dq_analysis.dir/availability.cpp.o"
  "CMakeFiles/dq_analysis.dir/availability.cpp.o.d"
  "CMakeFiles/dq_analysis.dir/overhead.cpp.o"
  "CMakeFiles/dq_analysis.dir/overhead.cpp.o.d"
  "libdq_analysis.a"
  "libdq_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
