file(REMOVE_RECURSE
  "libdq_analysis.a"
)
