# Empty dependencies file for dq_analysis.
# This may be replaced when dependencies are built.
