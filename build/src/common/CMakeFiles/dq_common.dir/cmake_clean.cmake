file(REMOVE_RECURSE
  "CMakeFiles/dq_common.dir/rng.cpp.o"
  "CMakeFiles/dq_common.dir/rng.cpp.o.d"
  "libdq_common.a"
  "libdq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
