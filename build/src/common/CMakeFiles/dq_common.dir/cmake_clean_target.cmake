file(REMOVE_RECURSE
  "libdq_common.a"
)
