# Empty dependencies file for dq_common.
# This may be replaced when dependencies are built.
