
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dq_atomic_client.cpp" "src/core/CMakeFiles/dq_core.dir/dq_atomic_client.cpp.o" "gcc" "src/core/CMakeFiles/dq_core.dir/dq_atomic_client.cpp.o.d"
  "/root/repo/src/core/dq_client.cpp" "src/core/CMakeFiles/dq_core.dir/dq_client.cpp.o" "gcc" "src/core/CMakeFiles/dq_core.dir/dq_client.cpp.o.d"
  "/root/repo/src/core/iqs_server.cpp" "src/core/CMakeFiles/dq_core.dir/iqs_server.cpp.o" "gcc" "src/core/CMakeFiles/dq_core.dir/iqs_server.cpp.o.d"
  "/root/repo/src/core/oqs_server.cpp" "src/core/CMakeFiles/dq_core.dir/oqs_server.cpp.o" "gcc" "src/core/CMakeFiles/dq_core.dir/oqs_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dq_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/dq_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
