file(REMOVE_RECURSE
  "CMakeFiles/dq_core.dir/dq_atomic_client.cpp.o"
  "CMakeFiles/dq_core.dir/dq_atomic_client.cpp.o.d"
  "CMakeFiles/dq_core.dir/dq_client.cpp.o"
  "CMakeFiles/dq_core.dir/dq_client.cpp.o.d"
  "CMakeFiles/dq_core.dir/iqs_server.cpp.o"
  "CMakeFiles/dq_core.dir/iqs_server.cpp.o.d"
  "CMakeFiles/dq_core.dir/oqs_server.cpp.o"
  "CMakeFiles/dq_core.dir/oqs_server.cpp.o.d"
  "libdq_core.a"
  "libdq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
