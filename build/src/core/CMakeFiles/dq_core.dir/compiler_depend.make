# Empty compiler generated dependencies file for dq_core.
# This may be replaced when dependencies are built.
