file(REMOVE_RECURSE
  "CMakeFiles/dq_protocols.dir/majority.cpp.o"
  "CMakeFiles/dq_protocols.dir/majority.cpp.o.d"
  "CMakeFiles/dq_protocols.dir/primary_backup.cpp.o"
  "CMakeFiles/dq_protocols.dir/primary_backup.cpp.o.d"
  "CMakeFiles/dq_protocols.dir/rowa.cpp.o"
  "CMakeFiles/dq_protocols.dir/rowa.cpp.o.d"
  "CMakeFiles/dq_protocols.dir/rowa_async.cpp.o"
  "CMakeFiles/dq_protocols.dir/rowa_async.cpp.o.d"
  "libdq_protocols.a"
  "libdq_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
