file(REMOVE_RECURSE
  "libdq_protocols.a"
)
