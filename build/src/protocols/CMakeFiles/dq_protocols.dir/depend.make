# Empty dependencies file for dq_protocols.
# This may be replaced when dependencies are built.
