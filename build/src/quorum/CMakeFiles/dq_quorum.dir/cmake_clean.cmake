file(REMOVE_RECURSE
  "CMakeFiles/dq_quorum.dir/quorum.cpp.o"
  "CMakeFiles/dq_quorum.dir/quorum.cpp.o.d"
  "libdq_quorum.a"
  "libdq_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
