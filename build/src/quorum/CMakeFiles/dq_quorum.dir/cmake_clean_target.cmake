file(REMOVE_RECURSE
  "libdq_quorum.a"
)
