# Empty dependencies file for dq_quorum.
# This may be replaced when dependencies are built.
