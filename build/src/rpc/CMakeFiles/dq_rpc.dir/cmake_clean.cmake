file(REMOVE_RECURSE
  "CMakeFiles/dq_rpc.dir/qrpc.cpp.o"
  "CMakeFiles/dq_rpc.dir/qrpc.cpp.o.d"
  "libdq_rpc.a"
  "libdq_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
