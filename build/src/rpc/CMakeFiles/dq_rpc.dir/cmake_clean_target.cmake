file(REMOVE_RECURSE
  "libdq_rpc.a"
)
