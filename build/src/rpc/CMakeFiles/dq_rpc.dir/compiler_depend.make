# Empty compiler generated dependencies file for dq_rpc.
# This may be replaced when dependencies are built.
