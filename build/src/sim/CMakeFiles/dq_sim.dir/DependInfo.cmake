
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/wire.cpp" "src/sim/CMakeFiles/dq_sim.dir/__/msg/wire.cpp.o" "gcc" "src/sim/CMakeFiles/dq_sim.dir/__/msg/wire.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/dq_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/dq_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/dq_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/dq_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/dq_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/dq_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/dq_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/dq_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
