file(REMOVE_RECURSE
  "CMakeFiles/dq_sim.dir/__/msg/wire.cpp.o"
  "CMakeFiles/dq_sim.dir/__/msg/wire.cpp.o.d"
  "CMakeFiles/dq_sim.dir/network.cpp.o"
  "CMakeFiles/dq_sim.dir/network.cpp.o.d"
  "CMakeFiles/dq_sim.dir/scheduler.cpp.o"
  "CMakeFiles/dq_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/dq_sim.dir/trace.cpp.o"
  "CMakeFiles/dq_sim.dir/trace.cpp.o.d"
  "CMakeFiles/dq_sim.dir/world.cpp.o"
  "CMakeFiles/dq_sim.dir/world.cpp.o.d"
  "libdq_sim.a"
  "libdq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
