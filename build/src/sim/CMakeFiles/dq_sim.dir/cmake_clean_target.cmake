file(REMOVE_RECURSE
  "libdq_sim.a"
)
