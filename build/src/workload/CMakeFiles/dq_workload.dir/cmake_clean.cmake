file(REMOVE_RECURSE
  "CMakeFiles/dq_workload.dir/app_client.cpp.o"
  "CMakeFiles/dq_workload.dir/app_client.cpp.o.d"
  "CMakeFiles/dq_workload.dir/experiment.cpp.o"
  "CMakeFiles/dq_workload.dir/experiment.cpp.o.d"
  "CMakeFiles/dq_workload.dir/history.cpp.o"
  "CMakeFiles/dq_workload.dir/history.cpp.o.d"
  "libdq_workload.a"
  "libdq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
