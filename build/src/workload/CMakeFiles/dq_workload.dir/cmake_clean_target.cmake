file(REMOVE_RECURSE
  "libdq_workload.a"
)
