# Empty compiler generated dependencies file for dq_workload.
# This may be replaced when dependencies are built.
