# Empty compiler generated dependencies file for dq_test_analysis_test.
# This may be replaced when dependencies are built.
