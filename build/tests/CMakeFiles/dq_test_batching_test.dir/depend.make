# Empty dependencies file for dq_test_batching_test.
# This may be replaced when dependencies are built.
