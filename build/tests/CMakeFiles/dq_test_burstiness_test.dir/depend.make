# Empty dependencies file for dq_test_burstiness_test.
# This may be replaced when dependencies are built.
