# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dq_test_chaos_test.
