# Empty dependencies file for dq_test_chaos_test.
# This may be replaced when dependencies are built.
