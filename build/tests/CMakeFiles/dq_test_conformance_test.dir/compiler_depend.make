# Empty compiler generated dependencies file for dq_test_conformance_test.
# This may be replaced when dependencies are built.
