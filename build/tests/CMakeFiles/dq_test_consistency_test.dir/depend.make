# Empty dependencies file for dq_test_consistency_test.
# This may be replaced when dependencies are built.
