# Empty compiler generated dependencies file for dq_test_dqvl_core_test.
# This may be replaced when dependencies are built.
