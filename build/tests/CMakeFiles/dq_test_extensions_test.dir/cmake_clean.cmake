file(REMOVE_RECURSE
  "CMakeFiles/dq_test_extensions_test.dir/extensions_test.cpp.o"
  "CMakeFiles/dq_test_extensions_test.dir/extensions_test.cpp.o.d"
  "dq_test_extensions_test"
  "dq_test_extensions_test.pdb"
  "dq_test_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dq_test_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
