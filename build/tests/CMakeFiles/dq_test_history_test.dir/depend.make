# Empty dependencies file for dq_test_history_test.
# This may be replaced when dependencies are built.
