# Empty dependencies file for dq_test_iqs_unit_test.
# This may be replaced when dependencies are built.
