# Empty dependencies file for dq_test_latency_model_test.
# This may be replaced when dependencies are built.
