# Empty compiler generated dependencies file for dq_test_mc_availability_test.
# This may be replaced when dependencies are built.
