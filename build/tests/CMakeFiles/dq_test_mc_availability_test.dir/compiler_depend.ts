# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dq_test_mc_availability_test.
