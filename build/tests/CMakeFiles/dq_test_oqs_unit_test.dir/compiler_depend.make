# Empty compiler generated dependencies file for dq_test_oqs_unit_test.
# This may be replaced when dependencies are built.
