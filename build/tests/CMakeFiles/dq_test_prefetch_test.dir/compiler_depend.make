# Empty compiler generated dependencies file for dq_test_prefetch_test.
# This may be replaced when dependencies are built.
