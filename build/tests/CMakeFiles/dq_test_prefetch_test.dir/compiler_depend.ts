# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dq_test_prefetch_test.
