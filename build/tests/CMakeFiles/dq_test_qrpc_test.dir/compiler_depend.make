# Empty compiler generated dependencies file for dq_test_qrpc_test.
# This may be replaced when dependencies are built.
