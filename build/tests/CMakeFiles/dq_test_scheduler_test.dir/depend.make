# Empty dependencies file for dq_test_scheduler_test.
# This may be replaced when dependencies are built.
