# Empty dependencies file for dq_test_smoke_test.
# This may be replaced when dependencies are built.
