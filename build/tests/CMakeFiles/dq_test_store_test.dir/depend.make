# Empty dependencies file for dq_test_store_test.
# This may be replaced when dependencies are built.
