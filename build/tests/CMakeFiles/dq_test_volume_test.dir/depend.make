# Empty dependencies file for dq_test_volume_test.
# This may be replaced when dependencies are built.
