# Empty dependencies file for dq_test_world_test.
# This may be replaced when dependencies are built.
