# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dq_test_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_common_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_world_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_quorum_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_qrpc_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_store_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_dqvl_core_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_history_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_consistency_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_trace_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_iqs_unit_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_oqs_unit_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_workload_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_burstiness_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_volume_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_mc_availability_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_batching_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_prefetch_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_latency_model_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_chaos_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/dq_test_qrpc_property_test[1]_include.cmake")
