file(REMOVE_RECURSE
  "CMakeFiles/dqsim.dir/dqsim.cpp.o"
  "CMakeFiles/dqsim.dir/dqsim.cpp.o.d"
  "dqsim"
  "dqsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
