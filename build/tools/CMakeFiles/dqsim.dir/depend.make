# Empty dependencies file for dqsim.
# This may be replaced when dependencies are built.
