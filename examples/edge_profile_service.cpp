// Edge profile service: the paper's motivating scenario (section 4.1).
//
// A TPC-W-style service replicates per-customer profile objects (name,
// addresses, credit info) on nine edge servers.  Each customer is routed to
// the closest edge server; 95% of accesses read the profile, 5% update the
// shipping address during checkout.  Occasionally a customer is redirected
// to a distant server (redirection miss / travel).
//
// The example runs the same workload over DQVL and the two strong-
// consistency baselines and prints the user-visible latency distribution,
// plus what happened underneath (hits, misses, invalidation traffic).
//
//   $ ./edge_profile_service
#include <cstdio>

#include "workload/experiment.h"

using namespace dq;
using namespace dq::workload;

namespace {

void run_one(std::string proto) {
  ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = 0.05;   // profile updates during checkout
  p.locality = 0.9;       // 10% redirection misses
  p.requests_per_client = 600;
  p.num_volumes = 4;      // profiles sharded across four volumes
  p.seed = 2026;
  // Each customer works on their own profile object most of the time, but
  // occasionally touches a shared object (e.g. a support agent assisting).
  p.choose_object = [](Rng& rng) {
    return rng.chance(0.9) ? ObjectId(rng.below(3))  // own-ish profile
                           : ObjectId(99);           // shared hot object
  };
  const ExperimentResult r = run_experiment(p);

  std::printf("%-16s reads: mean %6.1f ms  p50 %6.1f  p99 %6.1f   "
              "writes: mean %6.1f ms\n",
              protocol_name(proto), r.read_ms.mean(), r.read_ms.percentile(50),
              r.read_ms.percentile(99), r.write_ms.mean());
  std::printf("%-16s consistency violations: %zu, messages/request: %.1f\n",
              "", r.violations.size(), r.messages_per_request);
  if (proto == "dqvl") {
    std::printf("%-16s DQVL internals: %llu renewals, %llu invalidations, "
                "%llu suppressed-write acks\n", "",
                static_cast<unsigned long long>(
                    r.message_table.count("DqObjRenew")
                        ? r.message_table.at("DqObjRenew")
                        : 0),
                static_cast<unsigned long long>(
                    r.message_table.count("DqInval")
                        ? r.message_table.at("DqInval")
                        : 0),
                static_cast<unsigned long long>(
                    r.message_table.count("DqWriteAck")
                        ? r.message_table.at("DqWriteAck")
                        : 0));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== edge profile service: 9 edge servers, 3 customers, "
              "5%% updates, 90%% locality ==\n\n");
  for (std::string proto : {"dqvl", "majority",
                         "pb"}) {
    run_one(proto);
  }
  std::printf("DQVL serves profile reads from the customer's closest edge "
              "server while keeping\nregular semantics; the strong baselines "
              "pay a WAN round trip on every read.\n");
  return 0;
}
