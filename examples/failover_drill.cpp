// Failover drill: watch the volume-lease machinery handle failures live.
//
// Scenario (driven step by step, printing what happens):
//   1. A customer reads their profile at edge server 0 (leases warm up).
//   2. Server 0 is partitioned away.  A write from server 1 must make the
//      old cached copy unreadable -- with server 0 unreachable it completes
//      by WAITING OUT server 0's volume lease (bounded by L), not by
//      blocking indefinitely.
//   3. Server 0 comes back, renews its volume lease, receives the delayed
//      invalidation queued for it, and serves the NEW value.
//   4. For contrast, the same drill runs on the basic (lease-free) dual
//      quorum protocol: the write stays blocked until server 0 returns.
//
//   $ ./failover_drill
#include <cstdio>

#include "protocols/dq_adapter.h"
#include "workload/experiment.h"

using namespace dq;
using namespace dq::workload;

namespace {

struct Drill {
  explicit Drill(std::string proto, sim::Duration lease) {
    ExperimentParams p;
    p.protocol = proto;
    p.lease_length = lease;
    p.requests_per_client = 0;
    dep = std::make_unique<Deployment>(p);
    auto& w = dep->world();
    reader = std::make_unique<protocols::DqServiceClient>(
        w, w.topology().server(0), dep->dq_config());
    writer = std::make_unique<protocols::DqServiceClient>(
        w, w.topology().server(1), dep->dq_config());
    dep->server_node(0).add_handler(
        [this](const sim::Envelope& e) { return reader->on_message(e); });
    dep->server_node(1).add_handler(
        [this](const sim::Envelope& e) { return writer->on_message(e); });
  }

  bool spin(bool& flag, sim::Duration cap) {
    const sim::Time deadline = dep->world().now() + cap;
    while (!flag && dep->world().now() < deadline) {
      dep->world().run_for(sim::milliseconds(10));
    }
    return flag;
  }

  std::unique_ptr<Deployment> dep;
  std::unique_ptr<protocols::DqServiceClient> reader, writer;
};

void run_drill(std::string proto, const char* label) {
  const sim::Duration lease = sim::seconds(3);
  Drill d(proto, lease);
  auto& w = d.dep->world();
  const ObjectId profile(7);

  std::printf("---- %s ----\n", label);

  bool done = false;
  d.writer->write(profile, "addr=12 Main St", [&](bool, LogicalClock) {
    done = true;
  });
  d.spin(done, sim::seconds(30));
  std::printf("[%7.2f s] initial write completed\n", sim::to_seconds(w.now()));

  done = false;
  VersionedValue seen;
  d.reader->read(profile, [&](bool, VersionedValue vv) {
    seen = vv;
    done = true;
  });
  d.spin(done, sim::seconds(30));
  std::printf("[%7.2f s] edge server 0 read '%s' (leases warm)\n",
              sim::to_seconds(w.now()), seen.value.c_str());

  w.set_up(w.topology().server(0), false);
  std::printf("[%7.2f s] *** server 0 partitioned away ***\n",
              sim::to_seconds(w.now()));

  done = false;
  const sim::Time t0 = w.now();
  d.writer->write(profile, "addr=99 New Ave", [&](bool, LogicalClock) {
    done = true;
  });
  if (d.spin(done, sim::seconds(20))) {
    std::printf("[%7.2f s] write completed after %.2f s (lease bound: "
                "%.1f s)\n",
                sim::to_seconds(w.now()), sim::to_seconds(w.now() - t0),
                sim::to_seconds(lease));
  } else {
    std::printf("[%7.2f s] write STILL BLOCKED after 20 s (no lease to "
                "expire)\n",
                sim::to_seconds(w.now()));
  }

  w.set_up(w.topology().server(0), true);
  std::printf("[%7.2f s] *** server 0 back online ***\n",
              sim::to_seconds(w.now()));

  done = false;
  d.reader->read(profile, [&](bool, VersionedValue vv) {
    seen = vv;
    done = true;
  });
  d.spin(done, sim::seconds(60));
  std::printf("[%7.2f s] server 0 re-read: '%s' %s\n\n",
              sim::to_seconds(w.now()), seen.value.c_str(),
              seen.value == "addr=99 New Ave"
                  ? "(fresh -- delayed invalidation applied on renewal)"
                  : "(old value -- still regular: the blocked write never "
                    "completed)");
}

}  // namespace

int main() {
  std::printf("== failover drill: bounded write blocking via volume "
              "leases ==\n\n");
  run_drill("dqvl", "DQVL (3 s volume leases)");
  run_drill("dq-basic", "basic dual quorum (no leases)");
  std::printf("with leases, a write blocked by an unreachable reader "
              "completes within ~L;\nwithout them it waits for the reader "
              "-- the paper's core availability argument.\n");
  return 0;
}
