// Protocol comparison: a compact "evaluation section in one binary".
//
// Runs all five replication protocols across three workload profiles
// (read-heavy edge traffic, mixed, write-heavy) and prints a side-by-side
// summary: latency, message cost, and whether the history stayed regular.
//
//   $ ./protocol_comparison
#include <cstdio>

#include "workload/experiment.h"

using namespace dq;
using namespace dq::workload;

int main() {
  struct Profile {
    const char* name;
    double write_ratio;
    double locality;
  };
  const Profile profiles[] = {
      {"read-heavy edge (5% writes, 100% locality)", 0.05, 1.0},
      {"mixed (30% writes, 90% locality)", 0.30, 0.9},
      {"write-heavy (70% writes, 100% locality)", 0.70, 1.0},
  };

  for (const Profile& prof : profiles) {
    std::printf("== %s ==\n", prof.name);
    std::printf("%-16s %10s %10s %10s %10s %6s\n", "protocol", "read ms",
                "write ms", "overall", "msgs/req", "regular");
    for (std::string proto : paper_protocols()) {
      ExperimentParams p;
      p.protocol = proto;
      p.write_ratio = prof.write_ratio;
      p.locality = prof.locality;
      p.requests_per_client = 300;
      p.seed = 1234;
      const ExperimentResult r = run_experiment(p);
      std::printf("%-16s %10.1f %10.1f %10.1f %10.1f %6s\n",
                  protocol_name(proto), r.read_ms.mean(), r.write_ms.mean(),
                  r.all_ms.mean(), r.messages_per_request,
                  r.violations.empty() ? "yes" : "NO");
    }
    std::printf("\n");
  }
  std::printf("takeaway: DQVL gives ROWA-Async-like read latency at edge "
              "locality without\ngiving up regular semantics; its cost "
              "shows up only under write-heavy,\ninterleaved workloads.\n");
  return 0;
}
