// Quickstart: bring up a dual-quorum deployment (5 IQS members, 9 OQS
// members, one per edge server), write a customer profile through the IQS,
// read it back locally through the OQS, then peek at what crossed the wire.
//
//   $ ./quickstart
#include <cstdio>

#include "protocols/dq_adapter.h"
#include "workload/experiment.h"

using namespace dq;

int main() {
  // A deployment is a simulated edge network: 9 edge servers, paper delays
  // (8 ms client<->home RTT, 86 ms client<->remote, 80 ms server<->server).
  workload::ExperimentParams params;
  params.protocol = "dqvl";
  params.requests_per_client = 0;  // we drive operations ourselves
  workload::Deployment dep(params);
  sim::World& world = dep.world();

  // Embed a service client on edge server 2.  Server 2 is an OQS member, so
  // once its leases are warm, its reads are answered locally.
  const std::size_t host_idx = 2;
  const NodeId host = world.topology().server(host_idx);
  protocols::DqServiceClient client(world, host, dep.dq_config());
  dep.server_node(host_idx).add_handler(
      [&client](const sim::Envelope& e) { return client.on_message(e); });

  std::printf("== dual-quorum quickstart ==\n");

  bool done = false;
  VersionedValue read_back;
  sim::Time write_started = 0, write_done = 0, read1_done = 0;

  write_started = world.now();
  client.write(ObjectId(42), "alice:credit=900",
               [&](bool ok, LogicalClock lc) {
    write_done = world.now();
    std::printf("write:       ok=%d lc=%llu.%u   latency %.1f ms\n", ok,
                static_cast<unsigned long long>(lc.counter), lc.writer,
                sim::to_ms(write_done - write_started));
    client.read(ObjectId(42), [&](bool ok2, VersionedValue vv) {
      read1_done = world.now();
      std::printf("read (miss): ok=%d value='%s'   latency %.1f ms "
                  "(renewed leases from the IQS)\n",
                  ok2, vv.value.c_str(), sim::to_ms(read1_done - write_done));
      client.read(ObjectId(42), [&](bool ok3, VersionedValue vv2) {
        std::printf("read (hit):  ok=%d value='%s'   latency %.1f ms "
                    "(served from the local OQS cache)\n",
                    ok3, vv2.value.c_str(),
                    sim::to_ms(world.now() - read1_done));
        read_back = vv2;
        done = true;
      });
    });
  });

  while (!done) world.run_for(sim::seconds(1));

  std::printf("\nmessages on the wire, by type:\n");
  for (const auto& [name, count] : world.message_stats().table()) {
    std::printf("  %-20s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  return read_back.value == "alice:credit=900" ? 0 : 1;
}
