// Trace explorer: watch the protocol make decisions, message by message.
//
// Runs a small DQVL scenario with tracing enabled and prints the protocol
// event stream -- the tool to reach for when the numbers from the benches
// raise a "but why?" question.
//
//   $ ./trace_explorer
#include <cstdio>
#include <iostream>

#include "protocols/dq_adapter.h"
#include "workload/experiment.h"

using namespace dq;
using namespace dq::workload;

int main() {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.lease_length = sim::seconds(2);
  p.requests_per_client = 0;
  Deployment dep(p);
  auto& w = dep.world();
  w.tracer().enable();

  auto reader = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  auto writer = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(1), dep.dq_config());
  dep.server_node(0).add_handler(
      [&](const sim::Envelope& e) { return reader->on_message(e); });
  dep.server_node(1).add_handler(
      [&](const sim::Envelope& e) { return writer->on_message(e); });

  auto spin = [&](bool& f) {
    while (!f) w.run_for(sim::milliseconds(10));
  };
  auto wr = [&](ObjectId o, const char* v) {
    bool done = false;
    writer->write(o, v, [&](bool, LogicalClock) { done = true; });
    spin(done);
  };
  auto rd = [&](ObjectId o) {
    bool done = false;
    reader->read(o, [&](bool, VersionedValue) { done = true; });
    spin(done);
  };

  std::printf("== scenario: write, read x2, overwrite, partition, "
              "lease-expiry write ==\n\n");
  wr(ObjectId(7), "v1");   // cold write: suppressed
  rd(ObjectId(7));         // miss: renewals
  rd(ObjectId(7));         // hit
  wr(ObjectId(7), "v2");   // write-through: invalidations
  w.set_up(w.topology().server(0), false);
  wr(ObjectId(7), "v3");   // blocked on server 0's lease; delayed inval
  w.set_up(w.topology().server(0), true);
  rd(ObjectId(7));         // renewal delivers the delayed invalidation

  std::printf("protocol decisions (read/write/lease events):\n");
  dep.world().tracer().dump(std::cout, "read");
  dep.world().tracer().dump(std::cout, "write");
  dep.world().tracer().dump(std::cout, "lease");

  std::printf("\nfull wire trace: %zu events (showing the last 12)\n",
              w.tracer().events().size());
  w.tracer().dump(std::cout, "net", 12);
  return 0;
}
