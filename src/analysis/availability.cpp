#include "analysis/availability.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace dq::analysis {

double binomial_tail_at_least(std::size_t n, std::size_t k, double p_down) {
  DQ_INVARIANT(k <= n, "quorum larger than the system");
  const double p_up = 1.0 - p_down;
  // Sum_{i=k..n} C(n,i) p_up^i p_down^(n-i), computed stably via running
  // binomial coefficients in log space is overkill for n <= 64; direct
  // products suffice.
  double total = 0.0;
  for (std::size_t i = k; i <= n; ++i) {
    // C(n, i)
    double c = 1.0;
    for (std::size_t t = 0; t < i; ++t) {
      c *= static_cast<double>(n - t) / static_cast<double>(i - t);
    }
    total += c * std::pow(p_up, static_cast<double>(i)) *
             std::pow(p_down, static_cast<double>(n - i));
  }
  return std::min(total, 1.0);
}

double AvailabilityModel::majority(double w) const {
  const double av = threshold_availability(n, majority_quorum(n), p);
  return (1.0 - w) * av + w * av;
}

double AvailabilityModel::primary_backup(double w) const {
  // Both reads and writes require the primary.
  (void)w;
  return 1.0 - p;
}

double AvailabilityModel::rowa(double w) const {
  const double read_av = 1.0 - std::pow(p, static_cast<double>(n));
  const double write_av = std::pow(1.0 - p, static_cast<double>(n));
  return (1.0 - w) * read_av + w * write_av;
}

double AvailabilityModel::rowa_async_stale_ok(double w) const {
  // Any live replica accepts reads and writes.
  const double av = 1.0 - std::pow(p, static_cast<double>(n));
  return (1.0 - w) * av + w * av;
}

double AvailabilityModel::rowa_async_no_stale(double w) const {
  // A read must reach the (single) replica guaranteed to hold the latest
  // completed write; a write still succeeds at any live replica.
  const double read_av = 1.0 - p;
  const double write_av = 1.0 - std::pow(p, static_cast<double>(n));
  return (1.0 - w) * read_av + w * write_av;
}

double AvailabilityModel::dqvl(double w) const {
  // |orq| = 1 over n OQS nodes; IQS is a majority system of size `iqs`.
  const double av_orq = 1.0 - std::pow(p, static_cast<double>(n));
  const double av_irq = threshold_availability(iqs, majority_quorum(iqs), p);
  const double av_iwq = av_irq;
  return dqvl_general(w, av_orq, av_irq, av_iwq);
}

double AvailabilityModel::dqvl_general(double w, double av_orq, double av_irq,
                                       double av_iwq) {
  return (1.0 - w) * std::min(av_orq, av_irq) +
         w * std::min(av_iwq, av_irq);
}

double dqvl_availability(double w, const quorum::QuorumSystem& oqs,
                         const quorum::QuorumSystem& iqs, double p_down) {
  const double av_orq =
      quorum::exact_availability(oqs, quorum::Kind::kRead, p_down);
  const double av_irq =
      quorum::exact_availability(iqs, quorum::Kind::kRead, p_down);
  const double av_iwq =
      quorum::exact_availability(iqs, quorum::Kind::kWrite, p_down);
  return AvailabilityModel::dqvl_general(w, av_orq, av_irq, av_iwq);
}

}  // namespace dq::analysis
