// Closed-form availability models (paper section 4.2).
//
// The paper's model: each node is independently unavailable with probability
// p (covering crashes and network failures); a request is rejected when the
// protocol cannot satisfy regular semantics.  Availability is the fraction
// of requests served, with read fraction (1-w) and write fraction w.
//
//   av_DQVL = (1-w) * min(av_orq, av_irq) + w * min(av_iwq, av_irq)
//
// ROWA-Async is modelled both ways the paper discusses: with stale reads
// allowed (any live replica serves anything) and with stale reads rejected
// (Yu & Vahdat's fair comparison), where a read succeeds only if it can
// reach the replica holding the latest completed write.
#pragma once

#include <cstddef>

#include "quorum/quorum.h"

namespace dq::analysis {

// P(at least k of n nodes are up), per-node unavailability p.
[[nodiscard]] double binomial_tail_at_least(std::size_t n, std::size_t k,
                                            double p_down);

// Availability of a threshold quorum of size k over n nodes.
[[nodiscard]] inline double threshold_availability(std::size_t n,
                                                   std::size_t k,
                                                   double p_down) {
  return binomial_tail_at_least(n, k, p_down);
}

struct AvailabilityModel {
  std::size_t n = 15;   // replicas (OQS size for DQVL)
  std::size_t iqs = 15; // IQS size for DQVL
  double p = 0.01;      // per-node unavailability

  [[nodiscard]] std::size_t majority_quorum(std::size_t m) const {
    return m / 2 + 1;
  }

  // --- per-protocol combined availability at write ratio w ----------------
  [[nodiscard]] double majority(double w) const;
  [[nodiscard]] double primary_backup(double w) const;
  [[nodiscard]] double rowa(double w) const;
  [[nodiscard]] double rowa_async_stale_ok(double w) const;
  [[nodiscard]] double rowa_async_no_stale(double w) const;
  // Headline DQVL: OQS spans n with |orq|=1, IQS is a majority system.
  [[nodiscard]] double dqvl(double w) const;

  // General DQVL composition from arbitrary quorum-system availabilities.
  [[nodiscard]] static double dqvl_general(double w, double av_orq,
                                           double av_irq, double av_iwq);
};

// DQVL availability for ARBITRARY quorum systems (grid IQS, wide read
// quorums, ...), composing the paper's formula with exact enumeration of
// each system's quorum availability.  Members <= 25 per system.
[[nodiscard]] double dqvl_availability(double w,
                                       const quorum::QuorumSystem& oqs,
                                       const quorum::QuorumSystem& iqs,
                                       double p_down);

}  // namespace dq::analysis
