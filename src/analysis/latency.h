// Closed-form expected response-time model for the section 4.1 experiment.
//
// The simulator measures latencies; this model predicts them from first
// principles (message pattern x delay matrix), giving the benches and tests
// an independent cross-check.  All inputs are round-trip times, matching how
// the paper states them (8 / 86 / 80 ms), plus the per-request processing
// delay d charged once per client-facing request at each serving node.
//
// Modelled paths (headline DQVL configuration: |orq| = 1, majority IQS):
//   DQVL read hit      lan + d                      (local OQS)
//   DQVL read miss     lan + wan_s + d              (+ one IQS renewal round)
//   DQVL write (sup)   lan + 2*wan_s + 2d           (LC read + write rounds)
//   DQVL write (thru)  lan + 3*wan_s + 2d           (+ invalidation round)
//   majority read      wan_c + d
//   majority write     2*(wan_c + d)
//   primary/backup     wan_c + d                    (reads and async writes)
//   ROWA read          lan + d;   ROWA write: wan_s + lan + d (via front end)
//   ROWA-Async         lan + d for both
//
// Workload composition uses the single-locus iid miss/through probabilities
// (miss ~= w, through ~= 1 - w) also used by the overhead model; the
// simulator's measured rates replace them in the cross-check tests.
#pragma once

namespace dq::analysis {

struct LatencyModel {
  // Round trips in milliseconds (paper defaults), processing delay d.
  double lan = 8.0;     // client <-> closest edge server
  double wan_c = 86.0;  // client <-> remote edge server
  double wan_s = 80.0;  // edge server <-> edge server
  double d = 1.0;

  // --- DQVL -----------------------------------------------------------------
  [[nodiscard]] double dqvl_read_hit() const { return lan + d; }
  [[nodiscard]] double dqvl_read_miss() const { return lan + wan_s + d; }
  [[nodiscard]] double dqvl_read(double p_miss) const {
    return (1.0 - p_miss) * dqvl_read_hit() + p_miss * dqvl_read_miss();
  }
  [[nodiscard]] double dqvl_write_suppress() const {
    return lan + 2.0 * wan_s + 2.0 * d;
  }
  [[nodiscard]] double dqvl_write_through() const {
    return lan + 3.0 * wan_s + 2.0 * d;
  }
  [[nodiscard]] double dqvl_write(double p_through) const {
    return (1.0 - p_through) * dqvl_write_suppress() +
           p_through * dqvl_write_through();
  }
  [[nodiscard]] double dqvl_avg(double w) const {
    return (1.0 - w) * dqvl_read(/*p_miss=*/w) +
           w * dqvl_write(/*p_through=*/1.0 - w);
  }

  // --- baselines -------------------------------------------------------------
  [[nodiscard]] double majority_read() const { return wan_c + d; }
  [[nodiscard]] double majority_write() const { return 2.0 * (wan_c + d); }
  [[nodiscard]] double majority_avg(double w) const {
    return (1.0 - w) * majority_read() + w * majority_write();
  }

  [[nodiscard]] double pb_read() const { return wan_c + d; }
  [[nodiscard]] double pb_write() const { return wan_c + d; }
  [[nodiscard]] double pb_avg(double w) const {
    return (1.0 - w) * pb_read() + w * pb_write();
  }

  [[nodiscard]] double rowa_read() const { return lan + d; }
  [[nodiscard]] double rowa_write() const { return lan + wan_s + d; }
  [[nodiscard]] double rowa_avg(double w) const {
    return (1.0 - w) * rowa_read() + w * rowa_write();
  }

  [[nodiscard]] double rowa_async_read() const { return lan + d; }
  [[nodiscard]] double rowa_async_write() const { return lan + d; }
  [[nodiscard]] double rowa_async_avg(double /*w*/) const { return lan + d; }

  // Locality mix: with probability (1 - locality) the front-end hop costs
  // wan_c instead of lan (edge-aware protocols only; majority and
  // primary/backup already pay WAN and are insensitive).
  [[nodiscard]] double with_locality(double base_with_lan,
                                     double locality) const {
    return base_with_lan + (1.0 - locality) * (wan_c - lan);
  }
};

}  // namespace dq::analysis
