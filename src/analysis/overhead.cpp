#include "analysis/overhead.h"

namespace dq::analysis {

double OverheadModel::majority_read() const {
  return 2.0 * static_cast<double>(majority_quorum(n));
}
double OverheadModel::majority_write() const {
  return 4.0 * static_cast<double>(majority_quorum(n));
}

double OverheadModel::pb_read() const { return 2.0; }
double OverheadModel::pb_write() const {
  return 2.0 + static_cast<double>(n - 1);
}

double OverheadModel::rowa_read() const { return 2.0; }
double OverheadModel::rowa_write() const {
  return 2.0 * static_cast<double>(n);
}

double OverheadModel::rowa_async_read() const { return 2.0; }
double OverheadModel::rowa_async_write() const {
  return 2.0 + static_cast<double>(n - 1);
}

double OverheadModel::dqvl_read(double p_miss) const {
  const double irq = static_cast<double>(majority_quorum(iqs));
  return 2.0 + p_miss * 2.0 * irq;
}

double OverheadModel::dqvl_write(double p_through) const {
  const double irq = static_cast<double>(majority_quorum(iqs));
  const double iwq = irq;  // majority IQS: read and write quorums equal
  return 2.0 * irq + 2.0 * iwq + p_through * 2.0 * static_cast<double>(n);
}

double OverheadModel::majority_avg(double w) const {
  return (1.0 - w) * majority_read() + w * majority_write();
}
double OverheadModel::pb_avg(double w) const {
  return (1.0 - w) * pb_read() + w * pb_write();
}
double OverheadModel::rowa_avg(double w) const {
  return (1.0 - w) * rowa_read() + w * rowa_write();
}
double OverheadModel::rowa_async_avg(double w) const {
  return (1.0 - w) * rowa_async_read() + w * rowa_async_write();
}
double OverheadModel::dqvl_avg(double w) const {
  // Worst-case single-locus iid workload: miss after every write, write-
  // through after every read (see header).
  return dqvl_avg(w, /*p_miss=*/w, /*p_through=*/1.0 - w);
}
double OverheadModel::dqvl_avg(double w, double p_miss,
                               double p_through) const {
  return (1.0 - w) * dqvl_read(p_miss) + w * dqvl_write(p_through);
}

}  // namespace dq::analysis
