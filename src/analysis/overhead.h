// Communication-overhead models (paper section 4.3): average number of
// messages to process one client request, all message types weighted
// equally.  The paper omits its model's details; the derivation used here
// counts one request + one reply per contacted node and is documented per
// protocol below and in EXPERIMENTS.md.  The Figure 9 benches cross-check
// these formulas against messages actually counted by the simulator.
#pragma once

#include <cstddef>

namespace dq::analysis {

struct OverheadModel {
  std::size_t n = 15;       // total replicas (OQS size for DQVL)
  std::size_t iqs = 15;     // IQS size for DQVL

  [[nodiscard]] std::size_t majority_quorum(std::size_t m) const {
    return m / 2 + 1;
  }

  // --- reads / writes in messages ------------------------------------------
  // Majority: read = req+reply to a majority; write = clock-read round plus
  // write round, each to a majority.
  [[nodiscard]] double majority_read() const;
  [[nodiscard]] double majority_write() const;

  // Primary/backup (async): read = 2 to the primary; a write additionally
  // pushes one sync message to each backup.
  [[nodiscard]] double pb_read() const;
  [[nodiscard]] double pb_write() const;

  // ROWA: read-one, write-all.
  [[nodiscard]] double rowa_read() const;
  [[nodiscard]] double rowa_write() const;

  // ROWA-Async: local read/write plus one gossip push per peer.
  [[nodiscard]] double rowa_async_read() const;
  [[nodiscard]] double rowa_async_write() const;

  // DQVL with |orq| = 1 (so an OQS write quorum is all n OQS nodes) and a
  // majority IQS:
  //   read  = 2 + P(miss)    * 2|irq|                 (renewal round)
  //   write = 2|irq| + 2|iwq| + P(through) * 2n       (invalidation round)
  [[nodiscard]] double dqvl_read(double p_miss) const;
  [[nodiscard]] double dqvl_write(double p_through) const;

  // --- workload-level averages at write ratio w ----------------------------
  // For an iid single-locus workload (the paper's worst case for DQVL):
  // a read misses iff a write intervened since this node's last renewal
  // (P ~= w) and a write goes through iff a read re-validated some OQS copy
  // since the last write (P ~= 1-w).  At w = 0.5 reads and writes interleave
  // and the overhead peaks, which is Figure 9(a)'s shape.
  [[nodiscard]] double majority_avg(double w) const;
  [[nodiscard]] double pb_avg(double w) const;
  [[nodiscard]] double rowa_avg(double w) const;
  [[nodiscard]] double rowa_async_avg(double w) const;
  [[nodiscard]] double dqvl_avg(double w) const;
  [[nodiscard]] double dqvl_avg(double w, double p_miss,
                                double p_through) const;
};

}  // namespace dq::analysis
