// Always-on invariant checking.
//
// Protocol invariants (quorum intersection, the paper's callback invariant,
// lease-validity conditions) are checked in release builds too: a violated
// invariant in a replication protocol is data loss, not a debugging aid.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dq::detail {
[[noreturn]] inline void invariant_failed(const char* expr, const char* file,
                                          int line, const char* msg) {
  std::fprintf(stderr, "INVARIANT VIOLATED: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg);
  std::abort();
}
}  // namespace dq::detail

#define DQ_INVARIANT(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::dq::detail::invariant_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (false)
