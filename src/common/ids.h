// Strongly-typed identifiers used throughout the dual-quorum codebase.
//
// Every entity in the system -- nodes, objects, volumes, requests, clients --
// is identified by a distinct strong type so that mixing them up is a
// compile-time error (C++ Core Guidelines I.4: make interfaces precisely and
// strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace dq {

// CRTP-free tagged integer id.  `Tag` is a phantom type; `Rep` the storage.
template <typename Tag, typename Rep = std::uint32_t>
class TaggedId {
 public:
  using rep_type = Rep;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Rep v) : v_(v) {}

  [[nodiscard]] constexpr Rep value() const { return v_; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    return os << id.v_;
  }

 private:
  Rep v_ = 0;
};

struct NodeTag {};
struct ObjectTag {};
struct VolumeTag {};
struct RequestTag {};
struct ClientTag {};

// A protocol node (edge server) in the system.  Nodes may simultaneously be
// members of the IQS and the OQS; membership is expressed by quorum-system
// configuration, not by the id.
using NodeId = TaggedId<NodeTag, std::uint32_t>;

// A replicated data object (e.g. one customer profile).
using ObjectId = TaggedId<ObjectTag, std::uint64_t>;

// A volume: a collection of objects that share one (short) volume lease.
using VolumeId = TaggedId<VolumeTag, std::uint32_t>;

// A unique id per RPC interaction, used to match replies to requests and to
// de-duplicate retransmissions.
using RequestId = TaggedId<RequestTag, std::uint64_t>;

// An application/service client issuing reads and writes.
using ClientId = TaggedId<ClientTag, std::uint32_t>;

}  // namespace dq

namespace std {
template <typename Tag, typename Rep>
struct hash<dq::TaggedId<Tag, Rep>> {
  size_t operator()(dq::TaggedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
