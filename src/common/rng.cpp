#include "common/rng.h"

#include <cmath>

namespace dq {

double Rng::exponential(double mean) {
  // Inverse-CDF; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) return all;
  // Partial Fisher-Yates: the first k slots end up a uniform k-subset.
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(all[i], all[i + below(n - i)]);
  }
  all.resize(k);
  return all;
}

}  // namespace dq
