// Deterministic, seedable random number generation.
//
// All randomness in the simulator flows through a SplitMix64-seeded
// xoshiro256** generator so that every experiment is exactly reproducible
// from its seed.  We deliberately do not use std::mt19937 default-seeding or
// std::random_device anywhere in the library.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace dq {

// xoshiro256** by Blackman & Vigna -- fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 to spread a small seed across the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).  Plain modulo: bounds in this codebase
  // are node counts (tiny vs 2^64), so the bias is immeasurable.
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : operator()() % bound;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  // Exponentially distributed value with the given mean (for think times /
  // failure inter-arrivals).
  double exponential(double mean);

  // Pick k distinct indices uniformly at random from [0, n) -- used by QRPC
  // to select a random quorum.  Returns fewer than k if n < k.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  // Derive an independent child generator (for per-node streams).
  Rng split() { return Rng(operator()()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dq
