// Small statistics helpers used by the workload driver and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace dq {

// Accumulates a stream of samples and answers mean / percentile / extrema
// queries.  Keeps all samples (experiments are small: <10^6 requests).
//
// Percentile queries sort lazily: the first query after an add() sorts the
// sample vector once and subsequent queries reuse it, so a reporting pass
// that asks for p50/p95/p99/... pays for one sort, not one per query.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  // Nearest-rank percentile (linear interpolation), q in [0, 100].
  [[nodiscard]] double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const double rank = (q / 100.0) * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  // {"count":N,"mean":...,"min":...,"max":...,"p50":...,"p95":...,"p99":...}
  [[nodiscard]] std::string to_json() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%zu,\"mean\":%.6g,\"min\":%.6g,\"max\":%.6g,"
                  "\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g}",
                  count(), mean(), min(), max(), p50(), p95(), p99());
    return buf;
  }

  void clear() {
    samples_.clear();
    sorted_ = true;
  }

 private:
  void ensure_sorted() const {
    if (sorted_) return;
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;  // vacuously sorted while empty
};

// Counter map keyed by small enums; see MessageStats in sim/network.h for the
// main use.
}  // namespace dq
