// Small statistics helpers used by the workload driver and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace dq {

// Accumulates a stream of samples and answers mean / percentile / extrema
// queries.  Keeps all samples (experiments are small: <10^6 requests).
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  // Nearest-rank percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = (q / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

// Counter map keyed by small enums; see MessageStats in sim/network.h for the
// main use.
}  // namespace dq
