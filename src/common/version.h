// Logical clocks and versioned values.
//
// The paper's protocols order writes by a logical clock obtained by reading
// the highest clock from an IQS read quorum and advancing it.  Two clients
// may concurrently pick the same counter value, so we break ties with the
// writer's client id; this makes "the write with the highest logical clock"
// well defined, which both the protocol ("if (lc > lastWriteLC_o)") and the
// regular-semantics checker rely on.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/ids.h"

namespace dq {

// A totally ordered logical clock value: (counter, writer-id).
struct LogicalClock {
  std::uint64_t counter = 0;
  std::uint32_t writer = 0;  // tie-break: id of the writing client

  friend constexpr auto operator<=>(const LogicalClock&,
                                    const LogicalClock&) = default;

  // The smallest clock; no real write ever carries it.
  [[nodiscard]] static constexpr LogicalClock zero() { return {}; }

  // The clock a writer should use after observing `observed`.
  [[nodiscard]] constexpr LogicalClock advanced_by(ClientId writer_id) const {
    return LogicalClock{counter + 1, writer_id.value()};
  }

  friend std::ostream& operator<<(std::ostream& os, const LogicalClock& lc) {
    return os << lc.counter << '.' << lc.writer;
  }
};

// The unit of replicated data: an opaque byte string.  Values are small
// (customer profiles), so value semantics with std::string is appropriate.
using Value = std::string;

// A value together with the logical clock of the write that produced it.
struct VersionedValue {
  Value value;
  LogicalClock clock;

  friend bool operator==(const VersionedValue&,
                         const VersionedValue&) = default;
};

}  // namespace dq
