// Configuration shared by every node participating in one dual-quorum
// deployment.
//
// The basic dual-quorum protocol of section 3.1 is DQVL configured with an
// infinite volume lease: leases then never expire, so every write either
// suppresses (cached copy known-invalid) or invalidates through -- exactly
// the basic protocol.  `basic()` below builds that configuration.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "sim/time.h"
#include "store/object_store.h"
#include "store/wal.h"

namespace dq::core {

struct DqConfig {
  // The two quorum systems.  Shared (not owned per node): every participant
  // must agree on membership.
  std::shared_ptr<const quorum::QuorumSystem> iqs;
  std::shared_ptr<const quorum::QuorumSystem> oqs;

  store::VolumeMap volumes{1};

  // Volume lease length L.  kTimeInfinity selects the basic (lease-free)
  // dual-quorum protocol.
  sim::Duration lease_length = sim::seconds(10);

  // Object lease length (paper footnote 4).  The default, kTimeInfinity,
  // is the paper's callback model; a finite length lets the IQS skip
  // invalidations (and delayed-invalidation queue entries) for nodes whose
  // object leases have lapsed, trading read misses for space and messages.
  sim::Duration object_lease_length = sim::kTimeInfinity;

  // Maximum clock drift rate between any pair of nodes (paper section 2).
  // Lease grants and expirations are padded by this factor on both sides.
  double max_drift = 0.0;

  // Epoch GC: when a per-(volume, OQS node) delayed-invalidation queue
  // exceeds this bound, the IQS node advances the epoch and drops the queue
  // (section 3.2, "bound the size of the list of delayed invalidations").
  std::size_t max_delayed_per_volume = 64;

  // Ablation switches (DESIGN.md section 5).
  bool suppression_enabled = true;       // write-suppress fast path
  bool proactive_volume_renewal = false; // OQS renews leases before expiry
  // With proactive renewal: gather all volumes nearing expiry into one
  // DqVolRenewBatch per IQS member instead of per-volume QRPCs.
  bool batch_volume_renewals = false;

  rpc::QrpcOptions rpc;

  // Durability: when set, IQS servers keep a write-ahead log and implement
  // crash recovery (WAL replay + epoch bump; see docs/PROTOCOL.md "Crash
  // recovery & durability").  When unset -- the default -- servers behave as
  // before this subsystem existed: crashes keep durable-looking state, and
  // no WAL metrics are registered.
  std::optional<store::WalParams> wal;

  [[nodiscard]] bool is_basic() const {
    return lease_length >= sim::kTimeInfinity;
  }

  // The paper's headline configuration: OQS spans all servers with a read
  // quorum of one; IQS is a majority system over `iqs_members`.
  static DqConfig headline(std::vector<NodeId> oqs_members,
                           std::vector<NodeId> iqs_members,
                           sim::Duration lease = sim::seconds(10)) {
    DqConfig c;
    c.oqs = quorum::ThresholdQuorum::read_one(std::move(oqs_members));
    c.iqs = quorum::ThresholdQuorum::majority(std::move(iqs_members));
    c.lease_length = lease;
    return c;
  }

  static DqConfig basic(std::vector<NodeId> oqs_members,
                        std::vector<NodeId> iqs_members) {
    DqConfig c = headline(std::move(oqs_members), std::move(iqs_members));
    c.lease_length = sim::kTimeInfinity;
    return c;
  }
};

}  // namespace dq::core
