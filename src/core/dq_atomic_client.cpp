#include "core/dq_atomic_client.h"

namespace dq::core {

void DqAtomicClient::read(ObjectId o, ReadCallback done) {
  inner_.read(o, [this, o, done = std::move(done)](bool ok,
                                                   VersionedValue vv) mutable {
    if (!ok) {
      done(false, std::move(vv));
      return;
    }
    if (vv.clock == LogicalClock::zero()) {
      // Initial value: nothing to confirm (no write to stabilize).
      done(true, std::move(vv));
      return;
    }
    // Confirmation phase: replay the (value, clock) to an IQS write quorum.
    // Each member acks only once an OQS write quorum can no longer read
    // anything older, making the returned value stable.
    engine_.call(
        *cfg_->iqs, quorum::Kind::kWrite,
        [o, vv](NodeId) -> std::optional<msg::Payload> {
          return msg::DqWrite{o, vv.value, vv.clock};
        },
        [](NodeId, const msg::Payload&) {},
        [vv, done = std::move(done)](bool ok2) mutable {
          done(ok2, std::move(vv));
        },
        cfg_->rpc);
  });
}

}  // namespace dq::core
