// Atomic-semantics service client (paper section 6, future work: "modifying
// DQVL to provide different consistency semantics (e.g. atomic semantics)
// and comparing the cost difference").
//
// Plain DQVL is regular, not atomic: a read may return a concurrent write's
// value from one freshly renewed OQS node while a later read, at a node
// whose (still valid) leases predate that write, returns the older value --
// a new-old inversion.
//
// The classic fix (ABD) is read write-back: before returning (value, lc),
// CONFIRM the value at an IQS write quorum.  processWriteRequest already
// implements exactly the needed semantics for a replayed clock: a DqWrite
// with lc <= lastWriteLC applies nothing but acks only once an OQS write
// quorum is unable to read anything older than lc.  After that, every
// future read observes a clock >= lc, so inversions are impossible.
//
// The cost difference this buys (measured in bench/ablation_atomic.cpp):
// reads are no longer local -- every read pays an IQS write-quorum round
// (~one WAN RTT) on top of the OQS read.  Writes are unchanged.
#pragma once

#include <memory>
#include <utility>

#include "core/dq_client.h"

namespace dq::core {

class DqAtomicClient {
 public:
  using ReadCallback = DqClient::ReadCallback;
  using WriteCallback = DqClient::WriteCallback;

  DqAtomicClient(sim::World& world, NodeId self,
                 std::shared_ptr<const DqConfig> config)
      : world_(world), self_(self), cfg_(std::move(config)),
        inner_(world_, self_, cfg_), engine_(world_, self_) {}

  // Atomic read: regular DQVL read, then write-back confirmation.
  void read(ObjectId o, ReadCallback done);

  // Writes are the plain DQVL writes (already atomic among themselves: the
  // LC-read phase orders a write after every completed write).
  void write(ObjectId o, Value value, WriteCallback done) {
    inner_.write(o, std::move(value), std::move(done));
  }

  bool on_message(const sim::Envelope& env) {
    return inner_.on_message(env) || engine_.on_reply(env);
  }

  void cancel_all() {
    inner_.cancel_all();
    engine_.cancel_all();
  }

 private:
  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const DqConfig> cfg_;
  DqClient inner_;
  rpc::QrpcEngine engine_;  // for the confirmation phase
};

}  // namespace dq::core
