#include "core/dq_client.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace dq::core {

void DqClient::read(ObjectId o, ReadCallback done) {
  // Shared accumulator: the best (highest-clock) reply seen so far.
  auto best = std::make_shared<VersionedValue>();
  engine_.call(
      *cfg_->oqs, quorum::Kind::kRead,
      [o](NodeId) -> std::optional<msg::Payload> { return msg::DqRead{o}; },
      [best](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::DqReadReply>(&p)) {
          if (r->clock >= best->clock) {
            best->value = r->value;
            best->clock = r->clock;
          }
        }
      },
      [best, done = std::move(done)](bool ok) { done(ok, *best); },
      cfg_->rpc);
}

void DqClient::write(ObjectId o, Value value, WriteCallback done) {
  // Phase 1: highest completed logical clock from an IQS read quorum.
  auto max_lc = std::make_shared<LogicalClock>();
  engine_.call(
      *cfg_->iqs, quorum::Kind::kRead,
      [o](NodeId) -> std::optional<msg::Payload> { return msg::DqLcRead{o}; },
      [max_lc](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::DqLcReadReply>(&p)) {
          *max_lc = std::max(*max_lc, r->clock);
        }
      },
      [this, o, value = std::move(value), max_lc,
       done = std::move(done)](bool ok) mutable {
        if (!ok) {
          done(false, LogicalClock{});
          return;
        }
        // Phase 2: the write proper, to an IQS write quorum.  Advance past
        // our own previously issued clock as well as the quorum maximum:
        // pipelined writes from one writer would otherwise observe the same
        // quorum max and mint identical clocks (writer-id tie-breaking only
        // disambiguates *different* writers).
        const LogicalClock lc =
            std::max(*max_lc, issued_).advanced_by(writer_id_);
        issued_ = lc;
        engine_.call(
            *cfg_->iqs, quorum::Kind::kWrite,
            [o, lc, value](NodeId) -> std::optional<msg::Payload> {
              return msg::DqWrite{o, value, lc};
            },
            [](NodeId, const msg::Payload&) {},
            [lc, done = std::move(done)](bool ok2) { done(ok2, lc); },
            cfg_->rpc);
      },
      cfg_->rpc);
}

}  // namespace dq::core
