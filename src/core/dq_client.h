// Service-client library for the dual-quorum store.
//
// Reads go to an OQS read quorum; the reply with the highest logical clock
// wins.  Writes are two QRPC phases against the IQS, exactly as in the
// paper: (1) read the highest logical clock from an IQS read quorum,
// (2) advance it and send the write to an IQS write quorum.
//
// The client is a component embedded in a host actor (a front-end edge
// server, or a workload client in direct-access experiments); the host
// forwards envelopes to on_message.
#pragma once

#include <functional>
#include <memory>

#include "common/ids.h"
#include "common/version.h"
#include "core/config.h"
#include "msg/wire.h"
#include "rpc/qrpc.h"
#include "sim/world.h"

namespace dq::core {

class DqClient {
 public:
  using ReadCallback = std::function<void(bool ok, VersionedValue)>;
  using WriteCallback = std::function<void(bool ok, LogicalClock)>;

  DqClient(sim::World& world, NodeId self,
           std::shared_ptr<const DqConfig> config)
      : world_(world), self_(self), cfg_(std::move(config)),
        engine_(world_, self_), writer_id_(self_.value()) {}

  // Read `o`: QRPC to an OQS read quorum; returns the highest-clock reply.
  void read(ObjectId o, ReadCallback done);

  // Write `value` to `o`: LC-read phase then write phase, both on the IQS.
  void write(ObjectId o, Value value, WriteCallback done);

  // Route engine replies.  Returns true if consumed.
  bool on_message(const sim::Envelope& env) { return engine_.on_reply(env); }

  [[nodiscard]] std::size_t inflight() const { return engine_.inflight(); }
  void cancel_all() { engine_.cancel_all(); }

 private:
  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const DqConfig> cfg_;
  rpc::QrpcEngine engine_;
  ClientId writer_id_;
  // Highest clock this writer has issued; keeps pipelined same-writer
  // writes strictly ordered (see DqClient::write phase 2).
  LogicalClock issued_;
};

}  // namespace dq::core
