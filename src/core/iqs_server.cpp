#include "core/iqs_server.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "msg/epoch.h"
#include "sim/processing.h"

namespace dq::core {

namespace {
// Pad a lease duration by the worst-case relative clock-rate error.
sim::Duration padded(sim::Duration lease, double max_drift) {
  if (lease >= sim::kTimeInfinity) return sim::kTimeInfinity;
  return static_cast<sim::Duration>(static_cast<double>(lease) *
                                    (1.0 + max_drift));
}
}  // namespace

IqsServer::IqsServer(sim::World& world, NodeId self,
                     std::shared_ptr<const DqConfig> config)
    : world_(world), self_(self), cfg_(std::move(config)),
      engine_(world_, self_) {
  DQ_INVARIANT(cfg_->iqs && cfg_->oqs, "DqConfig must name both systems");
  DQ_INVARIANT(cfg_->iqs->is_member(self_), "IqsServer on a non-member node");
  auto& m = world_.metrics();
  m_load_ = &m.counter(obs::node_metric("iqs.load", self_.value()));
  m_writes_ = &m.counter("iqs.writes");
  m_lc_reads_ = &m.counter("iqs.lc_reads");
  m_renewals_ = &m.counter("iqs.renewals");
  m_lease_grants_ = &m.counter("iqs.lease.grants");
  m_lease_expiries_ = &m.counter("iqs.lease.expiries");
  m_epoch_bumps_ = &m.counter("iqs.epoch_bumps");
  m_suppressed_ = &m.counter("iqs.writes_suppressed");
  m_delayed_depth_ = &m.gauge("iqs.delayed_queue.depth");
  m_h_suppress_ = &m.histogram("dqvl.write.suppress_ms");
  m_h_invalidate_ = &m.histogram("dqvl.write.invalidate_ms");
  m_h_lease_wait_ = &m.histogram("dqvl.write.lease_wait_ms");
  if (cfg_->wal) {
    wal_ = std::make_unique<store::Wal>(world_, self_, *cfg_->wal);
    m_recoveries_ = &m.counter("iqs.recoveries");
    m_h_recovery_ms_ = &m.histogram("iqs.recovery_downtime_ms");
  }
}

bool IqsServer::on_message(const sim::Envelope& env) {
  // Client-facing requests pay the constant per-request processing delay;
  // internal renewal/invalidation traffic does not (see sim/processing.h).
  if (std::get_if<msg::DqLcRead>(&env.body) != nullptr) {
    m_load_->inc();
    sim::defer_processing(world_, self_, [this, env] {
      handle_lc_read(env, std::get<msg::DqLcRead>(env.body));
    });
    return true;
  }
  if (std::get_if<msg::DqWrite>(&env.body) != nullptr) {
    m_load_->inc();
    sim::defer_processing(world_, self_, [this, env] {
      handle_write(env, std::get<msg::DqWrite>(env.body));
    });
    return true;
  }
  if (const auto* m = std::get_if<msg::DqInvalAck>(&env.body)) {
    m_load_->inc();
    handle_inval_ack(env, *m);
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolRenew>(&env.body)) {
    m_load_->inc();
    m_renewals_->inc();
    handle_vol_renew(env, *m);
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolRenewAck>(&env.body)) {
    m_load_->inc();
    handle_vol_renew_ack(env, *m);
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolRenewBatch>(&env.body)) {
    m_load_->inc();
    m_renewals_->inc(m->renewals.size());
    msg::DqVolRenewBatchReply out;
    out.replies.reserve(m->renewals.size());
    for (const msg::DqVolRenew& r : m->renewals) {
      out.replies.push_back(grant_lease(env.src, r.volume, r.requestor_time));
    }
    reply(env, std::move(out));
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolRenewAckBatch>(&env.body)) {
    m_load_->inc();
    for (const msg::DqVolRenewAck& a : m->acks) {
      handle_vol_renew_ack(env, a);
    }
    return true;
  }
  if (const auto* m = std::get_if<msg::DqObjRenew>(&env.body)) {
    m_load_->inc();
    m_renewals_->inc();
    handle_obj_renew(env, *m);
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolObjRenew>(&env.body)) {
    m_load_->inc();
    m_renewals_->inc();
    handle_vol_obj_renew(env, *m);
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolFetch>(&env.body)) {
    m_load_->inc();
    m_renewals_->inc();
    handle_vol_fetch(env, *m);
    return true;
  }
  return false;
}

void IqsServer::on_crash() {
  // In-flight invalidation machines are volatile under either durability
  // model: clients retransmit their writes and the machines are rebuilt.
  engine_.cancel_all();
  ensures_.clear();
  if (wal_ == nullptr) {
    // Legacy durable fiction: object data and callback/lease state survive
    // as if written through before every ack.
    return;
  }
  crashed_at_ = world_.now();
  // dqlint:allow(durable-state): crash wipes the volatile image; the
  // durable copy lives in the WAL and on_recover's replay rebuilds it.
  objects_.clear();
  logical_clock_ = LogicalClock::zero();
  clock_reserved_ = 0;
  std::int64_t wiped_delayed = 0;
  for (auto& [key, ls] : leases_) {
    wiped_delayed += static_cast<std::int64_t>(ls.delayed.size());
    ls.expiry_timer.cancel();
  }
  if (wiped_delayed != 0) m_delayed_depth_->add(-wiped_delayed);
  leases_.clear();
  grace_until_ = 0;
  wal_->on_crash();
}

void IqsServer::on_recover() {
  if (wal_ == nullptr) return;  // legacy model: state never left
  // Rebuild the durable image: store contents + logical clock from kPut
  // records, the epoch each (volume, node) pair had reached from kEpoch
  // records.  Callback state (last_read / last_ack / obj_expires) is NOT
  // recovered -- absent entries are conservative, and the grace window
  // below covers the one case where "absent" would be unsafe.
  wal_->replay([this](const store::WalRecord& r) {
    switch (r.kind) {
      case store::WalRecordKind::kPut: {
        auto& os = objects_[r.object];
        if (r.clock > os.last_write) {
          os.last_write = r.clock;
          os.value = r.value;
        }
        logical_clock_ = std::max(logical_clock_, r.clock);
        break;
      }
      case store::WalRecordKind::kEpoch: {
        auto& ls = leases_[{r.volume, r.node}];
        ls.epoch = msg::epoch_max(ls.epoch, r.epoch);
        break;
      }
      case store::WalRecordKind::kClockMark: {
        // Resume past every counter the pre-crash incarnation may have
        // exposed: pre-crash mints observed counters < the mark, so any
        // clock minted from this node post-recovery is strictly above
        // every orphaned (applied-but-unacked, lost) pre-crash clock.
        // (The record's epoch field carries the reserved clock counter,
        // not a lease epoch.)
        const std::uint64_t reserved = r.epoch;
        logical_clock_.counter = std::max(logical_clock_.counter, reserved);
        clock_reserved_ = std::max(clock_reserved_, reserved);
        break;
      }
      case store::WalRecordKind::kNote:
        break;
    }
  });
  reserve_clock();
  // Advance every recovered pair's epoch (durably, before any new grant can
  // expose it): all object leases granted by the pre-crash incarnation die
  // at their holder's next volume renewal, so the delayed-invalidation
  // queues that crashed with us need no persistence -- exactly the paper's
  // epoch mechanism, now load-bearing.
  for (auto& [key, ls] : leases_) advance_epoch(key.first, key.second, ls);
  // Grace window: until every pre-crash volume lease has expired at its
  // holder, node_safe may not treat absent obj_expires / lease entries as
  // "holder has no lease" -- those tables were wiped, not empty.  Two
  // padded lease lengths past recovery is safely past the last possible
  // pre-crash grant's expiry under worst-case rate drift.  (With infinite
  // leases -- dq-basic -- the window never closes: writes then always
  // invalidate through, which is the basic protocol's behavior anyway.)
  const sim::Duration dur = padded(cfg_->lease_length, cfg_->max_drift);
  grace_until_ = dur >= sim::kTimeInfinity ? sim::kTimeInfinity
                                           : local_now() + 2 * dur;
  if (grace_until_ < sim::kTimeInfinity) {
    world_.set_timer_local(self_, grace_until_,
                           [this] { end_recovery_grace(); });
  }
  m_recoveries_->inc();
  m_h_recovery_ms_->observe(sim::to_ms(world_.now() - crashed_at_));
  if (world_.tracing()) {
    world_.trace(self_, "recovery",
                 "replayed " + std::to_string(wal_->durable_records()) +
                     " records, " + std::to_string(leases_.size()) +
                     " epochs bumped");
  }
}

void IqsServer::reserve_clock() {
  if (wal_ == nullptr || logical_clock_.counter < clock_reserved_) return;
  clock_reserved_ =
      (logical_clock_.counter / kClockBlock + 1) * kClockBlock;
  // Synchronously durable: the mark must hit the medium before the counter
  // it covers can escape in an LC-read reply or a served value.
  wal_->append_durable(store::WalRecord::clock_mark(clock_reserved_));
}

void IqsServer::end_recovery_grace() {
  // Writes that spent the grace window blocked on unreachable OQS nodes can
  // now fall back to the lease-expiry cases of node_safe.
  std::vector<ObjectId> affected;
  for (auto& [o, en] : ensures_) {
    if (en.call != 0) affected.push_back(o);
  }
  for (ObjectId o : affected) poke_ensure(o);
}

void IqsServer::reply(const sim::Envelope& to, msg::Payload body) {
  world_.reply(self_, to, std::move(body));
}

// ---------------------------------------------------------------------------
// Client-facing handlers
// ---------------------------------------------------------------------------

void IqsServer::handle_lc_read(const sim::Envelope& env,
                               const msg::DqLcRead& m) {
  m_lc_reads_->inc();
  reply(env, msg::DqLcReadReply{m.object, logical_clock_});
}

void IqsServer::handle_write(const sim::Envelope& env, const msg::DqWrite& m) {
  m_writes_->inc();
  auto& os = obj(m.object);
  if (m.clock > os.last_write) {
    os.last_write = m.clock;
    os.value = m.value;
  }
  logical_clock_ = std::max(logical_clock_, m.clock);
  reserve_clock();

  if (wal_ != nullptr) {
    // The in-memory apply above may expose the value (via grant_object)
    // before it is durable; that is safe, because if a crash then loses the
    // record the write was never acked, and the checker forever accepts
    // values from incomplete writes.  What is NOT allowed is acking first:
    // every ack path lives in continue_write, gated on the record's sync.
    const store::Wal::Lsn lsn =
        wal_->append(store::WalRecord::put(m.object, m.value, m.clock));
    wal_->when_durable(lsn, [this, env, m] { continue_write(env, m); });
    return;
  }
  continue_write(env, m);
}

void IqsServer::continue_write(const sim::Envelope& env, const msg::DqWrite& m) {
  auto& en = ensures_[m.object];
  if (m.clock <= en.ensured) {
    // An OQS write quorum is already unable to read anything older.
    m_suppressed_->inc();
    m_h_suppress_->observe(0.0);
    reply(env, msg::DqWriteAck{m.object, m.clock});
    return;
  }
  // Register the waiter (dedupe retransmissions by src + rpc id).
  const bool duplicate = std::any_of(
      en.waiters.begin(), en.waiters.end(), [&](const Waiter& w) {
        return w.src == env.src && w.rpc_id == env.rpc_id;
      });
  if (!duplicate) en.waiters.push_back({env.src, env.rpc_id, m.clock});
  en.target = std::max(en.target, obj(m.object).last_write);
  if (en.call == 0) {
    // Fresh episode: the phase breakdown measures from the first blocked
    // write until the whole batch is ensured.
    en.started = world_.now();
    en.sent_invals = false;
    en.lease_expiry_involved = false;
  }
  start_or_extend_ensure(m.object);
}

void IqsServer::handle_inval_ack(const sim::Envelope& env,
                                 const msg::DqInvalAck& m) {
  auto& os = obj(m.object);
  auto& slot = os.last_ack[env.src];
  slot = std::max(slot, m.clock);
  poke_ensure(m.object);
}

// ---------------------------------------------------------------------------
// Ensure machine: make an OQS write quorum unable to read stale data
// ---------------------------------------------------------------------------

bool IqsServer::node_safe(NodeId j, ObjectId o, LogicalClock lc) {
  auto& os = obj(o);
  LogicalClock ack;
  if (auto it = os.last_ack.find(j); it != os.last_ack.end()) ack = it->second;

  // (a) j acked an invalidation at or above this write's clock.
  if (ack >= lc) return true;
  // (a') i knows j's copy is invalid: j acked an invalidation after the last
  // renewal of o by any OQS node, and can only re-validate by renewing from
  // an IQS read quorum (which would observe the new value).
  if (cfg_->suppression_enabled && os.last_read < ack) return true;
  // Cases (a'') and (b) read this node's lease bookkeeping and treat an
  // absent or expired entry as "j cannot be serving stale data".  During
  // the recovery grace window that inference is wrong -- obj_expires and
  // the lease table were wiped by the crash, so absence proves nothing and
  // j may still hold live pre-crash leases.  Both cases are skipped until
  // every pre-crash lease has provably expired; writes fall through to (c)
  // and invalidate an OQS write quorum outright.
  const bool grace = in_recovery_grace();
  // (a'') j holds no live object lease on o FROM THIS NODE -- it never
  // renewed o here, or its finite object lease (footnote 4) lapsed.
  // Condition C requires a valid object lease from every member of the read
  // quorum j uses, so j cannot serve o counting this node without first
  // object-renewing here, which returns the new value.  No invalidation and
  // no delayed-queue entry are needed.
  if (!grace) {
    auto it = os.obj_expires.find(j);
    if (it == os.obj_expires.end() || it->second <= local_now()) return true;
  }
  // (b) j's volume lease is expired (or was never granted): j cannot serve
  // the object until it renews the volume, at which point it will receive
  // the delayed invalidation enqueued here.
  const VolumeId v = cfg_->volumes.volume_of(o);
  if (!grace && !lease_valid(v, j)) {
    auto& ls = lease(v, j);
    const std::size_t before = ls.delayed.size();
    auto& slot = ls.delayed[o];
    slot = std::max(slot, os.last_write);
    if (ls.delayed.size() != before) m_delayed_depth_->add(+1);
    if (world_.tracing()) {
      world_.trace(self_, "lease",
                   "delayed inval for n" + std::to_string(j.value()) +
                       " obj " + std::to_string(o.value()));
    }
    maybe_gc_epoch(v, j);
    return true;
  }
  // (c) lease valid and copy possibly valid: an invalidation must be acked
  // (or the lease must expire) before this node counts toward the quorum.
  return false;
}

bool IqsServer::owq_invalid(ObjectId o, LogicalClock lc) {
  std::set<NodeId> safe;
  for (NodeId j : cfg_->oqs->members()) {
    if (node_safe(j, o, lc)) safe.insert(j);
  }
  return cfg_->oqs->is_quorum(quorum::Kind::kWrite, safe);
}

void IqsServer::start_or_extend_ensure(ObjectId o) {
  auto& en = ensures_[o];
  if (en.call != 0) {
    if (en.target <= en.call_target) {
      engine_.poke(en.call);
      return;
    }
    // A higher-clock write arrived while a machine was running: restart it
    // so fresh invalidations (carrying the new clock) go out immediately
    // instead of waiting for the next retransmission interval.
    engine_.cancel(en.call);
    en.call = 0;
  }
  en.call_target = en.target;
  // call_until may complete synchronously (condition already true); in that
  // case on_complete runs before the id is returned and we must not record
  // a stale call id.
  auto completed = std::make_shared<bool>(false);
  const rpc::CallId id = engine_.call_until(
      *cfg_->oqs, quorum::Kind::kWrite,
      /*build=*/
      [this, o](NodeId j) -> std::optional<msg::Payload> {
        auto& en2 = ensures_[o];
        if (node_safe(j, o, en2.target)) return std::nullopt;
        en2.sent_invals = true;
        return msg::DqInval{o, obj(o).last_write};
      },
      /*on_reply=*/
      [](NodeId, const msg::Payload&) {
        // Acks are applied in handle_inval_ack before the engine sees them.
      },
      /*done=*/
      [this, o] {
        auto it = ensures_.find(o);
        if (it == ensures_.end()) return true;
        return owq_invalid(o, it->second.target);
      },
      /*on_complete=*/
      [this, o, completed](bool ok) {
        DQ_INVARIANT(ok, "ensure machines have no deadline; cannot fail");
        *completed = true;
        finish_ensure(o);
      },
      [this] {
        // The ensure machine never gives up: a blocked write is eventually
        // unblocked by acks or by lease expiry (bounded by L).  Client-side
        // deadlines are the mechanism that turns partitions into rejections.
        rpc::QrpcOptions opts = cfg_->rpc;
        opts.deadline = sim::kTimeInfinity;
        return opts;
      }());
  if (world_.tracing()) {
    world_.trace(self_, "write", *completed
                                     ? "write-suppress obj " +
                                           std::to_string(o.value())
                                     : "write-through obj " +
                                           std::to_string(o.value()));
  }
  if (!*completed) ensures_[o].call = id;
}

void IqsServer::finish_ensure(ObjectId o) {
  auto it = ensures_.find(o);
  if (it == ensures_.end()) return;
  Ensure& en = it->second;
  en.call = 0;
  en.ensured = std::max(en.ensured, en.target);
  // Fold the episode into the write-phase breakdown: suppressed (no
  // invalidation needed), invalidation round trips, or blocked until a
  // volume lease expired.
  if (en.started != 0 || !en.waiters.empty()) {
    const double elapsed_ms = sim::to_ms(world_.now() - en.started);
    if (!en.sent_invals) {
      m_suppressed_->inc();
      m_h_suppress_->observe(elapsed_ms);
    } else if (en.lease_expiry_involved) {
      m_h_lease_wait_->observe(elapsed_ms);
    } else {
      m_h_invalidate_->observe(elapsed_ms);
    }
  }
  en.started = 0;
  en.sent_invals = false;
  en.lease_expiry_involved = false;
  std::vector<Waiter> ready;
  for (const Waiter& w : en.waiters) {
    DQ_INVARIANT(w.clock <= en.ensured,
                 "waiter above ensure target should be impossible");
    ready.push_back(w);
  }
  en.waiters.clear();
  // Keep `ensured` for fast-acking duplicate retransmissions; the entry is
  // small and bounded by the number of live objects.
  for (const Waiter& w : ready) {
    // dqlint:allow(proto-direct-send): deferred reply tagged with the
    // recorded waiter's rpc id -- the reply path when the envelope is gone.
    world_.send_tagged(self_, w.src, w.rpc_id, msg::DqWriteAck{o, w.clock},
                       /*is_reply=*/true);
  }
}

void IqsServer::poke_ensure(ObjectId o) {
  auto it = ensures_.find(o);
  if (it != ensures_.end() && it->second.call != 0) {
    engine_.poke(it->second.call);
  }
}

void IqsServer::poke_volume(VolumeId v) {
  // A lease on v expired: writes blocked on that lease may now complete.
  m_lease_expiries_->inc();
  std::vector<ObjectId> affected;
  for (auto& [o, en] : ensures_) {
    if (en.call != 0 && cfg_->volumes.volume_of(o) == v) {
      en.lease_expiry_involved = true;
      affected.push_back(o);
    }
  }
  for (ObjectId o : affected) poke_ensure(o);
}

// ---------------------------------------------------------------------------
// Lease handlers
// ---------------------------------------------------------------------------

IqsServer::LeaseState& IqsServer::lease(VolumeId v, NodeId j) {
  auto [it, inserted] = leases_.try_emplace({v, j});
  if (inserted && wal_ != nullptr) {
    // Record the pair's existence durably at epoch 0: recovery must know
    // every pair this incarnation ever granted to, so it can advance each
    // one past anything the pre-crash incarnation handed out.
    wal_->append_durable(
        store::WalRecord::epoch_record(v, j, it->second.epoch));
  }
  return it->second;
}

const IqsServer::LeaseState* IqsServer::find_lease(VolumeId v, NodeId j) const {
  auto it = leases_.find({v, j});
  return it == leases_.end() ? nullptr : &it->second;
}

bool IqsServer::lease_valid(VolumeId v, NodeId j) const {
  const LeaseState* ls = find_lease(v, j);
  return ls != nullptr && ls->expires > local_now();
}

msg::DqVolRenewReply IqsServer::grant_lease(NodeId j, VolumeId v,
                                            sim::Time requestor_time) {
  m_lease_grants_->inc();
  auto& ls = lease(v, j);
  msg::DqVolRenewReply r;
  r.volume = v;
  r.lease_length = cfg_->lease_length;
  r.epoch = ls.epoch;
  r.requestor_time = requestor_time;
  r.delayed.reserve(ls.delayed.size());
  for (const auto& [o, lc] : ls.delayed) r.delayed.push_back({o, lc});

  const sim::Duration dur = padded(cfg_->lease_length, cfg_->max_drift);
  ls.expires = (dur >= sim::kTimeInfinity) ? sim::kTimeInfinity
                                           : local_now() + dur;
  ls.expiry_timer.cancel();
  if (ls.expires < sim::kTimeInfinity) {
    ls.expiry_timer = world_.set_timer_local(
        self_, ls.expires, [this, v] { poke_volume(v); });
  }
  if (world_.tracing()) {
    world_.trace(self_, "lease",
                 "grant vol " + std::to_string(v.value()) + " to n" +
                     std::to_string(j.value()) + " (" +
                     std::to_string(r.delayed.size()) + " delayed)");
  }
  return r;
}

void IqsServer::advance_epoch(VolumeId v, NodeId j, LeaseState& ls) {
  if (wal_ != nullptr) {
    // Durable BEFORE the counter moves: were the bump record lost, a later
    // recovery could re-issue the pre-crash epoch and stale object leases
    // would revalidate at their holder's next volume renewal.
    wal_->append_durable(
        store::WalRecord::epoch_record(v, j, ls.epoch + 1));
  }
  // dqlint:allow(durable-state): the matching kEpoch record was synced on
  // the line above; this helper is the only place an epoch counter moves.
  ++ls.epoch;
  m_epoch_bumps_->inc();
  if (world_.tracing()) {
    world_.trace(self_, "lease",
                 "epoch bump for n" + std::to_string(j.value()) + " vol " +
                     std::to_string(v.value()) + " -> " +
                     std::to_string(ls.epoch));
  }
}

void IqsServer::maybe_gc_epoch(VolumeId v, NodeId j) {
  auto& ls = lease(v, j);
  if (ls.delayed.size() <= cfg_->max_delayed_per_volume) return;
  // Only safe while j holds no valid lease: after the epoch advances, j's
  // object leases from this node die at its next volume renewal.
  if (ls.expires > local_now()) return;
  m_delayed_depth_->add(-static_cast<std::int64_t>(ls.delayed.size()));
  ls.delayed.clear();
  advance_epoch(v, j, ls);
}

void IqsServer::handle_vol_renew(const sim::Envelope& env,
                                 const msg::DqVolRenew& m) {
  reply(env, grant_lease(env.src, m.volume, m.requestor_time));
}

void IqsServer::handle_vol_renew_ack(const sim::Envelope& env,
                                     const msg::DqVolRenewAck& m) {
  auto it = leases_.find({m.volume, env.src});
  if (it == leases_.end()) return;
  LeaseState& ls = it->second;
  std::vector<ObjectId> confirmed;
  for (auto d = ls.delayed.begin(); d != ls.delayed.end();) {
    if (d->second <= m.applied_up_to) {
      // j confirmed it applied this delayed invalidation: its cached copy is
      // now invalid up to the queued clock -- record the implied ack.
      auto& slot = obj(d->first).last_ack[env.src];
      slot = std::max(slot, d->second);
      confirmed.push_back(d->first);
      d = ls.delayed.erase(d);
      m_delayed_depth_->add(-1);
    } else {
      ++d;
    }
  }
  for (ObjectId o : confirmed) poke_ensure(o);
}

msg::DqObjRenewReply IqsServer::grant_object(NodeId j, ObjectId o,
                                             sim::Time requestor_time) {
  auto& os = obj(o);
  os.last_read = os.last_write;
  const sim::Duration dur = padded(cfg_->object_lease_length, cfg_->max_drift);
  auto& slot = os.obj_expires[j];
  const sim::Time exp = dur >= sim::kTimeInfinity ? sim::kTimeInfinity
                                                  : local_now() + dur;
  slot = std::max(slot, exp);
  const VolumeId v = cfg_->volumes.volume_of(o);
  return msg::DqObjRenewReply{o,
                              os.value,
                              os.last_write,
                              lease(v, j).epoch,
                              cfg_->object_lease_length,
                              requestor_time};
}

void IqsServer::handle_obj_renew(const sim::Envelope& env,
                                 const msg::DqObjRenew& m) {
  reply(env, grant_object(env.src, m.object, m.requestor_time));
}

void IqsServer::handle_vol_obj_renew(const sim::Envelope& env,
                                     const msg::DqVolObjRenew& m) {
  msg::DqVolObjRenewReply r;
  r.vol = grant_lease(env.src, m.volume, m.requestor_time);
  r.obj = grant_object(env.src, m.object, m.requestor_time);
  reply(env, std::move(r));
}

void IqsServer::handle_vol_fetch(const sim::Envelope& env,
                                 const msg::DqVolFetch& m) {
  // Bulk revalidation: one volume lease plus object grants for everything
  // this node stores in the volume.  The reply is bounded: a volume with
  // more objects than the cap falls back to per-object renewals for the
  // tail (the requestor's read machine handles those as ordinary misses).
  constexpr std::size_t kMaxObjectsPerFetch = 1024;
  msg::DqVolFetchReply r;
  r.vol = grant_lease(env.src, m.volume, m.requestor_time);
  for (const auto& [o, os] : objects_) {
    if (cfg_->volumes.volume_of(o) != m.volume) continue;
    if (r.objects.size() >= kMaxObjectsPerFetch) break;
    r.objects.push_back(grant_object(env.src, o, m.requestor_time));
  }
  reply(env, std::move(r));
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

LogicalClock IqsServer::last_write_clock(ObjectId o) const {
  auto it = objects_.find(o);
  return it == objects_.end() ? LogicalClock{} : it->second.last_write;
}

LogicalClock IqsServer::last_read_clock(ObjectId o) const {
  auto it = objects_.find(o);
  return it == objects_.end() ? LogicalClock{} : it->second.last_read;
}

LogicalClock IqsServer::last_ack_clock(ObjectId o, NodeId j) const {
  auto it = objects_.find(o);
  if (it == objects_.end()) return {};
  auto jt = it->second.last_ack.find(j);
  return jt == it->second.last_ack.end() ? LogicalClock{} : jt->second;
}

Value IqsServer::value_of(ObjectId o) const {
  auto it = objects_.find(o);
  return it == objects_.end() ? Value{} : it->second.value;
}

msg::Epoch IqsServer::epoch_of(VolumeId v, NodeId j) const {
  const LeaseState* ls = find_lease(v, j);
  return ls == nullptr ? 0 : ls->epoch;
}

sim::Time IqsServer::lease_expiry(VolumeId v, NodeId j) const {
  const LeaseState* ls = find_lease(v, j);
  return ls == nullptr ? 0 : ls->expires;
}

std::size_t IqsServer::delayed_queue_size(VolumeId v, NodeId j) const {
  const LeaseState* ls = find_lease(v, j);
  return ls == nullptr ? 0 : ls->delayed.size();
}

}  // namespace dq::core
