// IQS server: processes client writes and grants volume/object leases to
// OQS nodes (paper Figure 4).
//
// Per-object callback state:
//   lastWriteLC_o   clock of the last write applied here
//   lastReadLC_o    lastWriteLC_o at the time of the last OQS renewal of o
//   lastAckLC_o[j]  highest invalidation clock acked by OQS node j
//
// Per-(volume, OQS node) lease state:
//   expires[v][j]   when v's lease at j expires (in THIS node's local time,
//                   padded by (1 + maxDrift) -- see note below)
//   delayed[v][j]   invalidations j must apply before its next lease on v
//   epoch[v][j]     advanced to garbage-collect delayed[v][j]
//
// Drift-safety note.  The paper records expires = L + currentTime on the
// grantor while the requestor uses t0 + L*(1 - maxDrift).  With *rate* drift
// those two windows are not strictly nested (a fast grantor clock can expire
// the grant before a slow requestor clock does), so we additionally pad the
// grantor's record to L*(1 + maxDrift).  The invariant tests exercise this
// with adversarial clock rates.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/version.h"
#include "core/config.h"
#include "msg/wire.h"
#include "rpc/qrpc.h"
#include "sim/world.h"

namespace dq::core {

class IqsServer {
 public:
  IqsServer(sim::World& world, NodeId self,
            std::shared_ptr<const DqConfig> config);

  // Handle an envelope addressed to this node.  Returns true if consumed.
  bool on_message(const sim::Envelope& env);

  // Crash-restart.  Without a WAL (cfg.wal unset) this is the legacy
  // durable-fiction model: only in-flight ensure-machines are dropped and
  // everything else behaves as if written through.  With a WAL, on_crash
  // wipes ALL volatile state (lease tables, delayed-invalidation queues,
  // callback state, pending machines) and truncates the log's unsynced
  // tail; on_recover replays the log to rebuild store contents and the
  // logical clock, advances every recovered (volume, node) epoch so
  // pre-crash object leases are implicitly invalid, and opens a recovery
  // grace window during which writes must invalidate through (see
  // docs/PROTOCOL.md "Crash recovery & durability").
  void on_crash();
  void on_recover();

  // --- introspection for tests and invariant checkers ---------------------
  [[nodiscard]] LogicalClock last_write_clock(ObjectId o) const;
  [[nodiscard]] LogicalClock last_read_clock(ObjectId o) const;
  [[nodiscard]] LogicalClock last_ack_clock(ObjectId o, NodeId j) const;
  [[nodiscard]] Value value_of(ObjectId o) const;
  [[nodiscard]] msg::Epoch epoch_of(VolumeId v, NodeId j) const;
  [[nodiscard]] sim::Time lease_expiry(VolumeId v, NodeId j) const;
  [[nodiscard]] std::size_t delayed_queue_size(VolumeId v, NodeId j) const;
  // Is the volume lease for j still valid by this node's local clock?
  [[nodiscard]] bool lease_valid(VolumeId v, NodeId j) const;
  // Number of in-flight invalidation machines (writes not yet safe).
  [[nodiscard]] std::size_t pending_ensures() const {
    std::size_t n = 0;
    for (const auto& [o, en] : ensures_) n += en.call != 0 ? 1 : 0;
    return n;
  }
  // Inside the post-recovery window where node_safe may not trust its
  // (wiped) lease bookkeeping?  Always false without a WAL.
  [[nodiscard]] bool in_recovery_grace() const {
    return wal_ != nullptr && grace_until_ > local_now();
  }
  [[nodiscard]] store::Wal* wal() { return wal_.get(); }

 private:
  struct ObjState {
    LogicalClock last_write;
    LogicalClock last_read;
    Value value;
    std::map<NodeId, LogicalClock> last_ack;
    // When each OQS node's object lease expires (padded local time).
    // Absent or past => that node holds no usable object lease from this
    // node and needs no invalidation.  With infinite object leases
    // (callbacks, the paper's default) a grant never expires.
    std::map<NodeId, sim::Time> obj_expires;
  };

  struct LeaseState {
    sim::Time expires = 0;            // local time, padded
    msg::Epoch epoch = 0;
    std::map<ObjectId, LogicalClock> delayed;  // max clock per object
    sim::TimerToken expiry_timer;
  };

  struct Waiter {
    NodeId src;
    RequestId rpc_id;
    LogicalClock clock;
  };

  struct Ensure {
    rpc::CallId call = 0;
    LogicalClock target;          // highest write clock being ensured
    LogicalClock call_target;     // target the running call was started for
    LogicalClock ensured;         // highest clock already ensured
    std::vector<Waiter> waiters;
    // Phase accounting for the write-latency breakdown: when the episode's
    // first blocked write arrived, whether invalidations went out, and
    // whether a lease expiry was needed to unblock it.
    sim::Time started = 0;
    bool sent_invals = false;
    bool lease_expiry_involved = false;
  };

  // --- message handlers ----------------------------------------------------
  void handle_lc_read(const sim::Envelope& env, const msg::DqLcRead& m);
  void handle_write(const sim::Envelope& env, const msg::DqWrite& m);
  // Second half of handle_write, runs once the write's WAL record is
  // durable (immediately when no WAL is configured): suppression fast path,
  // waiter registration, ensure machine.
  void continue_write(const sim::Envelope& env, const msg::DqWrite& m);
  void handle_inval_ack(const sim::Envelope& env, const msg::DqInvalAck& m);
  void handle_vol_renew(const sim::Envelope& env, const msg::DqVolRenew& m);
  void handle_vol_renew_ack(const sim::Envelope& env,
                            const msg::DqVolRenewAck& m);
  void handle_obj_renew(const sim::Envelope& env, const msg::DqObjRenew& m);
  void handle_vol_obj_renew(const sim::Envelope& env,
                            const msg::DqVolObjRenew& m);
  void handle_vol_fetch(const sim::Envelope& env, const msg::DqVolFetch& m);

  // --- ensure machine (invalidate an OQS write quorum) ---------------------
  // Is OQS node j guaranteed unable to serve a version of o older than lc?
  // May lazily enqueue a delayed invalidation when j's lease is expired.
  bool node_safe(NodeId j, ObjectId o, LogicalClock lc);
  bool owq_invalid(ObjectId o, LogicalClock lc);
  void start_or_extend_ensure(ObjectId o);
  void finish_ensure(ObjectId o);
  void poke_ensure(ObjectId o);
  void poke_volume(VolumeId v);

  // --- lease helpers --------------------------------------------------------
  LeaseState& lease(VolumeId v, NodeId j);
  [[nodiscard]] const LeaseState* find_lease(VolumeId v, NodeId j) const;
  msg::DqVolRenewReply grant_lease(NodeId j, VolumeId v,
                                   sim::Time requestor_time);
  msg::DqObjRenewReply grant_object(NodeId j, ObjectId o,
                                    sim::Time requestor_time);
  void maybe_gc_epoch(VolumeId v, NodeId j);
  // The only path that moves an epoch counter: the matching kEpoch record
  // is made durable before the in-memory counter advances, so a recovering
  // node can never re-issue a pre-crash epoch.
  void advance_epoch(VolumeId v, NodeId j, LeaseState& ls);
  void end_recovery_grace();

  ObjState& obj(ObjectId o) { return objects_[o]; }
  [[nodiscard]] sim::Time local_now() const {
    return world_.local_now(self_);
  }
  void reply(const sim::Envelope& to, msg::Payload body);

  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const DqConfig> cfg_;
  rpc::QrpcEngine engine_;

  // Durability (null unless cfg.wal is set).  grace_until_ is the local
  // time until which node_safe must not trust absent lease bookkeeping:
  // two padded lease lengths past recovery, by which point every pre-crash
  // volume lease has expired at its holder.
  std::unique_ptr<store::Wal> wal_;
  sim::Time grace_until_ = 0;
  sim::Time crashed_at_ = 0;  // global time of the last crash

  LogicalClock logical_clock_;  // >= every lastWriteLC on this node
  // Durable logical-clock reservation (WAL mode only): every counter this
  // node has ever exposed -- in an LC-read reply or applied to the store --
  // is < clock_reserved_, and the reservation (a kClockMark record) is
  // durable before the counter escapes.  Recovery restores the clock to the
  // reserved mark, so a crash can never regress the counter below a value a
  // pre-crash mint may have observed.  Without this, an orphaned pre-crash
  // write (applied but never acked) could carry a higher clock than a
  // post-crash retry of the same logical write, and a residual OQS object
  // lease could keep serving the orphan while invalidations with the lower
  // retry clock fail to clear it.  Counters are reserved in blocks so the
  // mark costs one durable record per kClockBlock writes, not per write.
  static constexpr std::uint64_t kClockBlock = 64;
  std::uint64_t clock_reserved_ = 0;
  void reserve_clock();
  // Ordered maps throughout: handle_vol_fetch walks objects_ (grant order is
  // on the wire) and poke_volume walks ensures_ (poke order shapes the event
  // schedule), so iteration order must not depend on a hash implementation
  // (dqlint rule `det-unordered-container`).
  std::map<ObjectId, ObjState> objects_;
  std::map<std::pair<VolumeId, NodeId>, LeaseState> leases_;
  std::map<ObjectId, Ensure> ensures_;

  // Instruments (registered once in the constructor; see obs/metrics.h).
  obs::Counter* m_load_;          // iqs.load.n<id>: requests this node handled
  obs::Counter* m_writes_;
  obs::Counter* m_lc_reads_;
  obs::Counter* m_renewals_;
  obs::Counter* m_lease_grants_;
  obs::Counter* m_lease_expiries_;
  obs::Counter* m_epoch_bumps_;
  obs::Counter* m_suppressed_;
  obs::Gauge* m_delayed_depth_;
  obs::Histogram* m_h_suppress_;
  obs::Histogram* m_h_invalidate_;
  obs::Histogram* m_h_lease_wait_;
  // Registered only when a WAL is configured, so WAL-less reports keep
  // their exact byte layout.
  obs::Counter* m_recoveries_ = nullptr;
  obs::Histogram* m_h_recovery_ms_ = nullptr;
};

}  // namespace dq::core
