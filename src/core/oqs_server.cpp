#include "core/oqs_server.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "msg/epoch.h"
#include "sim/processing.h"

namespace dq::core {

OqsServer::OqsServer(sim::World& world, NodeId self,
                     std::shared_ptr<const DqConfig> config)
    : world_(world), self_(self), cfg_(std::move(config)),
      engine_(world_, self_),
      m_load_(&world_.metrics().counter(obs::node_metric("oqs.load", self_.value()))),
      m_hits_(&world_.metrics().counter("oqs.read.hits")),
      m_misses_(&world_.metrics().counter("oqs.read.misses")),
      m_invals_(&world_.metrics().counter("oqs.invalidations")),
      m_h_miss_(&world_.metrics().histogram("dqvl.read.miss_ms")) {
  DQ_INVARIANT(cfg_->iqs && cfg_->oqs, "DqConfig must name both systems");
  DQ_INVARIANT(cfg_->oqs->is_member(self_), "OqsServer on a non-member node");
  if (cfg_->wal) m_recoveries_ = &world_.metrics().counter("oqs.recoveries");
}

bool OqsServer::on_message(const sim::Envelope& env) {
  if (std::get_if<msg::DqRead>(&env.body) != nullptr) {
    // Client-facing: pays the per-request processing delay.
    sim::defer_processing(world_, self_, [this, env] {
      handle_read(env, std::get<msg::DqRead>(env.body));
    });
    return true;
  }
  if (const auto* m = std::get_if<msg::DqInval>(&env.body)) {
    handle_inval(env, *m);
    return true;
  }
  // Renewal replies: apply the (monotone, idempotent) state updates first,
  // then let the QRPC engine account the reply and re-check its predicate.
  // Late replies whose call already finished still freshen our leases.
  if (const auto* m = std::get_if<msg::DqVolRenewReply>(&env.body)) {
    apply_vol_renew_reply(env.src, *m);
    engine_.on_reply(env);
    poke_pending();
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolRenewBatchReply>(&env.body)) {
    std::vector<msg::DqVolRenewAck> acks;
    for (const msg::DqVolRenewReply& r : m->replies) {
      apply_vol_renew_reply(env.src, r, &acks);
    }
    if (!acks.empty()) {
      // dqlint:allow(proto-direct-send): one-way ack batch; no reply is
      // expected, so the QRPC retransmission machinery does not apply.
      world_.send(self_, env.src, RequestId(0),
                  msg::DqVolRenewAckBatch{std::move(acks)});
    }
    poke_pending();
    return true;
  }
  if (const auto* m = std::get_if<msg::DqObjRenewReply>(&env.body)) {
    apply_obj_renew_reply(env.src, *m);
    engine_.on_reply(env);
    poke_pending();
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolFetchReply>(&env.body)) {
    // Volume part first (delayed invalidations), then every object grant.
    apply_vol_renew_reply(env.src, m->vol);
    for (const msg::DqObjRenewReply& o : m->objects) {
      apply_obj_renew_reply(env.src, o);
    }
    engine_.on_reply(env);
    poke_pending();
    return true;
  }
  if (const auto* m = std::get_if<msg::DqVolObjRenewReply>(&env.body)) {
    // Volume part first: its delayed invalidations must land before the
    // object lease becomes usable (section 3.2).
    apply_vol_renew_reply(env.src, m->vol);
    apply_obj_renew_reply(env.src, m->obj);
    engine_.on_reply(env);
    poke_pending();
    return true;
  }
  return false;
}

void OqsServer::on_crash() {
  // Everything here is a cache; the protocol re-derives it via renewals.
  engine_.cancel_all();
  store_.clear();
  obj_state_.clear();
  vol_state_.clear();
  pending_.clear();
  proactive_active_.clear();
}

void OqsServer::on_recover() {
  // Nothing to replay: an OQS replica's store, lease tables, and pending
  // reads are all caches over IQS state.  Cold reads after a restart miss
  // and renew, which is the protocol's ordinary miss path.
  if (m_recoveries_ != nullptr) m_recoveries_->inc();
}

// ---------------------------------------------------------------------------
// Condition C
// ---------------------------------------------------------------------------

bool OqsServer::volume_lease_valid(VolumeId v, NodeId i) const {
  auto it = vol_state_.find({v, i});
  return it != vol_state_.end() && it->second.expires > local_now();
}

bool OqsServer::object_lease_valid(ObjectId o, NodeId i) const {
  auto ot = obj_state_.find(o);
  if (ot == obj_state_.end()) return false;
  auto it = ot->second.find(i);
  if (it == ot->second.end() || !it->second.valid) return false;
  if (it->second.expires <= local_now()) return false;  // finite obj lease
  const VolumeId v = cfg_->volumes.volume_of(o);
  auto vt = vol_state_.find({v, i});
  const msg::Epoch vol_epoch = vt == vol_state_.end() ? 0 : vt->second.epoch;
  return msg::epoch_matches(it->second.epoch, vol_epoch);
}

bool OqsServer::condition_c(ObjectId o) const {
  const VolumeId v = cfg_->volumes.volume_of(o);
  std::set<NodeId> held;
  for (NodeId i : cfg_->iqs->members()) {
    if (volume_lease_valid(v, i) && object_lease_valid(o, i)) held.insert(i);
  }
  return cfg_->iqs->is_quorum(quorum::Kind::kRead, held);
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void OqsServer::handle_read(const sim::Envelope& env, const msg::DqRead& m) {
  m_load_->inc();
  PendingRead pr{env.src, env.rpc_id, m.object, 0, world_.now()};
  if (condition_c(m.object)) {
    if (world_.tracing()) {
      world_.trace(self_, "read",
                   "hit obj " + std::to_string(m.object.value()));
    }
    m_hits_->inc();
    reply_to_read(pr);  // read hit: answer from cache, no IQS traffic
    return;
  }
  if (world_.tracing()) {
    world_.trace(self_, "read",
                 "miss obj " + std::to_string(m.object.value()));
  }
  m_misses_->inc();
  const std::uint64_t key = next_pending_++;
  pending_.emplace(key, pr);
  start_read_machine(key);
}

void OqsServer::reply_to_read(const PendingRead& pr) {
  // Value: highest-clock update received (store keeps exactly that).  Clock:
  // max logicalClock_{o,i} over IQS nodes with valid_{o,i} (Figure 5).
  LogicalClock lc;
  if (auto ot = obj_state_.find(pr.object); ot != obj_state_.end()) {
    for (const auto& [i, st] : ot->second) {
      if (st.valid) lc = std::max(lc, st.clock);
    }
  }
  const VersionedValue vv = store_.get(pr.object);
  // dqlint:allow(proto-direct-send): deferred reply tagged with the original
  // rpc id -- the reply path for a handler that no longer holds the envelope.
  world_.send_tagged(self_, pr.src, pr.rpc_id,
                     msg::DqReadReply{pr.object, vv.value, lc},
                     /*is_reply=*/true);
}

void OqsServer::start_read_machine(std::uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  const ObjectId o = it->second.object;
  const VolumeId v = cfg_->volumes.volume_of(o);

  auto completed = std::make_shared<bool>(false);
  const rpc::CallId id = engine_.call_until(
      *cfg_->iqs, quorum::Kind::kRead,
      /*build=*/
      [this, o, v](NodeId i) -> std::optional<msg::Payload> {
        const bool vol_ok = volume_lease_valid(v, i);
        const bool obj_ok = object_lease_valid(o, i);
        if (!vol_ok && !obj_ok) {
          return msg::DqVolObjRenew{v, o, local_now()};
        }
        if (!vol_ok) return msg::DqVolRenew{v, local_now()};
        if (!obj_ok) return msg::DqObjRenew{o, local_now()};
        return std::nullopt;
      },
      /*on_reply=*/[](NodeId, const msg::Payload&) {},
      /*done=*/[this, o] { return condition_c(o); },
      /*on_complete=*/
      [this, key, completed](bool ok) {
        *completed = true;
        finish_read(key, ok);
      },
      cfg_->rpc);
  if (!*completed) {
    if (auto it2 = pending_.find(key); it2 != pending_.end()) {
      it2->second.call = id;
    }
  }
}

void OqsServer::finish_read(std::uint64_t key, bool ok) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingRead pr = it->second;
  pending_.erase(it);
  if (!ok) return;  // deadline exceeded; the service client's QRPC handles it
  m_h_miss_->observe(sim::to_ms(world_.now() - pr.started));
  reply_to_read(pr);
  if (cfg_->proactive_volume_renewal) {
    maybe_schedule_proactive_renewal(cfg_->volumes.volume_of(pr.object));
  }
}

void OqsServer::poke_pending() {
  // State changed (renewal reply or invalidation): any pending read's
  // condition C may have flipped.  Engine pokes re-evaluate `done`.
  std::vector<rpc::CallId> calls;
  calls.reserve(pending_.size());
  for (const auto& [k, pr] : pending_) {
    if (pr.call != 0) calls.push_back(pr.call);
  }
  for (rpc::CallId c : calls) engine_.poke(c);
}

// ---------------------------------------------------------------------------
// State application
// ---------------------------------------------------------------------------

sim::Duration OqsServer::conservative_lease(sim::Duration granted) const {
  if (granted >= sim::kTimeInfinity) return sim::kTimeInfinity;
  return static_cast<sim::Duration>(static_cast<double>(granted) *
                                    (1.0 - cfg_->max_drift));
}

void OqsServer::apply_vol_renew_reply(NodeId i, const msg::DqVolRenewReply& r,
                                      std::vector<msg::DqVolRenewAck>*
                                          batch_acks) {
  auto& vs = vol_state_[{r.volume, i}];
  // Conservative expiry: from OUR send time t0, shortened by worst-case
  // drift (Figure 5, processVLRenewReply).
  const sim::Duration eff = conservative_lease(r.lease_length);
  const sim::Time exp = eff >= sim::kTimeInfinity ? sim::kTimeInfinity
                                                  : r.requestor_time + eff;
  vs.expires = std::max(vs.expires, exp);
  vs.epoch = msg::epoch_max(vs.epoch, r.epoch);

  LogicalClock max_applied;
  for (const msg::Invalidation& inv : r.delayed) {
    apply_invalidation(i, inv.object, inv.clock);
    max_applied = std::max(max_applied, inv.clock);
  }
  if (!r.delayed.empty()) {
    if (batch_acks != nullptr) {
      batch_acks->push_back({r.volume, max_applied});
    } else {
      // dqlint:allow(proto-direct-send): one-way delayed-invalidation ack;
      // loss is tolerated (the grantor re-sends the queue at next renewal).
      world_.send(self_, i, RequestId(0),
                  msg::DqVolRenewAck{r.volume, max_applied});
    }
  }
}

void OqsServer::apply_obj_renew_reply(NodeId i, const msg::DqObjRenewReply& r) {
  auto& st = obj_state_[r.object][i];
  st.epoch = msg::epoch_max(st.epoch, r.epoch);
  if (st.clock <= r.clock) {
    st.clock = r.clock;
    st.valid = true;
    // Conservative object-lease expiry, measured from OUR send time
    // (kTimeInfinity when the deployment uses callbacks).
    const sim::Duration eff = conservative_lease(r.lease_length);
    st.expires = eff >= sim::kTimeInfinity
                     ? sim::kTimeInfinity
                     : std::max(st.expires == sim::kTimeInfinity
                                    ? 0
                                    : st.expires,
                                r.requestor_time + eff);
    // Keep value_o at the highest clock seen in any update.
    store_.apply(r.object, r.value, r.clock);
  }
}

void OqsServer::apply_invalidation(NodeId i, ObjectId o, LogicalClock lc) {
  auto& st = obj_state_[o][i];
  if (lc > st.clock) {
    st.clock = lc;
    st.valid = false;
  }
}

void OqsServer::handle_inval(const sim::Envelope& env, const msg::DqInval& m) {
  m_load_->inc();
  m_invals_->inc();
  apply_invalidation(env.src, m.object, m.clock);
  world_.reply(self_, env, msg::DqInvalAck{m.object, m.clock});
  poke_pending();
}

// ---------------------------------------------------------------------------
// Proactive volume renewal (ablation; keeps read hits local by renewing
// leases slightly before they expire instead of on the first miss)
// ---------------------------------------------------------------------------

void OqsServer::prefetch(VolumeId v, std::function<void(bool ok)> done) {
  // Fetch from EVERY IQS member: an object written to a write quorum is
  // stored by exactly those members, and condition C needs object grants
  // from a full read quorum -- so only the union of all members' volume
  // contents guarantees hits for everything.  Best effort: a member that
  // stays silent past the deadline just leaves some objects cold.
  if (fetch_all_ == nullptr) {
    fetch_all_ = quorum::ThresholdQuorum::rowa(cfg_->iqs->members());
  }
  rpc::QrpcOptions opts = cfg_->rpc;
  if (opts.deadline == sim::kTimeInfinity) opts.deadline = sim::seconds(8);
  engine_.call(
      *fetch_all_, quorum::Kind::kWrite,  // "write" quorum of ROWA = all
      [this, v](NodeId) -> std::optional<msg::Payload> {
        return msg::DqVolFetch{v, local_now()};
      },
      [](NodeId, const msg::Payload&) {},
      [done = std::move(done)](bool ok) { done(ok); }, opts);
}

void OqsServer::run_batched_renewal_round() {
  // One DqVolRenewBatch per IQS member, covering every volume this node
  // holds (or held) a lease on from that member.  Rounds run every third of
  // a lease, so a lease is refreshed at least two-thirds of a lease before
  // expiry -- comfortably ahead of renewal round trips and drift.
  std::map<NodeId, msg::DqVolRenewBatch> batches;
  for (const auto& [key, vs] : vol_state_) {
    const auto& [v, i] = key;
    batches[i].renewals.push_back({v, local_now()});
  }
  for (auto& [i, batch] : batches) {
    // dqlint:allow(proto-direct-send): periodic fire-and-forget renewal
    // batch; replies route through on_message and a lost round is retried
    // by the next timer tick, so QRPC would only duplicate that machinery.
    world_.send(self_, i, RequestId(0), std::move(batch));
  }
  const sim::Duration period = std::max<sim::Duration>(
      conservative_lease(cfg_->lease_length) / 3, sim::milliseconds(1));
  world_.set_timer(self_, period, [this] { run_batched_renewal_round(); });
}

void OqsServer::maybe_schedule_proactive_renewal(VolumeId v) {
  if (cfg_->is_basic()) return;  // infinite leases never need renewal
  if (cfg_->batch_volume_renewals) {
    // The periodic batched loop covers every leased volume; start it once.
    if (proactive_active_.insert(VolumeId(UINT32_MAX)).second) {
      run_batched_renewal_round();
    }
    return;
  }
  if (!proactive_active_.insert(v).second) return;
  // Renew at 3/4 of the (conservative) lease length, repeatedly.
  const sim::Duration period =
      std::max<sim::Duration>(conservative_lease(cfg_->lease_length) * 3 / 4,
                              sim::milliseconds(1));
  world_.set_timer(self_, period, [this, v, period] {
    proactive_active_.erase(v);
    engine_.call_until(
        *cfg_->iqs, quorum::Kind::kRead,
        [this, v](NodeId i) -> std::optional<msg::Payload> {
          // Renew from everyone we will count on; skip nodes whose lease is
          // still comfortably fresh (more than half the lease remaining).
          auto it = vol_state_.find({v, i});
          const sim::Time fresh_until =
              local_now() + conservative_lease(cfg_->lease_length) / 2;
          if (it != vol_state_.end() && it->second.expires > fresh_until) {
            return std::nullopt;
          }
          return msg::DqVolRenew{v, local_now()};
        },
        [](NodeId, const msg::Payload&) {},
        [this, v] {
          std::set<NodeId> held;
          for (NodeId i : cfg_->iqs->members()) {
            if (volume_lease_valid(v, i)) held.insert(i);
          }
          return cfg_->iqs->is_quorum(quorum::Kind::kRead, held);
        },
        [this, v](bool) { maybe_schedule_proactive_renewal(v); },
        cfg_->rpc);
  });
}

}  // namespace dq::core
