// OQS server: serves client reads from its cache, gated by condition C
// (paper Figure 5 and section 3.2):
//
//   C(o): there exists an IQS read quorum irq such that this node holds,
//         from every member of irq, BOTH a currently valid volume lease on
//         o's volume AND a valid object lease on o (matching epoch, valid
//         flag set).
//
// When C fails, the node runs the paper's QRPC variation against the IQS:
// per target it sends a combined volume+object renewal, a volume renewal, or
// an object renewal depending on which half is missing, and keeps
// retransmitting to fresh quorums until C holds.
//
// All OQS state is soft: a crash clears it and the node simply re-renews.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/version.h"
#include "core/config.h"
#include "msg/wire.h"
#include "rpc/qrpc.h"
#include "sim/world.h"
#include "store/object_store.h"

namespace dq::core {

class OqsServer {
 public:
  OqsServer(sim::World& world, NodeId self,
            std::shared_ptr<const DqConfig> config);

  bool on_message(const sim::Envelope& env);
  void on_crash();
  // An OQS node recovers empty-handed on purpose: every table here is soft
  // state that renewals re-derive, so recovery is just accounting (the
  // counter exists only when the deployment runs with a WAL configured).
  void on_recover();

  // Bulk revalidation: fetch the whole volume (lease + every stored object)
  // from an IQS read quorum, so subsequent reads of its objects are hits.
  // `done` fires once a full read quorum has answered.
  void prefetch(VolumeId v, std::function<void(bool ok)> done);

  // --- introspection -------------------------------------------------------
  // Condition C for object o, evaluated on this node's local clock now.
  [[nodiscard]] bool condition_c(ObjectId o) const;
  [[nodiscard]] bool volume_lease_valid(VolumeId v, NodeId i) const;
  [[nodiscard]] bool object_lease_valid(ObjectId o, NodeId i) const;
  [[nodiscard]] VersionedValue cached(ObjectId o) const {
    return store_.get(o);
  }
  [[nodiscard]] std::size_t pending_reads() const { return pending_.size(); }

 private:
  struct PerIqsObj {
    msg::Epoch epoch = 0;        // epoch_{o,i}
    LogicalClock clock;          // logicalClock_{o,i}
    bool valid = false;          // valid_{o,i}
    // Object-lease expiry (local clock); kTimeInfinity for callbacks.
    sim::Time expires = sim::kTimeInfinity;
  };
  struct PerIqsVol {
    msg::Epoch epoch = 0;        // epoch_{v,i}
    sim::Time expires = 0;       // expires_{v,i}, local clock
  };
  struct PendingRead {
    NodeId src;
    RequestId rpc_id;
    ObjectId object;
    rpc::CallId call = 0;
    sim::Time started = 0;  // when the miss began (for dqvl.read.miss_ms)
  };

  // --- handlers -------------------------------------------------------------
  void handle_read(const sim::Envelope& env, const msg::DqRead& m);
  void handle_inval(const sim::Envelope& env, const msg::DqInval& m);
  // When `batch_acks` is non-null, per-volume acknowledgements are
  // collected there instead of sent individually.
  void apply_vol_renew_reply(NodeId i, const msg::DqVolRenewReply& r,
                             std::vector<msg::DqVolRenewAck>* batch_acks =
                                 nullptr);
  void apply_obj_renew_reply(NodeId i, const msg::DqObjRenewReply& r);
  void apply_invalidation(NodeId i, ObjectId o, LogicalClock lc);

  void start_read_machine(std::uint64_t key);
  void finish_read(std::uint64_t key, bool ok);
  void poke_pending();
  void reply_to_read(const PendingRead& pr);

  void maybe_schedule_proactive_renewal(VolumeId v);
  void run_batched_renewal_round();

  [[nodiscard]] sim::Time local_now() const {
    return world_.local_now(self_);
  }
  [[nodiscard]] sim::Duration conservative_lease(sim::Duration granted) const;

  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const DqConfig> cfg_;
  rpc::QrpcEngine engine_;

  store::ObjectStore store_;  // value_o
  // Ordered, not hashed: per-IQS state is walked by reply_to_read, and a
  // hash-ordered walk would tie behaviour to the standard-library
  // implementation (dqlint rule `det-unordered-container`).
  std::map<ObjectId, std::map<NodeId, PerIqsObj>> obj_state_;
  std::map<std::pair<VolumeId, NodeId>, PerIqsVol> vol_state_;
  std::map<std::uint64_t, PendingRead> pending_;
  std::uint64_t next_pending_ = 1;
  std::set<VolumeId> proactive_active_;
  // Lazily built "contact every IQS member" system for prefetch.
  std::shared_ptr<const quorum::QuorumSystem> fetch_all_;

  // Instruments (registered once in the constructor; see obs/metrics.h).
  obs::Counter* m_load_;          // oqs.load.n<id>
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_invals_;
  obs::Histogram* m_h_miss_;
  obs::Counter* m_recoveries_ = nullptr;  // only registered with cfg.wal set
};

}  // namespace dq::core
