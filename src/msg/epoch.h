// Shared lease-epoch comparison helpers.
//
// Epochs garbage-collect delayed-invalidation queues (iqs_server.h): an IQS
// node advances epoch[v][j] to declare every object lease j obtained under
// the old epoch dead.  Correctness therefore hinges on every epoch
// comparison meaning exactly the same thing on both sides of the protocol,
// so raw `==` / `<` / `std::max` on epoch fields is forbidden in protocol
// code (dqlint rule `proto-epoch-compare`); these helpers are the one
// sanctioned spelling.
#pragma once

#include "msg/wire.h"

namespace dq::msg {

// Does a lease/grant issued under epoch `held` still count under the
// grantor's current epoch `current`?  Epochs only ever advance, so validity
// is exact equality -- a stale epoch can never "catch up".
[[nodiscard]] constexpr bool epoch_matches(Epoch held, Epoch current) {
  return held == current;
}

// Is `a` a strictly later epoch than `b`?
[[nodiscard]] constexpr bool epoch_newer(Epoch a, Epoch b) { return a > b; }

// The later of two epochs (replaces std::max on epoch fields, which the
// linter cannot distinguish from accidental clock/duration max'ing).
[[nodiscard]] constexpr Epoch epoch_max(Epoch a, Epoch b) {
  return epoch_newer(a, b) ? a : b;
}

}  // namespace dq::msg
