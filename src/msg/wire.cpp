#include "msg/wire.h"

#include <array>

namespace dq::msg {

namespace {

// Visitor with one overload per alternative keeps the names next to the
// types they describe and fails to compile if an alternative is added
// without a name.
struct NameOf {
  const char* operator()(const AppRequest&) const { return "AppRequest"; }
  const char* operator()(const AppReply&) const { return "AppReply"; }
  const char* operator()(const DqLcRead&) const { return "DqLcRead"; }
  const char* operator()(const DqLcReadReply&) const { return "DqLcReadReply"; }
  const char* operator()(const DqWrite&) const { return "DqWrite"; }
  const char* operator()(const DqWriteAck&) const { return "DqWriteAck"; }
  const char* operator()(const DqRead&) const { return "DqRead"; }
  const char* operator()(const DqReadReply&) const { return "DqReadReply"; }
  const char* operator()(const DqVolRenew&) const { return "DqVolRenew"; }
  const char* operator()(const DqVolRenewReply&) const {
    return "DqVolRenewReply";
  }
  const char* operator()(const DqVolRenewAck&) const { return "DqVolRenewAck"; }
  const char* operator()(const DqVolRenewBatch&) const {
    return "DqVolRenewBatch";
  }
  const char* operator()(const DqVolRenewBatchReply&) const {
    return "DqVolRenewBatchReply";
  }
  const char* operator()(const DqVolRenewAckBatch&) const {
    return "DqVolRenewAckBatch";
  }
  const char* operator()(const DqObjRenew&) const { return "DqObjRenew"; }
  const char* operator()(const DqObjRenewReply&) const {
    return "DqObjRenewReply";
  }
  const char* operator()(const DqVolFetch&) const { return "DqVolFetch"; }
  const char* operator()(const DqVolFetchReply&) const {
    return "DqVolFetchReply";
  }
  const char* operator()(const DqVolObjRenew&) const { return "DqVolObjRenew"; }
  const char* operator()(const DqVolObjRenewReply&) const {
    return "DqVolObjRenewReply";
  }
  const char* operator()(const DqInval&) const { return "DqInval"; }
  const char* operator()(const DqInvalAck&) const { return "DqInvalAck"; }
  const char* operator()(const MajRead&) const { return "MajRead"; }
  const char* operator()(const MajReadReply&) const { return "MajReadReply"; }
  const char* operator()(const MajLcRead&) const { return "MajLcRead"; }
  const char* operator()(const MajLcReadReply&) const {
    return "MajLcReadReply";
  }
  const char* operator()(const MajWrite&) const { return "MajWrite"; }
  const char* operator()(const MajWriteAck&) const { return "MajWriteAck"; }
  const char* operator()(const PbRead&) const { return "PbRead"; }
  const char* operator()(const PbReadReply&) const { return "PbReadReply"; }
  const char* operator()(const PbWrite&) const { return "PbWrite"; }
  const char* operator()(const PbWriteAck&) const { return "PbWriteAck"; }
  const char* operator()(const PbSync&) const { return "PbSync"; }
  const char* operator()(const PbSyncAck&) const { return "PbSyncAck"; }
  const char* operator()(const RowaRead&) const { return "RowaRead"; }
  const char* operator()(const RowaReadReply&) const { return "RowaReadReply"; }
  const char* operator()(const RowaWrite&) const { return "RowaWrite"; }
  const char* operator()(const RowaWriteAck&) const { return "RowaWriteAck"; }
  const char* operator()(const AsyncRead&) const { return "AsyncRead"; }
  const char* operator()(const AsyncReadReply&) const {
    return "AsyncReadReply";
  }
  const char* operator()(const AsyncWrite&) const { return "AsyncWrite"; }
  const char* operator()(const AsyncWriteAck&) const { return "AsyncWriteAck"; }
  const char* operator()(const GossipUpdate&) const { return "GossipUpdate"; }
  const char* operator()(const AeDigest&) const { return "AeDigest"; }
  const char* operator()(const AeUpdates&) const { return "AeUpdates"; }
  const char* operator()(const HermesWrite&) const { return "HermesWrite"; }
  const char* operator()(const HermesWriteAck&) const {
    return "HermesWriteAck";
  }
  const char* operator()(const HermesRead&) const { return "HermesRead"; }
  const char* operator()(const HermesReadReply&) const {
    return "HermesReadReply";
  }
  const char* operator()(const HermesInv&) const { return "HermesInv"; }
  const char* operator()(const HermesInvAck&) const { return "HermesInvAck"; }
  const char* operator()(const HermesVal&) const { return "HermesVal"; }
  const char* operator()(const HermesValAck&) const { return "HermesValAck"; }
  const char* operator()(const DynRead&) const { return "DynRead"; }
  const char* operator()(const DynReadReply&) const { return "DynReadReply"; }
  const char* operator()(const DynWrite&) const { return "DynWrite"; }
  const char* operator()(const DynWriteAck&) const { return "DynWriteAck"; }
  const char* operator()(const DynHandoff&) const { return "DynHandoff"; }
  const char* operator()(const DynHandoffAck&) const {
    return "DynHandoffAck";
  }
  const char* operator()(const DynRepair&) const { return "DynRepair"; }
};

}  // namespace

const char* payload_name(const Payload& p) { return std::visit(NameOf{}, p); }

namespace {

template <std::size_t... I>
std::array<const char*, sizeof...(I)> make_type_names(
    std::index_sequence<I...>) {
  // Reuses NameOf so an alternative added without a name still fails to
  // compile; the default-constructed instances exist only during this
  // one-time table build.
  return {NameOf{}(std::variant_alternative_t<I, Payload>{})...};
}

}  // namespace

const char* payload_type_name(std::size_t index) {
  static const std::array<const char*, payload_type_count()> kNames =
      make_type_names(std::make_index_sequence<payload_type_count()>{});
  return index < kNames.size() ? kNames[index] : "?";
}

namespace {

// Whether an alternative is server-to-server is a property of the *type*,
// so it is answered from a constexpr table indexed by the variant index --
// this sits inside the per-message accounting on the send hot path, where a
// std::visit dispatch is measurable.
template <typename T>
constexpr bool is_s2s_type() {
  return std::is_same_v<T, DqVolRenew> || std::is_same_v<T, DqVolRenewReply> ||
         std::is_same_v<T, DqVolRenewAck> ||
         std::is_same_v<T, DqVolRenewBatch> ||
         std::is_same_v<T, DqVolRenewBatchReply> ||
         std::is_same_v<T, DqVolRenewAckBatch> ||
         std::is_same_v<T, DqObjRenew> || std::is_same_v<T, DqObjRenewReply> ||
         std::is_same_v<T, DqVolFetch> || std::is_same_v<T, DqVolFetchReply> ||
         std::is_same_v<T, DqVolObjRenew> ||
         std::is_same_v<T, DqVolObjRenewReply> || std::is_same_v<T, DqInval> ||
         std::is_same_v<T, DqInvalAck> || std::is_same_v<T, PbSync> ||
         std::is_same_v<T, PbSyncAck> || std::is_same_v<T, GossipUpdate> ||
         std::is_same_v<T, AeDigest> || std::is_same_v<T, AeUpdates> ||
         std::is_same_v<T, HermesInv> || std::is_same_v<T, HermesInvAck> ||
         std::is_same_v<T, HermesVal> || std::is_same_v<T, HermesValAck> ||
         std::is_same_v<T, DynHandoff> || std::is_same_v<T, DynHandoffAck> ||
         std::is_same_v<T, DynRepair>;
}

template <std::size_t... I>
constexpr std::array<bool, sizeof...(I)> make_s2s_table(
    std::index_sequence<I...>) {
  return {is_s2s_type<std::variant_alternative_t<I, Payload>>()...};
}

constexpr auto kS2S =
    make_s2s_table(std::make_index_sequence<payload_type_count()>{});

}  // namespace

bool is_server_to_server(const Payload& p) {
  return kS2S[p.index()];
}

namespace {

// Sizing building blocks (serialized-representation estimates).
constexpr std::size_t kHeader = 32;      // src, dst, rpc id, type tag, flags
constexpr std::size_t kId = 8;           // object / volume id
constexpr std::size_t kClock = 12;       // logical clock (counter + writer)
constexpr std::size_t kTime = 8;         // timestamps, durations, epochs

std::size_t sized(std::size_t body) { return kHeader + body; }

struct SizeOf {
  std::size_t operator()(const AppRequest& m) const {
    return sized(1 + kId + m.value.size());
  }
  std::size_t operator()(const AppReply& m) const {
    return sized(1 + kId + kClock + m.value.size());
  }
  std::size_t operator()(const DqLcRead&) const { return sized(kId); }
  std::size_t operator()(const DqLcReadReply&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const DqWrite& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const DqWriteAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const DqRead&) const { return sized(kId); }
  std::size_t operator()(const DqReadReply& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const DqVolRenew&) const {
    return sized(kId + kTime);
  }
  std::size_t operator()(const DqVolRenewReply& m) const {
    return sized(kId + 3 * kTime + m.delayed.size() * (kId + kClock));
  }
  std::size_t operator()(const DqVolRenewAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const DqVolRenewBatch& m) const {
    return sized(m.renewals.size() * (kId + kTime));
  }
  std::size_t operator()(const DqVolRenewBatchReply& m) const {
    std::size_t total = 0;
    for (const auto& r : m.replies) {
      total += kId + 3 * kTime + r.delayed.size() * (kId + kClock);
    }
    return sized(total);
  }
  std::size_t operator()(const DqVolRenewAckBatch& m) const {
    return sized(m.acks.size() * (kId + kClock));
  }
  std::size_t operator()(const DqObjRenew&) const {
    return sized(kId + kTime);
  }
  std::size_t operator()(const DqObjRenewReply& m) const {
    return sized(kId + kClock + 3 * kTime + m.value.size());
  }
  std::size_t operator()(const DqVolFetch&) const {
    return sized(kId + kTime);
  }
  std::size_t operator()(const DqVolFetchReply& m) const {
    std::size_t total = SizeOf{}(m.vol) - kHeader;
    for (const auto& o : m.objects) {
      total += kId + kClock + 3 * kTime + o.value.size();
    }
    return sized(total);
  }
  std::size_t operator()(const DqVolObjRenew&) const {
    return sized(2 * kId + kTime);
  }
  std::size_t operator()(const DqVolObjRenewReply& m) const {
    return SizeOf{}(m.vol) + SizeOf{}(m.obj) - kHeader;  // one envelope
  }
  std::size_t operator()(const DqInval&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const DqInvalAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const MajRead&) const { return sized(kId); }
  std::size_t operator()(const MajReadReply& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const MajLcRead&) const { return sized(kId); }
  std::size_t operator()(const MajLcReadReply&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const MajWrite& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const MajWriteAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const PbRead&) const { return sized(kId); }
  std::size_t operator()(const PbReadReply& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const PbWrite& m) const {
    return sized(kId + m.value.size());
  }
  std::size_t operator()(const PbWriteAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const PbSync& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const PbSyncAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const RowaRead&) const { return sized(kId); }
  std::size_t operator()(const RowaReadReply& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const RowaWrite& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const RowaWriteAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const AsyncRead&) const { return sized(kId); }
  std::size_t operator()(const AsyncReadReply& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const AsyncWrite& m) const {
    return sized(kId + m.value.size());
  }
  std::size_t operator()(const AsyncWriteAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const GossipUpdate& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const AeDigest& m) const {
    return sized(m.entries.size() * (kId + kClock));
  }
  std::size_t operator()(const AeUpdates& m) const {
    std::size_t total = 0;
    for (const auto& u : m.updates) {
      total += kId + kClock + u.value.size();
    }
    return sized(total);
  }
  std::size_t operator()(const HermesWrite& m) const {
    return sized(kId + m.value.size());
  }
  std::size_t operator()(const HermesWriteAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const HermesRead&) const { return sized(kId); }
  std::size_t operator()(const HermesReadReply& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const HermesInv& m) const {
    return sized(kId + kClock + kTime + m.value.size());
  }
  std::size_t operator()(const HermesInvAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const HermesVal&) const {
    return sized(kId + kClock + kTime);
  }
  std::size_t operator()(const HermesValAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const DynRead&) const { return sized(kId); }
  std::size_t operator()(const DynReadReply& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const DynWrite& m) const {
    return sized(kId + kClock + 4 + m.value.size());
  }
  std::size_t operator()(const DynWriteAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const DynHandoff& m) const {
    return sized(kId + kClock + m.value.size());
  }
  std::size_t operator()(const DynHandoffAck&) const {
    return sized(kId + kClock);
  }
  std::size_t operator()(const DynRepair& m) const {
    return sized(kId + kClock + m.value.size());
  }
};

}  // namespace

std::size_t approximate_size(const Payload& p) {
  return std::visit(SizeOf{}, p);
}

}  // namespace dq::msg
