// Wire messages for every protocol in the repository.
//
// All message bodies are plain structs gathered into one std::variant
// (`Payload`).  Centralizing them buys three things: (1) the simulated
// network can count and size messages per type for the Figure 9 overhead
// experiments, (2) handlers dispatch with std::visit / get_if instead of
// dynamic_cast, and (3) there is exactly one place to audit what crosses the
// (simulated) wire.
//
// Naming follows the paper's pseudo-code (Figures 4 and 5) where a message
// corresponds to a pseudo-code operation.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/version.h"
#include "sim/time.h"

namespace dq::msg {

using Epoch = std::uint64_t;

// ---------------------------------------------------------------------------
// Application client <-> front-end (service client embedded in an edge
// server).  Used by the protocols that exploit edge locality (DQVL, ROWA,
// ROWA-Async); majority and primary/backup clients talk to replicas directly.
// ---------------------------------------------------------------------------

enum class OpKind : std::uint8_t { kRead, kWrite };

struct AppRequest {
  OpKind op{};
  ObjectId object;
  Value value;  // empty for reads
};

struct AppReply {
  bool ok = true;
  ObjectId object;
  Value value;
  LogicalClock clock;
};

// ---------------------------------------------------------------------------
// Dual-quorum with volume leases (DQVL).  Also serves the basic dual-quorum
// protocol of section 3.1, which is DQVL configured with an infinite lease
// and a single volume.
// ---------------------------------------------------------------------------

// Service client -> IQS node: read the node's global logical clock
// (processLCReadRequest).  First phase of a client write.
struct DqLcRead {
  ObjectId object;
};
struct DqLcReadReply {
  ObjectId object;
  LogicalClock clock;  // the node's global logicalClock
};

// Service client -> IQS node: the write proper (processWriteRequest).  The
// ack is sent only once the node has ensured an OQS write quorum cannot read
// the old version (invalidation, suppression, or lease expiry).
struct DqWrite {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
// dqlint:allow(flow-unhandled-message): ack consumed generically by the QRPC
// quorum counter; no receiver inspects the body.
struct DqWriteAck {
  ObjectId object;
  LogicalClock clock;
};

// Service client -> OQS node: read an object (processReadRequest).  The OQS
// node replies only once condition C holds (valid volume + object lease from
// a full IQS read quorum).
struct DqRead {
  ObjectId object;
};
struct DqReadReply {
  ObjectId object;
  Value value;
  LogicalClock clock;
};

// One delayed (or direct) invalidation: "object o was overwritten at logical
// clock lc; your cached copy is stale".
struct Invalidation {
  ObjectId object;
  LogicalClock clock;

  friend bool operator==(const Invalidation&, const Invalidation&) = default;
};

// OQS node -> IQS node: renew the lease on a volume (processVLRenewal).
// `requestor_time` is echoed back so the requestor can apply the
// conservative drift bound from its own send timestamp.
struct DqVolRenew {
  VolumeId volume;
  sim::Time requestor_time = 0;
};
struct DqVolRenewReply {
  VolumeId volume;
  std::vector<Invalidation> delayed;  // delayed_{v,j}, applied before use
  sim::Duration lease_length = 0;     // L
  Epoch epoch = 0;                    // epoch_{v,j}
  sim::Time requestor_time = 0;       // echoed t_{v,0}
};

// OQS node -> IQS node: ack a volume renewal after applying the delayed
// invalidations it carried (processVLRenewalAck).  Lets the IQS node trim
// delayed_{v,j} up to `applied_up_to`.
struct DqVolRenewAck {
  VolumeId volume;
  LogicalClock applied_up_to;
};

// OQS node -> IQS node: renew many volume leases in one message.  The
// batched form amortizes proactive renewal traffic across volumes (the same
// argument that amortizes one volume lease across objects); the reply
// carries one DqVolRenewReply per requested volume, and the ack confirms
// application of every delayed invalidation batch at once.
struct DqVolRenewBatch {
  std::vector<DqVolRenew> renewals;
};
struct DqVolRenewBatchReply {
  std::vector<DqVolRenewReply> replies;
};
struct DqVolRenewAckBatch {
  std::vector<DqVolRenewAck> acks;
};

// OQS node -> IQS node: renew / fetch one object (processObjRenewal).
// `requestor_time` is echoed so the requestor can apply its conservative
// drift bound when the deployment uses finite object leases (paper
// footnote 4); with the default infinite object leases it is unused.
struct DqObjRenew {
  ObjectId object;
  sim::Time requestor_time = 0;
};
struct DqObjRenewReply {
  ObjectId object;
  Value value;
  LogicalClock clock;               // lastWriteLC_o
  Epoch epoch = 0;                  // granting node's epoch_{v,j}
  sim::Duration lease_length = 0;   // object lease (kTimeInfinity = callback)
  sim::Time requestor_time = 0;     // echoed
};

// OQS node -> IQS node: bulk revalidation ("prefetch") of an entire
// volume -- a volume lease plus object renewals for EVERY object of the
// volume stored at the replying node, in one exchange.  Used to warm a
// cold or freshly restarted OQS node without paying one miss per object
// (AFS-style volume validation; an engineering extension).
struct DqVolFetch {
  VolumeId volume;
  sim::Time requestor_time = 0;
};
struct DqVolFetchReply {
  DqVolRenewReply vol;
  std::vector<DqObjRenewReply> objects;
};

// Combined volume renewal + object read, pseudo-code case (a) of the read
// QRPC variation ("if the volume from i has expired and the object from i is
// invalid, send a combined volume renewal and object read").
struct DqVolObjRenew {
  VolumeId volume;
  ObjectId object;
  sim::Time requestor_time = 0;
};
struct DqVolObjRenewReply {
  DqVolRenewReply vol;
  DqObjRenewReply obj;
};

// IQS node -> OQS node: invalidate a cached object (processInval) and its
// ack (processInvalAck).
struct DqInval {
  ObjectId object;
  LogicalClock clock;
};
struct DqInvalAck {
  ObjectId object;
  LogicalClock clock;
};

// ---------------------------------------------------------------------------
// Majority-quorum register (baseline).
// ---------------------------------------------------------------------------

struct MajRead {
  ObjectId object;
};
struct MajReadReply {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
struct MajLcRead {
  ObjectId object;
};
struct MajLcReadReply {
  ObjectId object;
  LogicalClock clock;
};
struct MajWrite {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
// dqlint:allow(flow-unhandled-message): ack consumed generically by the QRPC
// quorum counter; no receiver inspects the body.
struct MajWriteAck {
  ObjectId object;
  LogicalClock clock;
};

// ---------------------------------------------------------------------------
// Primary/backup (baseline).  Reads and writes are processed by the primary;
// backups receive state either synchronously or asynchronously (configured).
// ---------------------------------------------------------------------------

struct PbRead {
  ObjectId object;
};
struct PbReadReply {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
struct PbWrite {
  ObjectId object;
  Value value;
};
struct PbWriteAck {
  ObjectId object;
  LogicalClock clock;
};
struct PbSync {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
struct PbSyncAck {
  ObjectId object;
  LogicalClock clock;
};

// ---------------------------------------------------------------------------
// ROWA -- read one, write all, synchronous (baseline).
// ---------------------------------------------------------------------------

struct RowaRead {
  ObjectId object;
};
struct RowaReadReply {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
struct RowaWrite {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
// dqlint:allow(flow-unhandled-message): ack consumed generically by the QRPC
// quorum counter; no receiver inspects the body.
struct RowaWriteAck {
  ObjectId object;
  LogicalClock clock;
};

// ---------------------------------------------------------------------------
// ROWA-Async -- local reads and writes, epidemic propagation (baseline,
// Bayou-style).  Push on write plus periodic anti-entropy pull for
// reliability under loss/partitions.
// ---------------------------------------------------------------------------

struct AsyncRead {
  ObjectId object;
};
struct AsyncReadReply {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
struct AsyncWrite {
  ObjectId object;
  Value value;
};
struct AsyncWriteAck {
  ObjectId object;
  LogicalClock clock;
};
// Replica -> replica push of a fresh update.
struct GossipUpdate {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
// Periodic anti-entropy: digest of (object, clock) pairs; the peer responds
// with every update it holds that is newer than the digest entry.
struct AeDigest {
  std::vector<std::pair<ObjectId, LogicalClock>> entries;
};
struct AeUpdates {
  std::vector<GossipUpdate> updates;
};

// ---------------------------------------------------------------------------
// Hermes -- invalidation-based broadcast (Katsarakis-style baseline).  A
// write coordinator INValidates every replica, waits for acks from ALL of
// them, then commits locally and VALidates the others; reads are local and
// served only while the local copy is valid.  Per-key logical timestamps
// order concurrent writes; `epoch` fences replays across recoveries.
// ---------------------------------------------------------------------------

struct HermesWrite {
  ObjectId object;
  Value value;
};
struct HermesWriteAck {
  ObjectId object;
  LogicalClock clock;
};
struct HermesRead {
  ObjectId object;
};
struct HermesReadReply {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
// Coordinator -> replica: "object o is being overwritten at timestamp lc;
// stop serving your copy until the matching VAL arrives".
struct HermesInv {
  ObjectId object;
  Value value;
  LogicalClock clock;
  Epoch epoch = 0;
};
// dqlint:allow(flow-unhandled-message): ack consumed generically by the QRPC
// broadcast counter; no receiver inspects the body.
struct HermesInvAck {
  ObjectId object;
  LogicalClock clock;
};
// Coordinator -> replica: the write at lc committed; local reads may resume.
struct HermesVal {
  ObjectId object;
  LogicalClock clock;
  Epoch epoch = 0;
};
// dqlint:allow(flow-unhandled-message): ack consumed generically by the QRPC
// broadcast counter; no receiver inspects the body.
struct HermesValAck {
  ObjectId object;
  LogicalClock clock;
};

// ---------------------------------------------------------------------------
// Dynamo -- sloppy quorum with hinted handoff and read-repair (baseline).
// The client walks the ring's preference list, accepts the first N healthy
// nodes, and completes a write at W acks / a read at R replies.  A write
// accepted on behalf of an unreachable home node carries `hint_for`; the
// holder hands the value off when the home node answers again.  Read-repair
// pushes the freshest version to stale responders after a read completes.
// ---------------------------------------------------------------------------

// Sentinel for DynWrite::hint_for: the write landed on its home replica.
inline constexpr std::uint32_t kNoHint = 0xffffffff;

struct DynRead {
  ObjectId object;
};
struct DynReadReply {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
struct DynWrite {
  ObjectId object;
  Value value;
  LogicalClock clock;
  std::uint32_t hint_for = kNoHint;  // home replica index, kNoHint if none
};
struct DynWriteAck {
  ObjectId object;
  LogicalClock clock;
};
// Hint holder -> home replica: deliver a write accepted on its behalf.
struct DynHandoff {
  ObjectId object;
  Value value;
  LogicalClock clock;
};
struct DynHandoffAck {
  ObjectId object;
  LogicalClock clock;
};
// Client -> stale replica after a read: read-repair push of the freshest
// version observed among the read replies.
struct DynRepair {
  ObjectId object;
  Value value;
  LogicalClock clock;
};

// ---------------------------------------------------------------------------
// The payload variant and per-type bookkeeping.
// ---------------------------------------------------------------------------

using Payload = std::variant<
    AppRequest, AppReply,
    // DQVL
    DqLcRead, DqLcReadReply, DqWrite, DqWriteAck, DqRead, DqReadReply,
    DqVolRenew, DqVolRenewReply, DqVolRenewAck, DqVolRenewBatch,
    DqVolRenewBatchReply, DqVolRenewAckBatch, DqObjRenew, DqObjRenewReply,
    DqVolFetch, DqVolFetchReply, DqVolObjRenew, DqVolObjRenewReply, DqInval,
    DqInvalAck,
    // Majority
    MajRead, MajReadReply, MajLcRead, MajLcReadReply, MajWrite, MajWriteAck,
    // Primary/backup
    PbRead, PbReadReply, PbWrite, PbWriteAck, PbSync, PbSyncAck,
    // ROWA
    RowaRead, RowaReadReply, RowaWrite, RowaWriteAck,
    // ROWA-Async
    AsyncRead, AsyncReadReply, AsyncWrite, AsyncWriteAck, GossipUpdate,
    AeDigest, AeUpdates,
    // Hermes
    HermesWrite, HermesWriteAck, HermesRead, HermesReadReply, HermesInv,
    HermesInvAck, HermesVal, HermesValAck,
    // Dynamo
    DynRead, DynReadReply, DynWrite, DynWriteAck, DynHandoff, DynHandoffAck,
    DynRepair>;

// Number of alternatives in Payload (for dense per-type accounting arrays).
[[nodiscard]] constexpr std::size_t payload_type_count() {
  return std::variant_size_v<Payload>;
}

// Human-readable name of the payload's alternative, for stats and tracing.
[[nodiscard]] const char* payload_name(const Payload& p);

// Name of alternative `index` (== payload_name of a payload whose index()
// is `index`).  Lets hot-path counters key by index and translate to the
// human-readable name only at report time.
[[nodiscard]] const char* payload_type_name(std::size_t index);

// True for message types that are internal to the replication machinery
// (server <-> server), false for client-facing request/reply traffic.  The
// Figure 9 experiments count *all* messages; this split feeds the per-class
// breakdown the benches print alongside.
[[nodiscard]] bool is_server_to_server(const Payload& p);

// Approximate serialized size in bytes: a fixed per-message header plus the
// payload's variable-length fields.  The paper's overhead model weighs all
// messages equally; byte accounting is the finer-grained extension the
// benches report alongside (e.g. a volume-renewal reply carrying a long
// delayed-invalidation list is NOT the same as an ack).
[[nodiscard]] std::size_t approximate_size(const Payload& p);

}  // namespace dq::msg
