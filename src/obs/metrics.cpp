#include "obs/metrics.h"

#include <algorithm>

namespace dq::obs {

namespace detail {
// The calling partition's lane.  Lane 0 outside the parallel engine, so every
// serial simulation (and all setup-time registration on the main thread)
// behaves exactly as before lanes existed.
thread_local std::uint32_t t_current_lane = 0;
}  // namespace detail

double HistogramData::bucket_upper_ms(std::size_t i) {
  double ub = kFirstUpperMs;
  for (std::size_t k = 0; k < i; ++k) ub *= 2.0;
  return ub;
}

std::size_t HistogramData::bucket_index(double v_ms) {
  std::size_t i = 0;
  double ub = kFirstUpperMs;
  while (v_ms > ub && i + 1 < kBuckets) {
    ub *= 2.0;
    ++i;
  }
  return i;
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= target) {
      // Clamp the bucket upper bound into the observed range so estimates
      // never exceed the true extremes.
      return std::clamp(bucket_upper_ms(i), min, max);
    }
  }
  return max;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (buckets.size() < other.buckets.size()) buckets.resize(other.buckets.size(), 0);
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

HistogramData Histogram::merged() const {
  HistogramData out = data_;
  for (const HistogramData& d : extra_) out.merge(d);
  return out;
}

void Histogram::observe(double v_ms) {
  HistogramData& d = lane_data();
  if (d.count == 0) {
    d.min = v_ms;
    d.max = v_ms;
  } else {
    d.min = std::min(d.min, v_ms);
    d.max = std::max(d.max, v_ms);
  }
  ++d.count;
  d.sum += v_ms;
  ++d.buckets[HistogramData::bucket_index(v_ms)];
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

const HistogramData* MetricsSnapshot::histogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

std::map<std::string, std::uint64_t> MetricsSnapshot::counters_with_prefix(
    const std::string& prefix) const {
  std::map<std::string, std::uint64_t> out;
  for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace(it->first.substr(prefix.size()), it->second);
  }
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, g] : other.gauges) {
    GaugeSnapshot& mine = gauges[name];
    mine.value = std::max(mine.value, g.value);
    mine.max = std::max(mine.max, g.max);
  }
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

void MetricsRegistry::set_lanes(std::uint32_t n) {
  lanes_ = n < 1 ? 1 : n;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(lanes_);
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(lanes_);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lanes_);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = GaugeSnapshot{g->value(), g->max()};
  }
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->merged();
  return s;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) *c = Counter{lanes_};
  for (auto& [name, g] : gauges_) *g = Gauge{lanes_};
  for (auto& [name, h] : histograms_) *h = Histogram{lanes_};
}

std::string node_metric(const std::string& base, std::uint32_t node) {
  return base + ".n" + std::to_string(node);
}

}  // namespace dq::obs
