// Deterministic, simulation-safe metrics: named counters, gauges, and
// fixed-bucket log-scale histograms.
//
// Design constraints (DESIGN.md "Observability"):
//   * No wall clock.  Every recorded duration is virtual (sim::Time math done
//     by the caller); the registry itself never reads any clock.
//   * No perturbation.  Recording a metric schedules no events, draws no
//     randomness, and sends no messages, so enabling or inspecting metrics
//     cannot change a simulation schedule (determinism_test relies on this).
//   * No allocation on the hot path.  Actors look up their instruments once
//     (by name, at registration/construction time) and then update plain
//     integers.  Instrument addresses are stable for the registry's lifetime.
//
// One MetricsRegistry lives in each sim::World; snapshot() freezes every
// instrument into a MetricsSnapshot that the experiment harness folds into
// its ExperimentResult and renders as JSON (workload/report.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dq::obs {

// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Instantaneous level (queue depth, in-flight calls) with a high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t delta) { set(value_ + delta); }
  [[nodiscard]] std::int64_t value() const { return value_; }
  [[nodiscard]] std::int64_t max() const { return max_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

// Frozen histogram state; also the merge/quantile math shared by live
// histograms and snapshots.
struct HistogramData {
  // Fixed log-scale buckets: bucket i counts observations v (in ms) with
  // upper(i-1) < v <= upper(i), where upper(i) = 0.001 * 2^i ms.  Bucket 0
  // therefore holds everything at or below one microsecond (including the
  // zero-duration "suppressed write" fast path) and the last bucket is
  // unbounded.  48 buckets reach ~39 simulated hours.
  static constexpr std::size_t kBuckets = 48;
  static constexpr double kFirstUpperMs = 0.001;  // 1 us

  [[nodiscard]] static double bucket_upper_ms(std::size_t i);
  [[nodiscard]] static std::size_t bucket_index(double v_ms);

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  // size kBuckets once observed/merged

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  // Bucket-interpolated quantile estimate, q in [0, 1].  Exact for the
  // extremes, within one bucket (a factor of two) elsewhere.
  [[nodiscard]] double quantile(double q) const;
  void merge(const HistogramData& other);
};

// Live histogram of durations in milliseconds.
class Histogram {
 public:
  Histogram() { data_.buckets.assign(HistogramData::kBuckets, 0); }

  void observe(double v_ms);
  [[nodiscard]] const HistogramData& data() const { return data_; }

 private:
  HistogramData data_;
};

struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

// Value-type freeze of a registry: what ExperimentResult carries and the JSON
// report renders.  merge() combines snapshots from independent worlds (e.g. a
// bench aggregating over seeds): counters and histograms add, gauges keep
// the maximum (levels from different runs do not sum meaningfully).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] const HistogramData* histogram(const std::string& name) const;
  // All counters whose name starts with `prefix`, keyed by the remainder
  // (e.g. prefix "iqs.load." yields {"n0": 12, "n3": 40, ...}).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters_with_prefix(
      const std::string& prefix) const;
  void merge(const MetricsSnapshot& other);
  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name.  References stay valid for the registry's
  // lifetime; call once at setup, keep the pointer, update it on the hot
  // path.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void reset();  // zero every instrument (registrations survive)

 private:
  // node_maps keep instrument addresses stable across later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Canonical per-node instrument name: "iqs.load" + n3 -> "iqs.load.n3".
[[nodiscard]] std::string node_metric(const std::string& base,
                                      std::uint32_t node);

}  // namespace dq::obs
