// Deterministic, simulation-safe metrics: named counters, gauges, and
// fixed-bucket log-scale histograms.
//
// Design constraints (DESIGN.md "Observability"):
//   * No wall clock.  Every recorded duration is virtual (sim::Time math done
//     by the caller); the registry itself never reads any clock.
//   * No perturbation.  Recording a metric schedules no events, draws no
//     randomness, and sends no messages, so enabling or inspecting metrics
//     cannot change a simulation schedule (determinism_test relies on this).
//   * No allocation on the hot path.  Actors look up their instruments once
//     (by name, at registration/construction time) and then update plain
//     integers.  Instrument addresses are stable for the registry's lifetime.
//
// One MetricsRegistry lives in each sim::World; snapshot() freezes every
// instrument into a MetricsSnapshot that the experiment harness folds into
// its ExperimentResult and renders as JSON (workload/report.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dq::obs {

// --- lanes -----------------------------------------------------------------
// The parallel world engine (sim/parallel_world.h) runs several partitions of
// one simulation concurrently, and actors in different partitions share named
// instruments (protocol code caches an instrument pointer at construction).
// Instead of per-partition registries, every instrument can carry one *lane*
// per partition: updates go to the calling partition's private lane (no
// cross-thread writes), and snapshot() folds lanes together in fixed lane
// order, so the rendered values are identical at any thread count.  A
// registry created without set_lanes() has exactly one lane and the exact
// pre-lane behavior (and cost: the hot path tests one empty-vector branch).
//
// The current lane is ambient per-thread state owned by the engine; lane 0 is
// the default everywhere else, including all serial simulations.
namespace detail {
// Defined in metrics.cpp; exposed here only so current_lane() inlines to a
// single thread-local read (it sits inside every counter/histogram update
// on the message hot path -- an out-of-line call per update is measurable).
extern thread_local std::uint32_t t_current_lane;
}  // namespace detail

[[nodiscard]] inline std::uint32_t current_lane() {
  return detail::t_current_lane;
}
inline void set_current_lane(std::uint32_t lane) {
  detail::t_current_lane = lane;
}

// Monotone event count.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::uint32_t lanes) {
    if (lanes > 1) extra_.assign(lanes - 1, 0);
  }

  void inc(std::uint64_t delta = 1) {
    if (extra_.empty()) {
      value_ += delta;
      return;
    }
    const std::uint32_t lane = current_lane();
    (lane == 0 ? value_ : extra_[lane - 1]) += delta;
  }
  // Sum over lanes; call only while no partition is mid-round.
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t v = value_;
    for (const std::uint64_t e : extra_) v += e;
    return v;
  }

 private:
  std::uint64_t value_ = 0;              // lane 0
  std::vector<std::uint64_t> extra_;     // lanes 1..N-1
};

// Instantaneous level (queue depth, in-flight calls) with a high-water mark.
// With lanes, each partition tracks its own level; the reported value is the
// sum of lane levels and the reported max the sum of lane maxima (an upper
// bound on the true global high-water mark -- exact in the serial case).
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::uint32_t lanes) {
    if (lanes > 1) extra_.assign(lanes - 1, Cell{});
  }

  void set(std::int64_t v) {
    Cell& c = cell();
    c.value = v;
    if (v > c.max) c.max = v;
  }
  void add(std::int64_t delta) {
    Cell& c = cell();
    c.value += delta;
    if (c.value > c.max) c.max = c.value;
  }
  [[nodiscard]] std::int64_t value() const {
    std::int64_t v = cell0_.value;
    for (const Cell& c : extra_) v += c.value;
    return v;
  }
  [[nodiscard]] std::int64_t max() const {
    std::int64_t m = cell0_.max;
    for (const Cell& c : extra_) m += c.max;
    return m;
  }

 private:
  struct Cell {
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  [[nodiscard]] Cell& cell() {
    if (extra_.empty()) return cell0_;
    const std::uint32_t lane = current_lane();
    return lane == 0 ? cell0_ : extra_[lane - 1];
  }

  Cell cell0_;               // lane 0
  std::vector<Cell> extra_;  // lanes 1..N-1
};

// Frozen histogram state; also the merge/quantile math shared by live
// histograms and snapshots.
struct HistogramData {
  // Fixed log-scale buckets: bucket i counts observations v (in ms) with
  // upper(i-1) < v <= upper(i), where upper(i) = 0.001 * 2^i ms.  Bucket 0
  // therefore holds everything at or below one microsecond (including the
  // zero-duration "suppressed write" fast path) and the last bucket is
  // unbounded.  48 buckets reach ~39 simulated hours.
  static constexpr std::size_t kBuckets = 48;
  static constexpr double kFirstUpperMs = 0.001;  // 1 us

  [[nodiscard]] static double bucket_upper_ms(std::size_t i);
  [[nodiscard]] static std::size_t bucket_index(double v_ms);

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  // size kBuckets once observed/merged

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  // Bucket-interpolated quantile estimate, q in [0, 1].  Exact for the
  // extremes, within one bucket (a factor of two) elsewhere.
  [[nodiscard]] double quantile(double q) const;
  void merge(const HistogramData& other);
};

// Live histogram of durations in milliseconds.
class Histogram {
 public:
  Histogram() { init_buckets(data_); }
  explicit Histogram(std::uint32_t lanes) {
    init_buckets(data_);
    if (lanes > 1) {
      extra_.resize(lanes - 1);
      for (HistogramData& d : extra_) init_buckets(d);
    }
  }

  void observe(double v_ms);
  // Lane 0 only -- the whole story for serial registries.
  [[nodiscard]] const HistogramData& data() const { return data_; }
  // All lanes folded together in lane order (what snapshots render).
  [[nodiscard]] HistogramData merged() const;

 private:
  static void init_buckets(HistogramData& d) {
    d.buckets.assign(HistogramData::kBuckets, 0);
  }
  [[nodiscard]] HistogramData& lane_data() {
    if (extra_.empty()) return data_;
    const std::uint32_t lane = current_lane();
    return lane == 0 ? data_ : extra_[lane - 1];
  }

  HistogramData data_;                // lane 0
  std::vector<HistogramData> extra_;  // lanes 1..N-1
};

struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

// Value-type freeze of a registry: what ExperimentResult carries and the JSON
// report renders.  merge() combines snapshots from independent worlds (e.g. a
// bench aggregating over seeds): counters and histograms add, gauges keep
// the maximum (levels from different runs do not sum meaningfully).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] const HistogramData* histogram(const std::string& name) const;
  // All counters whose name starts with `prefix`, keyed by the remainder
  // (e.g. prefix "iqs.load." yields {"n0": 12, "n3": 40, ...}).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters_with_prefix(
      const std::string& prefix) const;
  void merge(const MetricsSnapshot& other);
  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Give every instrument registered from here on `n` lanes (one per world
  // partition).  Must be called before any instrument exists -- the world
  // sets it up front, before protocol construction registers anything.
  void set_lanes(std::uint32_t n);
  [[nodiscard]] std::uint32_t lanes() const { return lanes_; }

  // Find-or-create by name.  References stay valid for the registry's
  // lifetime; call once at setup, keep the pointer, update it on the hot
  // path.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void reset();  // zero every instrument (registrations survive)

 private:
  std::uint32_t lanes_ = 1;
  // node_maps keep instrument addresses stable across later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Canonical per-node instrument name: "iqs.load" + n3 -> "iqs.load.n3".
[[nodiscard]] std::string node_metric(const std::string& base,
                                      std::uint32_t node);

}  // namespace dq::obs
