#include "obs/staleness.h"

#include <algorithm>

#include "common/assert.h"

namespace dq::obs {

void StalenessTracker::add_write(std::uint64_t object, std::int64_t commit_time,
                                 const LogicalClock& clock) {
  DQ_INVARIANT(!sealed_, "StalenessTracker: add_write after seal");
  ObjectLog& log = objects_[object];
  log.by_commit.push_back({commit_time, clock});
  // Duplicate versions (a replayed write acked twice) keep the earliest
  // commit time -- the conservative choice for the age computation.
  auto [it, inserted] = log.commit_of.emplace(clock, commit_time);
  if (!inserted && commit_time < it->second) it->second = commit_time;
}

void StalenessTracker::seal() {
  for (auto& [object, log] : objects_) {
    std::sort(log.by_commit.begin(), log.by_commit.end(),
              [](const Write& a, const Write& b) {
                if (a.commit != b.commit) return a.commit < b.commit;
                return a.clock < b.clock;
              });
    LogicalClock max_clock;
    for (Write& w : log.by_commit) {
      if (max_clock < w.clock) max_clock = w.clock;
      w.prefix_max = max_clock;
    }
    // Version-ordered index with the supersede time: walking versions from
    // the highest down, a version's lower neighbours became stale at the
    // earliest commit seen so far.
    log.by_version.reserve(log.commit_of.size());
    for (const auto& [clock, commit] : log.commit_of) {
      log.by_version.push_back({clock, commit, commit});
    }
    std::int64_t earliest = 0;
    for (auto it = log.by_version.rbegin(); it != log.by_version.rend(); ++it) {
      if (it == log.by_version.rbegin() || it->commit < earliest) {
        earliest = it->commit;
      }
      it->superseded_at = earliest;
    }
  }
  sealed_ = true;
}

std::int64_t StalenessTracker::read_age(std::uint64_t object,
                                        std::int64_t invoked,
                                        const LogicalClock& clock) const {
  DQ_INVARIANT(sealed_, "StalenessTracker: read_age before seal");
  auto it = objects_.find(object);
  if (it == objects_.end()) return 0;  // never-written object
  const ObjectLog& log = it->second;

  // Latest write committed no later than the read's invocation; its prefix
  // max is the freshest version the read was obliged to see.
  auto after = std::upper_bound(
      log.by_commit.begin(), log.by_commit.end(), invoked,
      [](std::int64_t t, const Write& w) { return t < w.commit; });
  if (after == log.by_commit.begin()) return 0;  // no preceding write
  const LogicalClock obliged = std::prev(after)->prefix_max;
  if (!(clock < obliged)) return 0;  // fresh, newer, or concurrent

  // The read is stale: it had been obliged to see a higher version.  Its
  // age is the time since the earliest commit of ANY higher version --
  // guaranteed <= invoked, because the obliged write is one of them.
  auto sup = std::upper_bound(
      log.by_version.begin(), log.by_version.end(), clock,
      [](const LogicalClock& c, const Version& v) { return c < v.clock; });
  DQ_INVARIANT(sup != log.by_version.end(),
               "StalenessTracker: stale read with no superseding version");
  const std::int64_t age = invoked - sup->superseded_at;
  return age < 0 ? 0 : age;
}

}  // namespace dq::obs
