// Read-time staleness (age of information) computation.
//
// For every completed read we ask: was the returned version already
// superseded by a committed write when the read began -- and for how long?
//
//   stale  iff  version(returned) < max{version(w) : commit(w) <= invoked}
//   age    =    invoked - commit(earliest write with version > returned)
//
// The age is how long the returned value had already been out of date when
// the read started (the Delta-staleness / t-visibility notion from the
// probabilistically-bounded-staleness literature).  Measuring against the
// EARLIEST superseding commit -- rather than the gap between the obliged and
// returned commits -- keeps the age positive and meaningful when commit
// order and version order diverge, which Dynamo's last-writer-wins clocks
// do under partitions: a low-version write can commit in real time AFTER
// the high-version write that beats it.
//
// A protocol with regular semantics (DQVL, majority) always returns the
// latest preceding write or a concurrent one, so every read has age 0; the
// weaker baselines (ROWA-Async gossip, Dynamo sloppy quorums) return stale
// versions under loss and partitions, and the age distribution quantifies
// exactly what they give up ("Minimizing Content Staleness in Dynamo-Style
// Replicated Storage Systems" motivates the metric).
//
// The tracker is fed post-hoc from the experiment's merged operation
// history (a pure computation -- byte-identical at any --jobs or
// --world-threads), and the resulting ages land in the ordinary obs
// log-histograms, so they ride the dq.report.v1 pipeline unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/version.h"

namespace dq::obs {

class StalenessTracker {
 public:
  // Record a write of `object` that committed (was acked) at `commit_time`
  // with version `clock`.  Times are any monotonic integer unit (the
  // workload feeds sim::Time ticks).
  void add_write(std::uint64_t object, std::int64_t commit_time,
                 const LogicalClock& clock);

  // Build the per-object indexes; call once, after the last add_write.
  void seal();

  // Age of a read of `object` that began at `invoked` and returned version
  // `clock`.  Zero when the read returned the highest version committed
  // before it began, a newer one, or a concurrent one; otherwise the time
  // the returned version had already been superseded when the read began.
  [[nodiscard]] std::int64_t read_age(std::uint64_t object,
                                      std::int64_t invoked,
                                      const LogicalClock& clock) const;

 private:
  struct Write {
    std::int64_t commit = 0;
    LogicalClock clock;
    // Highest version among writes committed up to and including this one
    // (filled by seal()).  Needed because commit order and version order
    // can diverge: the version a read is obliged to see is the highest
    // VERSION among the preceding commits, not simply the last commit.
    LogicalClock prefix_max;
  };
  // One entry per distinct version, in version order (filled by seal()).
  struct Version {
    LogicalClock clock;
    std::int64_t commit = 0;  // earliest commit of this version
    // Earliest commit among this and all higher versions: the moment every
    // LOWER version became stale.
    std::int64_t superseded_at = 0;
  };
  struct ObjectLog {
    std::vector<Write> by_commit;                    // sorted by seal()
    std::map<LogicalClock, std::int64_t> commit_of;  // version -> commit time
    std::vector<Version> by_version;                 // built by seal()
  };
  std::map<std::uint64_t, ObjectLog> objects_;
  bool sealed_ = false;
};

}  // namespace dq::obs
