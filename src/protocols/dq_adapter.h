// Adapter exposing the dual-quorum client through the protocol-independent
// ServiceClient interface used by the workload driver and examples.
#pragma once

#include <memory>
#include <utility>

#include "core/dq_atomic_client.h"
#include "core/dq_client.h"
#include "protocols/service_client.h"

namespace dq::protocols {

class DqServiceClient final : public ServiceClient {
 public:
  DqServiceClient(sim::World& world, NodeId self,
                  std::shared_ptr<const core::DqConfig> cfg)
      : impl_(world, self, std::move(cfg)) {}

  void read(ObjectId o, ReadCallback done) override {
    impl_.read(o, std::move(done));
  }
  void write(ObjectId o, Value value, WriteCallback done) override {
    impl_.write(o, std::move(value), std::move(done));
  }
  bool on_message(const sim::Envelope& env) override {
    return impl_.on_message(env);
  }
  void cancel_all() override { impl_.cancel_all(); }

 private:
  core::DqClient impl_;
};

// The atomic-semantics variant (paper section 6 future work): reads pay a
// write-back confirmation round; see core/dq_atomic_client.h.
class DqAtomicServiceClient final : public ServiceClient {
 public:
  DqAtomicServiceClient(sim::World& world, NodeId self,
                        std::shared_ptr<const core::DqConfig> cfg)
      : impl_(world, self, std::move(cfg)) {}

  void read(ObjectId o, ReadCallback done) override {
    impl_.read(o, std::move(done));
  }
  void write(ObjectId o, Value value, WriteCallback done) override {
    impl_.write(o, std::move(value), std::move(done));
  }
  bool on_message(const sim::Envelope& env) override {
    return impl_.on_message(env);
  }
  void cancel_all() override { impl_.cancel_all(); }

 private:
  core::DqAtomicClient impl_;
};

}  // namespace dq::protocols
