#include "protocols/dynamo.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "sim/processing.h"

namespace dq::protocols {

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

DynamoServer::DynamoServer(sim::World& world, NodeId self,
                           std::shared_ptr<const DynamoConfig> cfg)
    : world_(world), self_(self), cfg_(std::move(cfg)),
      m_reads_(&world_.metrics().counter("proto.dynamo.reads")),
      m_writes_(&world_.metrics().counter("proto.dynamo.writes")),
      m_hinted_writes_(&world_.metrics().counter("proto.dynamo.hinted_writes")),
      m_handoffs_(&world_.metrics().counter("proto.dynamo.handoffs")),
      m_repairs_(&world_.metrics().counter("proto.dynamo.repairs")) {
  if (cfg_->wal) {
    wal_ = std::make_unique<store::Wal>(world_, self_, *cfg_->wal);
    m_recoveries_ = &world_.metrics().counter("proto.dynamo.recoveries");
  }
}

void DynamoServer::start_handoff() {
  world_.set_timer(self_, cfg_->handoff_interval, [this] {
    handoff_round();
    start_handoff();
  });
}

void DynamoServer::handoff_round() {
  for (const auto& [home, objs] : hints_) {
    for (const auto& [o, vv] : objs) {
      m_handoffs_->inc();
      world_.send(self_, NodeId(home), RequestId(0),
                  msg::DynHandoff{o, vv.value, vv.clock});
    }
  }
}

bool DynamoServer::on_message(const sim::Envelope& env) {
  if (std::holds_alternative<msg::DynRead>(env.body) ||
      std::holds_alternative<msg::DynWrite>(env.body)) {
    sim::defer_processing(world_, self_, [this, env] { handle(env); });
    return true;
  }
  if (std::holds_alternative<msg::DynHandoff>(env.body) ||
      std::holds_alternative<msg::DynHandoffAck>(env.body) ||
      std::holds_alternative<msg::DynRepair>(env.body)) {
    handle(env);
    return true;
  }
  return false;
}

void DynamoServer::handle(const sim::Envelope& env) {
  if (const auto* m = std::get_if<msg::DynRead>(&env.body)) {
    m_reads_->inc();
    const VersionedValue vv = store_.get(m->object);
    world_.reply(self_, env, msg::DynReadReply{m->object, vv.value, vv.clock});
  } else if (const auto* m = std::get_if<msg::DynWrite>(&env.body)) {
    m_writes_->inc();
    store_.apply(m->object, m->value, m->clock);
    if (m->hint_for != msg::kNoHint && m->hint_for != self_.value()) {
      m_hinted_writes_->inc();
      VersionedValue& hint = hints_[m->hint_for][m->object];
      if (hint.clock < m->clock) hint = {m->value, m->clock};
    }
    // Ack with the post-apply clock so coordinators learn versions newer
    // than the one they wrote (feeds their site Lamport clocks).
    const msg::DynWriteAck ack{m->object, store_.clock_of(m->object)};
    if (wal_ != nullptr) {
      const store::Wal::Lsn lsn =
          wal_->append(store::WalRecord::put(m->object, m->value, m->clock));
      wal_->when_durable(lsn,
                         [this, env, ack] { world_.reply(self_, env, ack); });
      return;
    }
    world_.reply(self_, env, ack);
  } else if (const auto* m = std::get_if<msg::DynHandoff>(&env.body)) {
    store_.apply(m->object, m->value, m->clock);
    const msg::DynHandoffAck ack{m->object, m->clock};
    if (wal_ != nullptr) {
      const store::Wal::Lsn lsn =
          wal_->append(store::WalRecord::put(m->object, m->value, m->clock));
      wal_->when_durable(lsn,
                         [this, env, ack] { world_.reply(self_, env, ack); });
      return;
    }
    world_.reply(self_, env, ack);
  } else if (const auto* m = std::get_if<msg::DynHandoffAck>(&env.body)) {
    // The home replica holds the hinted version durably now; drop the hint.
    auto by_home = hints_.find(env.src.value());
    if (by_home != hints_.end()) {
      auto it = by_home->second.find(m->object);
      if (it != by_home->second.end() && !(m->clock < it->second.clock)) {
        by_home->second.erase(it);
        if (by_home->second.empty()) hints_.erase(by_home);
      }
    }
  } else if (const auto* m = std::get_if<msg::DynRepair>(&env.body)) {
    m_repairs_->inc();
    store_.apply(m->object, m->value, m->clock);
    if (wal_ != nullptr) {
      wal_->append(store::WalRecord::put(m->object, m->value, m->clock));
    }
  }
}

void DynamoServer::on_crash() {
  hints_.clear();
  if (wal_ == nullptr) return;  // legacy model: state survives as if durable
  store_.clear();
  wal_->on_crash();
}

void DynamoServer::on_recover() {
  if (wal_ == nullptr) return;
  wal_->replay([this](const store::WalRecord& r) {
    if (r.kind == store::WalRecordKind::kPut) {
      store_.apply(r.object, r.value, r.clock);
    }
  });
  m_recoveries_->inc();
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

DynamoCoordinator::DynamoCoordinator(sim::World& world, NodeId self,
                                     std::shared_ptr<const DynamoConfig> cfg)
    : world_(world), self_(self), cfg_(std::move(cfg)),
      m_reads_(&world_.metrics().counter("proto.dynamo.coord_reads")),
      m_writes_(&world_.metrics().counter("proto.dynamo.coord_writes")),
      m_retries_(&world_.metrics().counter("proto.dynamo.coord_retries")),
      m_repairs_(&world_.metrics().counter("proto.dynamo.read_repairs")) {
  DQ_INVARIANT(cfg_->n >= 1 && cfg_->n <= cfg_->ring.size(),
               "dynamo: n out of range");
  DQ_INVARIANT(cfg_->r >= 1 && cfg_->r <= cfg_->n, "dynamo: r out of range");
  DQ_INVARIANT(cfg_->w >= 1 && cfg_->w <= cfg_->n, "dynamo: w out of range");
}

std::vector<NodeId> DynamoCoordinator::preference_list(ObjectId o) const {
  const std::size_t size = cfg_->ring.size();
  const std::size_t start = static_cast<std::size_t>(o.value() % size);
  std::vector<NodeId> pref;
  pref.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    pref.push_back(cfg_->ring[(start + i) % size]);
  }
  return pref;
}

std::uint64_t DynamoCoordinator::start_op(Op op) {
  const RequestId rpc = world_.fresh_rpc_id();
  const std::uint64_t id = rpc.value();
  op.pref = preference_list(op.object);
  op.fanout = std::min(cfg_->n, op.pref.size());
  op.cur_timeout = cfg_->rpc.initial_timeout;
  if (cfg_->rpc.deadline < sim::kTimeInfinity) {
    op.deadline_at = world_.now() + cfg_->rpc.deadline;
  }
  ops_.emplace(id, std::move(op));
  transmit(id);
  arm_retry(id);
  return id;
}

void DynamoCoordinator::transmit(std::uint64_t id) {
  Op& op = ops_.at(id);
  // Home replicas that have not answered, in preference order: extension
  // nodes accept writes on their behalf (hinted handoff).
  std::vector<NodeId> missing_homes;
  const std::size_t homes = std::min(cfg_->n, op.pref.size());
  for (std::size_t i = 0; i < homes; ++i) {
    if (op.responded.count(op.pref[i]) == 0) {
      missing_homes.push_back(op.pref[i]);
    }
  }
  for (std::size_t p = 0; p < op.fanout; ++p) {
    const NodeId target = op.pref[p];
    if (op.responded.count(target) != 0) continue;
    if (!op.is_write) {
      world_.send(self_, target, RequestId(id), msg::DynRead{op.object});
      continue;
    }
    std::uint32_t hint = msg::kNoHint;
    if (p >= homes && p - homes < missing_homes.size()) {
      hint = missing_homes[p - homes].value();
    }
    world_.send(self_, target, RequestId(id),
                msg::DynWrite{op.object, op.value, op.lc, hint});
  }
}

void DynamoCoordinator::arm_retry(std::uint64_t id) {
  Op& op = ops_.at(id);
  op.retry = world_.set_timer(self_, op.cur_timeout,
                              [this, id] { on_retry(id); });
}

void DynamoCoordinator::on_retry(std::uint64_t id) {
  auto it = ops_.find(id);
  if (it == ops_.end() || it->second.completed) return;
  Op& op = it->second;
  if (world_.now() >= op.deadline_at) {
    Op failed = std::move(op);
    ops_.erase(it);
    if (failed.is_write) {
      failed.wdone(false, LogicalClock{});
    } else {
      failed.rdone(false, VersionedValue{});
    }
    return;
  }
  m_retries_->inc();
  // Sloppy membership: each round may reach one node further down the ring.
  op.fanout = std::min(op.fanout + 1, op.pref.size());
  transmit(id);
  op.cur_timeout = std::min(
      sim::Duration(static_cast<sim::Duration>(
          static_cast<double>(op.cur_timeout) * cfg_->rpc.backoff)),
      cfg_->rpc.max_timeout);
  arm_retry(id);
}

void DynamoCoordinator::complete_read(std::uint64_t id) {
  Op& op = ops_.at(id);
  op.completed = true;
  op.retry.cancel();
  ReadCallback done = std::move(op.rdone);
  const VersionedValue result = op.best;
  if (cfg_->read_repair) {
    // Keep the op alive collecting replies, then repair stale responders.
    op.linger = world_.set_timer(self_, cfg_->repair_linger,
                                 [this, id] { finish_repair(id); });
    done(true, result);
    return;
  }
  ops_.erase(id);
  done(true, result);
}

void DynamoCoordinator::finish_repair(std::uint64_t id) {
  auto it = ops_.find(id);
  if (it == ops_.end()) return;
  const Op& op = it->second;
  for (const auto& [node, clock] : op.reply_clocks) {
    if (clock < op.best.clock) {
      m_repairs_->inc();
      world_.send(self_, node, RequestId(0),
                  msg::DynRepair{op.object, op.best.value, op.best.clock});
    }
  }
  ops_.erase(it);
}

void DynamoCoordinator::complete_write(std::uint64_t id) {
  auto node = ops_.extract(id);
  Op& op = node.mapped();
  op.retry.cancel();
  op.wdone(true, op.lc);
}

void DynamoCoordinator::read(ObjectId o, ReadCallback done) {
  m_reads_->inc();
  Op op;
  op.is_write = false;
  op.object = o;
  op.rdone = std::move(done);
  start_op(std::move(op));
}

void DynamoCoordinator::write(ObjectId o, Value value, WriteCallback done) {
  m_writes_->inc();
  Op op;
  op.is_write = true;
  op.object = o;
  op.value = std::move(value);
  op.lc = LogicalClock{++lamport_, self_.value()};
  op.wdone = std::move(done);
  start_op(std::move(op));
}

bool DynamoCoordinator::on_message(const sim::Envelope& env) {
  auto it = ops_.find(env.rpc_id.value());
  if (it == ops_.end()) return false;
  Op& op = it->second;
  if (const auto* r = std::get_if<msg::DynReadReply>(&env.body)) {
    if (op.is_write || op.responded.count(env.src) != 0) return true;
    op.responded.insert(env.src);
    op.reply_clocks.emplace(env.src, r->clock);
    lamport_ = std::max(lamport_, r->clock.counter);
    if (op.best.clock <= r->clock) op.best = {r->value, r->clock};
    if (!op.completed && op.responded.size() >= cfg_->r) {
      complete_read(env.rpc_id.value());
    }
    return true;
  }
  if (const auto* a = std::get_if<msg::DynWriteAck>(&env.body)) {
    if (!op.is_write || op.responded.count(env.src) != 0) return true;
    op.responded.insert(env.src);
    lamport_ = std::max(lamport_, a->clock.counter);
    if (op.responded.size() >= cfg_->w) complete_write(env.rpc_id.value());
    return true;
  }
  return false;
}

void DynamoCoordinator::cancel_all() {
  for (auto& [id, op] : ops_) {
    op.retry.cancel();
    op.linger.cancel();
  }
  ops_.clear();
}

}  // namespace dq::protocols
