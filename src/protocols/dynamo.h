// Dynamo-style sloppy quorum with hinted handoff and read-repair (after
// DeCandia et al.; staleness motivation from Zhong et al., "Minimizing
// Content Staleness in Dynamo-Style Replicated Storage Systems").
//
// Each object has a preference list: the ring of servers rotated to start
// at `object mod num_servers`; the first N entries are its home replicas.
// The coordinator (the service client embedded in the front-end server the
// app client happened to reach) sends the operation to the first N nodes
// and completes a write at W acks / a read at R replies.  When a home
// replica does not answer, retransmission rounds extend the fan-out one
// node further down the ring ("sloppy" membership); a write accepted by an
// extension node carries `hint_for`, and the holder hands the value off to
// the home replica from a periodic timer once it answers again.  After a
// read completes, the coordinator lingers briefly collecting the remaining
// replies and pushes the freshest observed version to any stale responder
// (read-repair).
//
// Versions are last-writer-wins logical clocks: the coordinator stamps each
// write with a site-local Lamport counter (advanced by every clock it
// observes in replies) and its node id.  Two coordinators writing the same
// key concurrently can order their writes differently from real time --
// exactly the anomaly the regular-semantics checker reports and the
// staleness histogram quantifies; the consistency suite pins this protocol
// as `eventual`, with an expected-violations test under partitions.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "protocols/service_client.h"
#include "rpc/qrpc.h"
#include "store/object_store.h"
#include "store/wal.h"

namespace dq::protocols {

struct DynamoConfig {
  std::vector<NodeId> ring;  // all servers, in ring order
  std::size_t n = 3;         // home replicas per object
  std::size_t r = 1;         // read quorum
  std::size_t w = 2;         // write quorum
  bool read_repair = true;
  sim::Duration handoff_interval = sim::seconds(1);
  // How long a completed read keeps collecting replies before repairing.
  sim::Duration repair_linger = sim::milliseconds(800);
  rpc::QrpcOptions rpc;
  std::optional<store::WalParams> wal;
};

class DynamoServer {
 public:
  DynamoServer(sim::World& world, NodeId self,
               std::shared_ptr<const DynamoConfig> cfg);

  bool on_message(const sim::Envelope& env);
  void on_crash();
  void on_recover();

  // Start the periodic hinted-handoff loop (call once after attach).
  void start_handoff();

  [[nodiscard]] const store::ObjectStore& store() const { return store_; }

 private:
  void handle(const sim::Envelope& env);
  void handoff_round();

  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const DynamoConfig> cfg_;
  store::ObjectStore store_;
  std::unique_ptr<store::Wal> wal_;
  // home node id -> (object -> freshest hinted version).  Volatile, like
  // Dynamo's: a crash of the holder loses the hint (the data itself stays
  // in the store / WAL and read-repair re-propagates it).
  std::map<std::uint32_t, std::map<ObjectId, VersionedValue>> hints_;
  obs::Counter* m_reads_;
  obs::Counter* m_writes_;
  obs::Counter* m_hinted_writes_;
  obs::Counter* m_handoffs_;
  obs::Counter* m_repairs_;
  obs::Counter* m_recoveries_ = nullptr;
};

// The coordinator: a ServiceClient running on every front-end server.  Not
// built on QrpcEngine because sloppy membership is dynamic -- each
// retransmission round extends the candidate set one node down the ring,
// and completed reads outlive their quorum to run read-repair.
class DynamoCoordinator final : public ServiceClient {
 public:
  DynamoCoordinator(sim::World& world, NodeId self,
                    std::shared_ptr<const DynamoConfig> cfg);
  ~DynamoCoordinator() override { cancel_all(); }

  void read(ObjectId o, ReadCallback done) override;
  void write(ObjectId o, Value value, WriteCallback done) override;
  bool on_message(const sim::Envelope& env) override;
  void cancel_all() override;

  // The object's preference list: the ring rotated to start at
  // `o mod ring.size()`.
  [[nodiscard]] std::vector<NodeId> preference_list(ObjectId o) const;

 private:
  struct Op {
    bool is_write = false;
    ObjectId object;
    Value value;
    LogicalClock lc;  // write timestamp
    ReadCallback rdone;
    WriteCallback wdone;
    std::set<NodeId> responded;
    VersionedValue best;                        // freshest read reply
    std::map<NodeId, LogicalClock> reply_clocks;  // responder -> version
    std::vector<NodeId> pref;
    std::size_t fanout = 0;  // current prefix of pref being addressed
    sim::Duration cur_timeout = 0;
    sim::Time deadline_at = sim::kTimeInfinity;
    bool completed = false;  // true while lingering for read-repair
    sim::TimerToken retry;
    sim::TimerToken linger;
  };

  std::uint64_t start_op(Op op);
  void transmit(std::uint64_t id);
  void arm_retry(std::uint64_t id);
  void on_retry(std::uint64_t id);
  void complete_read(std::uint64_t id);
  void complete_write(std::uint64_t id);
  void finish_repair(std::uint64_t id);

  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const DynamoConfig> cfg_;
  std::uint64_t lamport_ = 0;  // site clock, advanced by observed versions
  std::map<std::uint64_t, Op> ops_;  // rpc id -> in-flight operation
  obs::Counter* m_reads_;
  obs::Counter* m_writes_;
  obs::Counter* m_retries_;
  obs::Counter* m_repairs_;
};

}  // namespace dq::protocols
