#include "protocols/hermes.h"

#include <algorithm>
#include <utility>

#include "sim/processing.h"

namespace dq::protocols {

HermesServer::HermesServer(sim::World& world, NodeId self,
                           std::shared_ptr<const HermesConfig> cfg)
    : world_(world), self_(self), cfg_(std::move(cfg)),
      engine_(world_, self_),
      all_(quorum::ThresholdQuorum::rowa(cfg_->replicas)),
      m_reads_(&world_.metrics().counter("proto.hermes.reads")),
      m_blocked_reads_(&world_.metrics().counter("proto.hermes.blocked_reads")),
      m_writes_(&world_.metrics().counter("proto.hermes.writes")),
      m_invs_(&world_.metrics().counter("proto.hermes.invs")),
      m_vals_(&world_.metrics().counter("proto.hermes.vals")),
      m_replays_(&world_.metrics().counter("proto.hermes.replays")) {
  if (cfg_->wal) {
    wal_ = std::make_unique<store::Wal>(world_, self_, *cfg_->wal);
    m_recoveries_ = &world_.metrics().counter("proto.hermes.recoveries");
  }
}

bool HermesServer::on_message(const sim::Envelope& env) {
  // Replies to this node's own INV / VAL rounds.
  if (engine_.on_reply(env)) return true;
  if (std::holds_alternative<msg::HermesWrite>(env.body) ||
      std::holds_alternative<msg::HermesRead>(env.body)) {
    sim::defer_processing(world_, self_, [this, env] { handle(env); });
    return true;
  }
  if (std::holds_alternative<msg::HermesInv>(env.body) ||
      std::holds_alternative<msg::HermesVal>(env.body)) {
    handle(env);
    return true;
  }
  return false;
}

void HermesServer::handle(const sim::Envelope& env) {
  if (const auto* m = std::get_if<msg::HermesWrite>(&env.body)) {
    handle_write(env, *m);
  } else if (const auto* m = std::get_if<msg::HermesRead>(&env.body)) {
    handle_read(env, *m);
  } else if (const auto* m = std::get_if<msg::HermesInv>(&env.body)) {
    apply_inv(env, *m);
  } else if (const auto* m = std::get_if<msg::HermesVal>(&env.body)) {
    apply_val(env, *m);
  }
}

bool HermesServer::is_valid(ObjectId o) const {
  auto it = valid_ts_.find(o);
  const LogicalClock validated =
      it == valid_ts_.end() ? LogicalClock{} : it->second;
  return validated == store_.clock_of(o);
}

void HermesServer::handle_write(const sim::Envelope& env,
                                const msg::HermesWrite& m) {
  // At-most-once per (src, rpc): the client retransmits under the same rpc
  // id and a re-coordination would mint a second timestamp.
  const auto key = std::make_pair(env.src, env.rpc_id);
  if (auto it = done_writes_.find(key); it != done_writes_.end()) {
    world_.reply(self_, env, it->second);
    return;
  }
  if (!inflight_writes_.insert(key).second) return;

  m_writes_->inc();
  const std::uint64_t counter =
      std::max(seq_, store_.clock_of(m.object).counter) + 1;
  seq_ = counter;
  const LogicalClock lc{counter, self_.value()};
  coordinate(m.object, m.value, lc, env);
}

void HermesServer::handle_read(const sim::Envelope& env,
                               const msg::HermesRead& m) {
  if (is_valid(m.object)) {
    m_reads_->inc();
    const VersionedValue vv = store_.get(m.object);
    world_.reply(self_, env,
                 msg::HermesReadReply{m.object, vv.value, vv.clock});
    return;
  }
  // A write to this key is in flight somewhere; queue until the VAL.
  m_blocked_reads_->inc();
  blocked_reads_[m.object].emplace(std::make_pair(env.src, env.rpc_id), env);
  arm_replay(m.object);
}

void HermesServer::coordinate(ObjectId o, Value value, LogicalClock lc,
                              std::optional<sim::Envelope> client) {
  engine_.call(
      *all_, quorum::Kind::kWrite,
      [o, value, lc, epoch = epoch_](NodeId) -> std::optional<msg::Payload> {
        return msg::HermesInv{o, value, lc, epoch};
      },
      [](NodeId, const msg::Payload&) {},
      [this, o, value, lc, client = std::move(client)](bool ok) {
        if (client) {
          const auto key = std::make_pair(client->src, client->rpc_id);
          inflight_writes_.erase(key);
          if (!ok) return;  // client's own deadline reports the rejection
          const msg::HermesWriteAck ack{o, lc};
          done_writes_.emplace(key, ack);
          world_.reply(self_, *client, ack);
        }
        if (!ok) return;
        // Commit point: every replica has applied and invalidated lc.
        // Validate with the retransmitting engine too, so no replica is
        // left invalid by a lost VAL.
        rpc::QrpcOptions val_opts = cfg_->rpc;
        val_opts.deadline = sim::kTimeInfinity;
        engine_.call(
            *all_, quorum::Kind::kWrite,
            [o, lc, epoch = epoch_](NodeId) -> std::optional<msg::Payload> {
              return msg::HermesVal{o, lc, epoch};
            },
            [](NodeId, const msg::Payload&) {}, [](bool) {}, val_opts);
      },
      cfg_->rpc);
}

void HermesServer::apply_inv(const sim::Envelope& env, const msg::HermesInv& m) {
  m_invs_->inc();
  store_.apply(m.object, m.value, m.clock);
  if (is_valid(m.object)) {
    // A VAL for this timestamp already arrived (reordering); the key is
    // immediately servable again.
    if (auto it = replay_timers_.find(m.object); it != replay_timers_.end()) {
      it->second.cancel();
      replay_timers_.erase(it);
    }
    flush_reads(m.object);
  } else {
    arm_replay(m.object);
  }
  if (wal_ != nullptr) {
    const store::Wal::Lsn lsn =
        wal_->append(store::WalRecord::put(m.object, m.value, m.clock));
    wal_->when_durable(lsn, [this, env, mi = m] {
      world_.reply(self_, env, msg::HermesInvAck{mi.object, mi.clock});
    });
    return;
  }
  world_.reply(self_, env, msg::HermesInvAck{m.object, m.clock});
}

void HermesServer::apply_val(const sim::Envelope& env, const msg::HermesVal& m) {
  m_vals_->inc();
  LogicalClock& validated = valid_ts_[m.object];
  validated = std::max(validated, m.clock);
  world_.reply(self_, env, msg::HermesValAck{m.object, m.clock});
  if (is_valid(m.object)) {
    if (auto it = replay_timers_.find(m.object); it != replay_timers_.end()) {
      it->second.cancel();
      replay_timers_.erase(it);
    }
    flush_reads(m.object);
  }
}

void HermesServer::flush_reads(ObjectId o) {
  auto it = blocked_reads_.find(o);
  if (it == blocked_reads_.end()) return;
  const VersionedValue vv = store_.get(o);
  for (const auto& [key, env] : it->second) {
    m_reads_->inc();
    world_.reply(self_, env, msg::HermesReadReply{o, vv.value, vv.clock});
  }
  blocked_reads_.erase(it);
}

void HermesServer::arm_replay(ObjectId o) {
  if (replay_timers_.count(o) != 0) return;
  replay_timers_[o] = world_.set_timer(self_, cfg_->replay_interval, [this, o] {
    replay_timers_.erase(o);
    if (is_valid(o)) {
      flush_reads(o);
      return;
    }
    // The coordinator died or its VALs are lost: re-coordinate the pending
    // write with the SAME timestamp (idempotent -- applies are max-clock and
    // VAL only validates an already-applied timestamp).
    m_replays_->inc();
    const VersionedValue vv = store_.get(o);
    coordinate(o, vv.value, vv.clock, std::nullopt);
    arm_replay(o);
  });
}

void HermesServer::on_crash() {
  engine_.cancel_all();
  blocked_reads_.clear();
  replay_timers_.clear();  // scheduler drops crashed-incarnation timers
  inflight_writes_.clear();
  done_writes_.clear();
  if (wal_ == nullptr) return;  // legacy model: state survives as if durable
  store_.clear();
  valid_ts_.clear();
  seq_ = 0;
  wal_->on_crash();
}

void HermesServer::on_recover() {
  ++epoch_;  // new membership epoch: replayed INV/VAL carry the bump
  if (wal_ == nullptr) return;
  wal_->replay([this](const store::WalRecord& r) {
    if (r.kind == store::WalRecordKind::kPut) {
      store_.apply(r.object, r.value, r.clock);
      seq_ = std::max(seq_, r.clock.counter);
    }
  });
  m_recoveries_->inc();
  // Every recovered key is invalid (valid_ts_ is volatile): schedule replays
  // so the node re-coordinates its state into validity instead of blocking
  // reads forever.
  for (const auto& [o, lc] : store_.digest()) {
    if (lc != LogicalClock{}) arm_replay(o);
  }
}

HermesClient::HermesClient(sim::World& world, NodeId self, NodeId target,
                           rpc::QrpcOptions opts)
    : world_(world), self_(self), engine_(world_, self_), opts_(opts),
      target_only_(quorum::ThresholdQuorum::majority({target})) {}

void HermesClient::read(ObjectId o, ReadCallback done) {
  auto best = std::make_shared<VersionedValue>();
  engine_.call(
      *target_only_, quorum::Kind::kRead,
      [o](NodeId) -> std::optional<msg::Payload> { return msg::HermesRead{o}; },
      [best](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::HermesReadReply>(&p)) {
          *best = {r->value, r->clock};
        }
      },
      [best, done = std::move(done)](bool ok) { done(ok, *best); }, opts_);
}

void HermesClient::write(ObjectId o, Value value, WriteCallback done) {
  auto got = std::make_shared<LogicalClock>();
  engine_.call(
      *target_only_, quorum::Kind::kWrite,
      [o, value = std::move(value)](NodeId) -> std::optional<msg::Payload> {
        return msg::HermesWrite{o, value};
      },
      [got](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::HermesWriteAck>(&p)) {
          *got = r->clock;
        }
      },
      [got, done = std::move(done)](bool ok) { done(ok, *got); }, opts_);
}

}  // namespace dq::protocols
