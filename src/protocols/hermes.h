// Hermes-style invalidation-based broadcast replication (after Katsarakis,
// "Invalidation-Based Protocols for Replicated Datastores").
//
// Every replica holds the full object set and serves LOCAL reads while its
// copy is valid.  A write is coordinated by the replica colocated with the
// requesting front end:
//
//   1. The coordinator assigns the write a per-key logical timestamp
//      (counter = max(local seq, stored clock) + 1, writer = node id) and
//      broadcasts INV{o, value, ts} to ALL replicas (itself included).
//   2. Each replica applies the value (max-clock wins), marks the key
//      INVALID, appends to its WAL when one is configured, and acks once the
//      record is durable.  Reads of an invalid key queue at the replica.
//   3. When acks from EVERY replica have arrived, the write commits: the
//      coordinator acks the client and broadcasts VAL{o, ts}.  A replica
//      receiving VAL re-validates the key (if ts matches its stored clock)
//      and flushes queued reads.
//
// Because a committed write has been applied at every replica before any
// read can observe it, and reads only return validated (= globally applied)
// versions, the protocol is linearizable -- the test suite holds it to
// History::check_atomic, not just check_regular.
//
// Liveness under loss and coordinator crashes comes from replays: both INV
// and VAL rounds run over the retransmitting QRPC engine, and any replica
// stuck with an invalid key re-coordinates the pending write itself with
// the SAME timestamp after `replay_interval` (idempotent: applies are
// max-clock, VAL only validates an already-applied timestamp).  Recovery
// bumps the replica's membership epoch, replays the WAL into the store, and
// re-coordinates every recovered key, so a restarted node rejoins without
// serving stale data.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "protocols/service_client.h"
#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "store/object_store.h"
#include "store/wal.h"

namespace dq::protocols {

struct HermesConfig {
  std::vector<NodeId> replicas;
  // How long a key may stay invalid at a replica before the replica replays
  // the pending write itself (lost VAL or crashed coordinator).
  sim::Duration replay_interval = sim::seconds(3);
  rpc::QrpcOptions rpc;
  std::optional<store::WalParams> wal;
};

class HermesServer {
 public:
  HermesServer(sim::World& world, NodeId self,
               std::shared_ptr<const HermesConfig> cfg);

  bool on_message(const sim::Envelope& env);
  void on_crash();
  void on_recover();

  [[nodiscard]] const store::ObjectStore& store() const { return store_; }
  [[nodiscard]] msg::Epoch epoch() const { return epoch_; }

 private:
  void handle(const sim::Envelope& env);
  void handle_write(const sim::Envelope& env, const msg::HermesWrite& m);
  void handle_read(const sim::Envelope& env, const msg::HermesRead& m);
  void apply_inv(const sim::Envelope& env, const msg::HermesInv& m);
  void apply_val(const sim::Envelope& env, const msg::HermesVal& m);
  // Broadcast INV to all replicas; on completion commit (optional client
  // ack) and broadcast VAL.
  void coordinate(ObjectId o, Value value, LogicalClock lc,
                  std::optional<sim::Envelope> client);
  [[nodiscard]] bool is_valid(ObjectId o) const;
  void flush_reads(ObjectId o);
  void arm_replay(ObjectId o);

  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const HermesConfig> cfg_;
  store::ObjectStore store_;
  std::unique_ptr<store::Wal> wal_;
  rpc::QrpcEngine engine_;
  std::shared_ptr<const quorum::QuorumSystem> all_;  // write quorum = all
  std::uint64_t seq_ = 0;
  msg::Epoch epoch_ = 0;
  // Highest validated timestamp per key; the key is valid iff this equals
  // the stored clock (both default to zero for never-written keys).
  std::map<ObjectId, LogicalClock> valid_ts_;
  // Reads queued while their key is invalid, deduped by (src, rpc id).
  std::map<ObjectId, std::map<std::pair<NodeId, RequestId>, sim::Envelope>>
      blocked_reads_;
  // Per-key replay timer (armed while the key is invalid).
  std::map<ObjectId, sim::TimerToken> replay_timers_;
  // Client-write dedupe (the front end's client retransmits under the same
  // rpc id; re-coordinating would mint a second timestamp).
  std::set<std::pair<NodeId, RequestId>> inflight_writes_;
  std::map<std::pair<NodeId, RequestId>, msg::HermesWriteAck> done_writes_;

  obs::Counter* m_reads_;
  obs::Counter* m_blocked_reads_;
  obs::Counter* m_writes_;
  obs::Counter* m_invs_;
  obs::Counter* m_vals_;
  obs::Counter* m_replays_;
  obs::Counter* m_recoveries_ = nullptr;
};

// Thin service client: single-RPC read/write against the colocated replica,
// which does all coordination.
class HermesClient final : public ServiceClient {
 public:
  HermesClient(sim::World& world, NodeId self, NodeId target,
               rpc::QrpcOptions opts = {});

  void read(ObjectId o, ReadCallback done) override;
  void write(ObjectId o, Value value, WriteCallback done) override;
  bool on_message(const sim::Envelope& env) override {
    return engine_.on_reply(env);
  }
  void cancel_all() override { engine_.cancel_all(); }

 private:
  sim::World& world_;
  NodeId self_;
  rpc::QrpcEngine engine_;
  rpc::QrpcOptions opts_;
  std::shared_ptr<const quorum::QuorumSystem> target_only_;
};

}  // namespace dq::protocols
