#include "protocols/majority.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/processing.h"

namespace dq::protocols {

bool MajorityServer::on_message(const sim::Envelope& env) {
  const bool mine = std::holds_alternative<msg::MajRead>(env.body) ||
                    std::holds_alternative<msg::MajLcRead>(env.body) ||
                    std::holds_alternative<msg::MajWrite>(env.body);
  if (!mine) return false;
  sim::defer_processing(world_, self_, [this, env] { handle(env); });
  return true;
}

void MajorityServer::handle(const sim::Envelope& env) {
  if (const auto* m = std::get_if<msg::MajRead>(&env.body)) {
    m_reads_->inc();
    const VersionedValue vv = store_.get(m->object);
    world_.reply(self_, env,
                 msg::MajReadReply{m->object, vv.value, vv.clock});
  } else if (const auto* m = std::get_if<msg::MajLcRead>(&env.body)) {
    m_lc_reads_->inc();
    world_.reply(self_, env,
                 msg::MajLcReadReply{m->object, store_.clock_of(m->object)});
  } else if (const auto* m = std::get_if<msg::MajWrite>(&env.body)) {
    m_writes_->inc();
    store_.apply(m->object, m->value, m->clock);
    if (wal_ != nullptr) {
      // No ack before the record is durable: the regular-semantics checker
      // forgives writes that were never acked, never acked-then-lost ones.
      const store::Wal::Lsn lsn =
          wal_->append(store::WalRecord::put(m->object, m->value, m->clock));
      wal_->when_durable(lsn, [this, env, mw = *m] {
        world_.reply(self_, env, msg::MajWriteAck{mw.object, mw.clock});
      });
      return;
    }
    world_.reply(self_, env,
                 msg::MajWriteAck{m->object, m->clock});
  }
}

void MajorityServer::on_crash() {
  if (wal_ == nullptr) return;  // legacy model: state survives as if durable
  store_.clear();
  wal_->on_crash();
}

void MajorityServer::on_recover() {
  if (wal_ == nullptr) return;
  wal_->replay([this](const store::WalRecord& r) {
    if (r.kind == store::WalRecordKind::kPut) {
      store_.apply(r.object, r.value, r.clock);
    }
  });
  m_recoveries_->inc();
}

void MajorityClient::read(ObjectId o, ReadCallback done) {
  auto best = std::make_shared<VersionedValue>();
  engine_.call(
      *system_, quorum::Kind::kRead,
      [o](NodeId) -> std::optional<msg::Payload> { return msg::MajRead{o}; },
      [best](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::MajReadReply>(&p)) {
          if (r->clock >= best->clock) *best = {r->value, r->clock};
        }
      },
      [best, done = std::move(done)](bool ok) { done(ok, *best); }, opts_);
}

void MajorityClient::write(ObjectId o, Value value, WriteCallback done) {
  auto max_lc = std::make_shared<LogicalClock>();
  engine_.call(
      *system_, quorum::Kind::kRead,
      [o](NodeId) -> std::optional<msg::Payload> { return msg::MajLcRead{o}; },
      [max_lc](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::MajLcReadReply>(&p)) {
          *max_lc = std::max(*max_lc, r->clock);
        }
      },
      [this, o, value = std::move(value), max_lc,
       done = std::move(done)](bool ok) mutable {
        if (!ok) {
          done(false, LogicalClock{});
          return;
        }
        // Advance past our own previously issued clock as well as the
        // quorum maximum: pipelined writes from one writer would otherwise
        // observe the same quorum max and mint identical clocks.
        const LogicalClock lc =
            std::max(*max_lc, issued_).advanced_by(writer_id_);
        issued_ = lc;
        engine_.call(
            *system_, quorum::Kind::kWrite,
            [o, lc, value](NodeId) -> std::optional<msg::Payload> {
              return msg::MajWrite{o, value, lc};
            },
            [](NodeId, const msg::Payload&) {},
            [lc, done = std::move(done)](bool ok2) { done(ok2, lc); }, opts_);
      },
      opts_);
}

}  // namespace dq::protocols
