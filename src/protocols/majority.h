// Majority-quorum replicated register (Gifford / Thomas weighted voting with
// equal votes).
//
// Reads gather a majority and take the highest-clock reply.  Writes are two
// phases: read the highest clock from a majority, advance it, write to a
// majority.  This provides regular semantics and is the paper's primary
// strong-consistency baseline.
#pragma once

#include <memory>

#include "protocols/service_client.h"
#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "store/object_store.h"

namespace dq::protocols {

class MajorityServer {
 public:
  MajorityServer(sim::World& world, NodeId self)
      : world_(world), self_(self),
        m_reads_(&world.metrics().counter("proto.majority.reads")),
        m_lc_reads_(&world.metrics().counter("proto.majority.lc_reads")),
        m_writes_(&world.metrics().counter("proto.majority.writes")) {}

  bool on_message(const sim::Envelope& env);

  [[nodiscard]] const store::ObjectStore& store() const { return store_; }

 private:
  void handle(const sim::Envelope& env);

  sim::World& world_;
  NodeId self_;
  store::ObjectStore store_;
  obs::Counter* m_reads_;
  obs::Counter* m_lc_reads_;
  obs::Counter* m_writes_;
};

class MajorityClient final : public ServiceClient {
 public:
  MajorityClient(sim::World& world, NodeId self,
                 std::shared_ptr<const quorum::QuorumSystem> system,
                 rpc::QrpcOptions opts = {})
      : world_(world), self_(self), system_(std::move(system)),
        engine_(world_, self_), opts_(opts), writer_id_(self_.value()) {}

  void read(ObjectId o, ReadCallback done) override;
  void write(ObjectId o, Value value, WriteCallback done) override;
  bool on_message(const sim::Envelope& env) override {
    return engine_.on_reply(env);
  }
  void cancel_all() override { engine_.cancel_all(); }

 private:
  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const quorum::QuorumSystem> system_;
  rpc::QrpcEngine engine_;
  rpc::QrpcOptions opts_;
  ClientId writer_id_;
};

}  // namespace dq::protocols
