// Majority-quorum replicated register (Gifford / Thomas weighted voting with
// equal votes).
//
// Reads gather a majority and take the highest-clock reply.  Writes are two
// phases: read the highest clock from a majority, advance it, write to a
// majority.  This provides regular semantics and is the paper's primary
// strong-consistency baseline.
#pragma once

#include <memory>
#include <optional>

#include "protocols/service_client.h"
#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "store/object_store.h"
#include "store/wal.h"

namespace dq::protocols {

class MajorityServer {
 public:
  // With `wal` set the server keeps a write-ahead log, gates write acks on
  // record durability, and implements crash recovery by replay -- the
  // minimal recovery story that keeps the baseline comparison with DQVL
  // fair.  Without it (the default) crashes keep state, as before.
  MajorityServer(sim::World& world, NodeId self,
                 std::optional<store::WalParams> wal = std::nullopt)
      : world_(world), self_(self),
        m_reads_(&world.metrics().counter("proto.majority.reads")),
        m_lc_reads_(&world.metrics().counter("proto.majority.lc_reads")),
        m_writes_(&world.metrics().counter("proto.majority.writes")) {
    if (wal) {
      wal_ = std::make_unique<store::Wal>(world_, self_, *wal);
      m_recoveries_ = &world.metrics().counter("proto.majority.recoveries");
    }
  }

  bool on_message(const sim::Envelope& env);
  void on_crash();
  void on_recover();

  [[nodiscard]] const store::ObjectStore& store() const { return store_; }

 private:
  void handle(const sim::Envelope& env);

  sim::World& world_;
  NodeId self_;
  store::ObjectStore store_;
  std::unique_ptr<store::Wal> wal_;
  obs::Counter* m_reads_;
  obs::Counter* m_lc_reads_;
  obs::Counter* m_writes_;
  obs::Counter* m_recoveries_ = nullptr;
};

class MajorityClient final : public ServiceClient {
 public:
  MajorityClient(sim::World& world, NodeId self,
                 std::shared_ptr<const quorum::QuorumSystem> system,
                 rpc::QrpcOptions opts = {})
      : world_(world), self_(self), system_(std::move(system)),
        engine_(world_, self_), opts_(opts), writer_id_(self_.value()) {}

  void read(ObjectId o, ReadCallback done) override;
  void write(ObjectId o, Value value, WriteCallback done) override;
  bool on_message(const sim::Envelope& env) override {
    return engine_.on_reply(env);
  }
  void cancel_all() override { engine_.cancel_all(); }

 private:
  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const quorum::QuorumSystem> system_;
  rpc::QrpcEngine engine_;
  rpc::QrpcOptions opts_;
  ClientId writer_id_;
  // Highest clock this writer has issued; keeps pipelined same-writer
  // writes strictly ordered (writer-id tie-breaking only disambiguates
  // different writers).
  LogicalClock issued_;
};

}  // namespace dq::protocols
