#include "protocols/primary_backup.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "sim/processing.h"

namespace dq::protocols {

PbServer::PbServer(sim::World& world, NodeId self,
                   std::shared_ptr<const PbConfig> cfg)
    : world_(world), self_(self), cfg_(std::move(cfg)),
      engine_(world_, self_),
      m_reads_(&world_.metrics().counter("proto.pb.reads")),
      m_writes_(&world_.metrics().counter("proto.pb.writes")),
      m_syncs_(&world_.metrics().counter("proto.pb.syncs")) {
  std::vector<NodeId> backups;
  for (NodeId r : cfg_->replicas) {
    if (r != cfg_->primary) backups.push_back(r);
  }
  if (!backups.empty()) {
    // Synchronous propagation must reach every backup: a ROWA-shaped system
    // over the backups (write quorum = all).
    backups_ = quorum::ThresholdQuorum::rowa(std::move(backups));
  }
  if (cfg_->wal) {
    wal_ = std::make_unique<store::Wal>(world_, self_, *cfg_->wal);
    m_recoveries_ = &world_.metrics().counter("proto.pb.recoveries");
  }
}

void PbServer::on_crash() {
  // In-flight sync propagations are volatile; clients retransmit.
  engine_.cancel_all();
  if (wal_ == nullptr) return;  // legacy model: state survives as if durable
  store_.clear();
  applied_.clear();
  write_seq_ = 0;
  wal_->on_crash();
}

void PbServer::on_recover() {
  if (wal_ == nullptr) return;
  wal_->replay([this](const store::WalRecord& r) {
    switch (r.kind) {
      case store::WalRecordKind::kPut:
        store_.apply(r.object, r.value, r.clock);
        if (r.clock.writer == self_.value()) {
          write_seq_ = std::max(write_seq_, r.clock.counter);
        }
        break;
      case store::WalRecordKind::kNote:
        // Dedupe entry.  Its put is always durable when the note is (the
        // put is appended first), so re-acking from this entry never acks a
        // lost value.
        applied_[{r.node, r.rpc}] = r.clock;
        write_seq_ = std::max(write_seq_, r.clock.counter);
        break;
      case store::WalRecordKind::kEpoch:
      case store::WalRecordKind::kClockMark:
        break;
    }
  });
  m_recoveries_->inc();
}

bool PbServer::on_message(const sim::Envelope& env) {
  if (std::holds_alternative<msg::PbRead>(env.body) ||
      std::holds_alternative<msg::PbWrite>(env.body)) {
    // Client-facing: only the primary serves these, after the processing
    // delay.  A non-primary silently ignores them (clients only target the
    // primary; anything else is a stray).
    if (!is_primary()) return true;
    sim::defer_processing(world_, self_, [this, env] { handle(env); });
    return true;
  }
  if (std::holds_alternative<msg::PbSync>(env.body)) {
    handle(env);
    return true;
  }
  if (std::holds_alternative<msg::PbSyncAck>(env.body)) {
    return engine_.on_reply(env);
  }
  return false;
}

void PbServer::handle(const sim::Envelope& env) {
  if (const auto* m = std::get_if<msg::PbRead>(&env.body)) {
    m_reads_->inc();
    const VersionedValue vv = store_.get(m->object);
    world_.reply(self_, env,
                 msg::PbReadReply{m->object, vv.value, vv.clock});
  } else if (const auto* m = std::get_if<msg::PbWrite>(&env.body)) {
    m_writes_->inc();
    // The primary orders writes; clients carry no clock.  Retransmissions
    // (same client + rpc id) must not be applied twice.
    const auto key = std::make_pair(env.src, env.rpc_id);
    if (auto it = applied_.find(key); it != applied_.end()) {
      world_.reply(self_, env, msg::PbWriteAck{m->object, it->second});
      return;
    }
    const LogicalClock lc{++write_seq_, self_.value()};
    applied_.emplace(key, lc);
    store_.apply(m->object, m->value, lc);
    if (wal_ != nullptr) {
      // Put before note: the client ack (inside propagate) is gated on the
      // note, so "note durable" implies "value durable" and the recovered
      // dedupe map can safely re-ack retransmissions.
      wal_->append(store::WalRecord::put(m->object, m->value, lc));
      const store::Wal::Lsn note_lsn =
          wal_->append(store::WalRecord::note(env.src, env.rpc_id, lc));
      wal_->when_durable(note_lsn, [this, mw = *m, lc, env] {
        propagate(mw.object, mw.value, lc, env);
      });
      return;
    }
    propagate(m->object, m->value, lc, env);
  } else if (const auto* m = std::get_if<msg::PbSync>(&env.body)) {
    m_syncs_->inc();
    store_.apply(m->object, m->value, m->clock);
    if (wal_ != nullptr) {
      // Backups log too (so a restarted backup recovers its state), but
      // their sync-acks are not durability-gated: reads are served by the
      // primary alone, so backup durability is never load-bearing here.
      wal_->append(store::WalRecord::put(m->object, m->value, m->clock));
    }
    world_.reply(self_, env,
                 msg::PbSyncAck{m->object, m->clock});
  }
}

void PbServer::propagate(ObjectId o, const Value& v, LogicalClock lc,
                         const sim::Envelope& client_env) {
  const NodeId client = client_env.src;
  const RequestId rpc = client_env.rpc_id;
  if (backups_ == nullptr) {
    world_.send_tagged(self_, client, rpc, msg::PbWriteAck{o, lc}, true);
    return;
  }
  if (cfg_->mode == PbMode::kAsyncPropagation) {
    // Ack first, push to backups in the background (one client round trip,
    // as the paper's Figure 6 assumes for primary/backup).
    world_.send_tagged(self_, client, rpc, msg::PbWriteAck{o, lc}, true);
    for (NodeId b : backups_->members()) {
      world_.send(self_, b, RequestId(0), msg::PbSync{o, v, lc});
    }
    return;
  }
  engine_.call(
      *backups_, quorum::Kind::kWrite,
      [o, v, lc](NodeId) -> std::optional<msg::Payload> {
        return msg::PbSync{o, v, lc};
      },
      [](NodeId, const msg::Payload&) {},
      [this, o, lc, client, rpc](bool ok) {
        DQ_INVARIANT(ok, "sync propagation has no deadline");
        world_.send_tagged(self_, client, rpc, msg::PbWriteAck{o, lc},
                           true);
      },
      cfg_->rpc);
}

void PbClient::read(ObjectId o, ReadCallback done) {
  auto best = std::make_shared<VersionedValue>();
  engine_.call(
      *primary_only_, quorum::Kind::kRead,
      [o](NodeId) -> std::optional<msg::Payload> { return msg::PbRead{o}; },
      [best](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::PbReadReply>(&p)) {
          *best = {r->value, r->clock};
        }
      },
      [best, done = std::move(done)](bool ok) { done(ok, *best); },
      cfg_->rpc);
}

void PbClient::write(ObjectId o, Value value, WriteCallback done) {
  auto got = std::make_shared<LogicalClock>();
  engine_.call(
      *primary_only_, quorum::Kind::kWrite,
      [o, value](NodeId) -> std::optional<msg::Payload> {
        return msg::PbWrite{o, value};
      },
      [got](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::PbWriteAck>(&p)) *got = r->clock;
      },
      [got, done = std::move(done)](bool ok) { done(ok, *got); }, cfg_->rpc);
}

}  // namespace dq::protocols
