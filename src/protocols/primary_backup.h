// Primary/backup replication (Alsberg & Day).
//
// All reads and writes are processed by the primary; backups receive state
// transfer either synchronously (the primary acks the client only after all
// reachable... strictly: all backups ack) or asynchronously (the primary
// acks immediately and propagates in the background).  The paper's
// response-time figures show primary/backup completing writes in one client
// round trip, i.e. the asynchronous mode, which is the default here; the
// synchronous mode is kept for the ablation benches.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "protocols/service_client.h"
#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "store/object_store.h"
#include "store/wal.h"

namespace dq::protocols {

enum class PbMode : std::uint8_t { kAsyncPropagation, kSyncPropagation };

struct PbConfig {
  NodeId primary;
  std::vector<NodeId> replicas;  // includes the primary
  PbMode mode = PbMode::kAsyncPropagation;
  rpc::QrpcOptions rpc;
  // When set every replica keeps a write-ahead log; the primary gates its
  // client acks on durability of the put AND the dedupe note, and recovery
  // replays both (minimal recovery, keeping the baseline comparison fair).
  std::optional<store::WalParams> wal;
};

class PbServer {
 public:
  PbServer(sim::World& world, NodeId self, std::shared_ptr<const PbConfig> cfg);

  bool on_message(const sim::Envelope& env);
  void on_crash();
  void on_recover();
  [[nodiscard]] bool is_primary() const { return self_ == cfg_->primary; }
  [[nodiscard]] const store::ObjectStore& store() const { return store_; }

 private:
  void handle(const sim::Envelope& env);
  void propagate(ObjectId o, const Value& v, LogicalClock lc,
                 const sim::Envelope& client_env);

  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const PbConfig> cfg_;
  rpc::QrpcEngine engine_;
  store::ObjectStore store_;
  std::unique_ptr<store::Wal> wal_;
  std::uint64_t write_seq_ = 0;
  std::shared_ptr<const quorum::QuorumSystem> backups_;  // write = all backups
  // Write dedupe: retransmitted client writes are re-acked, not re-applied.
  std::map<std::pair<NodeId, RequestId>, LogicalClock> applied_;
  obs::Counter* m_reads_;
  obs::Counter* m_writes_;
  obs::Counter* m_syncs_;
  obs::Counter* m_recoveries_ = nullptr;
};

class PbClient final : public ServiceClient {
 public:
  PbClient(sim::World& world, NodeId self, std::shared_ptr<const PbConfig> cfg)
      : world_(world), self_(self), cfg_(std::move(cfg)),
        engine_(world_, self_),
        primary_only_(quorum::ThresholdQuorum::majority({cfg_->primary})) {}

  void read(ObjectId o, ReadCallback done) override;
  void write(ObjectId o, Value value, WriteCallback done) override;
  bool on_message(const sim::Envelope& env) override {
    return engine_.on_reply(env);
  }
  void cancel_all() override { engine_.cancel_all(); }

 private:
  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const PbConfig> cfg_;
  rpc::QrpcEngine engine_;
  std::shared_ptr<const quorum::QuorumSystem> primary_only_;
};

}  // namespace dq::protocols
