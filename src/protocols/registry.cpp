#include "protocols/registry.h"

#include <utility>

#include "common/assert.h"

namespace dq::protocols {

const char* to_string(ConsistencyClass c) {
  switch (c) {
    case ConsistencyClass::kAtomic: return "atomic";
    case ConsistencyClass::kRegular: return "regular";
    case ConsistencyClass::kEventual: return "eventual";
  }
  return "?";
}

Registry& Registry::instance() {
  // dqlint:allow(part-local-static): registry is write-once at startup
  // (ensure_builtins_registered) and read-only during trials; partitions
  // never mutate it mid-simulation.
  static Registry r;
  return r;
}

void Registry::add(ProtocolInfo info) {
  DQ_INVARIANT(!info.name.empty(), "protocol name must be non-empty");
  DQ_INVARIANT(info.build != nullptr, "protocol factory must be set");
  const auto [it, inserted] = by_name_.emplace(info.name, std::move(info));
  (void)it;
  DQ_INVARIANT(inserted, "duplicate protocol registration");
}

const ProtocolInfo* Registry::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

std::vector<const ProtocolInfo*> Registry::list() const {
  std::vector<const ProtocolInfo*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, info] : by_name_) out.push_back(&info);
  return out;
}

}  // namespace dq::protocols
