// Self-registering protocol registry.
//
// Each protocol is described by a ProtocolInfo: the CLI name, the display
// name used in dq.report.v1, a capability descriptor, and a factory that
// wires the protocol into a workload::Deployment.  Adding a protocol is a
// single Registry::add() call -- no enum edits, no switch edits, no flag-map
// edits (the closed Protocol enum this replaces required all three).
//
// The builtin protocols are registered from src/workload/wiring.cpp (a
// translation unit that is always linked, so static-library dead-stripping
// cannot drop the registrations); tests and examples may add more.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dq::workload {
class Deployment;
}

namespace dq::protocols {

// Strongest single-register guarantee the protocol provides under the
// experiment fault model (message loss, partitions, crashes).
enum class ConsistencyClass : std::uint8_t {
  kAtomic,    // linearizable (passes History::check_atomic)
  kRegular,   // Lamport-regular (passes History::check_regular)
  kEventual,  // stale reads allowed; checker violations expected
};

[[nodiscard]] const char* to_string(ConsistencyClass c);

struct Capability {
  // Servers honor ExperimentParams::wal (acks gated on record durability).
  bool supports_wal = false;
  // Servers implement crash hooks with state recovery on restart.
  bool supports_crash_recovery = false;
  ConsistencyClass consistency_class = ConsistencyClass::kEventual;
};

struct ProtocolInfo {
  std::string name;          // CLI spelling, e.g. "dqvl"
  std::string display_name;  // report spelling, e.g. "DQVL"
  Capability caps;
  // Wire servers, service clients, and app clients into the deployment.
  std::function<void(workload::Deployment&)> build;
};

class Registry {
 public:
  static Registry& instance();

  // Registers `info`; trips an invariant on a duplicate name.
  void add(ProtocolInfo info);

  // nullptr when no protocol has that name.  The returned pointer is stable
  // for the life of the process (node-based storage underneath).
  [[nodiscard]] const ProtocolInfo* find(const std::string& name) const;

  // All registered protocols, sorted by name.
  [[nodiscard]] std::vector<const ProtocolInfo*> list() const;

 private:
  Registry() = default;
  std::map<std::string, ProtocolInfo> by_name_;
};

}  // namespace dq::protocols
