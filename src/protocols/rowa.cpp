#include "protocols/rowa.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/processing.h"

namespace dq::protocols {

bool RowaServer::on_message(const sim::Envelope& env) {
  if (!std::holds_alternative<msg::RowaRead>(env.body) &&
      !std::holds_alternative<msg::RowaWrite>(env.body)) {
    return false;
  }
  sim::defer_processing(world_, self_, [this, env] { handle(env); });
  return true;
}

void RowaServer::handle(const sim::Envelope& env) {
  if (const auto* m = std::get_if<msg::RowaRead>(&env.body)) {
    m_reads_->inc();
    const VersionedValue vv = store_.get(m->object);
    world_.reply(self_, env,
                 msg::RowaReadReply{m->object, vv.value, vv.clock});
  } else if (const auto* m = std::get_if<msg::RowaWrite>(&env.body)) {
    m_writes_->inc();
    store_.apply(m->object, m->value, m->clock);
    world_.reply(self_, env,
                 msg::RowaWriteAck{m->object, m->clock});
  }
}

void RowaClient::read(ObjectId o, ReadCallback done) {
  auto best = std::make_shared<VersionedValue>();
  engine_.call(
      *system_, quorum::Kind::kRead,
      [o](NodeId) -> std::optional<msg::Payload> { return msg::RowaRead{o}; },
      [this, best](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::RowaReadReply>(&p)) {
          if (r->clock >= best->clock) *best = {r->value, r->clock};
          seen_ = std::max(seen_, r->clock);
        }
      },
      [best, done = std::move(done)](bool ok) { done(ok, *best); }, opts_);
}

void RowaClient::write(ObjectId o, Value value, WriteCallback done) {
  // One round trip: stamp from the colocated replica's clock (see header).
  LogicalClock base = seen_;
  if (local_ != nullptr) base = std::max(base, local_->store().clock_of(o));
  const LogicalClock lc = base.advanced_by(writer_id_);
  seen_ = std::max(seen_, lc);
  engine_.call(
      *system_, quorum::Kind::kWrite,
      [o, lc, value = std::move(value)](NodeId) -> std::optional<msg::Payload> {
        return msg::RowaWrite{o, value, lc};
      },
      [](NodeId, const msg::Payload&) {},
      [lc, done = std::move(done)](bool ok) { done(ok, lc); }, opts_);
}

}  // namespace dq::protocols
