// ROWA: read-one / write-all, synchronous.
//
// Reads are served by any single replica (the client's local one when the
// client is colocated with a replica).  Writes go to every replica and
// complete only when all have acked -- excellent read latency, poor write
// availability.
//
// Write ordering: the writing front end is colocated with a replica, so it
// stamps the write with (local replica clock + 1).  Because a completed
// write reached ALL replicas, any later writer's local replica already holds
// a clock at least as high, which keeps the clock order consistent with
// real-time order for non-concurrent writes (regular semantics).
#pragma once

#include <memory>

#include "protocols/service_client.h"
#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "store/object_store.h"

namespace dq::protocols {

class RowaServer {
 public:
  RowaServer(sim::World& world, NodeId self)
      : world_(world), self_(self),
        m_reads_(&world.metrics().counter("proto.rowa.reads")),
        m_writes_(&world.metrics().counter("proto.rowa.writes")) {}

  bool on_message(const sim::Envelope& env);
  [[nodiscard]] const store::ObjectStore& store() const { return store_; }

 private:
  void handle(const sim::Envelope& env);

  sim::World& world_;
  NodeId self_;
  store::ObjectStore store_;
  obs::Counter* m_reads_;
  obs::Counter* m_writes_;
};

class RowaClient final : public ServiceClient {
 public:
  // `local_replica` is the replica colocated with this client's node (null
  // when the client runs off-replica; it then orders writes with a private
  // monotonic counter seeded by its read replies).
  RowaClient(sim::World& world, NodeId self,
             std::shared_ptr<const quorum::QuorumSystem> system,
             const RowaServer* local_replica, rpc::QrpcOptions opts = {})
      : world_(world), self_(self), system_(std::move(system)),
        local_(local_replica), engine_(world_, self_), opts_(opts),
        writer_id_(self_.value()) {}

  void read(ObjectId o, ReadCallback done) override;
  void write(ObjectId o, Value value, WriteCallback done) override;
  bool on_message(const sim::Envelope& env) override {
    return engine_.on_reply(env);
  }
  void cancel_all() override { engine_.cancel_all(); }

 private:
  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const quorum::QuorumSystem> system_;
  const RowaServer* local_;
  rpc::QrpcEngine engine_;
  rpc::QrpcOptions opts_;
  ClientId writer_id_;
  LogicalClock seen_;  // highest clock observed in replies
};

}  // namespace dq::protocols
