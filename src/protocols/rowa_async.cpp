#include "protocols/rowa_async.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "sim/processing.h"

namespace dq::protocols {

RowaAsyncServer::RowaAsyncServer(sim::World& world, NodeId self,
                                 std::shared_ptr<const RowaAsyncConfig> cfg)
    : world_(world), self_(self), cfg_(std::move(cfg)),
      m_reads_(&world_.metrics().counter("proto.rowa_async.reads")),
      m_writes_(&world_.metrics().counter("proto.rowa_async.writes")),
      m_gossip_(&world_.metrics().counter("proto.rowa_async.gossip")),
      m_ae_rounds_(&world_.metrics().counter("proto.rowa_async.ae_rounds")) {}

void RowaAsyncServer::start_anti_entropy() {
  world_.set_timer(self_, cfg_->anti_entropy_interval, [this] {
    anti_entropy_round();
    start_anti_entropy();
  });
}

void RowaAsyncServer::anti_entropy_round() {
  // Exchange digests with one random peer per round.
  std::vector<NodeId> peers;
  for (NodeId r : cfg_->replicas) {
    if (r != self_) peers.push_back(r);
  }
  if (peers.empty()) return;
  m_ae_rounds_->inc();
  const NodeId peer = peers[world_.rng().below(peers.size())];
  world_.send(self_, peer, RequestId(0), msg::AeDigest{store_.digest()});
}

bool RowaAsyncServer::on_message(const sim::Envelope& env) {
  if (std::holds_alternative<msg::AsyncRead>(env.body) ||
      std::holds_alternative<msg::AsyncWrite>(env.body)) {
    sim::defer_processing(world_, self_, [this, env] { handle(env); });
    return true;
  }
  if (std::holds_alternative<msg::GossipUpdate>(env.body) ||
      std::holds_alternative<msg::AeDigest>(env.body) ||
      std::holds_alternative<msg::AeUpdates>(env.body)) {
    handle(env);
    return true;
  }
  return false;
}

void RowaAsyncServer::handle(const sim::Envelope& env) {
  if (const auto* m = std::get_if<msg::AsyncRead>(&env.body)) {
    m_reads_->inc();
    const VersionedValue vv = store_.get(m->object);
    world_.reply(self_, env,
                 msg::AsyncReadReply{m->object, vv.value, vv.clock});
  } else if (const auto* m = std::get_if<msg::AsyncWrite>(&env.body)) {
    m_writes_->inc();
    // Accept locally, ack, push to peers in the background.
    const std::uint64_t counter =
        std::max(write_seq_, store_.clock_of(m->object).counter) + 1;
    write_seq_ = counter;
    const LogicalClock lc{counter, self_.value()};
    store_.apply(m->object, m->value, lc);
    world_.reply(self_, env, msg::AsyncWriteAck{m->object, lc});
    for (NodeId r : cfg_->replicas) {
      if (r != self_) {
        world_.send(self_, r, RequestId(0),
                    msg::GossipUpdate{m->object, m->value, lc});
      }
    }
  } else if (const auto* m = std::get_if<msg::GossipUpdate>(&env.body)) {
    m_gossip_->inc();
    store_.apply(m->object, m->value, m->clock);
  } else if (const auto* m = std::get_if<msg::AeDigest>(&env.body)) {
    // Send back everything newer than (or absent from) the digest.
    msg::AeUpdates out;
    std::map<ObjectId, LogicalClock> theirs;
    for (const auto& [o, lc] : m->entries) theirs.emplace(o, lc);
    for (const auto& [o, lc] : store_.digest()) {
      auto it = theirs.find(o);
      if (it == theirs.end() || it->second < lc) {
        const VersionedValue vv = store_.get(o);
        out.updates.push_back({o, vv.value, vv.clock});
      }
    }
    if (!out.updates.empty()) {
      world_.send(self_, env.src, RequestId(0), std::move(out));
    }
  } else if (const auto* m = std::get_if<msg::AeUpdates>(&env.body)) {
    for (const auto& u : m->updates) store_.apply(u.object, u.value, u.clock);
  }
}

RowaAsyncClient::RowaAsyncClient(sim::World& world, NodeId self, NodeId target,
                                 rpc::QrpcOptions opts)
    : world_(world), self_(self), engine_(world_, self_), opts_(opts),
      target_only_(quorum::ThresholdQuorum::majority({target})) {}

void RowaAsyncClient::read(ObjectId o, ReadCallback done) {
  auto best = std::make_shared<VersionedValue>();
  engine_.call(
      *target_only_, quorum::Kind::kRead,
      [o](NodeId) -> std::optional<msg::Payload> { return msg::AsyncRead{o}; },
      [best](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::AsyncReadReply>(&p)) {
          *best = {r->value, r->clock};
        }
      },
      [best, done = std::move(done)](bool ok) { done(ok, *best); }, opts_);
}

void RowaAsyncClient::write(ObjectId o, Value value, WriteCallback done) {
  auto got = std::make_shared<LogicalClock>();
  engine_.call(
      *target_only_, quorum::Kind::kWrite,
      [o, value = std::move(value)](NodeId) -> std::optional<msg::Payload> {
        return msg::AsyncWrite{o, value};
      },
      [got](NodeId, const msg::Payload& p) {
        if (const auto* r = std::get_if<msg::AsyncWriteAck>(&p)) {
          *got = r->clock;
        }
      },
      [got, done = std::move(done)](bool ok) { done(ok, *got); }, opts_);
}

}  // namespace dq::protocols
