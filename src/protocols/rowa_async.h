// ROWA-Async: local reads and writes with epidemic propagation
// (Bayou-style; the paper's weak-consistency baseline).
//
// A write is applied and acked by the receiving replica alone, then pushed
// to the other replicas in the background.  A periodic anti-entropy process
// additionally exchanges digests with a random peer so that updates survive
// message loss and partitions.  Reads return whatever the local replica
// holds -- possibly stale, which is exactly the weakness the dual-quorum
// protocol removes (this shows up as expected failures in the
// regular-semantics checker under partitions).
#pragma once

#include <memory>
#include <vector>

#include "protocols/service_client.h"
#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "store/object_store.h"

namespace dq::protocols {

struct RowaAsyncConfig {
  std::vector<NodeId> replicas;
  sim::Duration anti_entropy_interval = sim::seconds(1);
  rpc::QrpcOptions rpc;
};

class RowaAsyncServer {
 public:
  RowaAsyncServer(sim::World& world, NodeId self,
                  std::shared_ptr<const RowaAsyncConfig> cfg);

  bool on_message(const sim::Envelope& env);

  // Start the periodic anti-entropy loop (call once after attach).
  void start_anti_entropy();

  [[nodiscard]] const store::ObjectStore& store() const { return store_; }

 private:
  void handle(const sim::Envelope& env);
  void anti_entropy_round();

  sim::World& world_;
  NodeId self_;
  std::shared_ptr<const RowaAsyncConfig> cfg_;
  store::ObjectStore store_;
  std::uint64_t write_seq_ = 0;
  obs::Counter* m_reads_;
  obs::Counter* m_writes_;
  obs::Counter* m_gossip_;
  obs::Counter* m_ae_rounds_;
};

// Client: single-RPC read/write against one replica (the colocated one when
// the front end runs on a replica node).
class RowaAsyncClient final : public ServiceClient {
 public:
  RowaAsyncClient(sim::World& world, NodeId self, NodeId target,
                  rpc::QrpcOptions opts = {});

  void read(ObjectId o, ReadCallback done) override;
  void write(ObjectId o, Value value, WriteCallback done) override;
  bool on_message(const sim::Envelope& env) override {
    return engine_.on_reply(env);
  }
  void cancel_all() override { engine_.cancel_all(); }

 private:
  sim::World& world_;
  NodeId self_;
  rpc::QrpcEngine engine_;
  rpc::QrpcOptions opts_;
  std::shared_ptr<const quorum::QuorumSystem> target_only_;
};

}  // namespace dq::protocols
