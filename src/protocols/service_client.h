// The protocol-independent service-client interface.
//
// Every replication protocol in the repository exposes the same read/write
// register API to the service layer, so the workload driver, the examples,
// and the consistency checker run unchanged across DQVL and the four
// baselines.
#pragma once

#include <functional>

#include "common/ids.h"
#include "common/version.h"
#include "sim/world.h"

namespace dq::protocols {

class ServiceClient {
 public:
  using ReadCallback = std::function<void(bool ok, VersionedValue)>;
  using WriteCallback = std::function<void(bool ok, LogicalClock)>;

  virtual ~ServiceClient() = default;

  virtual void read(ObjectId o, ReadCallback done) = 0;
  virtual void write(ObjectId o, Value value, WriteCallback done) = 0;

  // Host actors forward incoming envelopes here; returns true if consumed.
  virtual bool on_message(const sim::Envelope& env) = 0;

  // Abandon in-flight operations (host crashed).
  virtual void cancel_all() = 0;
};

}  // namespace dq::protocols
