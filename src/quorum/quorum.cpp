#include "quorum/quorum.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace dq::quorum {

QuorumSystem::QuorumSystem(std::vector<NodeId> members)
    : members_(std::move(members)) {
  DQ_INVARIANT(!members_.empty(), "a quorum system needs members");
  std::sort(members_.begin(), members_.end());
  DQ_INVARIANT(std::adjacent_find(members_.begin(), members_.end()) ==
                   members_.end(),
               "quorum members must be distinct");
}

bool QuorumSystem::is_member(NodeId n) const {
  return std::binary_search(members_.begin(), members_.end(), n);
}

// ---------------------------------------------------------------------------
// ThresholdQuorum
// ---------------------------------------------------------------------------

ThresholdQuorum::ThresholdQuorum(std::vector<NodeId> members,
                                 std::size_t read_size, std::size_t write_size)
    : QuorumSystem(std::move(members)),
      read_size_(read_size),
      write_size_(write_size) {
  DQ_INVARIANT(read_size_ >= 1 && read_size_ <= members_.size(),
               "read quorum size out of range");
  DQ_INVARIANT(write_size_ >= 1 && write_size_ <= members_.size(),
               "write quorum size out of range");
  DQ_INVARIANT(read_size_ + write_size_ > members_.size(),
               "read and write quorums must intersect (r + w > n)");
  DQ_INVARIANT(2 * write_size_ > members_.size(),
               "write quorums must pairwise intersect (2w > n)");
}

std::vector<NodeId> ThresholdQuorum::pick(Kind kind, Rng& rng,
                                          std::optional<NodeId> prefer) const {
  const std::size_t k = quorum_size(kind);
  std::vector<NodeId> out;
  out.reserve(k);
  const bool use_prefer = prefer && is_member(*prefer);
  if (use_prefer) out.push_back(*prefer);
  // Fill the rest with a uniform sample of the remaining members.
  std::vector<NodeId> pool;
  pool.reserve(members_.size());
  for (NodeId m : members_) {
    if (!(use_prefer && m == *prefer)) pool.push_back(m);
  }
  const std::size_t need = k - out.size();
  auto idx = rng.sample_without_replacement(pool.size(), need);
  for (std::size_t i : idx) out.push_back(pool[i]);
  return out;
}

bool ThresholdQuorum::is_quorum(Kind kind,
                                const std::set<NodeId>& acked) const {
  std::size_t n = 0;
  for (NodeId m : members_) n += acked.count(m);
  return n >= quorum_size(kind);
}

std::unique_ptr<ThresholdQuorum> ThresholdQuorum::majority(
    std::vector<NodeId> members) {
  const std::size_t q = members.size() / 2 + 1;
  return std::make_unique<ThresholdQuorum>(std::move(members), q, q);
}

std::unique_ptr<ThresholdQuorum> ThresholdQuorum::rowa(
    std::vector<NodeId> members) {
  const std::size_t n = members.size();
  return std::make_unique<ThresholdQuorum>(std::move(members), 1, n);
}

std::unique_ptr<ThresholdQuorum> ThresholdQuorum::read_one(
    std::vector<NodeId> members) {
  return rowa(std::move(members));  // same structure; named for intent
}

// ---------------------------------------------------------------------------
// GridQuorum
// ---------------------------------------------------------------------------

GridQuorum::GridQuorum(std::vector<NodeId> members, std::size_t rows,
                       std::size_t cols)
    : QuorumSystem(std::move(members)), rows_(rows), cols_(cols) {
  DQ_INVARIANT(rows_ * cols_ == members_.size(),
               "grid dimensions must cover the member set exactly");
  DQ_INVARIANT(rows_ >= 1 && cols_ >= 1, "degenerate grid");
}

std::vector<NodeId> GridQuorum::pick(Kind kind, Rng& rng,
                                     std::optional<NodeId> prefer) const {
  std::vector<NodeId> out;
  // Row cover: one member from every column.  If `prefer` is a member, use
  // it to cover its own column.
  std::optional<std::size_t> prefer_col;
  if (prefer && is_member(*prefer)) {
    for (std::size_t k = 0; k < members_.size(); ++k) {
      if (members_[k] == *prefer) prefer_col = k % cols_;
    }
  }
  for (std::size_t c = 0; c < cols_; ++c) {
    if (prefer_col && c == *prefer_col) {
      out.push_back(*prefer);
    } else {
      out.push_back(at(rng.below(rows_), c));
    }
  }
  if (kind == Kind::kWrite) {
    // Plus one full column (randomly chosen).
    const std::size_t c = rng.below(cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const NodeId n = at(r, c);
      if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
    }
  }
  return out;
}

bool GridQuorum::is_quorum(Kind kind, const std::set<NodeId>& acked) const {
  // Row cover: every column has at least one acked member.
  for (std::size_t c = 0; c < cols_; ++c) {
    bool covered = false;
    for (std::size_t r = 0; r < rows_ && !covered; ++r) {
      covered = acked.count(at(r, c)) > 0;
    }
    if (!covered) return false;
  }
  if (kind == Kind::kRead) return true;
  // Write additionally needs one fully-acked column.
  for (std::size_t c = 0; c < cols_; ++c) {
    bool full = true;
    for (std::size_t r = 0; r < rows_ && full; ++r) {
      full = acked.count(at(r, c)) > 0;
    }
    if (full) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Enumeration helpers
// ---------------------------------------------------------------------------

namespace {

std::set<NodeId> subset_of(const std::vector<NodeId>& members,
                           std::uint32_t mask) {
  std::set<NodeId> s;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (mask & (1u << i)) s.insert(members[i]);
  }
  return s;
}

// A subset is a *minimal-or-larger* quorum iff is_quorum says so; for
// intersection checking we only need: for every pair of subsets (A read
// quorum, B write quorum) with A and B disjoint, not both can be quorums.
}  // namespace

IntersectionReport check_intersection(const QuorumSystem& qs) {
  IntersectionReport rep;
  const auto& m = qs.members();
  DQ_INVARIANT(m.size() <= 20, "enumeration limited to 20 members");
  const std::uint32_t limit = 1u << m.size();
  // For every subset S: if S is a read (resp. write) quorum, then its
  // complement must NOT contain a write quorum, i.e. the complement must not
  // be a write quorum superset.  Checking the complement directly suffices
  // because is_quorum is monotone.
  for (std::uint32_t s = 0; s < limit && (rep.read_write_ok &&
                                          rep.write_write_ok);
       ++s) {
    const auto sub = subset_of(m, s);
    const auto comp = subset_of(m, ~s & (limit - 1));
    const bool comp_is_write = qs.is_quorum(Kind::kWrite, comp);
    if (comp_is_write && qs.is_quorum(Kind::kRead, sub)) {
      rep.read_write_ok = false;
      rep.counterexample_a.assign(sub.begin(), sub.end());
      rep.counterexample_b.assign(comp.begin(), comp.end());
    }
    if (comp_is_write && qs.is_quorum(Kind::kWrite, sub)) {
      rep.write_write_ok = false;
      rep.counterexample_a.assign(sub.begin(), sub.end());
      rep.counterexample_b.assign(comp.begin(), comp.end());
    }
  }
  return rep;
}

double exact_availability(const QuorumSystem& qs, Kind kind, double p_down) {
  const auto& m = qs.members();
  DQ_INVARIANT(m.size() <= 25, "enumeration limited to 25 members");
  const std::uint32_t limit = 1u << m.size();
  double av = 0.0;
  for (std::uint32_t s = 0; s < limit; ++s) {
    const auto up = subset_of(m, s);
    if (!qs.is_quorum(kind, up)) continue;
    const auto k = up.size();
    av += std::pow(1.0 - p_down, static_cast<double>(k)) *
          std::pow(p_down, static_cast<double>(m.size() - k));
  }
  return av;
}

}  // namespace dq::quorum
