// Quorum system abstractions.
//
// A quorum system over a member set defines which subsets constitute READ
// and WRITE quorums.  Correctness of the register protocols requires every
// read quorum to intersect every write quorum, and every pair of write
// quorums to intersect (for the ordering of writes); `check_intersection`
// verifies both by enumeration and is run by tests for every configuration
// used in the experiments.
//
// Implementations:
//   * ThresholdQuorum -- any r members form a read quorum, any w a write
//     quorum (covers majority, ROWA, singleton/primary, and the DQVL OQS
//     with |read| = 1 / |write| = n).
//   * GridQuorum -- Cheung et al.'s grid: a read quorum is one member from
//     every column; a write quorum is a full column plus one member from
//     every column (paper section 6 lists grid IQS as future work; we
//     implement it and benchmark it in the ablations).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace dq::quorum {

enum class Kind : std::uint8_t { kRead, kWrite };

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool is_member(NodeId n) const;

  // Select a quorum uniformly at random, preferring to include `prefer`
  // when it is a member (the paper's QRPC "always transmits requests to the
  // local node if the local node is a member of system").
  [[nodiscard]] virtual std::vector<NodeId> pick(
      Kind kind, Rng& rng, std::optional<NodeId> prefer) const = 0;

  // Does `acked` contain a quorum of the given kind?
  [[nodiscard]] virtual bool is_quorum(Kind kind,
                                       const std::set<NodeId>& acked) const = 0;

  // Representative quorum cardinality (used by the analytical models and to
  // size QRPC fan-out).
  [[nodiscard]] virtual std::size_t quorum_size(Kind kind) const = 0;

 protected:
  explicit QuorumSystem(std::vector<NodeId> members);
  std::vector<NodeId> members_;
};

class ThresholdQuorum final : public QuorumSystem {
 public:
  ThresholdQuorum(std::vector<NodeId> members, std::size_t read_size,
                  std::size_t write_size);

  [[nodiscard]] std::vector<NodeId> pick(
      Kind kind, Rng& rng, std::optional<NodeId> prefer) const override;
  [[nodiscard]] bool is_quorum(Kind kind,
                               const std::set<NodeId>& acked) const override;
  [[nodiscard]] std::size_t quorum_size(Kind kind) const override {
    return kind == Kind::kRead ? read_size_ : write_size_;
  }

  // Common configurations.
  static std::unique_ptr<ThresholdQuorum> majority(
      std::vector<NodeId> members);
  static std::unique_ptr<ThresholdQuorum> rowa(std::vector<NodeId> members);
  // Read quorum of one, write quorum of all: the paper's headline OQS.
  static std::unique_ptr<ThresholdQuorum> read_one(
      std::vector<NodeId> members);

 private:
  std::size_t read_size_;
  std::size_t write_size_;
};

class GridQuorum final : public QuorumSystem {
 public:
  // members.size() must equal rows * cols; member k sits at
  // (row k / cols, col k % cols).
  GridQuorum(std::vector<NodeId> members, std::size_t rows, std::size_t cols);

  [[nodiscard]] std::vector<NodeId> pick(
      Kind kind, Rng& rng, std::optional<NodeId> prefer) const override;
  [[nodiscard]] bool is_quorum(Kind kind,
                               const std::set<NodeId>& acked) const override;
  [[nodiscard]] std::size_t quorum_size(Kind kind) const override {
    return kind == Kind::kRead ? cols_ : rows_ + cols_ - 1;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

 private:
  [[nodiscard]] NodeId at(std::size_t r, std::size_t c) const {
    return members_[r * cols_ + c];
  }
  std::size_t rows_;
  std::size_t cols_;
};

// Verify by exhaustive enumeration (members <= ~20) that every read quorum
// intersects every write quorum and every pair of write quorums intersects.
// Returns false and fills `counterexample` on violation.
struct IntersectionReport {
  bool read_write_ok = true;
  bool write_write_ok = true;
  std::vector<NodeId> counterexample_a;
  std::vector<NodeId> counterexample_b;
};
[[nodiscard]] IntersectionReport check_intersection(const QuorumSystem& qs);

// Exact probability that at least one quorum of `kind` is fully up, when
// each member is independently up with probability (1 - p_down).  Exhaustive
// over subsets; members <= 25.
[[nodiscard]] double exact_availability(const QuorumSystem& qs, Kind kind,
                                        double p_down);

}  // namespace dq::quorum
