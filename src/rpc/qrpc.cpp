#include "rpc/qrpc.h"

#include <utility>

#include "common/assert.h"

namespace dq::rpc {

CallId QrpcEngine::call(const quorum::QuorumSystem& system, quorum::Kind kind,
                        BuildRequest build, OnReply on_reply,
                        OnComplete on_complete, QrpcOptions opts) {
  // Classic form: done == "a quorum has responded".
  const CallId id = next_call_;  // call_until will consume this id
  return call_until(
      system, kind, std::move(build), std::move(on_reply),
      [this, id, &system, kind] {
        auto it = calls_.find(id);
        if (it == calls_.end()) return true;
        return system.is_quorum(kind, it->second.responded);
      },
      std::move(on_complete), opts);
}

CallId QrpcEngine::call_until(const quorum::QuorumSystem& system,
                              quorum::Kind kind, BuildRequest build,
                              OnReply on_reply, Done done,
                              OnComplete on_complete, QrpcOptions opts) {
  const CallId id = next_call_++;
  Call c;
  c.rpc_id = world_.fresh_rpc_id();
  c.system = &system;
  c.kind = kind;
  c.build = std::move(build);
  c.reply_cb = std::move(on_reply);
  c.done = std::move(done);
  c.complete_cb = std::move(on_complete);
  c.opts = opts;
  c.cur_timeout = opts.initial_timeout;
  if (opts.deadline != sim::kTimeInfinity) {
    c.deadline_at = world_.now() + opts.deadline;
  }
  by_rpc_id_[c.rpc_id.value()] = id;
  calls_.emplace(id, std::move(c));
  m_calls_->inc();
  m_inflight_->add(+1);

  // The condition may already hold (e.g. every OQS copy already invalid).
  if (calls_.at(id).done()) {
    finish(id, true);
    return id;
  }
  transmit_round(id);
  arm_retry(id);
  return id;
}

void QrpcEngine::transmit_round(CallId id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  Call& c = it->second;
  m_rounds_->inc();
  // Fresh random quorum each round, local node preferred (section 2).
  const auto targets = c.system->pick(c.kind, world_.rng(), self_);
  for (NodeId t : targets) {
    if (auto payload = c.build(t)) {
      world_.send(self_, t, c.rpc_id, *std::move(payload));
    }
  }
}

void QrpcEngine::arm_retry(CallId id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  Call& c = it->second;
  if (world_.now() >= c.deadline_at) {
    finish(id, false);
    return;
  }
  sim::Duration wait = c.cur_timeout;
  if (world_.now() + wait > c.deadline_at) wait = c.deadline_at - world_.now();
  c.retry_timer = world_.set_timer(self_, wait, [this, id] {
    auto it2 = calls_.find(id);
    if (it2 == calls_.end()) return;
    Call& c2 = it2->second;
    if (c2.done()) {  // external state may have completed us
      finish(id, true);
      return;
    }
    if (world_.now() >= c2.deadline_at) {
      finish(id, false);
      return;
    }
    c2.cur_timeout = std::min(
        static_cast<sim::Duration>(static_cast<double>(c2.cur_timeout) *
                                   c2.opts.backoff),
        c2.opts.max_timeout);
    m_retries_->inc();
    transmit_round(id);
    arm_retry(id);
  });
}

bool QrpcEngine::on_reply(const sim::Envelope& env) {
  if (!env.is_reply) return false;  // never consume a loopback request
  auto rid = by_rpc_id_.find(env.rpc_id.value());
  if (rid == by_rpc_id_.end()) return false;
  const CallId id = rid->second;
  auto it = calls_.find(id);
  if (it == calls_.end()) return false;
  Call& c = it->second;
  // Duplicate replies from the same node are delivered to the callback only
  // once per node: every protocol reply in this codebase is idempotent and
  // later replies from the same node carry no more information for quorum
  // accounting.  (State-updating callbacks apply max() merges anyway.)
  if (!c.responded.insert(env.src).second) return true;
  c.reply_cb(env.src, env.body);
  check_done(id);
  return true;
}

void QrpcEngine::poke(CallId id) { check_done(id); }

void QrpcEngine::check_done(CallId id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  if (it->second.done()) finish(id, true);
}

void QrpcEngine::finish(CallId id, bool success) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  // Move the call out before invoking the completion: the continuation
  // frequently starts the next QRPC phase and may recurse into the engine.
  Call c = std::move(it->second);
  c.retry_timer.cancel();
  calls_.erase(it);
  by_rpc_id_.erase(c.rpc_id.value());
  m_inflight_->add(-1);
  if (!success) m_timeouts_->inc();
  if (c.complete_cb) c.complete_cb(success);
}

void QrpcEngine::cancel(CallId id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  it->second.retry_timer.cancel();
  by_rpc_id_.erase(it->second.rpc_id.value());
  calls_.erase(it);
  m_inflight_->add(-1);
}

void QrpcEngine::cancel_all() {
  for (auto& [id, c] : calls_) c.retry_timer.cancel();
  m_inflight_->add(-static_cast<std::int64_t>(calls_.size()));
  calls_.clear();
  by_rpc_id_.clear();
}

std::set<NodeId> QrpcEngine::responders(CallId id) const {
  auto it = calls_.find(id);
  if (it == calls_.end()) return {};
  return it->second.responded;
}

}  // namespace dq::rpc
