// QRPC: quorum-based remote procedure call (paper, section 2).
//
//   replies = QRPC(system, READ/WRITE, request)
//
// "sends request to a collection of nodes in the specified quorum system
//  ... blocks until a set of replies constituting the specified quorum have
//  been gathered."
//
// Because actors in the simulator are event-driven, QRPC here is a
// continuation-based state machine rather than a blocking call.  It
// implements the paper's prototype policy: include the local node when it is
// a member, fill the quorum with randomly selected members, and retransmit
// to a freshly selected random quorum on an exponentially increasing
// interval.
//
// Two generalizations required by DQVL (section 3.2):
//   * per-node request builders -- "this variation sends different requests
//     to different nodes";
//   * an arbitrary completion predicate -- "processes replies until
//     condition C becomes true" -- re-evaluated on every reply and on
//     `poke()` (lease expiry can complete an IQS write with no message).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "msg/wire.h"
#include "quorum/quorum.h"
#include "sim/world.h"

namespace dq::rpc {

struct QrpcOptions {
  sim::Duration initial_timeout = sim::milliseconds(400);
  double backoff = 2.0;
  sim::Duration max_timeout = sim::seconds(8);
  // Give up after this long; on_complete(false) fires.  The availability
  // experiments use finite deadlines to turn partitions into rejections.
  sim::Duration deadline = sim::kTimeInfinity;
};

// Identifies an in-flight call, for cancellation.
using CallId = std::uint64_t;

class QrpcEngine {
 public:
  // Build a request for one target; nullopt means "nothing to send to this
  // node" (e.g. an IQS write that knows node j's cached copy is already
  // invalid).
  using BuildRequest = std::function<std::optional<msg::Payload>(NodeId)>;
  // A reply arrived from `src`.  The callback updates caller state; the
  // engine then re-evaluates `done`.
  using OnReply = std::function<void(NodeId src, const msg::Payload&)>;
  using Done = std::function<bool()>;
  using OnComplete = std::function<void(bool success)>;

  QrpcEngine(sim::World& world, NodeId self)
      : world_(world), self_(self),
        m_calls_(&world.metrics().counter("qrpc.calls")),
        m_rounds_(&world.metrics().counter("qrpc.rounds")),
        m_retries_(&world.metrics().counter("qrpc.retries")),
        m_timeouts_(&world.metrics().counter("qrpc.timeouts")),
        m_inflight_(&world.metrics().gauge("qrpc.inflight")) {}

  ~QrpcEngine() { cancel_all(); }

  QrpcEngine(const QrpcEngine&) = delete;
  QrpcEngine& operator=(const QrpcEngine&) = delete;

  // Classic QRPC: complete when replies from a `kind` quorum of `system`
  // have been gathered.  `on_reply` sees each (first) reply.
  CallId call(const quorum::QuorumSystem& system, quorum::Kind kind,
              BuildRequest build, OnReply on_reply, OnComplete on_complete,
              QrpcOptions opts = {});

  // DQVL variation: complete when `done()` holds.  `done` is evaluated
  // immediately (the call may complete without sending anything), after
  // every reply, and on poke().
  CallId call_until(const quorum::QuorumSystem& system, quorum::Kind kind,
                    BuildRequest build, OnReply on_reply, Done done,
                    OnComplete on_complete, QrpcOptions opts = {});

  // Route an incoming envelope to the matching call.  Returns true if the
  // envelope was a reply to a live call (consumed), false otherwise.
  bool on_reply(const sim::Envelope& env);

  // External state affecting some call's `done` changed (e.g. a volume
  // lease expired).  Re-evaluates the predicate of the identified call.
  void poke(CallId id);

  void cancel(CallId id);
  void cancel_all();

  [[nodiscard]] std::size_t inflight() const { return calls_.size(); }

  // Nodes that have replied to the given call so far (empty set if done).
  [[nodiscard]] std::set<NodeId> responders(CallId id) const;

 private:
  struct Call {
    RequestId rpc_id;
    const quorum::QuorumSystem* system = nullptr;
    quorum::Kind kind{};
    BuildRequest build;
    OnReply reply_cb;
    Done done;
    OnComplete complete_cb;
    QrpcOptions opts;
    sim::Duration cur_timeout = 0;
    sim::Time deadline_at = sim::kTimeInfinity;
    std::set<NodeId> responded;
    sim::TimerToken retry_timer;
  };

  void transmit_round(CallId id);
  void arm_retry(CallId id);
  void finish(CallId id, bool success);
  void check_done(CallId id);

  sim::World& world_;
  NodeId self_;
  CallId next_call_ = 1;
  std::map<CallId, Call> calls_;
  std::map<std::uint64_t, CallId> by_rpc_id_;
  // Engine-shared instruments (one set of names across all nodes; the
  // registry hands every engine the same underlying counters).
  obs::Counter* m_calls_;
  obs::Counter* m_rounds_;
  obs::Counter* m_retries_;
  obs::Counter* m_timeouts_;
  obs::Gauge* m_inflight_;
};

}  // namespace dq::rpc
