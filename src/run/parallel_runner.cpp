#include "run/parallel_runner.h"

#include <atomic>
#include <thread>

#include "sim/parallel_world.h"

namespace dq::run {

std::size_t resolve_jobs(std::size_t requested) {
  return sim::par::clamp_threads(requested, "--jobs");
}

void parallel_for_index(std::size_t n, std::size_t jobs,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t workers = jobs < n ? jobs : n;
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
}

std::vector<workload::ExperimentResult> run_experiments(
    const std::vector<workload::ExperimentParams>& trials, std::size_t jobs) {
  std::vector<workload::ExperimentResult> results(trials.size());
  parallel_for_index(trials.size(), jobs, [&](std::size_t i) {
    results[i] = workload::run_experiment(trials[i]);
  });
  return results;
}

}  // namespace dq::run
