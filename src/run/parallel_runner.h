// Parallel trial runner: fan independent simulations out across a thread
// pool.
//
// A simulation is a pure function of its ExperimentParams (seed included):
// each trial builds its own World, draws from its own Rng, and shares no
// mutable state with any other trial.  That makes a sweep embarrassingly
// parallel -- and, crucially, makes parallelism UNOBSERVABLE in the output:
// results are returned in trial-index order, so a report assembled from
// run_experiments(trials, 8) is byte-identical to one assembled from
// run_experiments(trials, 1) (tests/parallel_runner_test.cpp holds this
// against checked-in golden reports).
//
// Threading primitives are allowed in exactly two places: this directory and
// the conservative intra-trial engine (src/sim/parallel_world.*, which needs
// per-use justified suppressions); dqlint's det-thread rule enforces that
// the rest of the deterministic simulator core stays single-threaded.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "workload/experiment.h"

namespace dq::run {

// Resolve a --jobs request: 0 means "one per hardware thread"; values above
// the hardware concurrency are clamped with a note on stderr (trials are
// CPU-bound, so oversubscribing just adds context switches).  Never
// returns 0.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested);

// Invoke fn(i) once for every i in [0, n), spread over min(jobs, n) worker
// threads.  Work is handed out by an atomic ticket counter, so WHICH thread
// runs a given index is scheduling-dependent -- callers must write only to
// per-index state (e.g. results[i]).  jobs <= 1 runs inline on the calling
// thread with no thread machinery at all.  Blocks until every index ran.
void parallel_for_index(std::size_t n, std::size_t jobs,
                        const std::function<void(std::size_t)>& fn);

// Run every trial (each through its own World) and return the results in
// trial-index order.
[[nodiscard]] std::vector<workload::ExperimentResult> run_experiments(
    const std::vector<workload::ExperimentParams>& trials, std::size_t jobs);

}  // namespace dq::run
