// Per-node real-time clocks with bounded drift.
//
// The paper assumes "each node can read a local real-time clock and there
// exists a maximum drift rate maxDrift between any pair of clocks"
// (section 2).  We model each node's clock as
//
//     local(t) = offset + rate * t
//
// with rate drawn uniformly from [1 - maxDrift, 1 + maxDrift].  Lease
// arithmetic in the DQVL implementation uses these local clocks only, so the
// drift-safety of the lease protocol is exercised for real in tests.
#pragma once

#include "common/rng.h"
#include "sim/time.h"

namespace dq::sim {

class DriftClock {
 public:
  // A perfect clock (rate 1, offset 0).
  DriftClock() = default;

  DriftClock(Duration offset, double rate) : offset_(offset), rate_(rate) {}

  // Random clock within the drift envelope: rate in [1-maxDrift, 1+maxDrift],
  // offset in [0, maxOffset].
  // dqlint:allow(det-rand): deterministic factory driven by the seeded
  // dq::Rng passed in; shares a name with libc random() but never reads it.
  static DriftClock random(Rng& rng, double max_drift, Duration max_offset) {
    const double rate = 1.0 + max_drift * (2.0 * rng.uniform() - 1.0);
    const auto offset = static_cast<Duration>(
        rng.uniform() * static_cast<double>(max_offset));
    return DriftClock(offset, rate);
  }

  [[nodiscard]] Time local_time(Time global_now) const {
    return offset_ +
           static_cast<Time>(rate_ * static_cast<double>(global_now));
  }

  // Inverse mapping: the global time at which this clock shows `local`.
  // Used by the simulator to schedule "fire when my local clock reaches T"
  // timers.
  [[nodiscard]] Time global_time(Time local) const {
    return static_cast<Time>(static_cast<double>(local - offset_) / rate_);
  }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] Duration offset() const { return offset_; }

 private:
  Duration offset_ = 0;
  double rate_ = 1.0;
};

}  // namespace dq::sim
