// Randomized failure injection: drives each chosen node through alternating
// up/down periods with exponential durations, yielding a steady-state
// per-node unavailability of mttr / (mttf + mttr).
//
// Used by the Monte-Carlo cross-check of the paper's analytical availability
// model (Figure 8): the model assumes independent per-node unavailability p;
// the injector realizes exactly that.
//
// Two fault planes, two injectors:
//   * FailureInjector -- unreachability (set_up): the node keeps its state
//     and its timers, traffic just stops flowing.  The paper's combined
//     "server crashes and network failures" unit.
//   * CrashInjector -- process death (crash/restart): volatile state is
//     wiped, timers are poisoned, and on restart the node runs its recovery
//     hook (WAL replay, epoch bump; see iqs_server.cpp).  Because a crash
//     poisons the node's own timers, the injector schedules on the raw
//     scheduler -- the restart timer must survive the crash it follows.
#pragma once

#include <utility>
#include <vector>

#include "common/ids.h"
#include "sim/world.h"

namespace dq::sim {

class FailureInjector {
 public:
  struct Params {
    Duration mean_time_to_failure = seconds(99);
    Duration mean_time_to_repair = seconds(1);

    [[nodiscard]] double steady_state_unavailability() const {
      return static_cast<double>(mean_time_to_repair) /
             static_cast<double>(mean_time_to_failure + mean_time_to_repair);
    }

    // Convenience: pick MTTR for a target unavailability p at a given MTTF.
    static Params for_unavailability(double p, Duration mttf) {
      Params out;
      out.mean_time_to_failure = mttf;
      out.mean_time_to_repair =
          static_cast<Duration>(p / (1.0 - p) * static_cast<double>(mttf));
      return out;
    }
  };

  FailureInjector(World& world, Params params)
      : world_(world), params_(params) {}

  // Begin injecting failures on `nodes`.  Each node gets an independent
  // exponential up/down renewal process (failures modelled as
  // unreachability, matching the paper's combined "server crashes and
  // network failures" unit).
  void start(const std::vector<NodeId>& nodes) {
    for (NodeId n : nodes) schedule_failure(n);
  }

  // Cancel every pending up/down timer.  Deployment teardown calls this so
  // an injector never reschedules past the experiment horizon (the tokens
  // are generation-checked, so cancelling an already-fired timer is a
  // no-op).
  void stop() {
    for (auto& [n, tok] : timers_) tok.cancel();
    timers_.clear();
  }

 private:
  void schedule_failure(NodeId n) {
    const auto up_for = static_cast<Duration>(world_.rng().exponential(
        static_cast<double>(params_.mean_time_to_failure)));
    remember(n, world_.scheduler().schedule_after(up_for, [this, n] {
      world_.set_up(n, false);
      schedule_repair(n);
    }));
  }

  void schedule_repair(NodeId n) {
    const auto down_for = static_cast<Duration>(world_.rng().exponential(
        static_cast<double>(params_.mean_time_to_repair)));
    remember(n, world_.scheduler().schedule_after(down_for, [this, n] {
      world_.set_up(n, true);
      schedule_failure(n);
    }));
  }

  // One live timer per node at any time: each reschedule replaces the
  // node's stored token.
  void remember(NodeId n, TimerToken tok) {
    for (auto& [node, slot] : timers_) {
      if (node == n) {
        slot = tok;
        return;
      }
    }
    timers_.emplace_back(n, tok);
  }

  World& world_;
  Params params_;
  std::vector<std::pair<NodeId, TimerToken>> timers_;
};

// Drives exponential crash/restart renewal processes: each node alternates
// between running (mean_time_to_crash) and down-after-crash (mean_downtime).
// Restart invokes the node's recovery hook via World::restart.
class CrashInjector {
 public:
  struct Params {
    Duration mean_time_to_crash = seconds(120);
    Duration mean_downtime = seconds(2);
  };

  CrashInjector(World& world, Params params)
      : world_(world), params_(params) {}

  void start(const std::vector<NodeId>& nodes) {
    for (NodeId n : nodes) schedule_crash(n);
  }

  void stop() {
    for (auto& [n, tok] : timers_) tok.cancel();
    timers_.clear();
  }

 private:
  void schedule_crash(NodeId n) {
    const auto up_for = static_cast<Duration>(world_.rng().exponential(
        static_cast<double>(params_.mean_time_to_crash)));
    remember(n, world_.scheduler().schedule_after(up_for, [this, n] {
      if (!world_.is_crashed(n)) world_.crash(n);
      schedule_restart(n);
    }));
  }

  void schedule_restart(NodeId n) {
    const auto down_for = static_cast<Duration>(world_.rng().exponential(
        static_cast<double>(params_.mean_downtime)));
    remember(n, world_.scheduler().schedule_after(down_for, [this, n] {
      if (world_.is_crashed(n)) world_.restart(n);
      schedule_crash(n);
    }));
  }

  void remember(NodeId n, TimerToken tok) {
    for (auto& [node, slot] : timers_) {
      if (node == n) {
        slot = tok;
        return;
      }
    }
    timers_.emplace_back(n, tok);
  }

  World& world_;
  Params params_;
  std::vector<std::pair<NodeId, TimerToken>> timers_;
};

}  // namespace dq::sim
