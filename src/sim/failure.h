// Randomized failure injection: drives each chosen node through alternating
// up/down periods with exponential durations, yielding a steady-state
// per-node unavailability of mttr / (mttf + mttr).
//
// Used by the Monte-Carlo cross-check of the paper's analytical availability
// model (Figure 8): the model assumes independent per-node unavailability p;
// the injector realizes exactly that.
#pragma once

#include <vector>

#include "common/ids.h"
#include "sim/world.h"

namespace dq::sim {

class FailureInjector {
 public:
  struct Params {
    Duration mean_time_to_failure = seconds(99);
    Duration mean_time_to_repair = seconds(1);

    [[nodiscard]] double steady_state_unavailability() const {
      return static_cast<double>(mean_time_to_repair) /
             static_cast<double>(mean_time_to_failure + mean_time_to_repair);
    }

    // Convenience: pick MTTR for a target unavailability p at a given MTTF.
    static Params for_unavailability(double p, Duration mttf) {
      Params out;
      out.mean_time_to_failure = mttf;
      out.mean_time_to_repair =
          static_cast<Duration>(p / (1.0 - p) * static_cast<double>(mttf));
      return out;
    }
  };

  FailureInjector(World& world, Params params)
      : world_(world), params_(params) {}

  // Begin injecting failures on `nodes`.  Each node gets an independent
  // exponential up/down renewal process (failures modelled as
  // unreachability, matching the paper's combined "server crashes and
  // network failures" unit).
  void start(const std::vector<NodeId>& nodes) {
    for (NodeId n : nodes) schedule_failure(n);
  }

 private:
  void schedule_failure(NodeId n) {
    const auto up_for = static_cast<Duration>(world_.rng().exponential(
        static_cast<double>(params_.mean_time_to_failure)));
    world_.scheduler().schedule_after(up_for, [this, n] {
      world_.set_up(n, false);
      schedule_repair(n);
    });
  }

  void schedule_repair(NodeId n) {
    const auto down_for = static_cast<Duration>(world_.rng().exponential(
        static_cast<double>(params_.mean_time_to_repair)));
    world_.scheduler().schedule_after(down_for, [this, n] {
      world_.set_up(n, true);
      schedule_failure(n);
    });
  }

  World& world_;
  Params params_;
};

}  // namespace dq::sim
