#include "sim/network.h"

#include <algorithm>

#include "common/assert.h"

namespace dq::sim {

Topology::Topology(Params p) : p_(p) {
  DQ_INVARIANT(p_.num_servers > 0, "topology needs at least one server");
  home_.resize(p_.num_clients);
  for (std::size_t i = 0; i < p_.num_clients; ++i) {
    home_[i] = server(i % p_.num_servers);
  }
  servers_.reserve(p_.num_servers);
  for (std::size_t i = 0; i < p_.num_servers; ++i) {
    servers_.push_back(server(i));
  }
  clients_.reserve(p_.num_clients);
  for (std::size_t i = 0; i < p_.num_clients; ++i) {
    clients_.push_back(client(i));
  }
}

NodeId Topology::home_of(NodeId c) const {
  DQ_INVARIANT(is_client(c), "home_of takes a client id");
  return home_.at(c.value() - p_.num_servers);
}

void Topology::set_home(NodeId client_id, NodeId server_id) {
  DQ_INVARIANT(is_client(client_id) && is_server(server_id),
               "set_home(client, server)");
  home_.at(client_id.value() - p_.num_servers) = server_id;
}

const char* link_class_name(LinkClass c) {
  switch (c) {
    case LinkClass::kLoopback: return "loopback";
    case LinkClass::kClientHome: return "client_home";
    case LinkClass::kClientRemote: return "client_remote";
    case LinkClass::kServerServer: return "server_server";
  }
  return "?";
}

LinkClass Topology::link_class(NodeId src, NodeId dst) const {
  if (src == dst) return LinkClass::kLoopback;
  if (is_server(src) && is_server(dst)) return LinkClass::kServerServer;
  // Exactly one endpoint is a client (clients never talk to each other).
  const NodeId c = is_client(src) ? src : dst;
  const NodeId s = is_client(src) ? dst : src;
  DQ_INVARIANT(is_server(s), "client-to-client traffic is not modelled");
  return home_of(c) == s ? LinkClass::kClientHome : LinkClass::kClientRemote;
}

Duration Topology::one_way_delay(NodeId src, NodeId dst, Rng& rng) const {
  return one_way_delay(link_class(src, dst), rng);
}

Duration Topology::one_way_delay(LinkClass link, Rng& rng) const {
  Duration base = 0;
  switch (link) {
    case LinkClass::kLoopback:
      base = 0;  // a node talking to itself costs nothing on the wire
      break;
    case LinkClass::kServerServer:
      base = p_.server_to_server;
      break;
    case LinkClass::kClientHome:
      base = p_.client_to_home;
      break;
    case LinkClass::kClientRemote:
      base = p_.client_to_remote;
      break;
  }
  if (p_.jitter > 0.0 && base > 0) {
    base += static_cast<Duration>(static_cast<double>(base) * p_.jitter *
                                  rng.uniform());
  }
  return base;
}

std::uint64_t MessageStats::count(const msg::Payload& p) {
  ++total_;
  const std::uint64_t size = msg::approximate_size(p);
  bytes_ += size;
  if (msg::is_server_to_server(p)) ++s2s_;
  ++by_type_[p.index()];
  return size;
}

std::uint64_t MessageStats::by_type(const std::string& name) const {
  for (std::size_t i = 0; i < by_type_.size(); ++i) {
    if (name == msg::payload_type_name(i)) return by_type_[i];
  }
  return 0;
}

std::map<std::string, std::uint64_t> MessageStats::table() const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t i = 0; i < by_type_.size(); ++i) {
    if (by_type_[i] > 0) out.emplace(msg::payload_type_name(i), by_type_[i]);
  }
  return out;
}

void MessageStats::reset() {
  total_ = 0;
  bytes_ = 0;
  s2s_ = 0;
  by_type_.fill(0);
}

void MessageStats::merge(const MessageStats& other) {
  total_ += other.total_;
  bytes_ += other.bytes_;
  s2s_ += other.s2s_;
  for (std::size_t i = 0; i < by_type_.size(); ++i) {
    by_type_[i] += other.by_type_[i];
  }
}

}  // namespace dq::sim
