// The simulated network: topology-derived delays, loss, duplication,
// partitions, node reachability, and per-message-type accounting.
//
// This is the substitution for the paper's physical testbed (DESIGN.md
// section 2): the paper configures a LAN delay of 8 ms between an
// application client and its closest edge server, 86 ms between a client and
// other edge servers, and 80 ms among edge servers -- all round trip.  The
// topology below stores one-way delays (half the round trip) so that every
// request/reply pair reproduces the paper's RTTs.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "msg/wire.h"
#include "sim/time.h"

namespace dq::sim {

// A message in flight.  `is_reply` distinguishes requests from replies
// carrying the same rpc id: a node that is both QRPC caller and callee (e.g.
// a front end reading its own colocated replica) would otherwise mistake its
// own loopback *request* for a reply.
struct Envelope {
  NodeId src;
  NodeId dst;
  RequestId rpc_id;  // matches replies to QRPC calls; 0 for one-way traffic
  msg::Payload body;
  bool is_reply = false;
};

// The kind of link a (src, dst) pair crosses.  Delay assignment and the
// per-link metrics counters share this classification.
enum class LinkClass : std::uint8_t {
  kLoopback,      // a node talking to itself (free)
  kClientHome,    // application client <-> its closest edge server
  kClientRemote,  // application client <-> any other edge server
  kServerServer,  // edge server <-> edge server (WAN)
};
[[nodiscard]] const char* link_class_name(LinkClass c);

// Static description of who is where.  Node ids are dense: servers occupy
// [0, num_servers) and application clients [num_servers, num_servers +
// num_clients).  Each client has a home (closest) server.
class Topology {
 public:
  struct Params {
    std::size_t num_servers = 9;
    std::size_t num_clients = 3;
    // One-way delays; defaults reproduce the paper's 8/86/80 ms RTTs.
    Duration client_to_home = milliseconds(4);
    Duration client_to_remote = milliseconds(43);
    Duration server_to_server = milliseconds(40);
    // Constant per-request processing delay applied at a server when it
    // handles a client-facing request ("we assume a constant processing
    // delay on every edge server", section 4.1).
    Duration processing_delay = milliseconds(1);
    // Uniform jitter applied multiplicatively to each delay: the realized
    // delay is d * (1 + U[0, jitter]).  Jitter > 0 yields message
    // reordering.
    double jitter = 0.0;
  };

  explicit Topology(Params p);

  [[nodiscard]] std::size_t num_servers() const { return p_.num_servers; }
  [[nodiscard]] std::size_t num_clients() const { return p_.num_clients; }
  [[nodiscard]] std::size_t num_nodes() const {
    return p_.num_servers + p_.num_clients;
  }

  [[nodiscard]] bool is_server(NodeId n) const {
    return n.value() < p_.num_servers;
  }
  [[nodiscard]] bool is_client(NodeId n) const {
    return !is_server(n) && n.value() < num_nodes();
  }

  [[nodiscard]] NodeId server(std::size_t i) const {
    return NodeId(static_cast<std::uint32_t>(i));
  }
  [[nodiscard]] NodeId client(std::size_t i) const {
    return NodeId(static_cast<std::uint32_t>(p_.num_servers + i));
  }
  // Cached at construction (node ids are dense and the counts are fixed);
  // these sit on quorum-assembly paths, so rebuilding them per call was a
  // measurable allocation source.
  [[nodiscard]] const std::vector<NodeId>& servers() const { return servers_; }
  [[nodiscard]] const std::vector<NodeId>& clients() const { return clients_; }

  // The client's closest edge server.  Default assignment: client i is
  // homed at server (i mod num_servers); override with set_home.
  [[nodiscard]] NodeId home_of(NodeId c) const;
  void set_home(NodeId client, NodeId server);

  [[nodiscard]] LinkClass link_class(NodeId src, NodeId dst) const;
  [[nodiscard]] Duration one_way_delay(NodeId src, NodeId dst, Rng& rng) const;
  // Same delay model when the caller has already classified the link (the
  // send path classifies once for the per-link metrics and reuses it here).
  [[nodiscard]] Duration one_way_delay(LinkClass link, Rng& rng) const;
  [[nodiscard]] Duration processing_delay() const {
    return p_.processing_delay;
  }
  [[nodiscard]] const Params& params() const { return p_; }

 private:
  Params p_;
  std::vector<NodeId> home_;  // per client index
  std::vector<NodeId> servers_;
  std::vector<NodeId> clients_;
};

// Mutable fault state: per-node reachability, network partitions,
// probabilistic loss/duplication.
class FaultPlane {
 public:
  explicit FaultPlane(std::size_t num_nodes) : group_(num_nodes, 0),
                                               up_(num_nodes, true) {}

  // Node unreachability (the paper's failure unit: "node failures (including
  // server crashes and network failures)").  A down node neither sends nor
  // receives.
  void set_up(NodeId n, bool up) { up_.at(n.value()) = up; }
  [[nodiscard]] bool is_up(NodeId n) const { return up_.at(n.value()); }

  // Partition the network into groups; messages cross groups only if both
  // endpoints share a group id.  heal() restores full connectivity.
  void set_group(NodeId n, int group) { group_.at(n.value()) = group; }
  void heal() { std::fill(group_.begin(), group_.end(), 0); }

  void set_loss_probability(double p) { loss_ = p; }
  void set_duplication_probability(double p) { dup_ = p; }
  [[nodiscard]] double loss_probability() const { return loss_; }
  [[nodiscard]] double duplication_probability() const { return dup_; }

  [[nodiscard]] bool reachable(NodeId src, NodeId dst) const {
    return is_up(src) && is_up(dst) &&
           group_.at(src.value()) == group_.at(dst.value());
  }

 private:
  std::vector<int> group_;
  std::vector<bool> up_;
  double loss_ = 0.0;
  double dup_ = 0.0;
};

// Message accounting for the Figure 9 overhead experiments.  Counts every
// message handed to the network (including retransmissions and messages that
// are subsequently lost -- they were sent).
class MessageStats {
 public:
  // Returns the approximate wire size of the counted message, so callers
  // feeding other accounting (the metrics registry) don't size it twice.
  std::uint64_t count(const msg::Payload& p);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t server_to_server() const { return s2s_; }
  [[nodiscard]] std::uint64_t by_type(const std::string& name) const;
  // Name-keyed table for reports.  Built on demand: the hot-path counter is
  // a dense array indexed by the payload's variant index (no string
  // construction or map lookup per message); names only exist here.
  [[nodiscard]] std::map<std::string, std::uint64_t> table() const;
  void reset();

  // Fold another accounting into this one (the partitioned engine keeps one
  // MessageStats per partition and merges them for reporting).
  void merge(const MessageStats& other);

 private:
  std::uint64_t total_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t s2s_ = 0;
  std::array<std::uint64_t, msg::payload_type_count()> by_type_{};
};

}  // namespace dq::sim
