#include "sim/parallel_world.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <utility>

// The engine below is the one sim/ component allowed to own threading
// primitives: every use carries a det-thread suppression because the whole
// point of the design is that the primitives cannot influence the schedule
// (partitions are fixed by topology; threads only decide concurrency).
// dqlint:allow(det-thread): worker pool threads for the conservative engine
#include <thread>
// dqlint:allow(det-thread): round-barrier handshake for the worker pool
#include <mutex>
// dqlint:allow(det-thread): round-barrier handshake for the worker pool
#include <condition_variable>
// dqlint:allow(det-thread): work-stealing ticket counter inside one round
#include <atomic>

#include "common/assert.h"
#include "obs/metrics.h"
#include "sim/world.h"

namespace dq::sim::par {

namespace {

Duration base_delay(const Topology::Params& p, LinkClass c) {
  switch (c) {
    case LinkClass::kLoopback:
      return 0;
    case LinkClass::kClientHome:
      return p.client_to_home;
    case LinkClass::kClientRemote:
      return p.client_to_remote;
    case LinkClass::kServerServer:
      return p.server_to_server;
  }
  return 0;
}

}  // namespace

namespace detail {
// Which partition the current thread is executing (null on the coordinating
// thread and in every serial simulation).  Plain thread-local state: set and
// cleared by the engine around each partition step.
// dqlint:allow(part-mutable-global): per-thread by construction; each worker
// sees only its own partition pointer, so nothing is shared across them.
thread_local PartitionState* t_state = nullptr;
}  // namespace detail

std::size_t default_partition_count(const Topology& topo) {
  // One partition per server, capped so tiny per-partition queues don't
  // drown in round overhead.  Derived from the topology alone: the same
  // simulation always gets the same plan on any machine at any --world-
  // threads value.
  constexpr std::size_t kMaxPartitions = 16;
  return std::min(topo.num_servers(), kMaxPartitions);
}

PartitionPlan make_partition_plan(const Topology& topo,
                                  std::size_t partitions) {
  PartitionPlan plan;
  const std::size_t ns = topo.num_servers();
  DQ_INVARIANT(ns > 0, "a partition plan needs at least one server");
  plan.count = std::clamp<std::size_t>(partitions, 1, ns);
  plan.of_node.assign(topo.num_nodes(), 0);
  // Servers in contiguous balanced blocks; each client rides with its home
  // server so the cheap client<->home link stays intra-partition.
  for (std::size_t s = 0; s < ns; ++s) {
    plan.of_node[s] = static_cast<std::uint32_t>(s * plan.count / ns);
  }
  for (std::size_t c = 0; c < topo.num_clients(); ++c) {
    const NodeId client = topo.client(c);
    plan.of_node[client.value()] =
        plan.of_node[topo.home_of(client).value()];
  }
  // Lookahead: the smallest base one-way delay on any link that actually
  // crosses partitions under this assignment.  Jitter is multiplicative
  // (>= 1x), so the base delay lower-bounds every realized delay.
  Duration lookahead = kTimeInfinity / 2;
  const std::size_t n = topo.num_nodes();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || plan.of_node[i] == plan.of_node[j]) continue;
      // Clients never exchange traffic (the topology has no such link), so
      // a client pair cannot constrain the lookahead.
      if (!topo.is_server(NodeId(static_cast<std::uint32_t>(i))) &&
          !topo.is_server(NodeId(static_cast<std::uint32_t>(j)))) {
        continue;
      }
      const Duration d = base_delay(
          topo.params(), topo.link_class(NodeId(static_cast<std::uint32_t>(i)),
                                         NodeId(static_cast<std::uint32_t>(j))));
      lookahead = std::min(lookahead, d);
    }
  }
  DQ_INVARIANT(plan.count == 1 || lookahead > 0,
               "conservative parallel execution needs a positive minimum "
               "cross-partition delay");
  plan.lookahead = lookahead;
  return plan;
}

std::size_t clamp_threads(std::size_t n, const char* flag) {
  // dqlint:allow(det-thread): sizing the pool from the machine is the point
  const unsigned hw = std::thread::hardware_concurrency();
  if (n == 0) return hw == 0 ? 1 : hw;
  if (hw != 0 && n > hw) {
    std::fprintf(stderr,
                 "note: %s=%zu exceeds the %u available hardware threads; "
                 "clamping to %u\n",
                 flag, n, hw, hw);
    return hw;
  }
  return n;
}

// Persistent worker pool with an epoch-counted round barrier.  run() hands
// out task indices through an atomic ticket; the calling thread participates
// too, so `threads == 1` spawns no workers at all and the whole engine runs
// on the caller (same code path, zero synchronization).
struct Engine::Pool {
  explicit Pool(std::size_t extra_workers) {
    workers_.reserve(extra_workers);
    for (std::size_t i = 0; i < extra_workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      // dqlint:allow(det-thread): pool shutdown handshake
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
    if (workers_.empty()) {
      for (std::size_t i = 0; i < tasks; ++i) fn(i);
      return;
    }
    {
      // dqlint:allow(det-thread): publish the round under the barrier lock
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      tasks_ = tasks;
      next_.store(0, std::memory_order_relaxed);
      pending_ = workers_.size();
      ++epoch_;
    }
    cv_.notify_all();
    drain(fn);
    // dqlint:allow(det-thread): wait for every worker to pass the barrier
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  void drain(const std::function<void(std::size_t)>& fn) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks_) return;
      fn(i);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      {
        // dqlint:allow(det-thread): block until the next round (or stop)
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return epoch_ != seen; });
        seen = epoch_;
        if (stop_) return;
        fn = fn_;
      }
      drain(*fn);
      {
        // dqlint:allow(det-thread): report this worker done for the round
        std::lock_guard<std::mutex> lk(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  // dqlint:allow(det-thread): the pool's worker threads
  std::vector<std::thread> workers_;
  // dqlint:allow(det-thread): barrier state guard
  std::mutex mu_;
  // dqlint:allow(det-thread): round-start and round-done signals
  std::condition_variable cv_, done_cv_;
  // dqlint:allow(det-thread): per-round work ticket (order-free by design)
  std::atomic<std::size_t> next_{0};
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t tasks_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

Engine::Engine(World& world, std::size_t threads) : world_(world) {
  const std::size_t parts = world_.parts_.size();
  DQ_INVARIANT(parts > 0, "engine requires a partitioned world");
  threads_ = std::clamp<std::size_t>(threads, 1, parts);
  pool_ = std::make_unique<Pool>(threads_ - 1);
}

Engine::~Engine() = default;

std::size_t Engine::run_until(Time deadline) {
  auto& parts = world_.parts_;
  const Duration lookahead = world_.plan_.lookahead;
  std::size_t executed = 0;

  for (;;) {
    Time t_min = kTimeInfinity;
    for (auto& p : parts) {
      t_min = std::min(t_min, p->sched->next_event_time());
    }
    if (t_min == kTimeInfinity || t_min > deadline) break;
    const Time window =
        lookahead < kTimeInfinity - t_min ? std::min(deadline, t_min + lookahead)
                                          : deadline;

    // Phase A: every partition executes its local window concurrently.
    // Cross-partition sends land in the outboxes, never in a live queue.
    pool_->run(parts.size(), [&](std::size_t i) {
      PartitionState& st = *parts[i];
      set_current_state(&st);
      obs::set_current_lane(st.index);
      st.executed_in_round = st.sched->run_until(window);
      obs::set_current_lane(0);
      set_current_state(nullptr);
    });
    for (auto& p : parts) executed += p->executed_in_round;

    // Phase B: merge mailboxes.  Each destination drains every source's
    // outbox for it in the fixed (deliver_time, global_seq, dst_node) order;
    // distinct destinations touch distinct queues, so this fans out too.
    pool_->run(parts.size(), [&](std::size_t i) {
      merge_mailboxes_into(*parts[i]);
    });
  }

  if (deadline < kTimeInfinity) {
    // No events remain at or before the deadline; advance every partition
    // clock to it (same contract as the serial Scheduler::run_until).
    for (auto& p : parts) p->sched->run_until(deadline);
  }
  merge_tracers();
  return executed;
}

void Engine::merge_mailboxes_into(PartitionState& dst) {
  auto& parts = world_.parts_;
  std::vector<Mail>& batch = dst.merge_scratch;
  batch.clear();
  for (auto& src : parts) {
    std::vector<Mail>& box = src->outbox[dst.index];
    for (Mail& m : box) batch.push_back(std::move(m));
    box.clear();
  }
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end(), mail_before);
  World* w = &world_;
  for (Mail& m : batch) {
    DQ_INVARIANT(m.deliver_at >= dst.sched->now(),
                 "lookahead violated: a cross-partition message arrived in "
                 "the past");
    static_assert(Scheduler::EventFn::fits_inline<World::DeliveryEvent>(),
                  "merged delivery event must stay inline");
    dst.sched->schedule_construct_at<World::DeliveryEvent>(m.deliver_at, w,
                                                           std::move(m.env));
  }
}

void Engine::merge_tracers() {
  auto& parts = world_.parts_;
  bool any = false;
  for (auto& p : parts) any = any || !p->tracer.events().empty();
  if (!any) return;
  // Deterministic interleave: by time, then partition index, then emission
  // order within the partition.  (Cross-partition trace order is a property
  // of the partitioned schedule, not of thread count.)
  struct Item {
    const TraceEvent* ev;
    std::uint32_t part;
    std::size_t pos;
  };
  std::vector<Item> items;
  for (auto& p : parts) {
    const auto& evs = p->tracer.events();
    for (std::size_t i = 0; i < evs.size(); ++i) {
      items.push_back({&evs[i], p->index, i});
    }
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.ev->at != b.ev->at) return a.ev->at < b.ev->at;
    if (a.part != b.part) return a.part < b.part;
    return a.pos < b.pos;
  });
  for (const Item& it : items) {
    world_.tracer_.emit(it.ev->at, it.ev->node, it.ev->category,
                        it.ev->detail);
  }
  for (auto& p : parts) p->tracer.clear();
}

}  // namespace dq::sim::par
