// Conservative parallel discrete-event execution inside a single World.
//
// The simulation's nodes are split into a fixed set of partitions, each with
// its own scheduler (event queue + clock), rng stream, message accounting,
// and trace buffer.  Execution proceeds in synchronization rounds: every
// round the engine computes the globally earliest pending event time T and a
// safe window bound
//
//     window = T + lookahead,
//
// where `lookahead` is the minimum base one-way network delay between any
// two nodes in *different* partitions (jitter is multiplicative >= 1, so the
// base delay is a hard lower bound).  Any event executed in the window can
// only produce cross-partition messages with deliver time >= T + lookahead,
// i.e. at or past the window bound -- so all partitions may run their local
// queues up to `window` concurrently without ever receiving a message "from
// the past".  Cross-partition sends are buffered in per-(src, dst) mailboxes
// (each written by exactly one partition per round, read only after the
// round barrier) and merged into the destination queues in the fixed order
// (deliver_time, global_seq, dst_node), which makes the total event order a
// pure function of the simulation state: byte-identical output at any
// worker-thread count, including one.
//
// The partition count is derived from the topology alone -- never from the
// thread count -- so `--world-threads 1` and `--world-threads 8` execute the
// exact same partitioned schedule; threads only decide how many partitions
// advance concurrently within a round.
//
// Determinism boundaries the engine relies on (enforced by World):
//   * Actors only touch their own node's state from on_message/timers, and a
//     node's events all run on its owning partition's queue.
//   * Shared named metrics instruments use per-partition lanes
//     (obs/metrics.h); snapshots fold lanes in fixed order.
//   * Fault/crash injection mutates cross-partition reachability state and
//     is therefore only available on the classic serial engine (the
//     experiment harness falls back and says so).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace dq::sim {
class World;
}  // namespace dq::sim

namespace dq::sim::par {

// Static node -> partition assignment plus the lookahead it induces.
struct PartitionPlan {
  std::vector<std::uint32_t> of_node;  // node id -> partition index
  std::size_t count = 0;               // 0 = serial (no partitioning)
  Duration lookahead = 0;              // min cross-partition base delay
};

// Topology-derived partition count used when the caller does not pick one:
// one partition per server up to a fixed cap, so the schedule never depends
// on the machine the simulation runs on.
[[nodiscard]] std::size_t default_partition_count(const Topology& topo);

// Build the plan: servers are split into `partitions` contiguous balanced
// blocks and every client joins its home server's partition (keeping the
// cheap 4 ms client<->home link *inside* a partition, which leaves the 40 ms
// server<->server delay as the lookahead).  `partitions` is clamped to
// [1, num_servers].
[[nodiscard]] PartitionPlan make_partition_plan(const Topology& topo,
                                                std::size_t partitions);

// Resolve a worker-thread request: 0 means one per hardware thread; values
// above the hardware concurrency are clamped with a note on stderr (an
// oversubscribed pool just thrashes).  `flag` names the knob in the note.
[[nodiscard]] std::size_t clamp_threads(std::size_t n, const char* flag);

// A cross-partition message parked until the round barrier.
struct Mail {
  Time deliver_at = 0;
  std::uint64_t seq = 0;  // (src partition << 40) | per-partition send count
  Envelope env;
};

// The fixed merge order: (deliver_time, global_seq, dst_node).  `seq` is
// globally unique, so this is a total order however threads interleave.
[[nodiscard]] inline bool mail_before(const Mail& a, const Mail& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.env.dst.value() < b.env.dst.value();
}

// Everything one partition owns.  During a round, partition state is touched
// only by the single worker executing that partition; between rounds, only
// by the engine's coordinating thread.
struct PartitionState {
  World* world = nullptr;
  std::uint32_t index = 0;
  std::unique_ptr<Scheduler> sched;
  Rng rng{0};
  MessageStats stats;
  Tracer tracer;
  std::uint64_t next_rpc_id = 0;  // low bits of this partition's rpc ids
  std::uint64_t send_seq = 0;     // feeds Mail::seq
  std::uint64_t dropped = 0;
  std::size_t executed_in_round = 0;
  // outbox[dst]: mail this partition produced for partition dst this round.
  // Single producer (this partition's worker), single consumer (dst's merge
  // step after the barrier).
  std::vector<std::vector<Mail>> outbox;
  std::vector<Mail> merge_scratch;  // reused by the merge step (no per-round
                                    // allocation in the steady state)
};

namespace detail {
// Defined in parallel_world.cpp; exposed here only so current_state()
// inlines to a single thread-local read -- World consults it several times
// per message send on the hot path.
// dqlint:allow(part-mutable-global): per-thread by construction; each worker
// sees only its own partition pointer, so nothing is shared across them.
extern thread_local PartitionState* t_state;
}  // namespace detail

// Ambient "which partition is this thread executing" state, used by World to
// route rng draws, timers, sends, clocks, and traces without threading a
// context argument through every actor.  Null outside a partition step (the
// coordinating thread and all serial simulations).
[[nodiscard]] inline PartitionState* current_state() {
  return detail::t_state;
}
inline void set_current_state(PartitionState* state) {
  detail::t_state = state;
}

// The round loop + worker pool.  Owned by a World in partitioned mode.
class Engine {
 public:
  Engine(World& world, std::size_t threads);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Run every partition up to `deadline` (same contract as
  // Scheduler::run_until: executes events at <= deadline, then advances all
  // partition clocks to the deadline unless it is kTimeInfinity).  Returns
  // the number of events executed.
  std::size_t run_until(Time deadline);

  [[nodiscard]] std::size_t threads() const { return threads_; }

 private:
  struct Pool;  // the only thread-primitive holder, in parallel_world.cpp

  void merge_mailboxes_into(PartitionState& dst);
  void merge_tracers();

  World& world_;
  std::size_t threads_ = 1;
  std::unique_ptr<Pool> pool_;
};

}  // namespace dq::sim::par
