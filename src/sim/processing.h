// Helper for charging the constant per-request processing delay.
//
// The paper's response-time experiment "assume[s] a constant processing
// delay on every edge server for both reads and writes" (section 4.1).  The
// convention in this codebase: the delay is charged once at every server
// that processes a CLIENT-FACING request message (reads, writes, logical-
// clock reads); internal traffic (invalidations, renewals, syncs, gossip)
// is not charged.
#pragma once

#include <functional>
#include <utility>

#include "sim/world.h"

namespace dq::sim {

// Run `fn` after the topology's processing delay at `node` (immediately if
// the delay is zero).
inline void defer_processing(World& world, NodeId node,
                             std::function<void()> fn) {
  const Duration d = world.topology().processing_delay();
  if (d <= 0) {
    fn();
    return;
  }
  world.set_timer(node, d, std::move(fn));
}

}  // namespace dq::sim
