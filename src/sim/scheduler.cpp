#include "sim/scheduler.h"

#include <utility>

#include "common/assert.h"

namespace dq::sim {

TimerToken Scheduler::schedule_at(Time when, std::function<void()> fn) {
  DQ_INVARIANT(fn != nullptr, "scheduled callback must be callable");
  if (when < now_) when = now_;  // no scheduling into the past
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, alive, std::move(fn)});
  return TimerToken(std::move(alive));
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t ran = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) break;
    // Copy out before pop: the callback may schedule new events and
    // invalidate the reference.
    Event ev = top;
    queue_.pop();
    DQ_INVARIANT(ev.when >= now_, "event queue must be monotone");
    now_ = ev.when;
    if (*ev.alive) {
      *ev.alive = false;  // one-shot
      ev.fn();
      ++ran;
      ++executed_;
    }
  }
  if (now_ < deadline && deadline < kTimeInfinity) now_ = deadline;
  return ran;
}

}  // namespace dq::sim
