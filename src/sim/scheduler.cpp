#include "sim/scheduler.h"

#include <utility>

#include "common/assert.h"

namespace dq::sim {

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    Slot& s = slot(idx);
    free_head_ = s.next_free;
    s.next_free = kNoSlot;
    return idx;
  }
  if (num_slots_ % kChunkSlots == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
  }
  return num_slots_++;
}

void Scheduler::release_slot(std::uint32_t i) {
  Slot& s = slot(i);
  s.next_free = free_head_;
  free_head_ = i;
}

TimerToken Scheduler::arm_slot(std::uint32_t idx, Time when) {
  Slot& s = slot(idx);
  DQ_INVARIANT(static_cast<bool>(s.fn), "scheduled callback must be callable");
  if (when < now_) when = now_;  // no scheduling into the past
  s.armed = true;
  const std::uint64_t seq = next_seq_++;
  heap_push(HeapEntry{when, seq, idx, s.gen});
  ++live_;
  return TimerToken(this, idx, s.gen);
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t ran = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    Slot& s = slot(top.slot);
    if (!s.armed || s.gen != top.gen) {
      heap_pop_root();  // lazily deleted (cancelled) entry
      continue;
    }
    if (top.when > deadline) break;
    heap_pop_root();
    DQ_INVARIANT(top.when >= now_, "event queue must be monotone");
    now_ = top.when;
    // One-shot: bump the generation BEFORE running, so a cancel() from
    // inside the callback (or a stale token seeing the recycled slot) is a
    // no-op.  The callback runs in place -- its slot stays off the free
    // list until it returns (a chunk push in a nested schedule_at cannot
    // move it; chunks are stable), then the slot recycles.
    s.armed = false;
    ++s.gen;
    --live_;
    s.fn();
    s.fn.reset();
    release_slot(top.slot);
    ++ran;
    ++executed_;
  }
  if (now_ < deadline && deadline < kTimeInfinity) now_ = deadline;
  return ran;
}

Time Scheduler::next_event_time() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& s = slot(top.slot);
    if (s.armed && s.gen == top.gen) return top.when;
    heap_pop_root();  // lazily deleted (cancelled) entry
  }
  return kTimeInfinity;
}

void Scheduler::cancel_event(std::uint32_t slot_idx, std::uint32_t gen) {
  if (slot_idx >= num_slots_) return;
  Slot& s = slot(slot_idx);
  if (!s.armed || s.gen != gen) return;  // already fired, cancelled, or reused
  s.armed = false;
  ++s.gen;  // invalidates the heap entry and every other token copy
  s.fn.reset();
  release_slot(slot_idx);
  --live_;
}

bool Scheduler::event_pending(std::uint32_t slot_idx,
                              std::uint32_t gen) const {
  return slot_idx < num_slots_ && slot(slot_idx).armed &&
         slot(slot_idx).gen == gen;
}

// Both sift directions move the displaced entry once into its final
// position (hole sifting) instead of swapping at every level.

void Scheduler::heap_push(const HeapEntry& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::heap_pop_root() {
  const HeapEntry hole = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], hole)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = hole;
}

}  // namespace dq::sim
