// The discrete-event scheduler: a priority queue of timestamped callbacks
// plus the virtual clock.
//
// Determinism: events at equal times fire in insertion order (a strictly
// increasing sequence number breaks ties), so a given seed always produces
// the same execution.
//
// Performance (this is the hottest loop in the repository -- every figure
// replays millions of events through it):
//   * Events live in a chunked slab pool with an intrusive free list.
//     Slab chunks are never reallocated, so event addresses are stable and
//     scheduling from inside a callback is safe; a drained slot is reused
//     without touching the allocator.
//   * Callbacks are SmallFn (sim/small_fn.h): the capture -- including a
//     full in-flight Envelope -- is stored inline in the pool slot, so the
//     steady state allocates nothing per event.
//   * The ready queue is a 4-ary implicit heap of 24-byte (when, seq, slot)
//     entries.  The workload is pop-heavy (every push is eventually popped,
//     and pops dominate comparisons); a wider node trades cheaper, better-
//     cached sift-downs for slightly more comparisons per level.
//   * Cancellation is O(1) and lazy: the slot's generation is bumped and the
//     slot freed immediately; the stale heap entry is skipped when popped.
//     TimerToken is a generation-checked pool index, not a shared_ptr.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_fn.h"
#include "sim/time.h"

namespace dq::sim {

class Scheduler;

// Handle used to cancel a scheduled event.  A token is a (slot, generation)
// pair into the scheduler's event pool: firing or cancelling an event bumps
// the slot's generation, so a stale token -- cancelled twice, or outliving a
// drained queue whose slot was reused -- is recognized and ignored.  Tokens
// must not outlive the Scheduler itself.
class TimerToken {
 public:
  TimerToken() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  TimerToken(Scheduler* sched, std::uint32_t slot, std::uint32_t gen)
      : sched_(sched), slot_(slot), gen_(gen) {}

  Scheduler* sched_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  // Sized so that the largest hot capture -- World's delivery lambda
  // carrying a complete Envelope (168 bytes) -- stays inline (world.cpp
  // asserts it).
  static constexpr std::size_t kCallbackCapacity = 192;
  using EventFn = SmallFn<kCallbackCapacity>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `when` (clamped to now).  The
  // callable is constructed directly into its pool slot -- no intermediate
  // EventFn, no relocation.
  template <typename F>
  TimerToken schedule_at(Time when, F&& fn) {
    const std::uint32_t idx = acquire_slot();
    slot(idx).fn = std::forward<F>(fn);
    return arm_slot(idx, when);
  }

  template <typename F>
  TimerToken schedule_after(Duration delay, F&& fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn));
  }

  // Construct a callable of type F directly in its pool slot from `args`.
  // Message delivery uses this to avoid materializing the event (and the
  // Envelope it carries) on the stack before moving it into the pool.
  template <typename F, typename... Args>
  TimerToken schedule_construct_at(Time when, Args&&... args) {
    const std::uint32_t idx = acquire_slot();
    slot(idx).fn.template emplace_as<F>(std::forward<Args>(args)...);
    return arm_slot(idx, when);
  }

  // Run events until the queue drains or `deadline` is reached, whichever is
  // first.  Returns the number of events executed.
  std::size_t run_until(Time deadline);

  // Run until the queue drains completely (use with care: protocols with
  // periodic timers never drain; prefer run_until).
  std::size_t run_all() { return run_until(kTimeInfinity); }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t executed_events() const { return executed_; }

  // Timestamp of the earliest pending event, or kTimeInfinity when the queue
  // is empty.  Prunes lazily-cancelled heap entries on the way (which is why
  // it is not const) so the answer reflects only live events.  The parallel
  // world engine polls this per synchronization round to size the next safe
  // execution window.
  [[nodiscard]] Time next_event_time();

  // Pool slots ever allocated (high-water mark of concurrently pending
  // events, rounded up to a chunk).  Introspection for tests and the
  // throughput bench: a steady pool size means the hot loop is recycling
  // slots instead of growing.
  [[nodiscard]] std::size_t pool_slots() const { return num_slots_; }

 private:
  friend class TimerToken;

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kChunkSlots = 256;

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;        // bumped on fire and on cancel
    std::uint32_t next_free = kNoSlot;
    bool armed = false;
  };

  struct HeapEntry {
    Time when;
    std::uint64_t seq;   // FIFO tie-break at equal times
    std::uint32_t slot;
    std::uint32_t gen;   // must match the slot to be live
  };

  [[nodiscard]] Slot& slot(std::uint32_t i) {
    return chunks_[i / kChunkSlots][i % kChunkSlots];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t i) const {
    return chunks_[i / kChunkSlots][i % kChunkSlots];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t i);

  // Clamp `when`, push the heap entry, hand out the token.  The slot's fn
  // must already be in place (schedule_at constructs it there).
  TimerToken arm_slot(std::uint32_t idx, Time when);

  void cancel_event(std::uint32_t slot_idx, std::uint32_t gen);
  [[nodiscard]] bool event_pending(std::uint32_t slot_idx,
                                   std::uint32_t gen) const;

  // 4-ary min-heap over (when, seq).
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  void heap_push(const HeapEntry& e);
  void heap_pop_root();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t live_ = 0;  // scheduled and neither fired nor cancelled

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t num_slots_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<HeapEntry> heap_;
};

inline void TimerToken::cancel() {
  if (sched_ != nullptr) sched_->cancel_event(slot_, gen_);
}

inline bool TimerToken::pending() const {
  return sched_ != nullptr && sched_->event_pending(slot_, gen_);
}

}  // namespace dq::sim
