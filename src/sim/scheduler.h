// The discrete-event scheduler: a priority queue of timestamped callbacks
// plus the virtual clock.
//
// Determinism: events at equal times fire in insertion order (a strictly
// increasing sequence number breaks ties), so a given seed always produces
// the same execution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dq::sim {

// Handle used to cancel a scheduled event.  Cancellation is lazy: the event
// stays in the queue but is skipped when popped.
class TimerToken {
 public:
  TimerToken() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  friend class Scheduler;
  explicit TimerToken(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Scheduler {
 public:
  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `when` (clamped to now).
  TimerToken schedule_at(Time when, std::function<void()> fn);

  TimerToken schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  // Run events until the queue drains or `deadline` is reached, whichever is
  // first.  Returns the number of events executed.
  std::size_t run_until(Time deadline);

  // Run until the queue drains completely (use with care: protocols with
  // periodic timers never drain; prefer run_until).
  std::size_t run_all() { return run_until(kTimeInfinity); }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time when = 0;
    std::uint64_t seq = 0;
    std::shared_ptr<bool> alive;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dq::sim
