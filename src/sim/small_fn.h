// SmallFn: a move-only `void()` callable with inline small-buffer storage.
//
// The event scheduler fires millions of callbacks per experiment, and a
// std::function costs one heap allocation per capture that outgrows its
// (implementation-defined, typically 16-byte) inline buffer -- which every
// in-flight Envelope does.  SmallFn sizes the buffer explicitly so the hot
// callbacks (message delivery, protocol timers) are guaranteed to live
// inline inside the scheduler's event pool; anything larger falls back to a
// single heap cell, it is never a compile error.
//
// Dispatch is a per-type operations table (invoke / relocate / destroy)
// instead of a virtual base, so an empty SmallFn is one null pointer and a
// move is at most a memcpy-sized relocation.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dq::sim {

template <std::size_t Capacity>
class SmallFn {
 public:
  // True when callables of type F are stored in the inline buffer (no heap).
  // Exposed so hot paths can static_assert their captures stay pooled.
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule/timer call site
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { take(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  // Assign a callable in place -- one construction directly into the
  // buffer, no temporary SmallFn and no relocate (the scheduler's schedule
  // path leans on this).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  // Construct a callable of type F directly in the buffer from `args` --
  // no temporary F on the caller's stack and no relocation.  The message
  // hot path uses this to build a delivery event around an in-flight
  // Envelope with a single envelope move.
  template <typename F, typename... Args>
  void emplace_as(Args&&... args) {
    static_assert(std::is_invocable_r_v<void, F&>);
    reset();
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(&storage_)) F{std::forward<Args>(args)...};
      ops_ = inline_ops<F>();
    } else {
      *reinterpret_cast<F**>(&storage_) = new F{std::forward<Args>(args)...};
      ops_ = heap_ops<F>();
    }
  }

  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(&storage_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-construct the callable at `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename F>
  static const Ops* inline_ops() {
    static constexpr Ops kOps = {
        [](void* self) { (*std::launder(static_cast<F*>(self)))(); },
        [](void* dst, void* src) noexcept {
          F* from = std::launder(static_cast<F*>(src));
          ::new (dst) F(std::move(*from));
          from->~F();
        },
        [](void* self) noexcept { std::launder(static_cast<F*>(self))->~F(); },
    };
    return &kOps;
  }

  // Heap fallback: the buffer holds one F*.
  template <typename F>
  static const Ops* heap_ops() {
    static constexpr Ops kOps = {
        [](void* self) { (**static_cast<F**>(self))(); },
        [](void* dst, void* src) noexcept {
          *static_cast<F**>(dst) = *static_cast<F**>(src);
        },
        [](void* self) noexcept { delete *static_cast<F**>(self); },
    };
    return &kOps;
  }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      *reinterpret_cast<D**>(&storage_) = new D(std::forward<F>(f));
      ops_ = heap_ops<D>();
    }
  }

  void take(SmallFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(&storage_, &other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace dq::sim
