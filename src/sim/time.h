// Virtual time for the discrete-event simulator.
//
// All simulation time is in integer nanoseconds.  Wall-clock never enters the
// simulator: response-time experiments are a pure function of the protocol's
// message pattern and the configured delay matrix, which is exactly what the
// paper's testbed measured (DESIGN.md section 2).
#pragma once

#include <cstdint>

namespace dq::sim {

// Durations and absolute simulation times, both in nanoseconds.  Kept as
// plain integers (not std::chrono) because they cross arithmetic with drift
// rates and the event queue constantly; helpers below keep call sites
// readable.
using Duration = std::int64_t;
using Time = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration milliseconds(std::int64_t ms) { return ms * kMillisecond; }
constexpr Duration seconds(std::int64_t s) { return s * kSecond; }

constexpr double to_ms(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// A simulation time that no event ever reaches.
constexpr Time kTimeInfinity = INT64_MAX / 4;

}  // namespace dq::sim
