#include "sim/trace.h"

#include <iomanip>

namespace dq::sim {

void Tracer::dump(std::ostream& os, const std::string& category,
                  std::size_t last_n) const {
  const auto selected = filter(category);
  const std::size_t start =
      selected.size() > last_n ? selected.size() - last_n : 0;
  for (std::size_t i = start; i < selected.size(); ++i) {
    const TraceEvent& e = selected[i];
    os << '[' << std::setw(10) << to_ms(e.at) << " ms] n" << e.node.value()
       << ' ' << e.category << ": " << e.detail << '\n';
  }
}

}  // namespace dq::sim
