// Structured protocol tracing.
//
// When enabled, the world records network-level events automatically and
// protocol code emits decision points (read hit/miss, write suppress/
// through, lease grants and expiries, delayed-invalidation queueing, epoch
// bumps).  Traces are the debugging surface for protocol work: the
// failover_drill example prints one, and tests assert on recorded decisions
// instead of inferring them from message counts.
//
// Disabled (the default) the cost is one branch per emit site.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/ids.h"
#include "sim/time.h"

namespace dq::sim {

struct TraceEvent {
  Time at = 0;
  NodeId node;
  std::string category;  // e.g. "read", "write", "lease", "net", "fault"
  std::string detail;
};

class Tracer {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void emit(Time at, NodeId node, std::string category, std::string detail) {
    if (!enabled_) return;
    events_.push_back(
        {at, node, std::move(category), std::move(detail)});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  // Events matching a category (empty = all), most recent last.
  [[nodiscard]] std::vector<TraceEvent> filter(
      const std::string& category) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events_) {
      if (category.empty() || e.category == category) out.push_back(e);
    }
    return out;
  }

  [[nodiscard]] std::size_t count(const std::string& category) const {
    std::size_t n = 0;
    for (const TraceEvent& e : events_) n += e.category == category ? 1 : 0;
    return n;
  }

  void dump(std::ostream& os, const std::string& category = {},
            std::size_t last_n = SIZE_MAX) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace dq::sim
