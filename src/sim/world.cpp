#include "sim/world.h"

#include <utility>

#include "common/assert.h"

namespace dq::sim {

World::World(Topology topology, std::uint64_t seed, Parallelism parallel)
    : topo_(std::move(topology)),
      rng_(seed),
      faults_(topo_.num_nodes()),
      actors_(topo_.num_nodes(), nullptr),
      clocks_(topo_.num_nodes()),
      crashed_(topo_.num_nodes(), false),
      incarnation_(topo_.num_nodes(), 0),
      sent_by_(topo_.num_nodes(), 0),
      received_by_(topo_.num_nodes(), 0) {
  if (parallel.partitions > 0) {
    plan_ = par::make_partition_plan(topo_, parallel.partitions);
    // Lanes must exist before any instrument registers (including the net
    // counters right below).
    metrics_.set_lanes(static_cast<std::uint32_t>(plan_.count));
    Rng seeder(seed);
    parts_.reserve(plan_.count);
    for (std::size_t p = 0; p < plan_.count; ++p) {
      auto st = std::make_unique<par::PartitionState>();
      st->world = this;
      st->index = static_cast<std::uint32_t>(p);
      st->sched = std::make_unique<Scheduler>();
      // Independent per-partition streams derived from the trial seed; the
      // derivation depends only on (seed, partition), never on threads.
      st->rng = seeder.split();
      st->tracer.enable(true);  // world.trace() gates on the main tracer
      st->outbox.resize(plan_.count);
      parts_.push_back(std::move(st));
    }
    engine_ = std::make_unique<par::Engine>(*this, parallel.threads);
  }
  m_sent_ = &metrics_.counter("net.sent");
  m_bytes_ = &metrics_.counter("net.bytes");
  m_delivered_ = &metrics_.counter("net.delivered");
  m_dropped_ = &metrics_.counter("net.dropped");
  for (LinkClass lc : {LinkClass::kLoopback, LinkClass::kClientHome,
                       LinkClass::kClientRemote, LinkClass::kServerServer}) {
    const auto i = static_cast<std::size_t>(lc);
    const std::string suffix = link_class_name(lc);
    m_link_msgs_[i] = &metrics_.counter("net.msgs." + suffix);
    m_link_bytes_[i] = &metrics_.counter("net.bytes." + suffix);
  }
}

World::~World() = default;

void World::attach(NodeId node, Actor& actor) {
  DQ_INVARIANT(node.value() < actors_.size(), "node id out of range");
  DQ_INVARIANT(actors_[node.value()] == nullptr,
               "a node hosts exactly one actor");
  actor.world_ = this;
  actor.id_ = node;
  actors_[node.value()] = &actor;
}

void World::set_clock(NodeId node, DriftClock clock) {
  clocks_.at(node.value()) = clock;
}

Scheduler& World::scheduler() {
  DQ_INVARIANT(parts_.empty(),
               "scheduler() is the serial engine's queue; on the partitioned "
               "engine schedule through set_timer");
  return sched_;
}

Scheduler& World::sched_for(std::uint32_t node_idx) {
  if (parts_.empty()) return sched_;
  par::PartitionState& owner = *parts_[plan_.of_node[node_idx]];
  par::PartitionState* cur = par::current_state();
  DQ_INVARIANT(cur == nullptr || cur->world != this || cur == &owner,
               "timers may only target the running partition's own nodes");
  return *owner.sched;
}

MessageStats& World::message_stats() {
  if (parts_.empty()) return stats_;
  merged_stats_.reset();
  for (const auto& st : parts_) merged_stats_.merge(st->stats);
  return merged_stats_;
}

std::uint64_t World::dropped_messages() const {
  std::uint64_t total = dropped_;
  for (const auto& st : parts_) total += st->dropped;
  return total;
}

std::size_t World::executed_events() const {
  if (parts_.empty()) return sched_.executed_events();
  std::size_t total = 0;
  for (const auto& st : parts_) total += st->sched->executed_events();
  return total;
}

void World::send_tagged(NodeId src, NodeId dst, RequestId rpc_id,
                        msg::Payload body, bool is_reply, Duration defer) {
  if (!faults_.is_up(src) || crashed_.at(src.value())) {
    return;  // a dead or disconnected node cannot put anything on the wire
  }
  const bool partitioned = !parts_.empty();
  par::PartitionState* st = partitioned ? &active_state() : nullptr;
  Rng& rng = st != nullptr ? st->rng : rng_;
  MessageStats& stats = st != nullptr ? st->stats : stats_;
  std::uint64_t& dropped = st != nullptr ? st->dropped : dropped_;

  const std::uint64_t size = stats.count(body);
  ++sent_by_.at(src.value());
  m_sent_->inc();
  m_bytes_->inc(size);
  const LinkClass link = topo_.link_class(src, dst);
  const auto link_idx = static_cast<std::size_t>(link);
  m_link_msgs_[link_idx]->inc();
  m_link_bytes_[link_idx]->inc(size);
  if (tracer_.enabled()) {
    Tracer& tr = st != nullptr ? st->tracer : tracer_;
    tr.emit(now(), src, "net",
            std::string(is_reply ? "reply " : "send ") +
                msg::payload_name(body) + " -> n" +
                std::to_string(dst.value()));
  }
  if (!faults_.reachable(src, dst)) {
    ++dropped;
    m_dropped_->inc();
    return;
  }
  const int copies = faults_.duplication_probability() > 0.0 &&
                             rng.chance(faults_.duplication_probability())
                         ? 2
                         : 1;
  for (int c = 0; c < copies; ++c) {
    if (faults_.loss_probability() > 0.0 &&
        rng.chance(faults_.loss_probability())) {
      ++dropped;
      m_dropped_->inc();
      continue;
    }
    const Duration delay = defer + topo_.one_way_delay(link, rng);
    // The last copy moves the body instead of copying it (duplication is
    // rare, so the common case is zero payload copies past this point).
    Envelope env{src, dst, rpc_id,
                 c + 1 == copies ? std::move(body) : body, is_reply};
    if (partitioned) {
      route_partitioned(std::move(env), delay);
      continue;
    }
    // Keep the delivery event in the scheduler's inline pool (see
    // Scheduler::kCallbackCapacity) and construct it there in place -- the
    // envelope is moved exactly once, off this stack frame into the pool.
    static_assert(Scheduler::EventFn::fits_inline<DeliveryEvent>(),
                  "delivery event must fit the scheduler's inline buffer");
    sched_.schedule_construct_at<DeliveryEvent>(
        sched_.now() + (delay < 0 ? 0 : delay), this, std::move(env));
  }
}

void World::route_partitioned(Envelope env, Duration delay) {
  if (delay < 0) delay = 0;
  const std::uint32_t dst_part = plan_.of_node[env.dst.value()];
  par::PartitionState* cur = par::current_state();
  const bool in_step = cur != nullptr && cur->world == this;
  if (in_step && dst_part != cur->index) {
    // Cross-partition: park in the outbox until the round barrier; the
    // engine merges all mailboxes in (deliver_time, global_seq, dst_node)
    // order, which fixes the total order independent of threads.
    cur->outbox[dst_part].push_back(par::Mail{
        cur->sched->now() + delay,
        (static_cast<std::uint64_t>(cur->index) << 40) | ++cur->send_seq,
        std::move(env)});
    return;
  }
  // Intra-partition, or a coordinating-thread send between rounds (all
  // partition clocks agree then): straight onto the owner's queue.
  Scheduler& queue = *parts_[dst_part]->sched;
  const Time base = in_step ? cur->sched->now() : queue.now();
  static_assert(Scheduler::EventFn::fits_inline<DeliveryEvent>(),
                "delivery event must fit the scheduler's inline buffer");
  queue.schedule_construct_at<DeliveryEvent>(base + delay, this,
                                             std::move(env));
}

void World::deliver(Envelope& env) {
  const auto idx = env.dst.value();
  // Reachability is also checked at delivery time so that a partition that
  // started while the message was in flight eats it (a message cannot
  // outrun a partition in this model; good enough for the experiments).
  if (!faults_.is_up(env.dst) || crashed_.at(idx)) {
    if (parts_.empty()) {
      ++dropped_;
    } else {
      ++active_state().dropped;
    }
    m_dropped_->inc();
    return;
  }
  Actor* a = actors_.at(idx);
  DQ_INVARIANT(a != nullptr, "message addressed to a node with no actor");
  ++received_by_.at(idx);
  m_delivered_->inc();
  a->on_message(env);
}

void World::crash(NodeId node) {
  DQ_INVARIANT(par::current_state() == nullptr,
               "crash() may not run inside a partition step");
  const auto idx = node.value();
  if (crashed_.at(idx)) return;
  trace(node, "fault", "crash");
  crashed_.at(idx) = true;
  ++incarnation_.at(idx);  // poisons all pending timers
  Actor* a = actors_.at(idx);
  if (a != nullptr) a->on_crash();
}

void World::restart(NodeId node) {
  DQ_INVARIANT(par::current_state() == nullptr,
               "restart() may not run inside a partition step");
  const auto idx = node.value();
  if (!crashed_.at(idx)) return;
  trace(node, "fault", "restart");
  crashed_.at(idx) = false;
  Actor* a = actors_.at(idx);
  if (a != nullptr) a->on_recover();
}

}  // namespace dq::sim
