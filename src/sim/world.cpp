#include "sim/world.h"

#include <utility>

#include "common/assert.h"

namespace dq::sim {

World::World(Topology topology, std::uint64_t seed)
    : topo_(std::move(topology)),
      rng_(seed),
      faults_(topo_.num_nodes()),
      actors_(topo_.num_nodes(), nullptr),
      clocks_(topo_.num_nodes()),
      crashed_(topo_.num_nodes(), false),
      incarnation_(topo_.num_nodes(), 0),
      sent_by_(topo_.num_nodes(), 0),
      received_by_(topo_.num_nodes(), 0) {
  m_sent_ = &metrics_.counter("net.sent");
  m_bytes_ = &metrics_.counter("net.bytes");
  m_delivered_ = &metrics_.counter("net.delivered");
  m_dropped_ = &metrics_.counter("net.dropped");
  for (LinkClass lc : {LinkClass::kLoopback, LinkClass::kClientHome,
                       LinkClass::kClientRemote, LinkClass::kServerServer}) {
    const auto i = static_cast<std::size_t>(lc);
    const std::string suffix = link_class_name(lc);
    m_link_msgs_[i] = &metrics_.counter("net.msgs." + suffix);
    m_link_bytes_[i] = &metrics_.counter("net.bytes." + suffix);
  }
}

void World::attach(NodeId node, Actor& actor) {
  DQ_INVARIANT(node.value() < actors_.size(), "node id out of range");
  DQ_INVARIANT(actors_[node.value()] == nullptr,
               "a node hosts exactly one actor");
  actor.world_ = this;
  actor.id_ = node;
  actors_[node.value()] = &actor;
}

void World::set_clock(NodeId node, DriftClock clock) {
  clocks_.at(node.value()) = clock;
}

void World::send_tagged(NodeId src, NodeId dst, RequestId rpc_id,
                        msg::Payload body, bool is_reply) {
  if (!faults_.is_up(src) || crashed_.at(src.value())) {
    return;  // a dead or disconnected node cannot put anything on the wire
  }
  const std::uint64_t size = stats_.count(body);
  ++sent_by_.at(src.value());
  m_sent_->inc();
  m_bytes_->inc(size);
  const auto link = static_cast<std::size_t>(topo_.link_class(src, dst));
  m_link_msgs_[link]->inc();
  m_link_bytes_[link]->inc(size);
  if (tracer_.enabled()) {
    tracer_.emit(now(), src, "net",
                 std::string(is_reply ? "reply " : "send ") +
                     msg::payload_name(body) + " -> n" +
                     std::to_string(dst.value()));
  }
  if (!faults_.reachable(src, dst)) {
    ++dropped_;
    m_dropped_->inc();
    return;
  }
  const int copies = faults_.duplication_probability() > 0.0 &&
                             rng_.chance(faults_.duplication_probability())
                         ? 2
                         : 1;
  for (int c = 0; c < copies; ++c) {
    if (faults_.loss_probability() > 0.0 &&
        rng_.chance(faults_.loss_probability())) {
      ++dropped_;
      m_dropped_->inc();
      continue;
    }
    const Duration delay = topo_.one_way_delay(src, dst, rng_);
    // The last copy moves the body instead of copying it (duplication is
    // rare, so the common case is zero payload copies past this point).
    Envelope env{src, dst, rpc_id,
                 c + 1 == copies ? std::move(body) : body, is_reply};
    auto fire = [this, env = std::move(env)]() mutable {
      deliver(std::move(env));
    };
    // The delivery lambda is the hottest event in the simulator; keep it in
    // the scheduler's inline pool (see Scheduler::kCallbackCapacity).
    static_assert(Scheduler::EventFn::fits_inline<decltype(fire)>(),
                  "delivery callback must fit the scheduler's inline buffer");
    sched_.schedule_after(delay, std::move(fire));
  }
}

void World::deliver(Envelope env) {
  const auto idx = env.dst.value();
  // Reachability is also checked at delivery time so that a partition that
  // started while the message was in flight eats it (a message cannot
  // outrun a partition in this model; good enough for the experiments).
  if (!faults_.is_up(env.dst) || crashed_.at(idx)) {
    ++dropped_;
    m_dropped_->inc();
    return;
  }
  Actor* a = actors_.at(idx);
  DQ_INVARIANT(a != nullptr, "message addressed to a node with no actor");
  ++received_by_.at(idx);
  m_delivered_->inc();
  a->on_message(env);
}

void World::crash(NodeId node) {
  const auto idx = node.value();
  if (crashed_.at(idx)) return;
  trace(node, "fault", "crash");
  crashed_.at(idx) = true;
  ++incarnation_.at(idx);  // poisons all pending timers
  Actor* a = actors_.at(idx);
  if (a != nullptr) a->on_crash();
}

void World::restart(NodeId node) {
  const auto idx = node.value();
  if (!crashed_.at(idx)) return;
  trace(node, "fault", "restart");
  crashed_.at(idx) = false;
  Actor* a = actors_.at(idx);
  if (a != nullptr) a->on_recover();
}

}  // namespace dq::sim
