// World: the container that wires actors, the scheduler, the network, and
// per-node clocks into one deterministic simulation.
//
// Every protocol node and every client is an Actor.  Actors interact with
// the world only through the narrow API here (send / timers / clocks / rng),
// which is what makes failure injection and deterministic replay possible.
//
// A world runs on one of two engines:
//   * serial (default): one scheduler, one rng, exactly the classic
//     behavior;
//   * partitioned (Parallelism{partitions > 0}): nodes are split into
//     topology-derived partitions, each with its own scheduler/rng/stats
//     lane, executed in conservative lookahead rounds by a worker pool
//     (sim/parallel_world.h).  Output is a pure function of the partition
//     plan -- byte-identical at any thread count -- but differs from the
//     serial engine's schedule, so callers opt in explicitly.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include <array>

#include "common/ids.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "sim/clock.h"
#include "sim/network.h"
#include "sim/parallel_world.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "sim/time.h"

namespace dq::sim {

class World;

// Base class for every protocol participant.
class Actor {
 public:
  virtual ~Actor() = default;

  // A message addressed to this node arrived (the node is up).
  virtual void on_message(const Envelope& env) = 0;

  // The node crashed (process death: volatile state should be dropped) or
  // recovered.  Partition-style unreachability does NOT invoke these; a
  // partitioned node keeps running its timers.
  virtual void on_crash() {}
  virtual void on_recover() {}

  [[nodiscard]] NodeId id() const { return id_; }

 protected:
  [[nodiscard]] World& world() const { return *world_; }

 private:
  friend class World;
  World* world_ = nullptr;
  NodeId id_{};
};

class World {
 public:
  // Intra-trial parallelism knobs.  partitions == 0 selects the classic
  // serial engine.  partitions >= 1 selects the partitioned engine (the
  // count is clamped to [1, num_servers]; pass
  // par::default_partition_count(topo) for the standard topology-derived
  // plan).  `threads` sizes the worker pool and never affects results.
  struct Parallelism {
    std::size_t partitions = 0;
    std::size_t threads = 1;
  };

  World(Topology topology, std::uint64_t seed)
      : World(std::move(topology), seed, Parallelism{}) {}
  World(Topology topology, std::uint64_t seed, Parallelism parallel);
  ~World();

  // Non-copyable: actors hold back-pointers.
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- setup -------------------------------------------------------------
  // Register the actor living at `node`.  The world does not own actors
  // (tests and harnesses typically keep them in vectors of unique_ptr).
  void attach(NodeId node, Actor& actor);

  // Give `node` a drifting clock (default: perfect clock).
  void set_clock(NodeId node, DriftClock clock);

  // --- actor-facing API ----------------------------------------------------
  [[nodiscard]] Time now() const {
    return parts_.empty() ? sched_.now() : active_state().sched->now();
  }
  [[nodiscard]] Time local_now(NodeId node) const {
    return clock_of(node).local_time(now());
  }
  [[nodiscard]] const DriftClock& clock_of(NodeId node) const {
    return clocks_.at(node.value());
  }

  // Send a request message.  Applies reachability, loss, duplication, delay.
  void send(NodeId src, NodeId dst, RequestId rpc_id, msg::Payload body) {
    send_tagged(src, dst, rpc_id, std::move(body), /*is_reply=*/false);
  }
  // Send a reply to a previously received envelope (echoes its rpc id).
  void reply(NodeId src, const Envelope& to, msg::Payload body) {
    send_tagged(src, to.src, to.rpc_id, std::move(body), /*is_reply=*/true);
  }
  void send_tagged(NodeId src, NodeId dst, RequestId rpc_id,
                   msg::Payload body, bool is_reply, Duration defer = 0);
  // Send a request that departs at `depart_at` (>= now).  The open-loop
  // generators draw a whole batch of arrivals at once and hand each one
  // here, so the scheduler sees one timer per batch plus one delivery event
  // per request.  Loss / duplication / delay / reachability are evaluated at
  // call time from the sending partition's stream (the batch itself is a
  // scheduled event, so this stays deterministic); delivery happens at
  // depart_at + delay, which on the partitioned engine is always at or past
  // the lookahead bound because defer >= 0.
  void send_at(NodeId src, NodeId dst, Time depart_at, RequestId rpc_id,
               msg::Payload body) {
    const Time t = now();
    send_tagged(src, dst, rpc_id, std::move(body), /*is_reply=*/false,
                depart_at > t ? depart_at - t : 0);
  }

  // Schedule `fn` at `node` after `delay` (on the global clock).  The
  // callback is dropped if the node crashed in the meantime (its process
  // restarted); it still fires while the node is merely partitioned.
  //
  // Templated on the callable so the caller's capture lands directly in the
  // scheduler's inline event pool (one std::function per timer used to be a
  // heap allocation on the hot path).
  template <typename F>
  TimerToken set_timer(NodeId node, Duration delay, F fn) {
    const auto idx = node.value();
    const std::uint64_t inc = incarnation_.at(idx);
    return sched_for(idx).schedule_after(
        delay, [this, idx, inc, fn = std::move(fn)]() mutable {
          if (crashed_.at(idx) || incarnation_.at(idx) != inc) return;
          fn();
        });
  }

  // Schedule `fn` to fire when `node`'s LOCAL clock reaches `local_when`.
  template <typename F>
  TimerToken set_timer_local(NodeId node, Time local_when, F fn) {
    const Time global_when = clock_of(node).global_time(local_when);
    const Duration delay = global_when - now();
    return set_timer(node, delay < 0 ? 0 : delay, std::move(fn));
  }

  [[nodiscard]] Rng& rng() {
    return parts_.empty() ? rng_ : active_state().rng;
  }
  [[nodiscard]] RequestId fresh_rpc_id() {
    if (parts_.empty()) return RequestId(++next_rpc_id_);
    // Partition-disjoint id spaces: high bits carry the partition, so two
    // partitions can mint ids concurrently and never collide.  Partition 0
    // (and therefore every single-partition plan) mints the serial values.
    par::PartitionState& st = active_state();
    return RequestId((static_cast<std::uint64_t>(st.index) << 48) |
                     ++st.next_rpc_id);
  }

  // --- tracing ---------------------------------------------------------------
  // Enable/inspect via tracer().  On the partitioned engine each partition
  // buffers its own events and the engine folds them into this tracer in a
  // deterministic (time, partition, emission) order at the end of each run
  // call.
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] bool tracing() const { return tracer_.enabled(); }
  // Emit a protocol event at `node` (no-op unless tracing is enabled).
  void trace(NodeId node, std::string category, std::string detail) {
    if (!tracer_.enabled()) return;
    Tracer& t = parts_.empty() ? tracer_ : active_state().tracer;
    t.emit(now(), node, std::move(category), std::move(detail));
  }

  // --- failure injection ---------------------------------------------------
  // Unreachability (network failure): node keeps running, no traffic in/out.
  // Mid-run fault mutation is a serial-engine feature (the experiment
  // harness falls back to serial when injection is configured).
  void set_up(NodeId node, bool up) { faults_.set_up(node, up); }
  [[nodiscard]] bool is_up(NodeId node) const { return faults_.is_up(node); }

  // Process crash: drops all pending timers at the node and calls
  // Actor::on_crash; restart() calls Actor::on_recover.
  void crash(NodeId node);
  void restart(NodeId node);
  [[nodiscard]] bool is_crashed(NodeId node) const {
    return crashed_.at(node.value());
  }

  [[nodiscard]] FaultPlane& faults() { return faults_; }

  // --- running -------------------------------------------------------------
  std::size_t run_until(Time deadline) {
    return parts_.empty() ? sched_.run_until(deadline)
                          : engine_->run_until(deadline);
  }
  std::size_t run_for(Duration d) { return run_until(now() + d); }
  std::size_t run_all() {
    return parts_.empty() ? sched_.run_all()
                          : engine_->run_until(kTimeInfinity);
  }
  // The serial engine's event queue.  Injectors and tests that schedule raw
  // events use it; on the partitioned engine there is no single queue, so
  // this trips an invariant -- schedule through set_timer instead.
  [[nodiscard]] Scheduler& scheduler();

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] const Topology& topology() const { return topo_; }
  // Serial: the live per-run accounting.  Partitioned: a merged view over
  // the per-partition lanes, rebuilt on each call (read it between runs).
  [[nodiscard]] MessageStats& message_stats();
  [[nodiscard]] std::uint64_t dropped_messages() const;
  // Events executed so far, summed over every partition's scheduler.
  [[nodiscard]] std::size_t executed_events() const;

  // The active partition plan; count == 0 on the serial engine.
  [[nodiscard]] const par::PartitionPlan& partition_plan() const {
    return plan_;
  }

  // The world's metrics registry.  Purely passive accounting: recording or
  // snapshotting metrics never schedules events, draws randomness, or sends
  // messages, so it cannot perturb the simulation (see obs/metrics.h).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

  // Per-node load: messages this node sent / had delivered to it.  The
  // grid-quorum experiments use this to show load spreading ("reduce the
  // overall system load", paper section 6).
  [[nodiscard]] std::uint64_t sent_by(NodeId n) const {
    return sent_by_.at(n.value());
  }
  [[nodiscard]] std::uint64_t received_by(NodeId n) const {
    return received_by_.at(n.value());
  }

 private:
  friend class par::Engine;

  // The hottest event in the simulator: one in-flight message.  A concrete
  // struct (not a lambda) so Scheduler::schedule_construct_at can build it
  // directly in its pool slot -- the Envelope is moved exactly once, from
  // the send path into the pool.
  struct DeliveryEvent {
    World* world;
    Envelope env;
    void operator()() { world->deliver(env); }
  };

  // Takes the envelope by reference: the caller (the pooled delivery event)
  // owns it, and the hot path should not pay another 168-byte move.
  void deliver(Envelope& env);

  // The partition state backing the calling thread: its own state inside a
  // partition step, partition 0 from the coordinating thread (setup-time
  // rng draws and sends come from partition 0's stream and lane).
  [[nodiscard]] par::PartitionState& active_state() const {
    par::PartitionState* s = par::current_state();
    if (s != nullptr && s->world == this) return *s;
    return *parts_.front();
  }

  // The scheduler that owns `node`'s events.  Inside a partition step only
  // the running partition's own nodes may be targeted (cross-partition
  // timers would race the owner's queue).
  [[nodiscard]] Scheduler& sched_for(std::uint32_t node_idx);

  void route_partitioned(Envelope env, Duration delay);

  Topology topo_;
  Rng rng_;
  Scheduler sched_;
  Tracer tracer_;
  FaultPlane faults_;
  MessageStats stats_;
  MessageStats merged_stats_;  // partitioned: rebuilt by message_stats()
  obs::MetricsRegistry metrics_;
  // Pre-registered network instruments (hot path: no name lookups).
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  std::array<obs::Counter*, 4> m_link_msgs_{};
  std::array<obs::Counter*, 4> m_link_bytes_{};
  std::vector<Actor*> actors_;
  std::vector<DriftClock> clocks_;
  std::vector<bool> crashed_;
  // Incarnation numbers invalidate pre-crash timers cheaply.
  std::vector<std::uint64_t> incarnation_;
  std::uint64_t next_rpc_id_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::uint64_t> sent_by_;
  std::vector<std::uint64_t> received_by_;
  // Partitioned-engine state; parts_ empty means serial.  The engine comes
  // last so its worker pool is torn down before anything it references.
  par::PartitionPlan plan_;
  std::vector<std::unique_ptr<par::PartitionState>> parts_;
  std::unique_ptr<par::Engine> engine_;
};

}  // namespace dq::sim
