// Per-node object storage and the object-to-volume mapping.
//
// The store is a simple versioned key-value map: protocols keep their own
// per-object metadata (callback state, lease state) next to it.  Volumes
// group objects so that one short volume lease amortizes over many objects
// (paper section 3.2).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/version.h"

namespace dq::store {

// Maps every object to its volume.  The default policy hashes the object id
// across a fixed number of volumes, which is how a deployment would shard a
// namespace; tests also use single-volume maps.
class VolumeMap {
 public:
  explicit VolumeMap(std::size_t num_volumes = 1)
      : num_volumes_(num_volumes == 0 ? 1 : num_volumes) {}

  [[nodiscard]] VolumeId volume_of(ObjectId o) const {
    return VolumeId(static_cast<std::uint32_t>(o.value() % num_volumes_));
  }
  [[nodiscard]] std::size_t num_volumes() const { return num_volumes_; }

  [[nodiscard]] std::vector<VolumeId> all_volumes() const {
    std::vector<VolumeId> v;
    v.reserve(num_volumes_);
    for (std::size_t i = 0; i < num_volumes_; ++i) {
      v.emplace_back(static_cast<std::uint32_t>(i));
    }
    return v;
  }

 private:
  std::size_t num_volumes_;
};

// Versioned object store.  apply() keeps the highest-clock value (writes
// are idempotent and commute under the max-clock rule).
class ObjectStore {
 public:
  // Returns true if the update was newer and was applied.  No real write
  // carries the zero clock, so "newer than an absent entry" is simply
  // lc > LogicalClock::zero().
  bool apply(ObjectId o, const Value& v, LogicalClock lc) {
    auto [it, inserted] = data_.try_emplace(o);
    if (!inserted && lc <= it->second.clock) return false;
    it->second.value = v;
    it->second.clock = lc;
    return true;
  }

  [[nodiscard]] VersionedValue get(ObjectId o) const {
    auto it = data_.find(o);
    if (it == data_.end()) return {};
    return it->second;
  }

  [[nodiscard]] LogicalClock clock_of(ObjectId o) const {
    auto it = data_.find(o);
    return it == data_.end() ? LogicalClock::zero() : it->second.clock;
  }

  [[nodiscard]] bool contains(ObjectId o) const { return data_.count(o) > 0; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  // Snapshot of all (object, clock) pairs -- used by anti-entropy digests.
  [[nodiscard]] std::vector<std::pair<ObjectId, LogicalClock>> digest() const {
    std::vector<std::pair<ObjectId, LogicalClock>> out;
    out.reserve(data_.size());
    for (const auto& [o, vv] : data_) out.emplace_back(o, vv.clock);
    return out;
  }

  void clear() { data_.clear(); }

 private:
  // Ordered on purpose: digest() feeds anti-entropy messages and the volume
  // bulk-fetch walks this map, so iteration order is on the wire.  An
  // unordered map would tie message contents to the hash implementation
  // (dqlint rule `det-unordered-container`).
  std::map<ObjectId, VersionedValue> data_;
};

}  // namespace dq::store
