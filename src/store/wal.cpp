#include "store/wal.h"

#include <utility>

namespace dq::store {

Wal::Wal(sim::World& world, NodeId self, WalParams params)
    : world_(world), self_(self), params_(params) {
  auto& m = world_.metrics();
  // Shared (not per-node) names: the report aggregates log traffic across
  // the deployment, matching how the other protocol counters are reported.
  m_appends_ = &m.counter("wal.appends");
  m_syncs_ = &m.counter("wal.syncs");
  m_replayed_ = &m.counter("wal.replay.records");
  m_torn_ = &m.counter("wal.replay.torn_dropped");
  m_commit_ms_ = &m.histogram("wal.commit_ms");
}

Wal::Lsn Wal::append(WalRecord rec) {
  const Lsn lsn = records_.size();
  records_.push_back(std::move(rec));
  append_local_.push_back(world_.local_now(self_));
  m_appends_->inc();
  switch (params_.policy) {
    case SyncPolicy::kSyncEveryWrite:
      start_sync_if_needed();
      break;
    case SyncPolicy::kGroupCommit:
    case SyncPolicy::kAsync:
      arm_flush_timer();
      break;
  }
  return lsn;
}

Wal::Lsn Wal::append_durable(WalRecord rec) {
  const Lsn lsn = records_.size();
  records_.push_back(std::move(rec));
  append_local_.push_back(world_.local_now(self_));
  m_appends_->inc();
  mark_synced(static_cast<std::size_t>(lsn) + 1);
  return lsn;
}

void Wal::when_durable(Lsn lsn, std::function<void()> fn) {
  if (lsn < synced_ || params_.policy == SyncPolicy::kAsync) {
    fn();  // already durable, or the policy acks without waiting
    return;
  }
  waiters_.emplace_back(lsn, std::move(fn));
}

void Wal::start_sync_if_needed() {
  if (sync_in_flight_ || synced_ == records_.size()) return;
  sync_in_flight_ = true;
  sync_target_ = records_.size();
  world_.set_timer(self_, params_.sync_latency, [this] {
    sync_in_flight_ = false;
    mark_synced(sync_target_);
    start_sync_if_needed();  // pipeline: records that arrived mid-sync
  });
}

void Wal::arm_flush_timer() {
  if (flush_armed_ || synced_ == records_.size()) return;
  flush_armed_ = true;
  world_.set_timer(self_, params_.flush_interval, [this] {
    flush_armed_ = false;
    mark_synced(records_.size());
    arm_flush_timer();  // re-arm if a waiter's continuation appended more
  });
}

void Wal::mark_synced(std::size_t upto) {
  if (upto > records_.size()) upto = records_.size();
  if (upto <= synced_) return;
  const sim::Time now_local = world_.local_now(self_);
  for (std::size_t i = synced_; i < upto; ++i) {
    m_commit_ms_->observe(sim::to_ms(now_local - append_local_[i]));
  }
  synced_ = upto;
  m_syncs_->inc();
  schedule_drain();
}

void Wal::schedule_drain() {
  if (drain_scheduled_) return;
  if (waiters_.empty() || waiters_.front().first >= synced_) return;
  drain_scheduled_ = true;
  world_.set_timer(self_, 0, [this] {
    drain_scheduled_ = false;
    drain_waiters();
  });
}

void Wal::drain_waiters() {
  while (!waiters_.empty() && waiters_.front().first < synced_) {
    auto fn = std::move(waiters_.front().second);
    waiters_.erase(waiters_.begin());
    fn();
  }
}

void Wal::on_crash() {
  std::size_t survive = synced_;
  torn_pending_ = false;
  if (params_.torn_tail_faults && records_.size() > synced_) {
    // Write-behind: the medium may have persisted part of the tail on its
    // own.  A uniform prefix of the unsynced records survives; if the tail
    // was cut short, the first lost record was mid-write -- torn -- and is
    // dropped (and counted) when the recovering server replays.
    const std::uint64_t unsynced = records_.size() - synced_;
    const std::uint64_t extra = world_.rng().below(unsynced + 1);
    survive = synced_ + static_cast<std::size_t>(extra);
    if (extra < unsynced) torn_pending_ = true;
  }
  records_.resize(survive);
  append_local_.resize(survive);
  synced_ = survive;
  sync_target_ = 0;
  sync_in_flight_ = false;
  flush_armed_ = false;
  drain_scheduled_ = false;
  waiters_.clear();  // ack continuations are volatile state
}

std::size_t Wal::replay(const std::function<void(const WalRecord&)>& fn) {
  for (const auto& r : records_) fn(r);
  m_replayed_->inc(records_.size());
  if (torn_pending_) {
    m_torn_->inc();
    torn_pending_ = false;
  }
  return records_.size();
}

}  // namespace dq::store
