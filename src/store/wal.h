// Simulated write-ahead log: the durable half of a node's storage.
//
// A Wal models the only thing a crash cannot take away: the prefix of
// appended records that has been synced to the durable medium.  Everything
// else on a node -- lease tables, pending callbacks, delayed-invalidation
// queues, in-flight timers -- is volatile and is wiped by World::crash; a
// recovering server replays its Wal to rebuild store contents, per-object
// logical clocks, and the epoch counter (iqs_server.cpp, "Crash recovery").
//
// Durability model:
//   * append() adds a record to the in-memory tail and returns its LSN.
//   * Records [0, synced) are durable; the sync frontier advances according
//     to the policy below.  when_durable(lsn, fn) runs fn once record `lsn`
//     is durable -- servers gate acks on it, which is the core correctness
//     rule: an acked write must survive any later crash (the regular-
//     semantics checker forgives lost *unacked* writes, never acked ones).
//   * On crash the unsynced tail is lost.  With torn_tail_faults enabled the
//     medium may additionally have written-behind part of the tail: a random
//     prefix of the unsynced records survives and at most one further record
//     is torn (partially written) and dropped on replay.
//
// Sync policies:
//   * kSyncEveryWrite -- every append starts a sync (completing after
//     sync_latency); appends arriving during an in-flight sync batch into
//     the next one (fsync pipelining).
//   * kGroupCommit -- a flush timer armed by the first dirty record syncs
//     the whole batch after flush_interval.
//   * kAsync -- when_durable fires immediately (acks do NOT wait for the
//     medium; deliberately unsafe under crashes) while a background flush
//     still advances the frontier.
//
// Determinism: the Wal draws randomness only from the world's seeded rng
// (and only at crash time, only with torn_tail_faults on), and all delays
// are virtual-time timers, so a given seed replays byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/version.h"
#include "msg/epoch.h"
#include "sim/world.h"

namespace dq::store {

enum class SyncPolicy : std::uint8_t {
  kSyncEveryWrite,
  kGroupCommit,
  kAsync,
};

struct WalParams {
  SyncPolicy policy = SyncPolicy::kGroupCommit;
  // Time for one sync to reach the medium (kSyncEveryWrite).
  sim::Duration sync_latency = sim::milliseconds(2);
  // Delay from first dirty record to the batch sync (kGroupCommit, and the
  // background flush under kAsync).
  sim::Duration flush_interval = sim::milliseconds(10);
  // Model write-behind on crash: a random prefix of the unsynced tail
  // survives and at most one partially-written (torn) record is dropped
  // during replay.
  bool torn_tail_faults = false;
};

[[nodiscard]] inline const char* to_string(SyncPolicy p) {
  switch (p) {
    case SyncPolicy::kSyncEveryWrite: return "sync";
    case SyncPolicy::kGroupCommit: return "group";
    case SyncPolicy::kAsync: return "async";
  }
  return "?";
}

enum class WalRecordKind : std::uint8_t {
  kPut,        // object write: object/value/clock
  kEpoch,      // epoch advance for (volume, grantee node): volume/node/epoch
  kNote,       // protocol bookkeeping (e.g. primary/backup dedupe): node/rpc/clock
  kClockMark,  // logical-clock block reservation: epoch = reserved counter
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kPut;
  ObjectId object;
  Value value;
  LogicalClock clock;
  VolumeId volume;
  NodeId node;
  msg::Epoch epoch = 0;
  RequestId rpc;

  [[nodiscard]] static WalRecord put(ObjectId o, Value v, LogicalClock lc) {
    WalRecord r;
    r.kind = WalRecordKind::kPut;
    r.object = o;
    r.value = std::move(v);
    r.clock = lc;
    return r;
  }
  [[nodiscard]] static WalRecord epoch_record(VolumeId vol, NodeId n,
                                              msg::Epoch e) {
    WalRecord r;
    r.kind = WalRecordKind::kEpoch;
    r.volume = vol;
    r.node = n;
    r.epoch = e;
    return r;
  }
  [[nodiscard]] static WalRecord note(NodeId n, RequestId rpc,
                                      LogicalClock lc) {
    WalRecord r;
    r.kind = WalRecordKind::kNote;
    r.node = n;
    r.rpc = rpc;
    r.clock = lc;
    return r;
  }
  // Reserve logical-clock counters below `reserved`: a recovering node
  // resumes past every counter it may ever have exposed, so a lost
  // in-memory clock advance can never cause counter regression (and with
  // it, an orphaned pre-crash value shadowing later writes).
  [[nodiscard]] static WalRecord clock_mark(std::uint64_t reserved) {
    WalRecord r;
    r.kind = WalRecordKind::kClockMark;
    r.epoch = reserved;
    return r;
  }
};

class Wal {
 public:
  using Lsn = std::uint64_t;

  Wal(sim::World& world, NodeId self, WalParams params);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Append a record; durability follows the sync policy.
  Lsn append(WalRecord rec);

  // Append a control record that is durable immediately (a synchronous
  // prefix sync: everything up to and including this record becomes
  // durable).  Used for epoch advances, which must be durable *before* the
  // new epoch is exposed in any grant -- otherwise a crash could lose the
  // bump and a recovering node could re-issue a pre-crash epoch.  Waiters
  // unblocked by the prefix sync fire from a zero-delay event, not from
  // inside the caller's stack.
  Lsn append_durable(WalRecord rec);

  // Run `fn` once record `lsn` is durable.  Fires inline if it already is
  // (or under kAsync, which acks without waiting for the medium); otherwise
  // fn runs when the sync frontier passes the record.  Waiters are volatile:
  // a crash drops them.
  void when_durable(Lsn lsn, std::function<void()> fn);

  // The durable medium's view of the crash: the unsynced tail is lost
  // (modulo write-behind survivors under torn_tail_faults) and all waiters
  // and in-flight sync state are dropped.  Call from Actor::on_crash; the
  // world has already poisoned this node's timers.
  void on_crash();

  // Feed every surviving record, in append order, to `fn`; returns the
  // number replayed.  A pending torn record is counted and dropped here.
  std::size_t replay(const std::function<void(const WalRecord&)>& fn);

  [[nodiscard]] std::size_t durable_records() const { return synced_; }
  [[nodiscard]] std::size_t pending_records() const {
    return records_.size() - synced_;
  }
  [[nodiscard]] const WalParams& params() const { return params_; }

 private:
  void start_sync_if_needed();
  void arm_flush_timer();
  // Advance the durable frontier to `upto` records and schedule the waiter
  // drain (always deferred to a fresh event so continuations never run
  // inside append/sync stacks).
  void mark_synced(std::size_t upto);
  void schedule_drain();
  void drain_waiters();

  sim::World& world_;
  NodeId self_;
  WalParams params_;

  std::vector<WalRecord> records_;
  std::vector<sim::Time> append_local_;  // per-record local append time
  std::size_t synced_ = 0;               // records [0, synced_) are durable
  std::size_t sync_target_ = 0;
  bool sync_in_flight_ = false;
  bool flush_armed_ = false;
  bool drain_scheduled_ = false;
  bool torn_pending_ = false;  // a torn tail record awaits its replay drop

  // Ordered by LSN (appends are monotone and waiters register at append
  // time), so the drain walks a prefix.
  std::vector<std::pair<Lsn, std::function<void()>>> waiters_;

  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_syncs_ = nullptr;
  obs::Counter* m_replayed_ = nullptr;
  obs::Counter* m_torn_ = nullptr;
  obs::Histogram* m_commit_ms_ = nullptr;
};

}  // namespace dq::store
