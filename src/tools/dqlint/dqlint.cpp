// dqlint CLI.
//
//   dqlint [--root=DIR] [--json=PATH] [--list-rules] [--list-suppressions]
//          [FILE...]
//
// Default mode walks `<root>/src` and `<root>/bench` (root defaults to ".")
// over *.h/*.cpp in sorted path order -- output is deterministic, like
// everything else here -- applying each rule's directory scope, then runs
// the whole-program flow-*/cap-*/part-* passes over the full file set.
// Explicit FILE arguments lint just those files with every rule active
// (scope-free; used by fixture tooling) -- program rules still see the
// whole given set, so a wire.h + wire.cpp pair can be checked in isolation.
// `src/tools/` is excluded from the walk: the linter's own sources
// necessarily spell out every forbidden identifier and the directive syntax.
//
// `--list-suppressions` prints every active dqlint:allow with its rule id,
// location, and justification (the same table lands in the dq.lint.v1
// JSON as "suppressions" + "suppression_summary").
//
// Exit status: 0 clean, 1 diagnostics found, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/dqlint/lint.h"

namespace {

namespace fs = std::filesystem;

int usage() {
  std::cerr << "usage: dqlint [--root=DIR] [--json=PATH] [--list-rules]"
               " [--list-suppressions] [FILE...]\n";
  return 2;
}

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

// Collect lintable files under `dir` (skipping any `tools` subdirectory),
// appending (relative-path, absolute-path) pairs.
void collect(const fs::path& dir, const std::string& root,
             std::vector<std::pair<std::string, fs::path>>* out) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory() &&
        it->path().filename() == "tools") {  // linter does not lint itself
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) {
      out->emplace_back(fs::relative(it->path(), root).generic_string(),
                        it->path());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  bool list_rules = false;
  bool list_suppressions = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dqlint: unknown option '" << arg << "'\n";
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  if (list_rules) {
    for (const dq::lint::RuleInfo& r : dq::lint::rules()) {
      std::cout << r.id << "\n  " << r.description << "\n  scope: ";
      if (r.prefixes.empty()) {
        std::cout << "all scanned files";
      } else {
        for (std::size_t i = 0; i < r.prefixes.size(); ++i) {
          std::cout << (i != 0 ? ", " : "") << r.prefixes[i];
        }
      }
      std::cout << "\n";
    }
    return 0;
  }

  std::vector<dq::lint::SourceFile> sources;
  std::string scanned_root;
  bool apply_scopes = true;

  if (!files.empty()) {
    // Explicit-file mode: every rule active, paths reported as given.
    scanned_root = "<files>";
    apply_scopes = false;
    for (const std::string& f : files) {
      std::string content;
      if (!read_file(f, &content)) {
        std::cerr << "dqlint: cannot read " << f << "\n";
        return 2;
      }
      sources.push_back({f, std::move(content)});
    }
  } else {
    scanned_root = root;
    const fs::path src = fs::path(root) / "src";
    std::error_code ec;
    if (!fs::is_directory(src, ec)) {
      std::cerr << "dqlint: no src/ directory under " << root << "\n";
      return 2;
    }
    std::vector<std::pair<std::string, fs::path>> rel;
    collect(src, root, &rel);
    collect(fs::path(root) / "bench", root, &rel);
    std::sort(rel.begin(), rel.end());
    for (const auto& [rpath, p] : rel) {
      std::string content;
      if (!read_file(p, &content)) {
        std::cerr << "dqlint: cannot read " << p << "\n";
        return 2;
      }
      sources.push_back({rpath, std::move(content)});
    }
  }

  const dq::lint::RunReport report =
      dq::lint::lint_program(sources, apply_scopes);

  if (list_suppressions) {
    for (const dq::lint::Suppression& s : report.suppressions) {
      std::cout << s.file << ":" << s.line << ": " << s.rule << ": "
                << s.justification << "\n";
    }
    std::cout << "dqlint: " << report.suppressions.size()
              << " active suppressions\n";
  }

  for (const dq::lint::Diagnostic& d : report.diagnostics) {
    std::cout << d.file << ":" << d.line << ": " << d.rule << ": " << d.message
              << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "dqlint: cannot write " << json_path << "\n";
      return 2;
    }
    out << dq::lint::to_json(report, scanned_root) << "\n";
  }

  if (!list_suppressions) {
    std::cout << "dqlint: " << report.files_scanned << " files, "
              << report.diagnostics.size() << " diagnostics, "
              << report.suppressions.size() << " suppressions\n";
  }
  return report.clean() ? 0 : 1;
}
