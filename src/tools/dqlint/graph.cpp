#include "tools/dqlint/graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>

namespace dq::lint {

namespace {

bool path_ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

const ParsedFile* find_by_suffix(const std::vector<ParsedFile>& files,
                                 std::string_view suffix) {
  for (const ParsedFile& f : files) {
    if (path_ends_with(f.path, suffix)) return &f;
  }
  return nullptr;
}

bool is_wire_file(const std::string& path) {
  return path_ends_with(path, "msg/wire.h") ||
         path_ends_with(path, "msg/wire.cpp");
}

// ---------------------------------------------------------------------------
// flow-*: message-flow conformance
// ---------------------------------------------------------------------------

// Alternatives of `using Payload = std::variant<...>;`, in declaration
// order.  Qualified names keep only the last component.
std::vector<std::string> payload_alternatives(const ParsedFile& hdr) {
  std::vector<std::string> out;
  const auto& t = hdr.lexed.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].kind == Tok::kIdent && t[i].text == "Payload")) continue;
    if (!(i > 0 && t[i - 1].kind == Tok::kIdent &&
          t[i - 1].text == "using")) {
      continue;
    }
    // ... = std::variant< ... >
    std::size_t j = i + 1;
    while (j < t.size() && t[j].text != "<") {
      if (t[j].text == ";") break;
      ++j;
    }
    if (j >= t.size() || t[j].text != "<") continue;
    int depth = 1;
    std::string cur;
    for (++j; j < t.size() && depth > 0; ++j) {
      const Token& tok = t[j];
      if (tok.kind == Tok::kPunct) {
        if (tok.text == "<") ++depth;
        if (tok.text == ">") --depth;
        if (tok.text == ">>") depth -= 2;
        if (depth <= 0) break;
        if (tok.text == "," && depth == 1 && !cur.empty()) {
          out.push_back(cur);
          cur.clear();
        }
      } else if (tok.kind == Tok::kIdent && depth == 1) {
        cur = tok.text;  // qualified names: last component wins
      }
    }
    if (!cur.empty()) out.push_back(cur);
    if (!out.empty()) return out;
  }
  return out;
}

// Token index of the decl's own name just before its body (for excluding
// the declaration site from reference counts).
std::size_t decl_name_index(const ParsedFile& f, const Decl& d) {
  if (d.body_begin < 0) return 0;
  const auto& t = f.lexed.tokens;
  const auto begin = static_cast<std::size_t>(d.body_begin);
  const std::size_t floor = begin > 16 ? begin - 16 : 0;
  for (std::size_t i = begin; i-- > floor;) {
    if (t[i].kind == Tok::kIdent && t[i].text == d.name) return i;
  }
  return begin;
}

void flow_rules(const std::vector<ParsedFile>& files,
                std::vector<Diagnostic>* out) {
  const ParsedFile* hdr = find_by_suffix(files, "msg/wire.h");
  if (hdr == nullptr) return;  // no wire layer in this program
  const ParsedFile* impl = find_by_suffix(files, "msg/wire.cpp");

  const std::vector<std::string> alts = payload_alternatives(*hdr);
  const std::set<std::string> alt_set(alts.begin(), alts.end());

  // Payload struct decls at namespace scope in wire.h, name -> decl line.
  std::map<std::string, const Decl*> structs;
  for (const Decl& d : hdr->decls) {
    if (d.kind == DeclKind::kClass && !d.is_forward && !d.is_member &&
        !d.name.empty()) {
      structs.emplace(d.name, &d);
    }
  }
  auto anchor_line = [&](const std::string& name) {
    const auto it = structs.find(name);
    return it != structs.end() ? it->second->line : 1;
  };

  // --- flow-unregistered: a wire.h struct that is neither a Payload
  // alternative nor referenced anywhere else in the program is dead cargo.
  for (const auto& [name, d] : structs) {
    if (alt_set.count(name) != 0) continue;
    const std::size_t own_begin = decl_name_index(*hdr, *d);
    const std::size_t own_end = d->body_end >= 0
                                    ? static_cast<std::size_t>(d->body_end)
                                    : own_begin;
    std::size_t refs = 0;
    for (const ParsedFile& f : files) {
      const auto& t = f.lexed.tokens;
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Tok::kIdent || t[i].text != name) continue;
        if (&f == hdr && i >= own_begin && i <= own_end) continue;
        ++refs;
      }
    }
    if (refs == 0) {
      out->push_back({hdr->path, d->line, kRuleFlowUnregistered,
                      "struct '" + name +
                          "' in wire.h is not a Payload alternative and is "
                          "referenced nowhere"});
    }
  }

  // --- flow-wire-stub: every alternative needs both wire.cpp visitors
  // (payload_name's NameOf and approximate_size's SizeOf), i.e. >= 2
  // `operator()(const T&)` overloads.
  if (impl != nullptr) {
    std::map<std::string, int> overloads;
    const auto& t = impl->lexed.tokens;
    for (std::size_t i = 0; i + 4 < t.size(); ++i) {
      if (!(t[i].kind == Tok::kIdent && t[i].text == "operator")) continue;
      if (t[i + 1].text != "(" || t[i + 2].text != ")" ||
          t[i + 3].text != "(") {
        continue;
      }
      std::size_t j = i + 4;
      if (j < t.size() && t[j].kind == Tok::kIdent && t[j].text == "const") {
        ++j;
      }
      // Optional msg:: qualifier, then the parameter type.
      if (j + 2 < t.size() && t[j].kind == Tok::kIdent &&
          t[j + 1].text == "::") {
        j += 2;
      }
      if (j < t.size() && t[j].kind == Tok::kIdent) {
        ++overloads[t[j].text];
      }
    }
    for (const std::string& name : alts) {
      const int n = overloads.count(name) != 0 ? overloads.at(name) : 0;
      if (n < 2) {
        out->push_back(
            {hdr->path, anchor_line(name), kRuleFlowWireStub,
             "payload '" + name + "' has " + std::to_string(n) +
                 " operator()(const " + name +
                 "&) overload(s) in wire.cpp; the name and size visitors "
                 "need one each"});
      }
    }
  }

  // --- flow-dead-message / flow-unhandled-message over the rest of the
  // program.
  std::set<std::string> referenced;  // any use outside the wire layer
  std::set<std::string> handled;     // a dispatch site exists
  for (const ParsedFile& f : files) {
    if (is_wire_file(f.path)) continue;
    const auto& t = f.lexed.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Token& tok = t[i];
      if (tok.kind != Tok::kIdent) continue;
      if (alt_set.count(tok.text) != 0) referenced.insert(tok.text);

      // Dispatch shapes: get_if<T> / holds_alternative<T> / get<T> with an
      // optionally msg::-qualified argument, and visitor overloads
      // `operator()(const [msg::]T`.
      if ((tok.text == "get_if" || tok.text == "holds_alternative" ||
           tok.text == "get") &&
          i + 1 < t.size() && t[i + 1].text == "<") {
        int depth = 1;
        std::string last;
        for (std::size_t j = i + 2; j < t.size() && depth > 0; ++j) {
          if (t[j].kind == Tok::kPunct) {
            if (t[j].text == "<") ++depth;
            if (t[j].text == ">") --depth;
            if (t[j].text == ">>") depth -= 2;
            if (t[j].text == ";" || t[j].text == "{") break;
          } else if (t[j].kind == Tok::kIdent) {
            last = t[j].text;
          }
        }
        if (!last.empty()) handled.insert(last);
      }
      if (tok.text == "operator" && i + 4 < t.size() &&
          t[i + 1].text == "(" && t[i + 2].text == ")" &&
          t[i + 3].text == "(") {
        std::size_t j = i + 4;
        if (t[j].kind == Tok::kIdent && t[j].text == "const") ++j;
        if (j + 2 < t.size() && t[j].kind == Tok::kIdent &&
            t[j + 1].text == "::") {
          j += 2;
        }
        if (j < t.size() && t[j].kind == Tok::kIdent) {
          handled.insert(t[j].text);
        }
      }
    }
  }
  for (const std::string& name : alts) {
    if (referenced.count(name) == 0) {
      out->push_back({hdr->path, anchor_line(name), kRuleFlowDeadMessage,
                      "payload '" + name +
                          "' is never referenced outside the wire layer "
                          "(no send site)"});
    } else if (handled.count(name) == 0) {
      out->push_back({hdr->path, anchor_line(name), kRuleFlowUnhandledMessage,
                      "payload '" + name +
                          "' has no dispatch site (get_if/"
                          "holds_alternative/visitor overload)"});
    }
  }
}

// ---------------------------------------------------------------------------
// cap-*: capability-claim conformance
// ---------------------------------------------------------------------------

// Parse `{true, false, ConsistencyClass::kX}` starting at the '{' at index
// `open`: first bool is supports_wal, second supports_crash_recovery.
void parse_caps_group(const std::vector<Token>& t, std::size_t open,
                      RegistryDescriptor* d) {
  int depth = 0;
  int bools = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind == Tok::kPunct) {
      if (t[i].text == "{") ++depth;
      if (t[i].text == "}" && --depth == 0) return;
      continue;
    }
    if (t[i].kind != Tok::kIdent || depth == 0) continue;
    const std::string& w = t[i].text;
    if (w == "true" || w == "false") {
      if (bools == 0) d->supports_wal = w == "true";
      if (bools == 1) d->supports_crash_recovery = w == "true";
      ++bools;
    } else if (w == "kAtomic" || w == "kRegular" || w == "kEventual") {
      d->consistency = w;
    }
  }
}

std::size_t matching_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tok::kPunct) continue;
    if (t[i].text == "(") ++depth;
    if (t[i].text == ")" && --depth == 0) return i;
  }
  return t.size();
}

}  // namespace

std::vector<RegistryDescriptor> extract_registrations(
    const ParsedFile& wiring) {
  std::vector<RegistryDescriptor> out;
  const auto& t = wiring.lexed.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].kind == Tok::kIdent && t[i].text == "add")) continue;
    if (t[i + 1].text != "(" || t[i + 2].kind != Tok::kString) continue;
    RegistryDescriptor d;
    d.name = t[i + 2].literal;
    d.line = t[i].line;
    const std::size_t end = matching_paren(t, i + 1);

    // Display string, then the caps argument right after it.
    std::size_t disp = i + 3;
    while (disp < end && t[disp].kind != Tok::kString) ++disp;
    std::size_t k = disp + 1;
    if (k < end && t[k].text == ",") ++k;
    if (k < end && t[k].kind == Tok::kIdent && k + 1 < end &&
        t[k + 1].text == ",") {
      // Named Capability constant: resolve its brace initializer anywhere in
      // this TU (`constexpr Capability kFooCaps{...};`).
      const std::string& var = t[k].text;
      for (std::size_t j = 0; j + 1 < t.size(); ++j) {
        if (t[j].kind == Tok::kIdent && t[j].text == var &&
            t[j + 1].text == "{") {
          parse_caps_group(t, j + 1, &d);
          break;
        }
      }
    } else {
      std::size_t open = k;
      while (open < end && t[open].text != "{") ++open;
      if (open < end) parse_caps_group(t, open, &d);
    }

    // Build functions referenced anywhere in the registration call.
    for (std::size_t j = i + 2; j < end; ++j) {
      if (t[j].kind == Tok::kIdent &&
          t[j].text.compare(0, 6, "build_") == 0 &&
          std::find(d.build_fns.begin(), d.build_fns.end(), t[j].text) ==
              d.build_fns.end()) {
        d.build_fns.push_back(t[j].text);
      }
    }
    out.push_back(std::move(d));
    i = end;
  }
  return out;
}

namespace {

// Idents that constitute "references the store::Wal API".
bool is_wal_ident(const std::string& s) {
  return s == "Wal" || s == "WalParams" || s == "WalRecord" ||
         s == "WalRecordKind";
}

// LWW / site-timestamp helper markers; anything atomic must not use them.
bool is_lww_ident(const std::string& s) {
  if (s == "lamport_" || s == "site_lamport") return true;
  return s.find("lww") != std::string::npos ||
         s.find("Lww") != std::string::npos;
}

// `protocols::X` / `core::X` qualified class references in [begin, end).
void collect_class_refs(const std::vector<Token>& t, std::size_t begin,
                        std::size_t end, std::set<std::string>* names) {
  end = std::min(end, t.size());
  for (std::size_t i = begin; i + 2 < end; ++i) {
    if (t[i].kind == Tok::kIdent &&
        (t[i].text == "protocols" || t[i].text == "core") &&
        t[i + 1].text == "::" && t[i + 2].kind == Tok::kIdent) {
      names->insert(t[i + 2].text);
    }
  }
}

void cap_rules(const std::vector<ParsedFile>& files,
               std::vector<Diagnostic>* out) {
  const ParsedFile* wiring = find_by_suffix(files, "workload/wiring.cpp");
  if (wiring == nullptr) return;
  const std::vector<RegistryDescriptor> regs = extract_registrations(*wiring);
  if (regs.empty()) return;

  // Class name -> files that define it (class body or out-of-line member).
  std::map<std::string, std::set<const ParsedFile*>> class_files;
  for (const ParsedFile& f : files) {
    for (const Decl& d : f.decls) {
      if (d.kind == DeclKind::kClass && !d.is_forward && !d.name.empty()) {
        class_files[d.name].insert(&f);
      }
      if (d.kind == DeclKind::kFunction && !d.owner.empty()) {
        class_files[d.owner].insert(&f);
      }
    }
  }

  // Build-function decls in the wiring TU, name -> body token range.
  std::map<std::string, std::pair<std::size_t, std::size_t>> build_bodies;
  for (const Decl& d : wiring->decls) {
    if (d.kind == DeclKind::kFunction && d.body_begin >= 0 &&
        d.body_end >= 0) {
      build_bodies[d.name] = {static_cast<std::size_t>(d.body_begin),
                              static_cast<std::size_t>(d.body_end)};
    }
  }

  for (const RegistryDescriptor& reg : regs) {
    // The implementation closure: classes the build function wires up,
    // expanded transitively through protocols::/core:: references in their
    // defining files.
    std::set<std::string> classes;
    bool crash_hook = false;
    bool have_body = false;
    for (const std::string& fn : reg.build_fns) {
      const auto it = build_bodies.find(fn);
      if (it == build_bodies.end()) continue;
      have_body = true;
      const auto [b, e] = it->second;
      collect_class_refs(wiring->lexed.tokens, b, e, &classes);
      for (std::size_t i = b; i <= e && i < wiring->lexed.tokens.size();
           ++i) {
        const Token& tok = wiring->lexed.tokens[i];
        if (tok.kind == Tok::kIdent && tok.text == "add_crash_hook") {
          crash_hook = true;
        }
      }
    }
    if (!have_body) continue;  // factory lives elsewhere; nothing to check

    std::set<const ParsedFile*> closure;
    std::vector<std::string> work(classes.begin(), classes.end());
    while (!work.empty()) {
      const std::string cls = work.back();
      work.pop_back();
      const auto it = class_files.find(cls);
      if (it == class_files.end()) continue;
      for (const ParsedFile* f : it->second) {
        if (!closure.insert(f).second) continue;
        std::set<std::string> more;
        collect_class_refs(f->lexed.tokens, 0, f->lexed.tokens.size(),
                           &more);
        for (const std::string& m : more) {
          if (classes.insert(m).second) work.push_back(m);
        }
      }
    }

    bool wal_ref = false;
    bool lww_ref = false;
    std::string lww_what;
    for (const ParsedFile* f : closure) {
      for (const Token& tok : f->lexed.tokens) {
        if (tok.kind != Tok::kIdent) continue;
        if (is_wal_ident(tok.text)) wal_ref = true;
        if (!lww_ref && is_lww_ident(tok.text)) {
          lww_ref = true;
          lww_what = tok.text;
        }
      }
      for (const IncludeEdge& inc : f->includes) {
        if (path_ends_with(inc.target, "store/wal.h")) wal_ref = true;
      }
    }

    if (reg.supports_wal && !wal_ref) {
      out->push_back(
          {wiring->path, reg.line, kRuleCapWalClaim,
           "protocol '" + reg.name +
               "' claims supports_wal=true but its implementation closure "
               "never references the store::Wal API"});
    } else if (!reg.supports_wal && wal_ref) {
      out->push_back(
          {wiring->path, reg.line, kRuleCapWalClaim,
           "protocol '" + reg.name +
               "' claims supports_wal=false but its implementation closure "
               "references the store::Wal API"});
    }
    if (reg.supports_crash_recovery && !crash_hook) {
      out->push_back(
          {wiring->path, reg.line, kRuleCapRecoveryClaim,
           "protocol '" + reg.name +
               "' claims supports_crash_recovery=true but its build "
               "function wires no add_crash_hook"});
    } else if (!reg.supports_crash_recovery && crash_hook) {
      out->push_back(
          {wiring->path, reg.line, kRuleCapRecoveryClaim,
           "protocol '" + reg.name +
               "' claims supports_crash_recovery=false but its build "
               "function wires add_crash_hook"});
    }
    if (reg.consistency == "kAtomic" && lww_ref) {
      out->push_back(
          {wiring->path, reg.line, kRuleCapConsistencyLww,
           "protocol '" + reg.name +
               "' claims an atomic consistency class but its "
               "implementation uses LWW/site-timestamp helper '" +
               lww_what + "'"});
    }
  }
}

// ---------------------------------------------------------------------------
// part-*: partition-ownership
// ---------------------------------------------------------------------------

void part_rules(const std::vector<ParsedFile>& files,
                std::vector<Diagnostic>* out) {
  for (const ParsedFile& f : files) {
    for (const Decl& d : f.decls) {
      if (d.kind != DeclKind::kVariable || d.name.empty() || d.is_const) {
        continue;
      }
      if (d.is_function_local) {
        if (d.is_static) {
          out->push_back(
              {f.path, d.line, kRulePartLocalStatic,
               "function-local mutable static '" + d.name +
                   "' is shared across parallel_world partitions"});
        }
        continue;
      }
      const bool namespace_scope = !d.is_member;
      const bool class_static = d.is_member && d.is_static;
      if (namespace_scope || class_static) {
        std::string what = d.is_thread_local
                               ? "thread_local"
                               : (class_static ? "class-static"
                                               : "namespace-scope");
        out->push_back({f.path, d.line, kRulePartMutableGlobal,
                        "mutable " + what + " state '" + d.name +
                            "' is shared across parallel_world partitions"});
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> run_program_rules(
    const std::vector<ParsedFile>& files) {
  std::vector<Diagnostic> out;
  flow_rules(files, &out);
  cap_rules(files, &out);
  part_rules(files, &out);
  return out;
}

}  // namespace dq::lint
