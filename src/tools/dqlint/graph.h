// dqlint layer 2: whole-program analysis over the parsed file set.
//
// run_program_rules() builds a cross-TU symbol graph -- payload structs and
// the Payload variant from src/msg/wire.h, visitor overloads from wire.cpp,
// protocol registry descriptors from src/workload/wiring.cpp with the
// implementation closure reachable from each build function, and every
// variable declaration's mutability -- and checks three rule families:
//
//   flow-*  message-flow conformance: every Payload alternative has wire.cpp
//           name/size visitor overloads, at least one use site, and at least
//           one handler dispatch; structs in wire.h that are neither variant
//           alternatives nor referenced anywhere are dead.
//   cap-*   capability-claim conformance: each registry descriptor's
//           supports_wal / supports_crash_recovery / consistency_class must
//           match what the protocol's implementation closure actually does.
//   part-*  partition-ownership: mutable namespace-scope / class-static /
//           function-local-static state in det-scoped code is shared across
//           parallel_world partitions and must be flagged.
//
// Diagnostics come back raw (no rule descriptions appended, no scope or
// suppression filtering) -- lint_program() in lint.cpp anchors them to their
// file, applies RuleInfo scopes, and runs them through the normal
// dqlint:allow machinery.
#pragma once

#include <string>
#include <vector>

#include "tools/dqlint/lint.h"
#include "tools/dqlint/parse.h"

namespace dq::lint {

// Rule ids, shared with the RuleInfo table in lint.cpp.
inline constexpr char kRuleFlowUnregistered[] = "flow-unregistered";
inline constexpr char kRuleFlowWireStub[] = "flow-wire-stub";
inline constexpr char kRuleFlowDeadMessage[] = "flow-dead-message";
inline constexpr char kRuleFlowUnhandledMessage[] = "flow-unhandled-message";
inline constexpr char kRuleCapWalClaim[] = "cap-wal-claim";
inline constexpr char kRuleCapRecoveryClaim[] = "cap-recovery-claim";
inline constexpr char kRuleCapConsistencyLww[] = "cap-consistency-lww";
inline constexpr char kRulePartMutableGlobal[] = "part-mutable-global";
inline constexpr char kRulePartLocalStatic[] = "part-local-static";

// One protocol registration extracted from src/workload/wiring.cpp:
// `add("name", "display", {wal, crash, ConsistencyClass::kX}, ...build_y...)`.
// Exposed for tests.
struct RegistryDescriptor {
  std::string name;
  int line = 0;  // line of the add() call
  bool supports_wal = false;
  bool supports_crash_recovery = false;
  std::string consistency;  // "kAtomic" / "kRegular" / "kEventual" / ""
  std::vector<std::string> build_fns;
};

[[nodiscard]] std::vector<RegistryDescriptor> extract_registrations(
    const ParsedFile& wiring);

// Raw (pre-suppression, pre-scope) program-level diagnostics over the whole
// parsed file set.  Messages carry no rule description; the caller appends
// it.
[[nodiscard]] std::vector<Diagnostic> run_program_rules(
    const std::vector<ParsedFile>& files);

}  // namespace dq::lint
