#include "tools/dqlint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string_view>
#include <tuple>
#include <utility>

#include "tools/dqlint/graph.h"
#include "tools/dqlint/parse.h"

namespace dq::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

// Directories whose code feeds the deterministic simulation schedule.  The
// open-loop workload engine is listed by file prefix: its samplers run
// inside partition workers, so it carries the det-*/part-* guardrails even
// though the rest of src/workload/ (trial setup, reporting) does not.
const std::vector<std::string> kDetScope = {
    "src/sim/", "src/core/", "src/protocols/", "src/quorum/",
    "src/rpc/", "src/store/", "src/msg/", "src/workload/open_loop"};

// det-* additionally covers bench/: benches emit checked-in dq.bench.v1
// baselines, so they carry the same determinism guardrails (wall-clock use
// for timing is the one sanctioned exception, justified per site).
const std::vector<std::string> kDetBenchScope = {
    "src/sim/", "src/core/", "src/protocols/", "src/quorum/",
    "src/rpc/",  "src/store/", "src/msg/", "src/workload/open_loop",
    "bench/"};

const char* kRuleDetUnordered = "det-unordered-container";
const char* kRuleDetRand = "det-rand";
const char* kRuleDetWallClock = "det-wall-clock";
const char* kRuleDetRandomDevice = "det-random-device";
const char* kRuleDetRngEngine = "det-rng-engine";
const char* kRuleDetPtrKey = "det-ptr-key";
const char* kRuleDetThread = "det-thread";
const char* kRuleProtoDirectSend = "proto-direct-send";
const char* kRuleProtoEpochCompare = "proto-epoch-compare";
const char* kRuleProtoObsRead = "proto-obs-read";
const char* kRuleDurableState = "durable-state";
const char* kRuleHygAssert = "hyg-assert";
const char* kRuleHygNakedNew = "hyg-naked-new";
const char* kRuleBadSuppression = "lint-bad-suppression";
const char* kRuleUnusedSuppression = "lint-unused-suppression";

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kRuleDetUnordered,
       "std::unordered_* containers: iteration order is implementation-"
       "defined, so any walk puts hash order on the wire or in the schedule;"
       " use std::map/std::set",
       kDetBenchScope,
       {},
       {},
       {}},
      {kRuleDetRand,
       "libc rand/random family: unseeded global state outside the "
       "experiment seed; draw from dq::Rng",
       kDetBenchScope,
       {},
       {},
       {}},
      {kRuleDetWallClock,
       "wall-clock read (time/clock/gettimeofday/system_clock/...): real "
       "time breaks simulation determinism; use sim::World::now() or "
       "local_now()",
       kDetBenchScope,
       {},
       {},
       {}},
      {kRuleDetRandomDevice,
       "std::random_device is non-deterministic by design; seed dq::Rng "
       "from the experiment seed",
       kDetBenchScope,
       {},
       {},
       {}},
      {kRuleDetRngEngine,
       "std <random> engine or unseeded Rng(): default seeding hides the "
       "stream from the experiment seed; all randomness flows through a "
       "seeded dq::Rng (split() for child streams)",
       kDetBenchScope,
       {},
       {},
       {}},
      {kRuleDetPtrKey,
       "pointer-keyed ordered container: iteration order follows allocation "
       "addresses, which differ run to run; key by a strong id instead",
       kDetBenchScope,
       {},
       {},
       {}},
      {kRuleDetThread,
       "std threading primitive (thread/async/mutex/atomic/...): a World is "
       "single-threaded by contract -- parallelism lives in src/run/ (whole-"
       "World fan-out, exempt) and src/sim/parallel_* (the conservative "
       "intra-trial engine, each use justified with a suppression); threads "
       "anywhere else race the deterministic schedule",
       {},
       {"src/run/"},
       {},
       {"src/sim/parallel_"}},
      {kRuleProtoDirectSend,
       "direct world_.send/send_tagged in a dual-quorum server: replies "
       "must route through world_.reply or the QRPC engine so retransmission "
       "and reply accounting stay correct",
       {"src/core/"},
       {},
       {},
       {}},
      {kRuleProtoEpochCompare,
       "raw comparison/max on an epoch field: use msg::epoch_matches/"
       "epoch_newer/epoch_max (msg/epoch.h) so both protocol sides agree on "
       "epoch semantics",
       {"src/core/", "src/protocols/"},
       {},
       {},
       {}},
      {kRuleProtoObsRead,
       "obs/ instrument read (m_*->value/max/data) in protocol code: "
       "metrics are write-only in decision paths, else observability "
       "perturbs the protocol",
       {"src/core/", "src/protocols/", "src/rpc/"},
       {},
       {},
       {}},
      {kRuleDurableState,
       "direct mutation of durable state (epoch increment or store_/objects_ "
       "apply/clear) in dual-quorum server code: epochs and store contents "
       "must go through the WAL (append_durable/replay) or crash recovery "
       "silently loses them; route through Wal or justify with a suppression",
       {"src/core/"},
       {},
       {"src/core/oqs_server.cpp"},
       {}},
      {kRuleHygAssert,
       "assert()/<cassert> vanishes under NDEBUG; protocol invariants use "
       "the always-on DQ_INVARIANT (common/assert.h)",
       {},
       {},
       {"src/common/assert.h"},
       {}},
      {kRuleHygNakedNew,
       "naked new/delete in protocol code; own memory with std::unique_ptr/"
       "std::make_shared",
       {"src/core/", "src/protocols/", "src/rpc/", "src/quorum/"},
       {},
       {},
       {}},
      {kRuleFlowUnregistered,
       "struct in wire.h that is neither a Payload alternative nor "
       "referenced anywhere: dead wire-format cargo; add it to the variant "
       "or delete it",
       {"src/msg/"},
       {},
       {},
       {}},
      {kRuleFlowWireStub,
       "Payload alternative without both wire.cpp visitor overloads "
       "(payload_name's NameOf and approximate_size's SizeOf): every "
       "message type must carry its name and size accounting",
       {"src/msg/"},
       {},
       {},
       {}},
      {kRuleFlowDeadMessage,
       "Payload alternative never referenced outside the wire layer: no "
       "protocol constructs or sends it; delete it or wire the sender",
       {"src/msg/"},
       {},
       {},
       {}},
      {kRuleFlowUnhandledMessage,
       "Payload alternative with no dispatch site (std::get_if/"
       "holds_alternative/std::get/visitor overload): receivers drop it on "
       "the floor; add a handler arm or justify why a typed dispatch is "
       "unnecessary",
       {"src/msg/"},
       {},
       {},
       {}},
      {kRuleCapWalClaim,
       "registry supports_wal claim contradicts the implementation: the "
       "protocol's closure must reference the store::Wal API exactly when "
       "the descriptor says so",
       {"src/workload/"},
       {},
       {},
       {}},
      {kRuleCapRecoveryClaim,
       "registry supports_crash_recovery claim contradicts the build "
       "function: add_crash_hook must be wired exactly when the descriptor "
       "says so",
       {"src/workload/"},
       {},
       {},
       {}},
      {kRuleCapConsistencyLww,
       "protocol claiming an atomic/linearizable consistency class must not "
       "use LWW/site-timestamp helpers (lamport_/lww): last-writer-wins "
       "clocks admit stale reads",
       {"src/workload/"},
       {},
       {},
       {}},
      {kRulePartMutableGlobal,
       "mutable namespace-scope, thread_local, or class-static state in "
       "det-scoped code: shared across parallel_world partitions, so any "
       "access races the conservative engine; own it per-partition or "
       "justify",
       kDetScope,
       {},
       {},
       {}},
      {kRulePartLocalStatic,
       "function-local mutable static in det-scoped code: hidden state "
       "shared across parallel_world partitions; hoist it into per-"
       "partition context or justify",
       kDetScope,
       {},
       {},
       {}},
      {kRuleBadSuppression,
       "malformed dqlint:allow directive (unknown rule id or missing "
       "': justification')",
       {},
       {},
       {},
       {}},
      {kRuleUnusedSuppression,
       "dqlint:allow directive that suppresses nothing; delete it",
       {},
       {},
       {},
       {}},
  };
  return kRules;
}

namespace {

bool known_rule(const std::string& id) {
  const auto& rs = rules();
  return std::any_of(rs.begin(), rs.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

bool rule_active(const RuleInfo& r, const std::string& path,
                 bool apply_scopes) {
  if (!apply_scopes) return true;
  for (const std::string& f : r.exempt_files) {
    if (path == f) return false;
  }
  for (const std::string& p : r.exempt_prefixes) {
    if (path.compare(0, p.size(), p) == 0) return false;
  }
  if (r.prefixes.empty()) return true;
  return std::any_of(r.prefixes.begin(), r.prefixes.end(),
                     [&](const std::string& p) {
                       return path.compare(0, p.size(), p) == 0;
                     });
}

const RuleInfo* find_rule(const char* id) {
  for (const RuleInfo& r : rules()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

struct Matcher {
  const std::vector<Token>& t;

  [[nodiscard]] const Token* at(std::size_t i) const {
    return i < t.size() ? &t[i] : nullptr;
  }
  [[nodiscard]] bool text_is(std::size_t i, std::string_view s) const {
    const Token* tok = at(i);
    return tok != nullptr && tok->text == s;
  }
  [[nodiscard]] bool ident_is(std::size_t i, std::string_view s) const {
    const Token* tok = at(i);
    return tok != nullptr && tok->kind == Tok::kIdent && tok->text == s;
  }

  // Member access (x.f / x->f) is never a libc call; a qualified name is
  // only suspect when the qualifier is std:: or the global ::.
  [[nodiscard]] bool non_libc_qualified(std::size_t i) const {
    if (i == 0) return false;
    const Token& p = t[i - 1];
    if (p.text == "." || p.text == "->") return true;
    if (p.text == "::" && i >= 2 && t[i - 2].kind == Tok::kIdent &&
        t[i - 2].text != "std") {
      return true;
    }
    return false;
  }
};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool epochish(const Token& tok) {
  return tok.kind == Tok::kIdent &&
         (tok.text == "epoch" || ends_with(tok.text, "_epoch"));
}

bool comparison(const Token* tok) {
  if (tok == nullptr || tok->kind != Tok::kPunct) return false;
  static const std::set<std::string_view> kCmp = {"==", "!=", "<",
                                                  ">",  "<=", ">="};
  return kCmp.count(tok->text) != 0;
}

// Raw (pre-suppression) violations for one file.
std::vector<Diagnostic> run_rules(const std::string& path,
                                  const std::vector<Token>& tokens,
                                  bool apply_scopes) {
  std::vector<Diagnostic> out;
  const Matcher m{tokens};
  auto active = [&](const char* id) {
    const RuleInfo* r = find_rule(id);
    return r != nullptr && rule_active(*r, path, apply_scopes);
  };
  auto flag = [&](const char* id, int line, const std::string& what) {
    const RuleInfo* r = find_rule(id);
    out.push_back({path, line, id, what + " [" + r->description + "]"});
  };

  static const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string_view> kRandCalls = {
      "rand",    "srand",   "rand_r",  "random", "srandom",
      "drand48", "lrand48", "mrand48", "erand48"};
  static const std::set<std::string_view> kClockCalls = {
      "time",  "clock",    "gettimeofday", "clock_gettime", "localtime",
      "gmtime", "mktime",  "difftime",     "timespec_get",  "ftime"};
  static const std::set<std::string_view> kClockTypes = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  static const std::set<std::string_view> kEngines = {
      "mt19937",      "mt19937_64",   "default_random_engine",
      "minstd_rand",  "minstd_rand0", "ranlux24",
      "ranlux48",     "knuth_b"};
  static const std::set<std::string_view> kOrdered = {"map", "set", "multimap",
                                                      "multiset"};
  static const std::set<std::string_view> kObsReads = {"value", "max", "data"};
  static const std::set<std::string_view> kThreadIdents = {
      "thread",         "jthread",        "async",
      "mutex",          "timed_mutex",    "recursive_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "condition_variable",              "condition_variable_any",
      "future",         "shared_future",  "promise",
      "packaged_task",  "atomic",         "atomic_flag",
      "atomic_ref",     "counting_semaphore", "binary_semaphore",
      "latch",          "barrier",        "lock_guard",
      "unique_lock",    "scoped_lock",    "shared_lock",
      "call_once",      "once_flag",      "stop_token"};
  static const std::set<std::string_view> kThreadHeaders = {
      "thread", "mutex",     "shared_mutex", "condition_variable",
      "future", "atomic",    "semaphore",    "latch",
      "barrier", "stop_token"};

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Tok::kIdent) continue;
    const bool calls = m.text_is(i + 1, "(");

    if (active(kRuleDetUnordered) && kUnordered.count(tok.text) != 0) {
      flag(kRuleDetUnordered, tok.line, "std::" + tok.text);
    }
    if (active(kRuleDetRand) && calls && kRandCalls.count(tok.text) != 0 &&
        !m.non_libc_qualified(i)) {
      flag(kRuleDetRand, tok.line, tok.text + "()");
    }
    if (active(kRuleDetWallClock)) {
      if (calls && kClockCalls.count(tok.text) != 0 &&
          !m.non_libc_qualified(i)) {
        flag(kRuleDetWallClock, tok.line, tok.text + "()");
      } else if (kClockTypes.count(tok.text) != 0) {
        flag(kRuleDetWallClock, tok.line, "std::chrono::" + tok.text);
      }
    }
    if (active(kRuleDetRandomDevice) && tok.text == "random_device") {
      flag(kRuleDetRandomDevice, tok.line, "std::random_device");
    }
    if (active(kRuleDetRngEngine)) {
      if (kEngines.count(tok.text) != 0) {
        flag(kRuleDetRngEngine, tok.line, "std::" + tok.text);
      } else if (tok.text == "Rng" && calls && m.text_is(i + 2, ")")) {
        flag(kRuleDetRngEngine, tok.line, "Rng() with the default seed");
      }
    }
    if (active(kRuleDetPtrKey) && kOrdered.count(tok.text) != 0 &&
        m.text_is(i + 1, "<")) {
      // Walk the first template argument; a trailing '*' means the key is a
      // pointer.  Bail out on anything that suggests `<` was a comparison.
      int depth = 1;
      const Token* last = nullptr;
      bool aborted = false;
      for (std::size_t j = i + 2, steps = 0; steps < 64; ++j, ++steps) {
        const Token* u = m.at(j);
        if (u == nullptr) {
          aborted = true;
          break;
        }
        if (u->text == "<") {
          ++depth;
        } else if (u->text == ">" || u->text == ">>") {
          depth -= u->text == ">>" ? 2 : 1;
          if (depth <= 0) break;
        } else if (u->text == "," && depth == 1) {
          break;
        } else if (u->text == ";" || u->text == "{" || u->text == ")") {
          aborted = true;
          break;
        }
        last = u;
      }
      if (!aborted && last != nullptr && last->text == "*") {
        flag(kRuleDetPtrKey, tok.line, "std::" + tok.text + "<T*, ...>");
      }
    }
    if (active(kRuleDetThread)) {
      // std::-qualified uses, plus the headers that supply them.  Bare
      // identifiers named `thread` etc. are legal.
      if (kThreadIdents.count(tok.text) != 0 && i >= 2 &&
          m.text_is(i - 1, "::") && m.ident_is(i - 2, "std")) {
        flag(kRuleDetThread, tok.line, "std::" + tok.text);
      } else if (kThreadHeaders.count(tok.text) != 0 && i >= 2 &&
                 m.text_is(i - 1, "<") && m.ident_is(i - 2, "include")) {
        flag(kRuleDetThread, tok.line, "#include <" + tok.text + ">");
      }
    }
    if (active(kRuleProtoDirectSend) && tok.text == "world_" &&
        (m.text_is(i + 1, ".") || m.text_is(i + 1, "->")) &&
        (m.ident_is(i + 2, "send") || m.ident_is(i + 2, "send_tagged")) &&
        m.text_is(i + 3, "(")) {
      flag(kRuleProtoDirectSend, tok.line,
           "world_." + tokens[i + 2].text + "()");
    }
    if (active(kRuleProtoEpochCompare)) {
      if (epochish(tok) &&
          (comparison(m.at(i + 1)) || (i > 0 && comparison(&tokens[i - 1])))) {
        flag(kRuleProtoEpochCompare, tok.line,
             "'" + tok.text + "' beside a comparison operator");
      } else if ((tok.text == "max" || tok.text == "min") &&
                 m.text_is(i + 1, "(")) {
        int depth = 0;
        for (std::size_t j = i + 1, steps = 0; steps < 48; ++j, ++steps) {
          const Token* u = m.at(j);
          if (u == nullptr) break;
          if (u->text == "(") ++depth;
          if (u->text == ")" && --depth == 0) break;
          if (epochish(*u)) {
            flag(kRuleProtoEpochCompare, u->line,
                 "std::" + tok.text + "() over '" + u->text + "'");
            break;
          }
        }
      }
    }
    if (active(kRuleProtoObsRead) && tok.text.compare(0, 2, "m_") == 0 &&
        (m.text_is(i + 1, "->") || m.text_is(i + 1, ".")) &&
        m.at(i + 2) != nullptr && kObsReads.count(tokens[i + 2].text) != 0 &&
        m.text_is(i + 3, "(")) {
      flag(kRuleProtoObsRead, tok.line,
           tok.text + tokens[i + 1].text + tokens[i + 2].text + "()");
    }
    if (active(kRuleDurableState)) {
      if (epochish(tok)) {
        // Compound assignment / post-increment directly on an epoch field.
        if (m.text_is(i + 1, "++") || m.text_is(i + 1, "--") ||
            m.text_is(i + 1, "+=") || m.text_is(i + 1, "-=")) {
          flag(kRuleDurableState, tok.line,
               "'" + tok.text + "' " + tokens[i + 1].text);
        } else {
          // Pre-increment: walk back through `obj.` / `obj->` qualifiers to
          // find a leading ++/-- (`++ls.epoch`, `--state->node_epoch`).
          std::size_t j = i;
          while (j >= 2 &&
                 (tokens[j - 1].text == "." || tokens[j - 1].text == "->") &&
                 tokens[j - 2].kind == Tok::kIdent) {
            j -= 2;
          }
          if (j > 0 &&
              (tokens[j - 1].text == "++" || tokens[j - 1].text == "--")) {
            flag(kRuleDurableState, tok.line,
                 tokens[j - 1].text + " '" + tok.text + "'");
          }
        }
      }
      if ((tok.text == "store_" || tok.text == "objects_") &&
          (m.text_is(i + 1, ".") || m.text_is(i + 1, "->")) &&
          (m.ident_is(i + 2, "apply") || m.ident_is(i + 2, "clear")) &&
          m.text_is(i + 3, "(")) {
        flag(kRuleDurableState, tok.line,
             tok.text + tokens[i + 1].text + tokens[i + 2].text + "()");
      }
    }
    if (active(kRuleHygAssert)) {
      if (tok.text == "assert" && calls && !m.non_libc_qualified(i)) {
        flag(kRuleHygAssert, tok.line, "assert()");
      } else if (tok.text == "cassert") {
        flag(kRuleHygAssert, tok.line, "#include <cassert>");
      }
    }
    if (active(kRuleHygNakedNew) &&
        (tok.text == "new" || tok.text == "delete")) {
      // `operator new/delete` declarations and `= delete;`d functions are
      // not allocations.
      const bool exempt =
          (i > 0 && tokens[i - 1].text == "operator") ||
          (tok.text == "delete" && i > 0 && tokens[i - 1].text == "=");
      if (!exempt) flag(kRuleHygNakedNew, tok.line, tok.text);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

struct Directive {
  int line = 0;  // comment line
  std::vector<std::string> rule_ids;
  std::string justification;
  bool used = false;
  bool scope_error_reported = false;  // one misplaced-directive diag is enough
};

std::string trim(std::string s) {
  const auto issp = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && issp(s.front())) s.erase(s.begin());
  while (!s.empty() && issp(s.back())) s.pop_back();
  return s;
}

// Parse every dqlint:allow(...) in the comment list.  Malformed directives
// become lint-bad-suppression diagnostics immediately.
std::vector<Directive> parse_directives(const std::string& path,
                                        const std::vector<Comment>& comments,
                                        std::vector<Diagnostic>* bad) {
  std::vector<Directive> out;
  static const std::string kKey = "dqlint:allow(";
  for (const Comment& c : comments) {
    std::size_t pos = 0;
    while ((pos = c.text.find(kKey, pos)) != std::string::npos) {
      const std::size_t open = pos + kKey.size();
      const std::size_t close = c.text.find(')', open);
      pos = open;
      if (close == std::string::npos) {
        bad->push_back({path, c.line, kRuleBadSuppression,
                        "unterminated dqlint:allow( directive"});
        continue;
      }
      Directive d;
      d.line = c.line;
      std::string ids = c.text.substr(open, close - open);
      bool ok = true;
      std::size_t start = 0;
      while (start <= ids.size()) {
        const std::size_t comma = ids.find(',', start);
        const std::string id = trim(
            ids.substr(start, comma == std::string::npos ? std::string::npos
                                                         : comma - start));
        if (!id.empty()) {
          if (!known_rule(id)) {
            bad->push_back({path, c.line, kRuleBadSuppression,
                            "unknown rule '" + id + "' in dqlint:allow"});
            ok = false;
          }
          d.rule_ids.push_back(id);
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      // Justification: everything after "): " up to end of line (multi-line
      // block comments: up to the first newline).
      std::string rest = c.text.substr(close + 1);
      if (const std::size_t nl = rest.find('\n'); nl != std::string::npos) {
        rest = rest.substr(0, nl);
      }
      rest = trim(rest);
      if (rest.empty() || rest[0] != ':' || trim(rest.substr(1)).empty()) {
        bad->push_back({path, c.line, kRuleBadSuppression,
                        "dqlint:allow needs a ': justification'"});
        ok = false;
      } else {
        d.justification = trim(rest.substr(1));
      }
      if (ok && d.rule_ids.empty()) {
        bad->push_back({path, c.line, kRuleBadSuppression,
                        "dqlint:allow() names no rule"});
        ok = false;
      }
      if (ok) out.push_back(std::move(d));
    }
  }
  return out;
}

// Match raw diagnostics against this file's dqlint:allow directives and
// produce the final per-file report (shared by lint_source and
// lint_program).
FileReport finish_file(const std::string& path, const Lexed& lexed,
                       std::vector<Diagnostic> raw, bool apply_scopes) {
  FileReport fr;
  std::vector<Directive> directives =
      parse_directives(path, lexed.comments, &fr.diagnostics);

  // A directive covers its own line plus the next line that carries code
  // (so a wrapped justification comment still anchors to the statement
  // below it).
  std::set<int> code_lines;
  for (const Token& t : lexed.tokens) code_lines.insert(t.line);
  auto covers = [&](const Directive& d, int line) {
    if (line == d.line) return true;
    auto it = code_lines.upper_bound(d.line);
    return it != code_lines.end() && *it == line;
  };

  for (Diagnostic& d : raw) {
    Directive* match = nullptr;
    for (Directive& dir : directives) {
      if (covers(dir, d.line) &&
          std::find(dir.rule_ids.begin(), dir.rule_ids.end(), d.rule) !=
              dir.rule_ids.end()) {
        match = &dir;
        break;
      }
    }
    if (match != nullptr) {
      match->used = true;
      // Some rules only honor suppressions inside a sanctioned subtree
      // (RuleInfo::suppress_prefixes); elsewhere the directive is itself a
      // diagnostic and the violation stands.
      const RuleInfo* info = find_rule(d.rule.c_str());
      const bool suppressible =
          !apply_scopes || info == nullptr ||
          info->suppress_prefixes.empty() ||
          std::any_of(info->suppress_prefixes.begin(),
                      info->suppress_prefixes.end(),
                      [&](const std::string& p) {
                        return path.compare(0, p.size(), p) == 0;
                      });
      if (suppressible) {
        fr.suppressions.push_back(
            {d.file, match->line, d.rule, match->justification});
      } else {
        if (!match->scope_error_reported) {
          match->scope_error_reported = true;
          fr.diagnostics.push_back(
              {path, match->line, kRuleBadSuppression,
               "dqlint:allow(" + d.rule + ") is only honored under " +
                   info->suppress_prefixes.front() +
                   "*; the violation stands"});
        }
        fr.diagnostics.push_back(std::move(d));
      }
    } else {
      fr.diagnostics.push_back(std::move(d));
    }
  }
  for (const Directive& dir : directives) {
    if (!dir.used) {
      fr.diagnostics.push_back(
          {path, dir.line, kRuleUnusedSuppression,
           "dqlint:allow(" + dir.rule_ids.front() +
               ") suppresses nothing on its line or the next code line"});
    }
  }
  std::sort(fr.diagnostics.begin(), fr.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return fr;
}

}  // namespace

FileReport lint_source(const std::string& path, const std::string& content,
                       bool apply_scopes) {
  const Lexed lexed = lex(content);
  return finish_file(path, lexed, run_rules(path, lexed.tokens, apply_scopes),
                     apply_scopes);
}

RunReport lint_program(const std::vector<SourceFile>& files,
                       bool apply_scopes) {
  RunReport run;
  std::vector<ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const SourceFile& f : files) {
    parsed.push_back(parse_file(f.path, f.content));
  }

  // Program-level diagnostics, scope-filtered by their anchor file and
  // grouped so each file's dqlint:allow directives can cover them.
  std::map<std::string, std::vector<Diagnostic>> prog_by_file;
  for (Diagnostic& d : run_program_rules(parsed)) {
    const RuleInfo* r = find_rule(d.rule.c_str());
    if (r == nullptr || !rule_active(*r, d.file, apply_scopes)) continue;
    d.message += " [" + r->description + "]";
    prog_by_file[d.file].push_back(std::move(d));
  }

  for (const ParsedFile& pf : parsed) {
    std::vector<Diagnostic> raw =
        run_rules(pf.path, pf.lexed.tokens, apply_scopes);
    const auto it = prog_by_file.find(pf.path);
    if (it != prog_by_file.end()) {
      raw.insert(raw.end(), it->second.begin(), it->second.end());
    }
    run.add(finish_file(pf.path, pf.lexed, std::move(raw), apply_scopes));
  }
  return run;
}

// ---------------------------------------------------------------------------
// dq.lint.v1 rendering (same minimal-JSON idiom as workload/report.cpp)
// ---------------------------------------------------------------------------

namespace {

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += c == '\n' ? "\\n" : " ";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_json(const RunReport& report, const std::string& root) {
  std::string out = "{";
  out += "\"schema\":\"dq.lint.v1\"";
  out += ",\"root\":\"" + esc(root) + "\"";
  out += ",\"files_scanned\":" + std::to_string(report.files_scanned);
  out += ",\"clean\":";
  out += report.clean() ? "true" : "false";

  out += ",\"rules\":[";
  bool first = true;
  for (const RuleInfo& r : rules()) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"" + esc(r.id) + "\",\"description\":\"" +
           esc(r.description) + "\",\"scopes\":[";
    for (std::size_t i = 0; i < r.prefixes.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + esc(r.prefixes[i]) + "\"";
    }
    out += "]}";
  }
  out += "]";

  out += ",\"diagnostics\":[";
  first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) out += ",";
    first = false;
    out += "{\"file\":\"" + esc(d.file) + "\",\"line\":" +
           std::to_string(d.line) + ",\"rule\":\"" + esc(d.rule) +
           "\",\"message\":\"" + esc(d.message) + "\"}";
  }
  out += "]";

  out += ",\"suppressions\":[";
  first = true;
  for (const Suppression& s : report.suppressions) {
    if (!first) out += ",";
    first = false;
    out += "{\"file\":\"" + esc(s.file) + "\",\"line\":" +
           std::to_string(s.line) + ",\"rule\":\"" + esc(s.rule) +
           "\",\"justification\":\"" + esc(s.justification) + "\"}";
  }
  out += "]";

  // Per-rule suppression totals, so suppression creep is reviewable at a
  // glance (also the table behind `dqlint --list-suppressions`).
  std::map<std::string, std::size_t> summary;
  for (const Suppression& s : report.suppressions) ++summary[s.rule];
  out += ",\"suppression_summary\":[";
  first = true;
  for (const auto& [rule, count] : summary) {
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":\"" + esc(rule) +
           "\",\"count\":" + std::to_string(count) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace dq::lint
