// dqlint: determinism & protocol-correctness static analysis for this repo.
//
// The simulator's headline guarantee -- every experiment is a pure function
// of its seed, bit-for-bit -- and DQVL's regular semantics are properties no
// unit test can defend against future edits: one `unordered_map` walk or one
// `std::rand()` call in a protocol file silently breaks them.  dqlint is the
// guardrail.  It has two layers:
//
//   * a token-level analyzer (comments and string literals stripped, so
//     prose mentioning `rand()` never fires) that enforces per-file rules;
//   * a declaration-level parser + cross-TU symbol graph (parse.{h,cpp},
//     graph.{h,cpp}) that enforces whole-program rules over every scanned
//     source at once.
//
// Six rule families:
//
//   det-*    determinism: no hash-ordered container state, no wall clocks,
//            no libc/std randomness, no pointer-keyed ordering.
//   proto-*  protocol correctness: replies route through QRPC/reply paths,
//            epoch comparisons use msg/epoch.h helpers, obs/ instruments
//            are never read in decision paths.
//   hyg-*    hygiene: DQ_INVARIANT instead of assert(), no naked new/delete
//            in protocol code.
//   flow-*   message-flow conformance (program-level): every Payload
//            alternative in src/msg/wire.h has wire.cpp visitor wiring, a
//            send site, and a handler dispatch.
//   cap-*    capability-claim conformance (program-level): each protocol's
//            registry descriptor (supports_wal / supports_crash_recovery /
//            consistency_class) matches its implementation closure.
//   part-*   partition-ownership (program-level): no mutable namespace-
//            scope / class-static / function-local-static state in det-
//            scoped code, since such state is shared across parallel_world
//            partitions.
//
// Every rule is scoped to the directories where its property matters (see
// rules() below) and can be suppressed per-site with a justified comment:
//
//   // dqlint:allow(rule-id): one-line justification
//
// which covers the comment's own line and the next line carrying code.  An
// unjustified, unknown, or unused suppression is itself a diagnostic, so
// the suppression inventory stays honest.
//
// The library half (this header + lint.cpp) is what tests/dqlint_test.cpp
// exercises against the fixture corpus; dqlint.cpp wraps it in a CLI that
// walks `<root>/src` and `<root>/bench`, prints `file:line: rule-id:
// message` diagnostics, and emits a `dq.lint.v1` JSON report next to the
// existing `dq.report.v1` / `dq.bench.v1` envelopes (validated by
// tools/check_metrics_schema.py).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dq::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Suppression {
  std::string file;
  int line = 0;  // line of the dqlint:allow comment
  std::string rule;
  std::string justification;
};

struct RuleInfo {
  std::string id;
  std::string description;
  // Path prefixes (relative to the scan root, '/'-separated) the rule
  // applies to; empty = every scanned file.  Program-level rules are
  // filtered by the file each diagnostic anchors to.
  std::vector<std::string> prefixes;
  // Path prefixes exempt from the rule even when a `prefixes` entry (or an
  // empty-prefix "everywhere" scope) matches -- e.g. the one directory
  // allowed to own threads.
  std::vector<std::string> exempt_prefixes;
  // Exact relative paths exempt from the rule (e.g. the one file allowed
  // to define assertion macros).
  std::vector<std::string> exempt_files;
  // Path prefixes where a per-site `dqlint:allow(<id>)` directive is
  // honored.  Empty = suppressible anywhere (the default).  When non-empty
  // and scopes apply, a directive for this rule in any other location is
  // itself a lint-bad-suppression diagnostic and the violation stands --
  // used for rules like det-thread, whose escape hatch must not leak beyond
  // the sanctioned subsystem (src/sim/parallel_*).
  std::vector<std::string> suppress_prefixes;
};

// The full rule table, in stable order (also the JSON "rules" array).
[[nodiscard]] const std::vector<RuleInfo>& rules();

// Result of linting one translation unit.
struct FileReport {
  std::vector<Diagnostic> diagnostics;    // unsuppressed violations
  std::vector<Suppression> suppressions;  // violations silenced with a reason
};

// Lint one source text with the per-file (token-level) rules only.  `path`
// is used both for reporting and -- when `apply_scopes` is true -- for
// matching rule prefixes, so pass it relative to the scan root
// ('/'-separated).  With `apply_scopes` false every rule runs regardless of
// location (fixture/test mode).
[[nodiscard]] FileReport lint_source(const std::string& path,
                                     const std::string& content,
                                     bool apply_scopes);

// Aggregate over a whole run; rendered as dq.lint.v1 by to_json().
struct RunReport {
  std::size_t files_scanned = 0;
  std::vector<Diagnostic> diagnostics;
  std::vector<Suppression> suppressions;

  void add(const FileReport& fr) {
    ++files_scanned;
    diagnostics.insert(diagnostics.end(), fr.diagnostics.begin(),
                       fr.diagnostics.end());
    suppressions.insert(suppressions.end(), fr.suppressions.begin(),
                        fr.suppressions.end());
  }
  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
};

// One source in a whole-program run.
struct SourceFile {
  std::string path;
  std::string content;
};

// Lint a whole program: the per-file token rules on every file, plus the
// program-level flow-*/cap-*/part-* rules over the cross-TU symbol graph.
// Program diagnostics anchor to a file (wire.h struct, wiring.cpp
// registration, variable declaration) and go through the same scope and
// dqlint:allow machinery as per-file diagnostics.
[[nodiscard]] RunReport lint_program(const std::vector<SourceFile>& files,
                                     bool apply_scopes);

// The dq.lint.v1 JSON document (no trailing newline).  `root` names what
// was scanned (a directory or "<files>" for explicit-file runs).
[[nodiscard]] std::string to_json(const RunReport& report,
                                  const std::string& root);

}  // namespace dq::lint
