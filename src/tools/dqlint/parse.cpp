#include "tools/dqlint/parse.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>
#include <set>
#include <string_view>

namespace dq::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Raw-string opener at position i ( (u8|u|U|L)?R" )?  Returns prefix length
// up to and including the quote, or 0.
std::size_t raw_string_prefix(std::string_view s, std::size_t i) {
  for (std::string_view p : {"R\"", "u8R\"", "uR\"", "UR\"", "LR\""}) {
    if (s.substr(i, p.size()) == p) return p.size();
  }
  return 0;
}

}  // namespace

Lexed lex(const std::string& content) {
  Lexed out;
  const std::string_view s = content;
  std::size_t i = 0;
  int line = 1;

  // Longest-match punctuation (3-char, then 2-char, then single).
  static constexpr std::array<std::string_view, 5> kPunct3 = {
      "<<=", ">>=", "<=>", "...", "->*"};
  static constexpr std::array<std::string_view, 19> kPunct2 = {
      "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
      "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|="};

  while (i < s.size()) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      const std::size_t eol = s.find('\n', i);
      const std::size_t end = eol == std::string_view::npos ? s.size() : eol;
      out.comments.push_back({line, std::string(s.substr(i + 2, end - i - 2))});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < s.size() && !(s[j] == '*' && s[j + 1] == '/')) {
        if (s[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back(
          {start_line, std::string(s.substr(i + 2, j - i - 2))});
      i = j + 2 <= s.size() ? j + 2 : s.size();
      continue;
    }
    if (const std::size_t pfx = raw_string_prefix(s, i); pfx != 0) {
      // R"delim( ... )delim"
      std::size_t j = i + pfx;
      std::string delim;
      while (j < s.size() && s[j] != '(') delim += s[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = s.find(closer, j);
      const std::size_t stop =
          end == std::string_view::npos ? s.size() : end + closer.size();
      const std::size_t body =
          end == std::string_view::npos ? s.size() : end;
      out.tokens.push_back({Tok::kString, "\"\"", line,
                            std::string(s.substr(j + 1, body - j - 1))});
      for (std::size_t k = i; k < stop; ++k) {
        if (s[k] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != quote) {
        if (s[j] == '\\' && j + 1 < s.size()) ++j;
        if (s[j] == '\n') ++line;  // unterminated literals: keep line counts
        ++j;
      }
      out.tokens.push_back(
          {quote == '"' ? Tok::kString : Tok::kChar,
           quote == '"' ? "\"\"" : "''", line,
           quote == '"' ? std::string(s.substr(i + 1, j - i - 1))
                        : std::string()});
      i = j < s.size() ? j + 1 : s.size();
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < s.size() && ident_char(s[j])) ++j;
      out.tokens.push_back(
          {Tok::kIdent, std::string(s.substr(i, j - i)), line, {}});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < s.size()) {
        const char d = s[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
                    s[j - 1] == 'P')) {
          ++j;  // exponent sign, e.g. 0x1.0p-53
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {Tok::kNumber, std::string(s.substr(i, j - i)), line, {}});
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    std::size_t len = 1;
    for (std::string_view p : kPunct3) {
      if (s.substr(i, 3) == p) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (std::string_view p : kPunct2) {
        if (s.substr(i, 2) == p) {
          len = 2;
          break;
        }
      }
    }
    out.tokens.push_back(
        {Tok::kPunct, std::string(s.substr(i, len)), line, {}});
    i += len;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Declaration parser
// ---------------------------------------------------------------------------

namespace {

// Identifiers that can appear in a declaration but are never its name.
const std::set<std::string_view>& decl_keywords() {
  static const std::set<std::string_view> kw = {
      "const",    "constexpr", "constinit", "consteval", "static",
      "inline",   "extern",    "mutable",   "volatile",  "thread_local",
      "virtual",  "explicit",  "typename",  "struct",    "class",
      "enum",     "union",     "unsigned",  "signed",    "long",
      "short",    "int",       "char",      "bool",      "float",
      "double",   "void",      "auto",      "noexcept",  "override",
      "final",    "operator",  "friend",    "register",  "decltype",
      "typedef",  "using",     "namespace", "template",  "return",
      "sizeof",   "alignof",   "alignas",   "new",       "delete",
      "default",  "true",      "false",     "nullptr",   "this",
      "wchar_t",  "char8_t",   "char16_t",  "char32_t"};
  return kw;
}

class Parser {
 public:
  Parser(const std::vector<Token>& t, ParsedFile* out) : t_(t), out_(out) {}

  void run() {
    while (i_ < t_.size()) {
      const std::size_t before = i_;
      step();
      if (i_ <= before) i_ = before + 1;  // never stall on unexpected shapes
    }
    // Unbalanced input: leave any still-open bodies with body_end = -1.
  }

 private:
  struct Scope {
    enum Kind { kGlobal, kNamespace, kClass, kEnum, kFunction, kBlock };
    Kind kind;
    std::string name;     // component added to the scope string
    int decl_index = -1;  // decl whose body_end is filled when this pops
  };

  const std::vector<Token>& t_;
  ParsedFile* out_;
  std::size_t i_ = 0;
  std::vector<Scope> scopes_{{Scope::kGlobal, "", -1}};

  [[nodiscard]] const Token* at(std::size_t i) const {
    return i < t_.size() ? &t_[i] : nullptr;
  }
  [[nodiscard]] bool text_is(std::size_t i, std::string_view s) const {
    const Token* tok = at(i);
    return tok != nullptr && tok->text == s;
  }
  [[nodiscard]] bool ident_is(std::size_t i, std::string_view s) const {
    const Token* tok = at(i);
    return tok != nullptr && tok->kind == Tok::kIdent && tok->text == s;
  }

  [[nodiscard]] std::string current_scope() const {
    std::string s;
    for (const Scope& sc : scopes_) {
      if (sc.name.empty()) continue;
      if (!s.empty()) s += "::";
      s += sc.name;
    }
    return s;
  }

  [[nodiscard]] bool in_class() const {
    return scopes_.back().kind == Scope::kClass;
  }

  int record(Decl d) {
    out_->decls.push_back(std::move(d));
    return static_cast<int>(out_->decls.size()) - 1;
  }

  void pop_scope() {
    if (scopes_.size() <= 1) return;  // stray '}' in malformed input
    const Scope sc = scopes_.back();
    scopes_.pop_back();
    if (sc.decl_index >= 0) {
      out_->decls[static_cast<std::size_t>(sc.decl_index)].body_end =
          static_cast<int>(i_);
    }
  }

  // A preprocessor directive runs to end of line, following backslash
  // continuations (common/assert.h defines multi-line macros).
  void skip_preprocessor() {
    int line = t_[i_].line;
    ++i_;
    while (i_ < t_.size()) {
      if (t_[i_].line != line) {
        const Token& prev = t_[i_ - 1];
        if (prev.kind == Tok::kPunct && prev.text == "\\") {
          line = t_[i_].line;
        } else {
          break;
        }
      }
      ++i_;
    }
  }

  // i_ is at `open`; advance past the matching `close`.
  void skip_group(std::string_view open, std::string_view close) {
    int depth = 0;
    while (i_ < t_.size()) {
      const std::string& p = t_[i_].text;
      if (t_[i_].kind == Tok::kPunct) {
        if (p == open) ++depth;
        if (p == close && --depth == 0) {
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  // Non-consuming variant: returns the index just past the group opened at j.
  [[nodiscard]] std::size_t group_end(std::size_t j, std::string_view open,
                                      std::string_view close) const {
    int depth = 0;
    while (j < t_.size()) {
      const std::string& p = t_[j].text;
      if (t_[j].kind == Tok::kPunct) {
        if (p == open) ++depth;
        if (p == close && --depth == 0) return j + 1;
      }
      ++j;
    }
    return j;
  }

  // Advance past the next top-level ';' (tracking ()/{}/[] balance so a
  // lambda body's semicolons inside an initializer do not terminate early).
  void skip_statement() {
    int paren = 0;
    int brace = 0;
    int bracket = 0;
    while (i_ < t_.size()) {
      const Token& tok = t_[i_];
      if (tok.kind == Tok::kPunct) {
        const std::string& p = tok.text;
        if (p == "(") ++paren;
        if (p == ")") --paren;
        if (p == "{") ++brace;
        if (p == "}") {
          if (brace == 0) return;  // statement ran into the enclosing '}'
          --brace;
        }
        if (p == "[") ++bracket;
        if (p == "]") --bracket;
        if (p == ";" && paren == 0 && brace == 0 && bracket == 0) {
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  void skip_attribute() {  // i_ at the first '[' of '[['
    ++i_;
    skip_group("[", "]");
  }

  void skip_template_header() {  // i_ at 'template'
    ++i_;
    if (!text_is(i_, "<")) return;
    int depth = 0;
    int paren = 0;
    while (i_ < t_.size()) {
      const std::string& p = t_[i_].text;
      if (t_[i_].kind == Tok::kPunct) {
        if (p == "(") ++paren;
        if (p == ")") --paren;
        if (paren == 0) {
          if (p == "<") ++depth;
          if (p == ">") --depth;
          if (p == ">>") depth -= 2;
          if (depth <= 0 && (p == ">" || p == ">>")) {
            ++i_;
            return;
          }
        }
      }
      ++i_;
    }
  }

  void step() {
    const Token& tok = t_[i_];
    if (tok.kind == Tok::kPunct && tok.text == "#") {
      skip_preprocessor();
      return;
    }
    if (tok.kind == Tok::kPunct && tok.text == "}") {
      pop_scope();
      ++i_;
      return;
    }
    switch (scopes_.back().kind) {
      case Scope::kGlobal:
      case Scope::kNamespace:
      case Scope::kClass:
        parse_declaration();
        break;
      case Scope::kFunction:
      case Scope::kBlock:
        function_body_token();
        break;
      case Scope::kEnum:
        if (tok.kind == Tok::kPunct && tok.text == "{") {
          scopes_.push_back({Scope::kBlock, "", -1});
        }
        ++i_;
        break;
    }
  }

  void function_body_token() {
    const Token& tok = t_[i_];
    if (tok.kind == Tok::kPunct && tok.text == "{") {
      scopes_.push_back({Scope::kBlock, "", -1});
      ++i_;
      return;
    }
    if (tok.kind == Tok::kIdent && tok.text == "static") {
      parse_local_static();
      return;
    }
    ++i_;
  }

  // `static ...;` inside a function body: record the variable (the part-*
  // rules care about exactly these).  Function-local `static` can only start
  // a declaration, so no disambiguation needed.
  void parse_local_static() {
    Decl d;
    d.kind = DeclKind::kVariable;
    d.line = t_[i_].line;
    d.scope = current_scope();
    d.is_static = true;
    d.is_function_local = true;
    ++i_;
    int paren = 0;
    int brace = 0;
    int angle = 0;
    std::string name;
    bool terminated = false;
    while (i_ < t_.size()) {
      const Token& tok = t_[i_];
      if (tok.kind == Tok::kPunct) {
        const std::string& p = tok.text;
        if (paren == 0 && brace == 0) {
          if (p == ";") {
            ++i_;
            break;
          }
          if ((p == "=" || p == "{") && !terminated) terminated = true;
          if (p == "<") ++angle;
          if (p == ">" && angle > 0) --angle;
          if (p == ">>") angle = std::max(0, angle - 2);
        }
        if (p == "(") ++paren;
        if (p == ")") --paren;
        if (p == "{") ++brace;
        if (p == "}") --brace;
      } else if (tok.kind == Tok::kIdent && !terminated && paren == 0 &&
                 brace == 0 && angle == 0) {
        if (tok.text == "const" || tok.text == "constexpr") {
          d.is_const = true;
        } else if (tok.text == "thread_local") {
          d.is_thread_local = true;
        } else if (decl_keywords().count(tok.text) == 0) {
          name = tok.text;
        }
      }
      ++i_;
    }
    d.name = name;
    if (!d.name.empty()) record(std::move(d));
  }

  void parse_declaration() {
    const Token& tok = t_[i_];
    if (tok.kind == Tok::kPunct) {
      if (tok.text == "{") {  // stray block at namespace scope
        scopes_.push_back({Scope::kBlock, "", -1});
      }
      ++i_;
      return;
    }
    if (tok.kind != Tok::kIdent) {
      ++i_;
      return;
    }
    const std::string& w = tok.text;
    if (w == "namespace") {
      parse_namespace();
      return;
    }
    if (w == "template") {
      skip_template_header();
      return;
    }
    if (w == "using" || w == "typedef") {
      parse_alias();
      return;
    }
    if ((w == "public" || w == "private" || w == "protected") &&
        text_is(i_ + 1, ":")) {
      i_ += 2;
      return;
    }
    if (w == "extern" && at(i_ + 1) != nullptr &&
        t_[i_ + 1].kind == Tok::kString) {
      if (text_is(i_ + 2, "{")) {  // extern "C" { ... }
        scopes_.push_back({Scope::kNamespace, "", -1});
        i_ += 3;
      } else {
        skip_statement();
      }
      return;
    }
    if (w == "enum") {
      parse_enum();
      return;
    }
    if (w == "class" || w == "struct" || w == "union") {
      parse_class(w);
      return;
    }
    if (w == "static_assert") {
      skip_statement();
      return;
    }
    parse_general_declaration();
  }

  void parse_namespace() {
    ++i_;
    std::string name;
    while (i_ < t_.size()) {
      const Token& tok = t_[i_];
      if (tok.kind == Tok::kIdent) {
        if (tok.text == "inline") {
          ++i_;
          continue;
        }
        name += tok.text;
        ++i_;
        continue;
      }
      if (tok.kind == Tok::kPunct && tok.text == "::") {
        name += "::";
        ++i_;
        continue;
      }
      break;
    }
    if (text_is(i_, "=")) {  // namespace alias
      skip_statement();
      return;
    }
    if (text_is(i_, "{")) {
      Decl d;
      d.kind = DeclKind::kNamespace;
      d.name = name;
      d.scope = current_scope();
      d.line = t_[i_].line;
      d.body_begin = static_cast<int>(i_);
      const int idx = record(std::move(d));
      scopes_.push_back({Scope::kNamespace, name, idx});
      ++i_;
      return;
    }
    skip_statement();
  }

  void parse_alias() {
    Decl d;
    d.kind = DeclKind::kAlias;
    d.line = t_[i_].line;
    d.scope = current_scope();
    d.is_member = in_class();
    ++i_;
    if (ident_is(i_, "namespace")) {  // using namespace ...;
      skip_statement();
      return;
    }
    if (at(i_) != nullptr && t_[i_].kind == Tok::kIdent &&
        text_is(i_ + 1, "=")) {
      d.name = t_[i_].text;  // using X = ...;
      record(std::move(d));
    }
    skip_statement();
  }

  void parse_enum() {
    Decl d;
    d.kind = DeclKind::kEnum;
    d.line = t_[i_].line;
    d.scope = current_scope();
    d.is_member = in_class();
    ++i_;
    if (ident_is(i_, "class") || ident_is(i_, "struct")) ++i_;
    if (at(i_) != nullptr && t_[i_].kind == Tok::kIdent) {
      d.name = t_[i_].text;
      ++i_;
    }
    while (i_ < t_.size()) {
      const Token& tok = t_[i_];
      if (tok.kind == Tok::kPunct) {
        if (tok.text == ";") {
          d.is_forward = true;
          record(std::move(d));
          ++i_;
          return;
        }
        if (tok.text == "{") {
          d.body_begin = static_cast<int>(i_);
          const int idx = record(std::move(d));
          scopes_.push_back({Scope::kEnum, "", idx});
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  void parse_class(const std::string& keyword) {
    Decl d;
    d.kind = DeclKind::kClass;
    d.line = t_[i_].line;
    d.scope = current_scope();
    d.is_member = in_class();
    ++i_;
    while (text_is(i_, "[") && text_is(i_ + 1, "[")) skip_attribute();
    if (ident_is(i_, "alignas") && text_is(i_ + 1, "(")) {
      ++i_;
      skip_group("(", ")");
    }
    if (at(i_) != nullptr && t_[i_].kind == Tok::kIdent &&
        t_[i_].text != "final") {
      d.name = t_[i_].text;
      ++i_;
    }
    (void)keyword;
    // Scan the class head (possible base list) for the body / terminator.
    while (i_ < t_.size()) {
      const Token& tok = t_[i_];
      if (tok.kind == Tok::kPunct) {
        if (tok.text == ";") {
          d.is_forward = true;
          record(std::move(d));
          ++i_;
          return;
        }
        if (tok.text == "{") {
          d.body_begin = static_cast<int>(i_);
          const std::string name = d.name;
          const int idx = record(std::move(d));
          scopes_.push_back({Scope::kClass, name, idx});
          ++i_;
          return;
        }
        if (tok.text == "(" || tok.text == "=") {
          // Elaborated type in some other declaration (`struct tm t = ...`):
          // not a class definition; give up on this statement.
          skip_statement();
          return;
        }
      }
      ++i_;
    }
  }

  // Anything else at namespace/class scope: a function or variable
  // declaration.  One pass classifies the statement by token shape.
  void parse_general_declaration() {
    Decl d;
    d.line = t_[i_].line;
    d.scope = current_scope();
    d.is_member = in_class();

    std::size_t j = i_;
    int angle = 0;
    bool after_params = false;
    std::string cand;       // variable-name candidate (last top-level ident)
    std::string fn_name;    // ident immediately before a '(' param list
    std::string fn_owner;   // `X` in `X::fn(...)`
    bool prev_was_name = false;

    enum class Term { kEof, kSemi, kBody, kInit, kAssign };
    Term term = Term::kEof;

    while (j < t_.size()) {
      const Token& tok = t_[j];
      if (tok.kind == Tok::kPunct) {
        const std::string& p = tok.text;
        if (p == ";") {
          term = Term::kSemi;
          break;
        }
        if (p == "}") {
          term = Term::kEof;  // ran into the enclosing scope's close
          break;
        }
        if (p == "{") {
          term = after_params ? Term::kBody : Term::kInit;
          break;
        }
        if (p == "(") {
          if (!after_params && prev_was_name && !fn_name.empty()) {
            after_params = true;  // `name(...)`: a parameter list
          }
          j = group_end(j, "(", ")");
          prev_was_name = false;
          continue;
        }
        if (p == "[") {
          if (text_is(j + 1, "[")) {
            j = group_end(j + 1, "[", "]");  // attribute
          } else {
            j = group_end(j, "[", "]");  // array extent
          }
          prev_was_name = false;
          continue;
        }
        if (p == "=") {
          term = after_params ? Term::kSemi : Term::kAssign;
          if (after_params) {
            // `= default/delete/0;` -- function with no real body here.
            d.is_forward = true;
          }
          break;
        }
        if (p == ":" && !text_is(j + 1, ":") && after_params) {
          term = Term::kBody;  // ctor-init list precedes the body
          break;
        }
        if (p == "<") ++angle;
        if (p == ">" && angle > 0) --angle;
        if (p == ">>") angle = std::max(0, angle - 2);
        prev_was_name = false;
        ++j;
        continue;
      }
      if (tok.kind == Tok::kIdent) {
        const std::string& w = tok.text;
        if (w == "const" || w == "constexpr" || w == "constinit") {
          d.is_const = true;
        } else if (w == "static") {
          d.is_static = true;
        } else if (w == "thread_local") {
          d.is_thread_local = true;
        } else if (w == "operator" && !after_params) {
          // `operator<symbol>(` -- glue the symbol tokens into the name.
          std::string sym;
          std::size_t k = j + 1;
          if (text_is(k, "(") && text_is(k + 1, ")")) {
            sym = "()";
            k += 2;
          } else if (text_is(k, "[") && text_is(k + 1, "]")) {
            sym = "[]";
            k += 2;
          } else {
            while (k < t_.size() && !(t_[k].kind == Tok::kPunct &&
                                      t_[k].text == "(")) {
              sym += t_[k].text;
              ++k;
              if (sym.size() > 24) break;  // malformed; stop gluing
            }
          }
          fn_name = "operator" + sym;
          cand = fn_name;
          prev_was_name = true;
          j = k;
          continue;
        } else if (angle == 0 && !after_params &&
                   decl_keywords().count(w) == 0) {
          cand = w;
          fn_name = w;
          if (j >= 2 && t_[j - 1].kind == Tok::kPunct &&
              t_[j - 1].text == "::" && t_[j - 2].kind == Tok::kIdent) {
            fn_owner = t_[j - 2].text;
          } else {
            fn_owner.clear();
          }
          prev_was_name = true;
          ++j;
          continue;
        }
        prev_was_name = false;
        ++j;
        continue;
      }
      prev_was_name = false;
      ++j;
    }

    if (term == Term::kEof) {
      i_ = j;  // let step() handle the '}' (or end of input)
      return;
    }

    if (after_params) {
      d.kind = DeclKind::kFunction;
      d.name = fn_name;
      d.owner = fn_owner;
      if (term == Term::kBody) {
        // Skip a ctor-init list if present: `: member(expr), member{expr} {`.
        i_ = j;
        if (text_is(i_, ":")) {
          ++i_;
          while (i_ < t_.size()) {
            // member name (possibly qualified/templated)
            while (i_ < t_.size() && !(t_[i_].kind == Tok::kPunct &&
                                       (t_[i_].text == "(" ||
                                        t_[i_].text == "{"))) {
              if (t_[i_].kind == Tok::kPunct &&
                  (t_[i_].text == ";" || t_[i_].text == "}")) {
                // malformed; bail
                return;
              }
              ++i_;
            }
            if (i_ >= t_.size()) return;
            skip_group(t_[i_].text, t_[i_].text == "(" ? ")" : "}");
            if (text_is(i_, ",")) {
              ++i_;
              continue;
            }
            break;
          }
        }
        if (!text_is(i_, "{")) {
          // No body after all (e.g. trailing macro); treat as a prototype.
          d.is_forward = true;
          record(std::move(d));
          skip_statement();
          return;
        }
        d.body_begin = static_cast<int>(i_);
        const int idx = record(std::move(d));
        scopes_.push_back({Scope::kFunction, "", idx});
        ++i_;
        return;
      }
      d.is_forward = true;
      record(std::move(d));
      i_ = j;
      skip_statement();
      return;
    }

    // Variable (or alias-free typedef-ish shape we treat as one).
    d.kind = DeclKind::kVariable;
    d.name = cand;
    if (term == Term::kInit) {
      i_ = j;
      skip_group("{", "}");
      if (text_is(i_, ";")) ++i_;
    } else {
      i_ = j;
      skip_statement();
    }
    if (!d.name.empty()) record(std::move(d));
  }
};

// Trim helper for the include scan.
std::string_view ltrim(std::string_view v) {
  while (!v.empty() &&
         std::isspace(static_cast<unsigned char>(v.front())) != 0) {
    v.remove_prefix(1);
  }
  return v;
}

std::vector<IncludeEdge> scan_includes(const std::string& content) {
  std::vector<IncludeEdge> out;
  std::size_t pos = 0;
  int line = 1;
  const std::string_view s = content;
  while (pos <= s.size()) {
    const std::size_t eol = s.find('\n', pos);
    std::string_view ln =
        s.substr(pos, eol == std::string_view::npos ? s.size() - pos
                                                    : eol - pos);
    ln = ltrim(ln);
    if (!ln.empty() && ln.front() == '#') {
      ln = ltrim(ln.substr(1));
      if (ln.rfind("include", 0) == 0) {
        ln = ltrim(ln.substr(7));
        if (!ln.empty() && (ln.front() == '"' || ln.front() == '<')) {
          const char close = ln.front() == '"' ? '"' : '>';
          const std::size_t end = ln.find(close, 1);
          if (end != std::string_view::npos) {
            out.push_back({std::string(ln.substr(1, end - 1)), line,
                           ln.front() == '<'});
          }
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
  return out;
}

}  // namespace

ParsedFile parse_file(const std::string& path, const std::string& content) {
  ParsedFile out;
  out.path = path;
  out.lexed = lex(content);
  out.includes = scan_includes(content);
  Parser(out.lexed.tokens, &out).run();
  return out;
}

}  // namespace dq::lint
