// dqlint layer 1: lexer + declaration-level parser.
//
// The lexer turns one C++ source into a token stream (comments and literal
// contents kept out of the stream so rules never fire on prose; comments are
// retained separately because they carry suppression directives).  The
// parser on top extracts *declarations only* -- namespaces, classes,
// functions (with their `{...}` body token ranges), variables with their
// static/const/thread_local qualifiers, and `#include` edges.  It is
// deliberately not a C++ grammar: it tracks a scope stack by brace
// balancing and classifies one statement at a time with token-shape
// heuristics, which is enough for the cross-TU analyses in graph.{h,cpp}
// (message-flow, capability-claim, partition-ownership) while keeping the
// tool dependency-free and fast enough for every ctest invocation.
//
// Known, accepted imprecision (documented in docs/STATIC_ANALYSIS.md):
// pointer-to-const globals (`const char* p`) count as const, parenthesized
// declarators (`int (*fp)(int)`) are skipped, and local classes inside
// function bodies are not descended into.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dq::lint {

enum class Tok : std::uint8_t { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  Tok kind;
  std::string text;  // literal tokens keep only a marker, not their contents
  int line;
  // kString only: the literal's contents (needed by the registry-descriptor
  // extraction, which must read protocol names out of `add("dqvl", ...)`).
  std::string literal;
};

struct Comment {
  int line;  // line the comment starts on
  std::string text;
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

[[nodiscard]] Lexed lex(const std::string& content);

// One #include directive.
struct IncludeEdge {
  std::string target;  // as written between the quotes / angle brackets
  int line = 0;
  bool angled = false;  // <system> rather than "project"
};

enum class DeclKind : std::uint8_t {
  kNamespace,
  kClass,  // class / struct / union
  kEnum,
  kFunction,
  kVariable,
  kAlias,  // using X = ... / typedef
};

struct Decl {
  DeclKind kind{};
  std::string name;   // unqualified
  std::string owner;  // out-of-line members: the `X` of `X::name(...)`
  std::string scope;  // enclosing namespace/class names, "::"-joined
  int line = 0;
  bool is_static = false;
  bool is_const = false;  // const or constexpr appeared in the declaration
  bool is_thread_local = false;
  bool is_member = false;          // declared at class scope
  bool is_function_local = false;  // declared inside a function body
  bool is_forward = false;  // class fwd declaration or function prototype
  // Token-index range of the attached `{ ... }` body: body_begin is the `{`,
  // body_end the matching `}`.  -1 when the declaration has no body.
  int body_begin = -1;
  int body_end = -1;
};

struct ParsedFile {
  std::string path;
  Lexed lexed;
  std::vector<IncludeEdge> includes;
  std::vector<Decl> decls;
};

[[nodiscard]] ParsedFile parse_file(const std::string& path,
                                    const std::string& content);

}  // namespace dq::lint
