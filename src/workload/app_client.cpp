#include "workload/app_client.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.h"

namespace dq::workload {

void AppClient::start() { issue_next(); }

NodeId AppClient::pick_front_end() {
  const auto& topo = world().topology();
  const NodeId home = topo.home_of(id());
  if (world().rng().chance(params_.locality)) return home;
  // Route to a uniformly random *other* server (redirection miss /
  // client mobility, section 4.1).
  const std::size_t n = topo.num_servers();
  if (n <= 1) return home;
  while (true) {
    const NodeId s = topo.server(world().rng().below(n));
    if (s != home) return s;
  }
}

ObjectId AppClient::pick_object() {
  if (params_.choose_object) return params_.choose_object(world().rng());
  // Default: this client's own profile object (TPC-W per-customer profile).
  return ObjectId(id().value());
}

void AppClient::issue_next() {
  if (issued_ >= params_.total_requests) return;
  ++issued_;
  inflight_ = true;
  ++op_token_;
  const std::uint64_t token = op_token_;

  bool is_write;
  if (issued_ > 1 && world().rng().chance(params_.burstiness)) {
    is_write = last_was_write_;  // stay in the current burst
  } else {
    is_write = world().rng().chance(params_.write_ratio);
  }
  last_was_write_ = is_write;
  current_ = OpRecord{};
  current_.client = ClientId(id().value());
  current_.kind = is_write ? msg::OpKind::kWrite : msg::OpKind::kRead;
  current_.object = pick_object();
  current_.invoked = world().now();
  if (is_write) {
    current_.value = "c" + std::to_string(id().value()) + "-" +
                     std::to_string(++write_seq_);
  }

  if (params_.op_deadline < sim::kTimeInfinity) {
    deadline_timer_ = world().set_timer(id(), params_.op_deadline,
                                        [this, token] {
                                          if (token != op_token_) return;
                                          complete(false, {}, {});
                                        });
  }

  if (direct_ != nullptr) {
    if (is_write) {
      direct_->write(current_.object, current_.value,
                     [this, token](bool ok, LogicalClock lc) {
                       if (token != op_token_) return;
                       complete(ok, current_.value, lc);
                     });
    } else {
      direct_->read(current_.object,
                    [this, token](bool ok, VersionedValue vv) {
                      if (token != op_token_) return;
                      complete(ok, std::move(vv.value), vv.clock);
                    });
    }
    return;
  }

  // Via front end.  Retransmit under the same rpc id until the reply lands
  // (the front end executes at-most-once and re-sends cached replies), so a
  // lost request or reply does not wedge the closed loop.
  const NodeId fe = pick_front_end();
  current_rpc_ = world().fresh_rpc_id();
  msg::AppRequest req;
  req.op = current_.kind;
  req.object = current_.object;
  req.value = current_.value;
  world().send(id(), fe, current_rpc_, req);
  arm_retransmit(fe, std::move(req), token, sim::milliseconds(500));
}

void AppClient::arm_retransmit(NodeId fe, msg::AppRequest req,
                               std::uint64_t token, sim::Duration wait) {
  retransmit_timer_ = world().set_timer(id(), wait, [this, fe, req, token,
                                                     wait] {
    if (token != op_token_) return;  // op already completed or timed out
    world().send(id(), fe, current_rpc_, req);
    const sim::Duration next =
        std::min<sim::Duration>(wait * 2, sim::seconds(8));
    arm_retransmit(fe, req, token, next);
  });
}

void AppClient::on_message(const sim::Envelope& env) {
  if (direct_ != nullptr && direct_->on_message(env)) return;
  const auto* rep = std::get_if<msg::AppReply>(&env.body);
  if (rep == nullptr) return;
  if (!inflight_ || env.rpc_id != current_rpc_) return;  // late/duplicate
  complete(rep->ok, rep->value, rep->clock);
}

void AppClient::complete(bool ok, Value value, LogicalClock lc) {
  DQ_INVARIANT(inflight_, "completion without an in-flight op");
  inflight_ = false;
  ++op_token_;  // retire deadline timer and any straggler callbacks
  deadline_timer_.cancel();
  retransmit_timer_.cancel();

  current_.ok = ok;
  current_.completed = world().now();
  if (current_.kind == msg::OpKind::kRead) {
    current_.value = std::move(value);
    current_.clock = lc;
  } else {
    current_.clock = lc;  // value already holds what we wrote
  }
  history_.record(current_);

  if (ok) {
    const double ms = sim::to_ms(current_.completed - current_.invoked);
    all_ms_.add(ms);
    (current_.kind == msg::OpKind::kRead ? read_ms_ : write_ms_).add(ms);
  } else {
    ++(current_.kind == msg::OpKind::kRead ? rejected_reads_
                                           : rejected_writes_);
  }

  if (params_.think_time > 0) {
    world().set_timer(id(), params_.think_time, [this] { issue_next(); });
  } else {
    issue_next();
  }
}

}  // namespace dq::workload
