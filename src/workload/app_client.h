// Application client: the closed-loop request generator of section 4.1
// ("the application client sends the next request only after it receives
// the response of the current request").
//
// Two access modes, matching how the paper's curves behave:
//   * kViaFrontEnd -- the request is routed to the closest edge server with
//     probability `locality`, otherwise to a uniformly random other server
//     (the locality experiments of section 4.1).  Used by the protocols
//     that exploit edge locality: DQVL, ROWA, ROWA-Async.
//   * kDirect -- the client embeds the protocol's service client and talks
//     to the replicas itself over WAN.  Used for majority and
//     primary/backup, whose response times the paper shows to be
//     insensitive to access locality.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/stats.h"
#include "msg/wire.h"
#include "protocols/service_client.h"
#include "sim/world.h"
#include "workload/history.h"

namespace dq::workload {

class AppClient final : public sim::Actor {
 public:
  struct Params {
    double write_ratio = 0.05;
    // Burstiness: probability that a request repeats the previous request's
    // kind instead of drawing fresh from write_ratio.  Models the paper's
    // target workload property (b): "reads tend to be followed by other
    // reads and writes tend to be followed by other writes" (section 1).
    // The stationary write fraction remains write_ratio for any burstiness.
    double burstiness = 0.0;
    double locality = 1.0;           // via-front-end mode only
    std::size_t total_requests = 200;
    sim::Duration think_time = 0;
    // Per-operation deadline; exceeded => the op is recorded as rejected.
    sim::Duration op_deadline = sim::kTimeInfinity;
    // Object selector; default: the client's own "profile" object.
    std::function<ObjectId(Rng&)> choose_object;
  };

  // Via-front-end mode.
  AppClient(Params p) : params_(std::move(p)) {}
  // Direct mode: the client owns a protocol service client.
  AppClient(Params p, std::shared_ptr<protocols::ServiceClient> direct)
      : params_(std::move(p)), direct_(std::move(direct)) {}

  // Begin issuing requests.  Call after World::attach.
  void start();

  void on_message(const sim::Envelope& env) override;

  [[nodiscard]] bool done() const {
    return issued_ >= params_.total_requests && !inflight_;
  }
  [[nodiscard]] const Summary& read_ms() const { return read_ms_; }
  [[nodiscard]] const Summary& write_ms() const { return write_ms_; }
  [[nodiscard]] const Summary& all_ms() const { return all_ms_; }
  [[nodiscard]] const History& history() const { return history_; }
  [[nodiscard]] std::uint64_t rejected_reads() const {
    return rejected_reads_;
  }
  [[nodiscard]] std::uint64_t rejected_writes() const {
    return rejected_writes_;
  }

 private:
  void issue_next();
  void complete(bool ok, Value value, LogicalClock lc);
  void arm_retransmit(NodeId fe, msg::AppRequest req, std::uint64_t token,
                      sim::Duration wait);
  [[nodiscard]] NodeId pick_front_end();
  [[nodiscard]] ObjectId pick_object();

  Params params_;
  std::shared_ptr<protocols::ServiceClient> direct_;

  std::size_t issued_ = 0;
  std::uint64_t write_seq_ = 0;
  bool last_was_write_ = false;
  bool inflight_ = false;
  std::uint64_t op_token_ = 0;  // guards late replies after a deadline
  OpRecord current_;
  RequestId current_rpc_;
  sim::TimerToken deadline_timer_;
  sim::TimerToken retransmit_timer_;

  Summary read_ms_, write_ms_, all_ms_;
  History history_;
  std::uint64_t rejected_reads_ = 0, rejected_writes_ = 0;
};

}  // namespace dq::workload
