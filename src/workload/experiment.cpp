#include "workload/experiment.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/assert.h"
#include "obs/staleness.h"

namespace dq::workload {

const char* protocol_name(const std::string& name) {
  const protocols::ProtocolInfo* info = find_protocol(name);
  return info == nullptr ? "?" : info->display_name.c_str();
}

std::vector<std::string> paper_protocols() {
  return {"dqvl", "pb", "majority", "rowa", "rowa-async"};
}

Deployment::Deployment(const ExperimentParams& params) : params_(params) {
  const protocols::ProtocolInfo* info = find_protocol(params_.protocol);
  DQ_INVARIANT(info != nullptr,
               "unknown protocol (run with --protocol=help for the list)");

  sim::Topology topo_desc(params_.topo);
  sim::World::Parallelism parallel;
  if (params_.open_loop) {
    // Open-loop generators emit straight into partition queues, so the
    // deployment always runs on the partitioned engine -- no serial
    // fallback.  world_threads only sizes the worker pool; the partition
    // plan (and therefore every byte of the report) is independent of it.
    DQ_INVARIANT(!params_.failures && !params_.crashes,
                 "open-loop workloads run on the partitioned engine, which "
                 "excludes failure/crash injection");
    parallel.partitions = params_.world_partitions > 0
                              ? params_.world_partitions
                              : sim::par::default_partition_count(topo_desc);
    parallel.threads =
        params_.world_threads > 0 ? params_.world_threads : 1;
  } else if (params_.world_threads >= 1) {
    if (params_.failures || params_.crashes) {
      // Fault/crash injectors mutate cross-partition reachability mid-run,
      // which the conservative engine's lookahead cannot see.  Serial keeps
      // them exact; note it so a benchmark user isn't silently slower.
      std::fprintf(stderr,
                   "note: --world-threads ignored: failure/crash injection "
                   "requires the serial engine\n");
    } else {
      parallel.partitions = params_.world_partitions > 0
                                ? params_.world_partitions
                                : sim::par::default_partition_count(topo_desc);
      parallel.threads = params_.world_threads;
    }
  }
  world_ = std::make_unique<sim::World>(std::move(topo_desc), params_.seed,
                                        parallel);
  const auto& topo = world_->topology();

  // Drifting clocks (servers and clients alike).
  if (params_.max_drift > 0.0) {
    Rng clock_rng(params_.seed ^ 0xC10CC10CULL);
    for (std::size_t i = 0; i < topo.num_nodes(); ++i) {
      world_->set_clock(NodeId(static_cast<std::uint32_t>(i)),
                        sim::DriftClock::random(clock_rng, params_.max_drift,
                                                sim::seconds(1)));
    }
  }

  world_->faults().set_loss_probability(params_.loss);

  // One composite actor per server.
  servers_.reserve(topo.num_servers());
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    auto node = std::make_unique<EdgeNode>();
    world_->attach(topo.server(i), *node);
    servers_.push_back(std::move(node));
  }

  info->build(*this);

  if (params_.failures) {
    injector_ = std::make_unique<sim::FailureInjector>(*world_,
                                                       *params_.failures);
    injector_->start(topo.servers());
  }
  if (params_.crashes) {
    crash_injector_ = std::make_unique<sim::CrashInjector>(*world_,
                                                           *params_.crashes);
    crash_injector_->start(topo.servers());
  }
}

Deployment::~Deployment() {
  // Injector timers capture `this` of the injectors and live on the world's
  // scheduler; stop them so a deployment that outlives its run (tests
  // poking the world afterwards) cannot fire into freed injectors, and so
  // up/down churn never reschedules past the experiment horizon.
  if (injector_ != nullptr) injector_->stop();
  if (crash_injector_ != nullptr) crash_injector_->stop();
}

rpc::QrpcOptions Deployment::rpc_options() const {
  rpc::QrpcOptions o;
  if (params_.op_deadline < sim::kTimeInfinity) {
    o.deadline = params_.op_deadline;
  }
  return o;
}

AppClient::Params Deployment::client_params() const {
  AppClient::Params p;
  p.write_ratio = params_.write_ratio;
  p.burstiness = params_.burstiness;
  p.locality = params_.locality;
  p.total_requests = params_.requests_per_client;
  p.think_time = params_.think_time;
  p.op_deadline = params_.op_deadline;
  p.choose_object = params_.choose_object;
  return p;
}

// ---------------------------------------------------------------------------
// Wiring helpers (used by the protocol factories in workload/wiring.cpp)
// ---------------------------------------------------------------------------

void Deployment::install_front_end(std::size_t server_index,
                                   std::shared_ptr<protocols::ServiceClient>
                                       sc) {
  const NodeId n = world_->topology().server(server_index);
  auto fe = std::make_unique<FrontEnd>(*world_, n, std::move(sc));
  FrontEnd* fe_raw = fe.get();
  EdgeNode& node = *servers_.at(server_index);
  node.add_handler([fe_raw](const sim::Envelope& e) {
    return fe_raw->on_message(e);
  });
  node.add_crash_hook([fe_raw] { fe_raw->on_crash(); });
  front_ends_.push_back(std::move(fe));
}

void Deployment::install_app_clients() {
  if (params_.open_loop) {
    install_generators({});
    return;
  }
  const auto& topo = world_->topology();
  for (std::size_t c = 0; c < topo.num_clients(); ++c) {
    const NodeId cn = topo.client(c);
    auto client = std::make_unique<AppClient>(client_params());
    world_->attach(cn, *client);
    clients_.push_back(std::move(client));
  }
}

void Deployment::install_direct_clients(
    const std::function<std::shared_ptr<protocols::ServiceClient>(NodeId)>&
        make) {
  if (params_.open_loop) {
    install_generators(make);
    return;
  }
  const auto& topo = world_->topology();
  for (std::size_t c = 0; c < topo.num_clients(); ++c) {
    const NodeId cn = topo.client(c);
    auto client = std::make_unique<AppClient>(client_params(), make(cn));
    world_->attach(cn, *client);
    clients_.push_back(std::move(client));
  }
}

void Deployment::install_generators(
    const std::function<std::shared_ptr<protocols::ServiceClient>(NodeId)>&
        make) {
  const auto& topo = world_->topology();
  // One alias table per trial, shared across every site (immutable after
  // construction; sites sample it with their own rng streams).
  auto zipf = std::make_shared<const ZipfAliasTable>(
      params_.open_loop->zipf_s, params_.open_loop->objects);
  generators_.reserve(topo.num_clients());
  for (std::size_t c = 0; c < topo.num_clients(); ++c) {
    const NodeId cn = topo.client(c);
    SiteGenerator::Params gp;
    gp.ol = *params_.open_loop;
    gp.write_ratio = params_.write_ratio;
    gp.locality = params_.locality;
    gp.site = c;
    gp.seed = params_.seed;
    gp.zipf = zipf;
    auto gen = make ? std::make_unique<SiteGenerator>(std::move(gp), make(cn))
                    : std::make_unique<SiteGenerator>(std::move(gp));
    world_->attach(cn, *gen);
    generators_.push_back(std::move(gen));
  }
}

// ---------------------------------------------------------------------------
// Running and collecting
// ---------------------------------------------------------------------------

void Deployment::start_clients() {
  for (auto& c : clients_) c->start();
  for (auto& g : generators_) g->start();
}

bool Deployment::clients_done() const {
  for (const auto& c : clients_) {
    if (!c->done()) return false;
  }
  for (const auto& g : generators_) {
    if (!g->done()) return false;
  }
  return true;
}

ExperimentResult Deployment::run() {
  start_clients();
  while (!clients_done() && world_->now() < params_.max_sim_time) {
    world_->run_for(sim::seconds(1));
  }
  return collect();
}

ExperimentResult Deployment::collect() {
  ExperimentResult r;
  for (const auto& c : clients_) {
    r.history.append(c->history());
    r.rejected_reads += c->rejected_reads();
    r.rejected_writes += c->rejected_writes();
  }
  for (const auto& g : generators_) {
    r.history.append(g->history());
    r.rejected_reads += g->rejected_reads();
    r.rejected_writes += g->rejected_writes();
  }
  for (const OpRecord& op : r.history.ops()) {
    if (!op.ok) continue;
    const double ms = sim::to_ms(op.completed - op.invoked);
    r.all_ms.add(ms);
    if (op.kind == msg::OpKind::kRead) {
      r.read_ms.add(ms);
      ++r.completed_reads;
    } else {
      r.write_ms.add(ms);
      ++r.completed_writes;
    }
  }
  r.total_messages = world_->message_stats().total();
  r.total_bytes = world_->message_stats().total_bytes();
  r.message_table = world_->message_stats().table();
  const auto total = r.total_requests();
  if (total != 0) {
    r.messages_per_request = static_cast<double>(r.total_messages) /
                             static_cast<double>(total);
    r.bytes_per_request = static_cast<double>(r.total_bytes) /
                          static_cast<double>(total);
  }
  r.violations = r.history.check_regular();
  r.sim_duration = world_->now();
  if (params_.staleness) {
    // Post-hoc age-of-information over the merged history: a pure
    // computation, so it is byte-identical at any --jobs/--world-threads
    // and perturbs nothing (the run is already over).
    obs::StalenessTracker tracker;
    for (const OpRecord& op : r.history.ops()) {
      if (op.ok && op.kind == msg::OpKind::kWrite) {
        tracker.add_write(op.object.value(), op.completed, op.clock);
      }
    }
    tracker.seal();
    obs::Histogram& age_hist =
        world_->metrics().histogram("staleness.read_age_ms");
    obs::Counter& reads = world_->metrics().counter("staleness.reads");
    obs::Counter& stale = world_->metrics().counter("staleness.stale_reads");
    for (const OpRecord& op : r.history.ops()) {
      if (!op.ok || op.kind != msg::OpKind::kRead) continue;
      const std::int64_t age =
          tracker.read_age(op.object.value(), op.invoked, op.clock);
      age_hist.observe(sim::to_ms(age));
      reads.inc();
      if (age > 0) stale.inc();
    }
  }
  r.metrics = world_->metrics().snapshot();
  return r;
}

core::IqsServer* Deployment::iqs_server(NodeId n) {
  auto it = dqvl_.iqs.find(n.value());
  return it == dqvl_.iqs.end() ? nullptr : it->second.get();
}

core::OqsServer* Deployment::oqs_server(NodeId n) {
  auto it = dqvl_.oqs.find(n.value());
  return it == dqvl_.oqs.end() ? nullptr : it->second.get();
}

ExperimentResult run_experiment(const ExperimentParams& params) {
  Deployment d(params);
  return d.run();
}

}  // namespace dq::workload
