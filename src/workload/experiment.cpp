#include "workload/experiment.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/assert.h"
#include "protocols/dq_adapter.h"
#include "quorum/quorum.h"

namespace dq::workload {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kDqvl: return "DQVL";
    case Protocol::kDqvlAtomic: return "DQVL-atomic";
    case Protocol::kDqBasic: return "DQ-basic";
    case Protocol::kMajority: return "majority";
    case Protocol::kPrimaryBackup: return "primary/backup";
    case Protocol::kPrimaryBackupSync: return "primary/backup-sync";
    case Protocol::kRowa: return "ROWA";
    case Protocol::kRowaAsync: return "ROWA-Async";
  }
  return "?";
}

std::vector<Protocol> paper_protocols() {
  return {Protocol::kDqvl, Protocol::kPrimaryBackup, Protocol::kMajority,
          Protocol::kRowa, Protocol::kRowaAsync};
}

Deployment::Deployment(const ExperimentParams& params) : params_(params) {
  sim::Topology topo_desc(params_.topo);
  sim::World::Parallelism parallel;
  if (params_.world_threads >= 1) {
    if (params_.failures || params_.crashes) {
      // Fault/crash injectors mutate cross-partition reachability mid-run,
      // which the conservative engine's lookahead cannot see.  Serial keeps
      // them exact; note it so a benchmark user isn't silently slower.
      std::fprintf(stderr,
                   "note: --world-threads ignored: failure/crash injection "
                   "requires the serial engine\n");
    } else {
      parallel.partitions = params_.world_partitions > 0
                                ? params_.world_partitions
                                : sim::par::default_partition_count(topo_desc);
      parallel.threads = params_.world_threads;
    }
  }
  world_ = std::make_unique<sim::World>(std::move(topo_desc), params_.seed,
                                        parallel);
  const auto& topo = world_->topology();

  // Drifting clocks (servers and clients alike).
  if (params_.max_drift > 0.0) {
    Rng clock_rng(params_.seed ^ 0xC10CC10CULL);
    for (std::size_t i = 0; i < topo.num_nodes(); ++i) {
      world_->set_clock(NodeId(static_cast<std::uint32_t>(i)),
                        sim::DriftClock::random(clock_rng, params_.max_drift,
                                                sim::seconds(1)));
    }
  }

  world_->faults().set_loss_probability(params_.loss);

  // One composite actor per server.
  servers_.reserve(topo.num_servers());
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    auto node = std::make_unique<EdgeNode>();
    world_->attach(topo.server(i), *node);
    servers_.push_back(std::move(node));
  }

  switch (params_.protocol) {
    case Protocol::kDqvl:
    case Protocol::kDqvlAtomic:
    case Protocol::kDqBasic:
      build_dqvl();
      break;
    case Protocol::kMajority:
      build_majority();
      break;
    case Protocol::kPrimaryBackup:
      build_primary_backup(protocols::PbMode::kAsyncPropagation);
      break;
    case Protocol::kPrimaryBackupSync:
      build_primary_backup(protocols::PbMode::kSyncPropagation);
      break;
    case Protocol::kRowa:
      build_rowa();
      break;
    case Protocol::kRowaAsync:
      build_rowa_async();
      break;
  }

  if (params_.failures) {
    injector_ = std::make_unique<sim::FailureInjector>(*world_,
                                                       *params_.failures);
    injector_->start(topo.servers());
  }
  if (params_.crashes) {
    crash_injector_ = std::make_unique<sim::CrashInjector>(*world_,
                                                           *params_.crashes);
    crash_injector_->start(topo.servers());
  }
}

Deployment::~Deployment() {
  // Injector timers capture `this` of the injectors and live on the world's
  // scheduler; stop them so a deployment that outlives its run (tests
  // poking the world afterwards) cannot fire into freed injectors, and so
  // up/down churn never reschedules past the experiment horizon.
  if (injector_ != nullptr) injector_->stop();
  if (crash_injector_ != nullptr) crash_injector_->stop();
}

rpc::QrpcOptions Deployment::rpc_options() const {
  rpc::QrpcOptions o;
  if (params_.op_deadline < sim::kTimeInfinity) {
    o.deadline = params_.op_deadline;
  }
  return o;
}

AppClient::Params Deployment::client_params() const {
  AppClient::Params p;
  p.write_ratio = params_.write_ratio;
  p.burstiness = params_.burstiness;
  p.locality = params_.locality;
  p.total_requests = params_.requests_per_client;
  p.think_time = params_.think_time;
  p.op_deadline = params_.op_deadline;
  p.choose_object = params_.choose_object;
  return p;
}

// ---------------------------------------------------------------------------
// Protocol wiring
// ---------------------------------------------------------------------------

void Deployment::build_dqvl() {
  const auto& topo = world_->topology();
  const QuorumSpec& spec = params_.iqs;
  DQ_INVARIANT(spec.size() >= 1 && spec.size() <= topo.num_servers(),
               "IQS spec size out of range");

  std::vector<NodeId> all = topo.servers();
  std::vector<NodeId> iqs_members(
      all.begin(), all.begin() + static_cast<std::ptrdiff_t>(spec.size()));
  auto cfg = std::make_shared<core::DqConfig>(core::DqConfig::headline(
      all, iqs_members,
      params_.protocol == Protocol::kDqBasic ? sim::kTimeInfinity
                                             : params_.lease_length));
  cfg->iqs = spec.build(iqs_members);
  if (params_.oqs_read_quorum > 1) {
    // |orq| = r implies |owq| = n - r + 1 for intersection.
    const std::size_t n = all.size();
    DQ_INVARIANT(params_.oqs_read_quorum <= n, "oqs_read_quorum too large");
    cfg->oqs = std::make_shared<quorum::ThresholdQuorum>(
        all, params_.oqs_read_quorum, n - params_.oqs_read_quorum + 1);
  }
  cfg->object_lease_length = params_.object_lease_length;
  cfg->volumes = store::VolumeMap(params_.num_volumes);
  cfg->max_delayed_per_volume = params_.max_delayed_per_volume;
  cfg->max_drift = params_.max_drift;
  cfg->suppression_enabled = params_.suppression;
  cfg->proactive_volume_renewal = params_.proactive_renewal;
  cfg->batch_volume_renewals = params_.batch_renewals;
  cfg->rpc = rpc_options();
  cfg->wal = params_.wal;
  dq_cfg_ = cfg;

  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    const NodeId n = topo.server(i);
    EdgeNode& node = *servers_[i];

    // Front end (service client) -- must see replies first.
    std::shared_ptr<protocols::ServiceClient> sc;
    if (params_.protocol == Protocol::kDqvlAtomic) {
      sc = std::make_shared<protocols::DqAtomicServiceClient>(*world_, n,
                                                              dq_cfg_);
    } else {
      sc = std::make_shared<protocols::DqServiceClient>(*world_, n, dq_cfg_);
    }
    auto fe = std::make_unique<FrontEnd>(*world_, n, sc);
    FrontEnd* fe_raw = fe.get();
    node.add_handler([fe_raw](const sim::Envelope& e) {
      return fe_raw->on_message(e);
    });
    node.add_crash_hook([fe_raw] { fe_raw->on_crash(); });
    front_ends_.push_back(std::move(fe));

    // OQS member (every server).
    auto oqs = std::make_unique<core::OqsServer>(*world_, n, dq_cfg_);
    core::OqsServer* oqs_raw = oqs.get();
    node.add_handler([oqs_raw](const sim::Envelope& e) {
      return oqs_raw->on_message(e);
    });
    node.add_crash_hook([oqs_raw] { oqs_raw->on_crash(); },
                        [oqs_raw] { oqs_raw->on_recover(); });
    oqs_.emplace(n.value(), std::move(oqs));

    // IQS member (first iqs_size servers).
    if (dq_cfg_->iqs->is_member(n)) {
      auto iqs = std::make_unique<core::IqsServer>(*world_, n, dq_cfg_);
      core::IqsServer* iqs_raw = iqs.get();
      node.add_handler([iqs_raw](const sim::Envelope& e) {
        return iqs_raw->on_message(e);
      });
      node.add_crash_hook([iqs_raw] { iqs_raw->on_crash(); },
                          [iqs_raw] { iqs_raw->on_recover(); });
      iqs_.emplace(n.value(), std::move(iqs));
    }
  }
  build_clients_via_front_end();
}

void Deployment::build_majority() {
  const auto& topo = world_->topology();
  auto system = std::shared_ptr<const quorum::QuorumSystem>(
      quorum::ThresholdQuorum::majority(topo.servers()));
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    auto srv = std::make_unique<protocols::MajorityServer>(
        *world_, topo.server(i), params_.wal);
    protocols::MajorityServer* raw = srv.get();
    servers_[i]->add_handler([raw](const sim::Envelope& e) {
      return raw->on_message(e);
    });
    servers_[i]->add_crash_hook([raw] { raw->on_crash(); },
                                [raw] { raw->on_recover(); });
    maj_servers_.push_back(std::move(srv));
  }
  // Direct-access clients (the paper's majority latency is insensitive to
  // edge locality).
  for (std::size_t c = 0; c < topo.num_clients(); ++c) {
    const NodeId cn = topo.client(c);
    auto sc = std::make_shared<protocols::MajorityClient>(*world_, cn, system,
                                                          rpc_options());
    auto client = std::make_unique<AppClient>(client_params(), sc);
    world_->attach(cn, *client);
    clients_.push_back(std::move(client));
  }
}

void Deployment::build_primary_backup(protocols::PbMode mode) {
  const auto& topo = world_->topology();
  auto cfg = std::make_shared<protocols::PbConfig>();
  // Primary on the last server: with the default client homes (0, 1, 2, ...)
  // no client is colocated with the primary, matching the paper's setting
  // where the primary is a WAN hop away.
  cfg->primary = topo.server(topo.num_servers() - 1);
  cfg->replicas = topo.servers();
  cfg->mode = mode;
  cfg->rpc = rpc_options();
  cfg->wal = params_.wal;
  pb_cfg_ = cfg;

  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    auto srv = std::make_unique<protocols::PbServer>(*world_, topo.server(i),
                                                     pb_cfg_);
    protocols::PbServer* raw = srv.get();
    servers_[i]->add_handler([raw](const sim::Envelope& e) {
      return raw->on_message(e);
    });
    servers_[i]->add_crash_hook([raw] { raw->on_crash(); },
                                [raw] { raw->on_recover(); });
    pb_servers_.push_back(std::move(srv));
  }
  for (std::size_t c = 0; c < topo.num_clients(); ++c) {
    const NodeId cn = topo.client(c);
    auto sc = std::make_shared<protocols::PbClient>(*world_, cn, pb_cfg_);
    auto client = std::make_unique<AppClient>(client_params(), sc);
    world_->attach(cn, *client);
    clients_.push_back(std::move(client));
  }
}

void Deployment::build_rowa() {
  const auto& topo = world_->topology();
  auto system = std::shared_ptr<const quorum::QuorumSystem>(
      quorum::ThresholdQuorum::rowa(topo.servers()));
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    auto srv = std::make_unique<protocols::RowaServer>(*world_,
                                                       topo.server(i));
    rowa_servers_.push_back(std::move(srv));
  }
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    const NodeId n = topo.server(i);
    auto sc = std::make_shared<protocols::RowaClient>(
        *world_, n, system, rowa_servers_[i].get(), rpc_options());
    auto fe = std::make_unique<FrontEnd>(*world_, n, sc);
    FrontEnd* fe_raw = fe.get();
    protocols::RowaServer* srv_raw = rowa_servers_[i].get();
    servers_[i]->add_handler([fe_raw](const sim::Envelope& e) {
      return fe_raw->on_message(e);
    });
    servers_[i]->add_handler([srv_raw](const sim::Envelope& e) {
      return srv_raw->on_message(e);
    });
    front_ends_.push_back(std::move(fe));
  }
  build_clients_via_front_end();
}

void Deployment::build_rowa_async() {
  const auto& topo = world_->topology();
  auto cfg = std::make_shared<protocols::RowaAsyncConfig>();
  cfg->replicas = topo.servers();
  cfg->rpc = rpc_options();
  async_cfg_ = cfg;
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    const NodeId n = topo.server(i);
    auto srv = std::make_unique<protocols::RowaAsyncServer>(*world_, n,
                                                            async_cfg_);
    auto sc = std::make_shared<protocols::RowaAsyncClient>(*world_, n, n,
                                                           rpc_options());
    auto fe = std::make_unique<FrontEnd>(*world_, n, sc);
    FrontEnd* fe_raw = fe.get();
    protocols::RowaAsyncServer* srv_raw = srv.get();
    servers_[i]->add_handler([fe_raw](const sim::Envelope& e) {
      return fe_raw->on_message(e);
    });
    servers_[i]->add_handler([srv_raw](const sim::Envelope& e) {
      return srv_raw->on_message(e);
    });
    srv->start_anti_entropy();
    async_servers_.push_back(std::move(srv));
    front_ends_.push_back(std::move(fe));
  }
  build_clients_via_front_end();
}

void Deployment::build_clients_via_front_end() {
  const auto& topo = world_->topology();
  for (std::size_t c = 0; c < topo.num_clients(); ++c) {
    const NodeId cn = topo.client(c);
    auto client = std::make_unique<AppClient>(client_params());
    world_->attach(cn, *client);
    clients_.push_back(std::move(client));
  }
}

// ---------------------------------------------------------------------------
// Running and collecting
// ---------------------------------------------------------------------------

void Deployment::start_clients() {
  for (auto& c : clients_) c->start();
}

bool Deployment::clients_done() const {
  for (const auto& c : clients_) {
    if (!c->done()) return false;
  }
  return true;
}

ExperimentResult Deployment::run() {
  start_clients();
  while (!clients_done() && world_->now() < params_.max_sim_time) {
    world_->run_for(sim::seconds(1));
  }
  return collect();
}

ExperimentResult Deployment::collect() {
  ExperimentResult r;
  for (const auto& c : clients_) {
    r.history.append(c->history());
    r.rejected_reads += c->rejected_reads();
    r.rejected_writes += c->rejected_writes();
  }
  for (const OpRecord& op : r.history.ops()) {
    if (!op.ok) continue;
    const double ms = sim::to_ms(op.completed - op.invoked);
    r.all_ms.add(ms);
    if (op.kind == msg::OpKind::kRead) {
      r.read_ms.add(ms);
      ++r.completed_reads;
    } else {
      r.write_ms.add(ms);
      ++r.completed_writes;
    }
  }
  r.total_messages = world_->message_stats().total();
  r.total_bytes = world_->message_stats().total_bytes();
  r.message_table = world_->message_stats().table();
  const auto total = r.total_requests();
  if (total != 0) {
    r.messages_per_request = static_cast<double>(r.total_messages) /
                             static_cast<double>(total);
    r.bytes_per_request = static_cast<double>(r.total_bytes) /
                          static_cast<double>(total);
  }
  r.violations = r.history.check_regular();
  r.sim_duration = world_->now();
  r.metrics = world_->metrics().snapshot();
  return r;
}

core::IqsServer* Deployment::iqs_server(NodeId n) {
  auto it = iqs_.find(n.value());
  return it == iqs_.end() ? nullptr : it->second.get();
}

core::OqsServer* Deployment::oqs_server(NodeId n) {
  auto it = oqs_.find(n.value());
  return it == oqs_.end() ? nullptr : it->second.get();
}

ExperimentResult run_experiment(const ExperimentParams& params) {
  Deployment d(params);
  return d.run();
}

}  // namespace dq::workload
