// Experiment harness: builds a complete deployment of any protocol over the
// simulated edge topology, drives the closed-loop workload, and collects
// response-time / availability / message-count results.
//
// Protocols are looked up by name in the protocols::Registry; each
// registered factory wires its servers and service clients into the
// Deployment through the install_* helpers below.  The builtin protocols
// are registered in workload/wiring.cpp.
//
// This is the code path behind every response-time and overhead figure
// (DESIGN.md section 4), the integration tests, and the examples.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/config.h"
#include "obs/metrics.h"
#include "core/iqs_server.h"
#include "core/oqs_server.h"
#include "protocols/registry.h"
#include "protocols/service_client.h"
#include "rpc/qrpc.h"
#include "sim/failure.h"
#include "sim/world.h"
#include "workload/app_client.h"
#include "workload/frontend.h"
#include "workload/history.h"
#include "workload/node.h"
#include "workload/open_loop.h"
#include "workload/quorum_spec.h"

namespace dq::workload {

// Registry access that guarantees the builtin protocols are registered
// (static-library builds would otherwise dead-strip self-registration TUs).
[[nodiscard]] const protocols::ProtocolInfo* find_protocol(
    const std::string& name);
[[nodiscard]] std::vector<const protocols::ProtocolInfo*> all_protocols();

// Display name for dq.report.v1 ("DQVL", "primary/backup", ...), from the
// registry descriptor; "?" for unregistered names.
[[nodiscard]] const char* protocol_name(const std::string& name);
// The five protocols of the paper's Figures 6-9, in figure order.
[[nodiscard]] std::vector<std::string> paper_protocols();

struct ExperimentParams {
  std::string protocol = "dqvl";
  sim::Topology::Params topo{};  // default: 9 servers, 3 clients, paper delays

  // Dual-quorum knobs.
  // IQS shape and size: the first iqs.size() servers form the IQS.
  // QuorumSpec::majority(n) is the paper's configuration; grid(r, c) is the
  // section-6 "future work" ablation.
  QuorumSpec iqs = QuorumSpec::majority(5);
  // |orq|: 1 is the paper's headline (local reads); larger read quorums
  // shrink the OQS write quorum (paper section 6 "future work" ablation).
  std::size_t oqs_read_quorum = 1;
  sim::Duration lease_length = sim::seconds(10);
  // Object leases (paper footnote 4): kTimeInfinity = callbacks (default).
  sim::Duration object_lease_length = sim::kTimeInfinity;
  std::size_t num_volumes = 1;
  std::size_t max_delayed_per_volume = 64;  // epoch-GC bound
  double max_drift = 0.0;
  bool proactive_renewal = false;
  bool batch_renewals = false;  // with proactive_renewal: one batch per IQS member
  bool suppression = true;

  // Workload.
  double write_ratio = 0.05;
  double burstiness = 0.0;  // see AppClient::Params::burstiness
  double locality = 1.0;
  std::size_t requests_per_client = 300;
  sim::Duration think_time = 0;
  sim::Duration op_deadline = sim::kTimeInfinity;
  std::function<ObjectId(Rng&)> choose_object;  // default: own profile

  // Open-loop aggregated workload (workload/open_loop.h): when set, the
  // closed-loop AppClients are replaced by one SiteGenerator per client
  // node, and the deployment always runs on the partitioned engine
  // (world_threads == 0 sizes the worker pool at 1) so that generators emit
  // straight into partition queues.  Incompatible with failure/crash
  // injection, which is serial-engine-only.
  std::optional<OpenLoopParams> open_loop;

  // Read-time staleness (age of information): when set, collect() computes
  // per-read ages from the merged history into the staleness.* instruments
  // and the report grows a "staleness" section.  Off by default: the byte
  // layout of existing reports (goldens, checked-in baselines) is preserved.
  bool staleness = false;

  // Fault model.
  double loss = 0.0;
  std::optional<sim::FailureInjector::Params> failures;

  // Durability & crash-restart plane.  `wal` equips the servers of WAL-aware
  // protocols (DQVL family, majority, primary/backup, hermes, dynamo) with
  // a write-ahead log whose sync policy gates write acks; `crashes` drives
  // exponential crash/restart renewal processes over the servers (restart
  // runs each node's recovery hook).  Both default to off, which reproduces
  // the pre-durability behavior bit for bit.
  std::optional<store::WalParams> wal;
  std::optional<sim::CrashInjector::Params> crashes;

  // Intra-trial parallelism (--world-threads).  0 = the classic serial
  // engine.  >= 1 opts into the partitioned conservative engine with that
  // many worker threads; the partition plan is derived from the topology
  // alone, so the report is byte-identical at every world_threads >= 1 (but
  // differs from the serial engine's schedule).  Deployments with failure or
  // crash injection fall back to the serial engine (injectors mutate
  // cross-partition reachability mid-run) with a note on stderr.
  std::size_t world_threads = 0;
  // Partition-count override for tests; 0 = par::default_partition_count.
  std::size_t world_partitions = 0;

  std::uint64_t seed = 42;
  sim::Duration max_sim_time = sim::seconds(3600 * 10);
};

struct ExperimentResult {
  Summary read_ms, write_ms, all_ms;
  std::uint64_t completed_reads = 0, completed_writes = 0;
  std::uint64_t rejected_reads = 0, rejected_writes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  double messages_per_request = 0.0;
  double bytes_per_request = 0.0;
  std::map<std::string, std::uint64_t> message_table;
  History history;
  std::vector<Violation> violations;
  sim::Time sim_duration = 0;
  // Everything the obs registry accumulated during the run (protocol
  // counters, per-node load, phase histograms); see workload/report.h for
  // the JSON rendering.
  obs::MetricsSnapshot metrics;

  [[nodiscard]] std::uint64_t total_requests() const {
    return completed_reads + completed_writes + rejected_reads +
           rejected_writes;
  }
  [[nodiscard]] double availability() const {
    const auto total = total_requests();
    if (total == 0) return 1.0;
    return static_cast<double>(completed_reads + completed_writes) /
           static_cast<double>(total);
  }
};

// A fully wired deployment.  run_experiment() is the one-shot convenience;
// tests and examples use Deployment directly to inject failures mid-run or
// to drive bespoke scenarios.
class Deployment {
 public:
  explicit Deployment(const ExperimentParams& params);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] sim::World& world() { return *world_; }
  [[nodiscard]] const ExperimentParams& params() const { return params_; }

  void start_clients();
  [[nodiscard]] bool clients_done() const;
  // Run until all clients finish (or max_sim_time), then collect results.
  ExperimentResult run();

  [[nodiscard]] std::size_t num_clients() const { return clients_.size(); }
  [[nodiscard]] AppClient& client(std::size_t i) { return *clients_.at(i); }
  // Open-loop generators (empty unless params.open_loop is set).
  [[nodiscard]] std::size_t num_sites() const { return generators_.size(); }
  [[nodiscard]] SiteGenerator& site(std::size_t i) {
    return *generators_.at(i);
  }

  // The composite actor hosted on server i.  Examples and tests append
  // their own handlers here (e.g. to embed a standalone service client on
  // an edge server).
  [[nodiscard]] EdgeNode& server_node(std::size_t i) {
    return *servers_.at(i);
  }

  // -------------------------------------------------------------------------
  // Wiring helpers for protocol factories (protocols::ProtocolInfo::build).
  // -------------------------------------------------------------------------

  // Embed `sc` as server i's front end: FrontEnd construction, the message
  // handler (registered FIRST, so the service client sees replies before
  // the protocol's server roles), and the crash hook -- the block every
  // build_* function used to repeat.
  void install_front_end(std::size_t server_index,
                         std::shared_ptr<protocols::ServiceClient> sc);
  // Closed-loop application clients that route through the front ends
  // (locality-aware protocols: DQVL, ROWA, ROWA-Async, hermes, dynamo).
  void install_app_clients();
  // Closed-loop clients that each own a direct-access service client
  // (majority, primary/backup: latency is insensitive to edge locality).
  void install_direct_clients(
      const std::function<std::shared_ptr<protocols::ServiceClient>(NodeId)>&
          make);
  // Keep a protocol component alive for the deployment's lifetime.
  void retain(std::shared_ptr<void> component) {
    retained_.push_back(std::move(component));
  }

  [[nodiscard]] AppClient::Params client_params() const;
  [[nodiscard]] rpc::QrpcOptions rpc_options() const;

  // Dual-quorum internals, published by the DQVL factory so tests can poke
  // individual IQS/OQS servers (null/empty under other protocols).
  struct DqvlRuntime {
    std::shared_ptr<const core::DqConfig> cfg;
    std::map<std::uint32_t, std::unique_ptr<core::IqsServer>> iqs;
    std::map<std::uint32_t, std::unique_ptr<core::OqsServer>> oqs;
  };
  void set_dqvl_runtime(DqvlRuntime rt) { dqvl_ = std::move(rt); }
  [[nodiscard]] core::IqsServer* iqs_server(NodeId n);
  [[nodiscard]] core::OqsServer* oqs_server(NodeId n);
  [[nodiscard]] const std::shared_ptr<const core::DqConfig>& dq_config()
      const {
    return dqvl_.cfg;
  }

  ExperimentResult collect();

 private:
  void install_generators(
      const std::function<std::shared_ptr<protocols::ServiceClient>(NodeId)>&
          make);

  ExperimentParams params_;
  std::unique_ptr<sim::World> world_;
  std::unique_ptr<sim::FailureInjector> injector_;
  std::unique_ptr<sim::CrashInjector> crash_injector_;

  std::vector<std::unique_ptr<EdgeNode>> servers_;
  std::vector<std::unique_ptr<AppClient>> clients_;
  std::vector<std::unique_ptr<SiteGenerator>> generators_;

  DqvlRuntime dqvl_;
  // Protocol components owned by the factory that built this deployment
  // (servers, configs); destroyed before world_ (declared after it).
  std::vector<std::shared_ptr<void>> retained_;
  std::vector<std::unique_ptr<FrontEnd>> front_ends_;
};

[[nodiscard]] ExperimentResult run_experiment(const ExperimentParams& params);

}  // namespace dq::workload
