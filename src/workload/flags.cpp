#include "workload/flags.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

namespace dq::workload {

const std::vector<FlagHelp>& experiment_flag_help() {
  static const std::vector<FlagHelp> kHelp = {
      {"protocol", "registered protocol name (default dqvl; 'help' lists"
                   " them)"},
      {"writes", "write ratio in [0,1] (default 0.05)"},
      {"locality", "access locality in [0,1] (default 1.0)"},
      {"burst", "workload burstiness in [0,1] (default 0)"},
      {"servers", "number of edge servers (default 9)"},
      {"clients", "number of application clients (default 3)"},
      {"requests", "requests per client (default 300)"},
      {"iqs", "IQS spec: majority:N | grid:RxC | read-one:N | N (default"
              " majority:5)"},
      {"orq", "OQS read quorum size (default 1)"},
      {"lease-ms", "volume lease length in ms (default 10000)"},
      {"obj-lease-ms", "object lease length in ms (default infinite)"},
      {"volumes", "number of volumes (default 1)"},
      {"drift", "max clock drift rate (default 0)"},
      {"jitter", "multiplicative delay jitter in [0,1): delays become"
                 " d*(1+U[0,jitter]) (default 0)"},
      {"loss", "message loss probability (default 0)"},
      {"node-unavail", "per-node unavailability for failure injection"},
      {"wal", "durability: sync | group | async (enables the WAL)"},
      {"wal-sync-ms", "WAL sync latency in ms (default 2)"},
      {"wal-flush-ms", "WAL group-commit flush interval in ms (default 10)"},
      {"wal-torn-tail", "model torn-tail faults on crash (default off)"},
      {"crash-mttc-ms", "mean time to crash per server in ms (enables"
                        " crash/restart injection)"},
      {"crash-downtime-ms", "mean post-crash downtime in ms (default 2000)"},
      {"deadline-ms", "per-op deadline in ms (default: none)"},
      {"think-ms", "client think time in ms (default 0)"},
      {"world-threads", "intra-trial parallelism: run each trial on the"
                        " partitioned engine with N worker threads (default"
                        " 0 = serial engine; output is identical for every"
                        " N >= 1)"},
      {"world-partitions", "partition-count override for the partitioned"
                           " engine (default 0 = derived from topology)"},
      {"seed", "RNG seed (default 42)"},
      {"object", "single shared object id (default: per-client objects)"},
      {"staleness", "record per-read staleness (age of information) and add"
                    " the staleness section to the report (default off)"},
      {"open-loop", "open-loop aggregated workload: one generator per site"
                    " emits a Poisson rate process on the partitioned"
                    " engine (default off)"},
      {"sites", "open-loop: number of edge sites (overrides --clients)"},
      {"clients-per-site", "open-loop: logical clients aggregated per site"
                           " (default 1000)"},
      {"client-rate", "open-loop: per-logical-client request rate in Hz"
                      " (default 0.1)"},
      {"zipf", "open-loop: Zipf exponent of object popularity (default"
               " 0.99)"},
      {"objects", "open-loop: object population size (default 100000)"},
      {"diurnal", "open-loop: diurnal sine amplitude in [0,1) (default 0;"
                  " period 60s of sim time)"},
      {"flash-crowd", "open-loop: flash crowd START:DURATION:MULTIPLIER in"
                      " seconds (e.g. 4:2:10)"},
      {"open-seconds", "open-loop: emission horizon in seconds (default"
                       " 10)"},
  };
  return kHelp;
}

std::map<std::string, std::string> parse_flag_map(int argc, char** argv,
                                                  std::string* error) {
  std::map<std::string, std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view raw = argv[i];
    if (raw.size() < 2 || raw[0] != '-' || raw[1] != '-') {
      if (error != nullptr) {
        *error = "unrecognized argument: " + std::string(raw);
      }
      return {};
    }
    const std::string_view arg = raw.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      out.emplace(std::string(arg), "1");
    } else {
      out.emplace(std::string(arg.substr(0, eq)),
                  std::string(arg.substr(eq + 1)));
    }
  }
  return out;
}

namespace {

// Pop flags[name] if present: returns the value and erases the key.
std::optional<std::string> take(std::map<std::string, std::string>& flags,
                                const char* name) {
  auto it = flags.find(name);
  if (it == flags.end()) return std::nullopt;
  std::string v = std::move(it->second);
  flags.erase(it);
  return v;
}

double take_num(std::map<std::string, std::string>& flags, const char* name,
                double dflt) {
  auto v = take(flags, name);
  return v ? std::atof(v->c_str()) : dflt;
}

}  // namespace

std::optional<ExperimentParams> params_from_flags(
    std::map<std::string, std::string>& flags, std::string* error) {
  auto fail = [error](std::string msg) -> std::optional<ExperimentParams> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };

  ExperimentParams p;
  if (auto proto_name = take(flags, "protocol")) {
    if (find_protocol(*proto_name) == nullptr) {
      return fail("unknown protocol '" + *proto_name +
                  "' (--protocol=help lists the registered protocols)");
    }
    p.protocol = *proto_name;
  }
  p.write_ratio = take_num(flags, "writes", 0.05);
  p.locality = take_num(flags, "locality", 1.0);
  p.burstiness = take_num(flags, "burst", 0.0);
  p.topo.num_servers =
      static_cast<std::size_t>(take_num(flags, "servers", 9));
  p.topo.num_clients =
      static_cast<std::size_t>(take_num(flags, "clients", 3));
  p.requests_per_client =
      static_cast<std::size_t>(take_num(flags, "requests", 300));

  if (auto iqs = take(flags, "iqs")) {
    const auto spec = QuorumSpec::parse(*iqs);
    if (!spec) {
      return fail("--iqs expects majority:N | grid:RxC | read-one:N | N,"
                  " got '" + *iqs + "'");
    }
    p.iqs = *spec;
  }
  p.oqs_read_quorum = static_cast<std::size_t>(take_num(flags, "orq", 1));
  p.lease_length = sim::milliseconds(
      static_cast<std::int64_t>(take_num(flags, "lease-ms", 10000)));
  if (flags.count("obj-lease-ms") != 0) {
    p.object_lease_length = sim::milliseconds(
        static_cast<std::int64_t>(take_num(flags, "obj-lease-ms", 0)));
  }
  p.num_volumes = static_cast<std::size_t>(take_num(flags, "volumes", 1));
  p.max_drift = take_num(flags, "drift", 0.0);
  p.topo.jitter = take_num(flags, "jitter", 0.0);
  p.loss = take_num(flags, "loss", 0.0);
  if (flags.count("node-unavail") != 0) {
    p.failures = sim::FailureInjector::Params::for_unavailability(
        take_num(flags, "node-unavail", 0.01), sim::seconds(100));
  }
  if (auto wal = take(flags, "wal")) {
    store::WalParams w;
    if (*wal == "sync") {
      w.policy = store::SyncPolicy::kSyncEveryWrite;
    } else if (*wal == "group") {
      w.policy = store::SyncPolicy::kGroupCommit;
    } else if (*wal == "async") {
      w.policy = store::SyncPolicy::kAsync;
    } else {
      return fail("--wal expects sync | group | async, got '" + *wal + "'");
    }
    w.sync_latency = sim::milliseconds(
        static_cast<std::int64_t>(take_num(flags, "wal-sync-ms", 2)));
    w.flush_interval = sim::milliseconds(
        static_cast<std::int64_t>(take_num(flags, "wal-flush-ms", 10)));
    w.torn_tail_faults = take_num(flags, "wal-torn-tail", 0.0) != 0.0;
    p.wal = w;
  }
  if (flags.count("crash-mttc-ms") != 0) {
    sim::CrashInjector::Params c;
    c.mean_time_to_crash = sim::milliseconds(
        static_cast<std::int64_t>(take_num(flags, "crash-mttc-ms", 120000)));
    c.mean_downtime = sim::milliseconds(static_cast<std::int64_t>(
        take_num(flags, "crash-downtime-ms", 2000)));
    p.crashes = c;
  }
  if (flags.count("deadline-ms") != 0) {
    p.op_deadline = sim::milliseconds(
        static_cast<std::int64_t>(take_num(flags, "deadline-ms", 0)));
  }
  p.think_time = sim::milliseconds(
      static_cast<std::int64_t>(take_num(flags, "think-ms", 0)));
  p.world_threads =
      static_cast<std::size_t>(take_num(flags, "world-threads", 0));
  p.world_partitions =
      static_cast<std::size_t>(take_num(flags, "world-partitions", 0));
  p.seed = static_cast<std::uint64_t>(take_num(flags, "seed", 42));
  if (flags.count("object") != 0) {
    const auto o = static_cast<std::uint64_t>(take_num(flags, "object", 0));
    p.choose_object = [o](Rng&) { return ObjectId(o); };
  }
  p.staleness = take_num(flags, "staleness", 0.0) != 0.0;

  if (take_num(flags, "open-loop", 0.0) != 0.0) {
    OpenLoopParams ol;
    if (flags.count("sites") != 0) {
      p.topo.num_clients =
          static_cast<std::size_t>(take_num(flags, "sites", 3));
    }
    ol.clients_per_site =
        static_cast<std::size_t>(take_num(flags, "clients-per-site", 1000));
    ol.client_rate_hz = take_num(flags, "client-rate", 0.1);
    ol.zipf_s = take_num(flags, "zipf", 0.99);
    ol.objects = static_cast<std::size_t>(take_num(flags, "objects", 100000));
    ol.diurnal_amplitude = take_num(flags, "diurnal", 0.0);
    if (ol.diurnal_amplitude < 0.0 || ol.diurnal_amplitude >= 1.0) {
      return fail("--diurnal expects an amplitude in [0,1)");
    }
    if (auto fc = take(flags, "flash-crowd")) {
      double start = 0.0, duration = 0.0, mult = 0.0;
      if (std::sscanf(fc->c_str(), "%lf:%lf:%lf", &start, &duration,
                      &mult) != 3 ||
          start < 0.0 || duration <= 0.0 || mult <= 0.0) {
        return fail("--flash-crowd expects START:DURATION:MULTIPLIER in"
                    " seconds, got '" + *fc + "'");
      }
      FlashCrowd flash;
      flash.start = sim::milliseconds(static_cast<std::int64_t>(start * 1e3));
      flash.duration =
          sim::milliseconds(static_cast<std::int64_t>(duration * 1e3));
      flash.multiplier = mult;
      ol.flash = flash;
    }
    ol.horizon = sim::milliseconds(
        static_cast<std::int64_t>(take_num(flags, "open-seconds", 10) * 1e3));
    if (p.failures || p.crashes) {
      return fail("--open-loop runs on the partitioned engine; failure/crash"
                  " injection is serial-engine-only");
    }
    p.open_loop = ol;
  }

  if (p.iqs.size() > p.topo.num_servers) {
    return fail("--iqs spec '" + p.iqs.describe() + "' needs " +
                std::to_string(p.iqs.size()) + " nodes but --servers=" +
                std::to_string(p.topo.num_servers));
  }
  return p;
}

}  // namespace dq::workload
