// Shared command-line configuration for the experiment harness.
//
// tools/dqsim and every bench accept the same --flag=value vocabulary for
// building an ExperimentParams; this module is the single definition of that
// vocabulary (it used to be duplicated between dqsim and the benches, with
// the copies drifting).
//
//   auto flags = parse_flag_map(argc, argv, &err);
//   auto params = params_from_flags(flags, &err);   // consumes known keys
//   // leftover keys in `flags` belong to the caller (--help, --trace, ...)
#pragma once

#include <map>
#include <optional>
#include <string>

#include "workload/experiment.h"

namespace dq::workload {

struct FlagHelp {
  const char* name;
  const char* help;
};

// The experiment-parameter flags params_from_flags() understands, for usage
// text.  Tool-specific flags (--help, --trace, --metrics-json, ...) are
// documented by the tools themselves.
[[nodiscard]] const std::vector<FlagHelp>& experiment_flag_help();

// Parse "--name=value" / "--name" (value "1") argv into a map.  On a
// malformed argument, returns an empty map and sets *error.
[[nodiscard]] std::map<std::string, std::string> parse_flag_map(
    int argc, char** argv, std::string* error);

// Build ExperimentParams from the flag map, ERASING every key it understands
// (so callers can reject leftovers or route them to tool-specific handling).
// Returns nullopt and sets *error on an invalid value.
//
// The --iqs flag takes a QuorumSpec: "majority:5", "grid:3x3", "read-one:9",
// or a bare count (= majority).  The open-loop flags (--open-loop, --sites,
// --clients-per-site, --client-rate, --zipf, --objects, --diurnal,
// --flash-crowd, --open-seconds) are consumed only when --open-loop is
// present; without it they are left in the map for the caller's
// unknown-flag handling.
[[nodiscard]] std::optional<ExperimentParams> params_from_flags(
    std::map<std::string, std::string>& flags, std::string* error);

}  // namespace dq::workload
