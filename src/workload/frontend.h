// Front end: the service-client role of an edge server.
//
// Receives AppRequest from application clients, executes the operation
// through the protocol's ServiceClient, and returns an AppReply.  The paper
// calls this the "front end node ... acting as a service client to the
// dual-quorum storage system" (section 2).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <utility>

#include "msg/wire.h"
#include "protocols/service_client.h"
#include "sim/world.h"

namespace dq::workload {

class FrontEnd {
 public:
  FrontEnd(sim::World& world, NodeId self,
           std::shared_ptr<protocols::ServiceClient> client)
      : world_(world), self_(self), client_(std::move(client)) {}

  bool on_message(const sim::Envelope& env) {
    // Give the embedded service client first claim on replies addressed to
    // this node.
    if (client_->on_message(env)) return true;
    const auto* req = std::get_if<msg::AppRequest>(&env.body);
    if (req == nullptr) return false;

    // At-most-once execution: application clients retransmit a lost request
    // under the same rpc id; re-executing a write would mint a second
    // logical clock for it.  In-flight duplicates are dropped (the eventual
    // reply answers both); completed ones get the cached reply resent.
    const auto key = std::make_pair(env.src, env.rpc_id);
    if (auto it = done_.find(key); it != done_.end()) {
      world_.send_tagged(self_, env.src, env.rpc_id, it->second,
                         /*is_reply=*/true);
      return true;
    }
    if (!inflight_.insert(key).second) return true;

    const NodeId src = env.src;
    const RequestId rpc = env.rpc_id;
    if (req->op == msg::OpKind::kRead) {
      client_->read(req->object, [this, src, rpc, o = req->object](
                                     bool ok, VersionedValue vv) {
        finish(src, rpc,
               msg::AppReply{ok, o, std::move(vv.value), vv.clock});
      });
    } else {
      client_->write(req->object, req->value,
                     [this, src, rpc, o = req->object](bool ok,
                                                       LogicalClock lc) {
                       finish(src, rpc, msg::AppReply{ok, o, Value{}, lc});
                     });
    }
    return true;
  }

  void on_crash() {
    client_->cancel_all();
    inflight_.clear();  // volatile; retransmissions re-execute after restart
    done_.clear();
  }

 private:
  void finish(NodeId src, RequestId rpc, msg::AppReply reply) {
    const auto key = std::make_pair(src, rpc);
    inflight_.erase(key);
    done_.emplace(key, reply);
    world_.send_tagged(self_, src, rpc, std::move(reply), /*is_reply=*/true);
  }

  sim::World& world_;
  NodeId self_;
  std::shared_ptr<protocols::ServiceClient> client_;
  std::set<std::pair<NodeId, RequestId>> inflight_;
  std::map<std::pair<NodeId, RequestId>, msg::AppReply> done_;
};

}  // namespace dq::workload
