#include "workload/history.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace dq::workload {

namespace {

std::string describe(const OpRecord& op) {
  std::ostringstream os;
  os << (op.kind == msg::OpKind::kRead ? "read" : "write") << " obj="
     << op.object << " client=" << op.client << " [" << op.invoked << ","
     << (op.ok ? op.completed : -1) << ") value='" << op.value << "' lc="
     << op.clock;
  return os.str();
}

}  // namespace

std::vector<Violation> History::check_regular() const {
  std::vector<Violation> out;

  // Partition by object.
  std::map<ObjectId, std::vector<const OpRecord*>> by_obj;
  for (const OpRecord& op : ops_) by_obj[op.object].push_back(&op);

  for (const auto& [obj, ops] : by_obj) {
    std::vector<const OpRecord*> writes;
    std::vector<const OpRecord*> reads;
    for (const OpRecord* op : ops) {
      (op->kind == msg::OpKind::kWrite ? writes : reads).push_back(op);
    }
    for (const OpRecord* r : reads) {
      if (!r->ok) continue;

      // (a) The latest write completed before the read began.
      const OpRecord* last_completed = nullptr;
      for (const OpRecord* w : writes) {
        if (!w->ok || w->completed > r->invoked) continue;
        if (last_completed == nullptr ||
            w->clock > last_completed->clock) {
          last_completed = w;
        }
      }
      bool legal = false;
      if (last_completed == nullptr) {
        // Nothing completed before the read: the initial value is legal.
        legal = r->clock == LogicalClock::zero() && r->value.empty();
      } else {
        legal = r->clock == last_completed->clock &&
                r->value == last_completed->value;
      }
      // (b) Any overlapping write (or a write that never completed and
      // started before the read finished).
      //
      // The clock may differ from the record's as long as the value matches:
      // one logical write can execute more than once when a crash wipes a
      // front end's at-most-once table and the client retransmits, and each
      // execution mints its own clock.  A reader overlapping the op may have
      // seen an earlier attempt's (value, clock) pair while the history
      // records only the attempt that finally acked.  Value-only matching is
      // sound here because workload values uniquely name their logical write;
      // the overlap requirement still holds, so a *stale* value (one whose
      // write completed before the read began) is never excused.
      if (!legal) {
        for (const OpRecord* w : writes) {
          const sim::Time w_end = w->ok ? w->completed : sim::kTimeInfinity;
          const bool overlaps = w->invoked < r->completed &&
                                w_end > r->invoked;
          if (overlaps && r->value == w->value) {
            legal = true;
            break;
          }
        }
      }
      if (!legal) {
        std::ostringstream why;
        why << "read returned value='" << r->value << "' lc=" << r->clock
            << " but the last completed write was ";
        if (last_completed == nullptr) {
          why << "(none; expected the initial value)";
        } else {
          why << describe(*last_completed);
        }
        out.push_back({*r, why.str()});
      }
    }
  }
  return out;
}

std::vector<Violation> History::check_atomic() const {
  std::vector<Violation> out = check_regular();

  std::map<ObjectId, std::vector<const OpRecord*>> by_obj;
  for (const OpRecord& op : ops_) {
    if (op.ok) by_obj[op.object].push_back(&op);
  }
  for (const auto& [obj, ops] : by_obj) {
    for (const OpRecord* a : ops) {
      for (const OpRecord* b : ops) {
        if (a == b || a->completed > b->invoked) continue;  // a precedes b?
        // a completed before b began.
        const bool a_w = a->kind == msg::OpKind::kWrite;
        const bool b_w = b->kind == msg::OpKind::kWrite;
        std::string why;
        if (a_w && b_w && !(a->clock < b->clock)) {
          why = "writes out of real-time order";
        } else if (!a_w && !b_w && b->clock < a->clock) {
          why = "new-old read inversion";
        } else if (a_w && !b_w && b->clock < a->clock) {
          why = "read missed an earlier completed write";
        }
        if (!why.empty()) {
          std::ostringstream os;
          os << why << ": earlier op lc=" << a->clock << " ["
             << a->invoked << "," << a->completed << "), later op lc="
             << b->clock << " [" << b->invoked << "," << b->completed << ")";
          out.push_back({*b, os.str()});
        }
      }
    }
  }
  return out;
}

}  // namespace dq::workload
