// Operation history recording and the regular-semantics checker.
//
// The paper guarantees regular semantics (Lamport): a read not concurrent
// with any write returns the value of the latest write that completed
// before the read began; a read concurrent with writes may also return any
// of the concurrent writes' values.
//
// Multi-writer generalization used here (writes are totally ordered by
// their logical clocks, and clock order is consistent with the real-time
// order of non-overlapping completed writes): a read r may return
//   (a) the completed write with the highest clock among those that
//       completed before r began, or
//   (b) any write whose execution interval overlaps r's, or that started
//       and never completed (its outcome is forever "concurrent").
// A read of a never-written object may return the initial (empty, clock-0)
// value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/version.h"
#include "msg/wire.h"
#include "sim/time.h"

namespace dq::workload {

struct OpRecord {
  ClientId client;
  msg::OpKind kind{};
  ObjectId object;
  sim::Time invoked = 0;
  sim::Time completed = 0;  // meaningful only when ok
  bool ok = false;          // rejected / timed-out ops have ok == false
  Value value;              // value read or written
  LogicalClock clock;       // clock returned (reads) or assigned (writes)
};

struct Violation {
  OpRecord read;
  std::string reason;
};

class History {
 public:
  void record(OpRecord op) { ops_.push_back(std::move(op)); }
  void append(const History& other) {
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  }

  [[nodiscard]] const std::vector<OpRecord>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }

  // Check every successful read against regular semantics.  Returns the
  // violations found (empty == history is regular).
  [[nodiscard]] std::vector<Violation> check_regular() const;

  // Check atomic (linearizable single-register) semantics.  For a register
  // whose writes carry distinct, totally ordered logical clocks, a history
  // is atomic iff it is regular AND real-time order is respected by clock
  // order:
  //   (1) writes: W1 completed before W2 began  =>  lc(W1) < lc(W2)
  //   (2) no new-old read inversion: R1 completed before R2 began  =>
  //       lc(R1) <= lc(R2)
  //   (3) reads vs writes: W completed before R began => lc(R) >= lc(W)
  //       (subsumed by check_regular's rule (a) but re-verified here).
  // DQVL guarantees only regular semantics; the atomic client variant
  // (core/dq_atomic_client.h) must pass this stronger check.
  [[nodiscard]] std::vector<Violation> check_atomic() const;

 private:
  std::vector<OpRecord> ops_;
};

}  // namespace dq::workload
