// EdgeNode: a composite actor hosting protocol components.
//
// A single edge server typically plays several roles at once (the paper
// notes "an IQS server could physically be on the same node as an OQS
// server"): IQS member, OQS member, and front end.  Each role is a component
// registered here; incoming envelopes are offered to components in
// registration order until one consumes them.
#pragma once

#include <functional>
#include <vector>

#include "sim/world.h"

namespace dq::workload {

class EdgeNode final : public sim::Actor {
 public:
  using Handler = std::function<bool(const sim::Envelope&)>;
  using Hook = std::function<void()>;

  void add_handler(Handler h) { handlers_.push_back(std::move(h)); }
  void add_crash_hook(Hook on_crash, Hook on_recover = {}) {
    crash_hooks_.push_back(std::move(on_crash));
    if (on_recover) recover_hooks_.push_back(std::move(on_recover));
  }

  void on_message(const sim::Envelope& env) override {
    for (auto& h : handlers_) {
      if (h(env)) return;
    }
    // Unconsumed envelopes are late replies to finished QRPC calls or
    // traffic for a role this node does not play; both are benign.
  }

  void on_crash() override {
    for (auto& h : crash_hooks_) h();
  }
  void on_recover() override {
    for (auto& h : recover_hooks_) h();
  }

 private:
  std::vector<Handler> handlers_;
  std::vector<Hook> crash_hooks_;
  std::vector<Hook> recover_hooks_;
};

}  // namespace dq::workload
