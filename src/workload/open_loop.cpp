#include "workload/open_loop.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/assert.h"

namespace dq::workload {

// ---------------------------------------------------------------------------
// ZipfAliasTable
// ---------------------------------------------------------------------------

ZipfAliasTable::ZipfAliasTable(double s, std::size_t n) : s_(s) {
  if (n == 0) n = 1;
  // The only pow() in the sampler: O(n) once per trial, never per draw.
  std::vector<double> scaled(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = std::pow(static_cast<double>(i + 1), -s);
    total += scaled[i];
  }
  norm_ = total;

  // Vose's stable alias construction: split columns into under- and
  // over-full, pair them off, each column ends up holding at most two
  // outcomes (itself and its alias).  The pairing runs in doubles; only the
  // finished split point is rounded into the packed column.
  cols_.assign(n, Col{});
  const double scale = static_cast<double>(n) / total;
  for (std::size_t i = 0; i < n; ++i) scaled[i] *= scale;
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t sm = small.back();
    small.pop_back();
    const std::uint32_t lg = large.back();
    large.pop_back();
    cols_[sm] = Col{static_cast<float>(scaled[sm]), lg};
    scaled[lg] = (scaled[lg] + scaled[sm]) - 1.0;
    (scaled[lg] < 1.0 ? small : large).push_back(lg);
  }
  // Leftovers are exactly full up to rounding; they keep prob 1.0.
}

void ZipfAliasTable::sample_many(Rng& rng, std::size_t count,
                                 std::vector<std::uint64_t>& out) const {
  out.resize(count);
  const std::size_t n = cols_.size();
  // Pass 1: take the raw 64-bit draws (identical rng sequence to `count`
  // sample() calls) and start each column load.  The prefetch is only a
  // hint -- results are byte-identical with or without it.
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t r = rng();
    out[k] = r;
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t i = static_cast<std::size_t>(
        ((r >> 32) * static_cast<std::uint64_t>(n)) >> 32);
    __builtin_prefetch(&cols_[i]);
#endif
  }
  // Pass 2: resolve each draw exactly as sample() would.
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t r = out[k];
    const std::size_t i = static_cast<std::size_t>(
        ((r >> 32) * static_cast<std::uint64_t>(n)) >> 32);
    const double u = static_cast<double>(r & 0xffffffffULL) * 0x1.0p-32;
    const Col c = cols_[i];
    out[k] = u < c.prob ? i : c.alias;
  }
}

double ZipfAliasTable::pmf(std::size_t i) const {
  return std::pow(static_cast<double>(i + 1), -s_) / norm_;
}

// ---------------------------------------------------------------------------
// RateModel
// ---------------------------------------------------------------------------

RateModel::RateModel(double base_hz, double amplitude, sim::Duration period,
                     std::optional<FlashCrowd> flash)
    : base_hz_(base_hz),
      amplitude_(amplitude),
      period_ns_(period > 0 ? static_cast<double>(period) : 1.0),
      flash_(flash) {
  DQ_INVARIANT(amplitude_ >= 0.0 && amplitude_ < 1.0,
               "diurnal amplitude must be in [0, 1)");
}

double RateModel::rate_at(sim::Time t) const {
  double r = base_hz_;
  if (amplitude_ != 0.0) {
    constexpr double kTwoPi = 6.283185307179586;
    r *= 1.0 + amplitude_ * std::sin(kTwoPi * static_cast<double>(t) /
                                     period_ns_);
  }
  if (flash_active(t)) r *= flash_->multiplier;
  return r > 0.0 ? r : 0.0;
}

double RateModel::max_rate(sim::Time t0, sim::Time t1) const {
  double r = base_hz_ * (1.0 + amplitude_);
  if (flash_ && flash_->multiplier > 1.0 &&
      t0 < flash_->start + flash_->duration && t1 > flash_->start) {
    r *= flash_->multiplier;
  }
  return r;
}

void RateModel::draw_arrivals(Rng& rng, sim::Time t0, sim::Time t1,
                              std::vector<sim::Time>& out) const {
  const double lam = max_rate(t0, t1);  // Hz
  if (lam <= 0.0 || t1 <= t0) return;
  // When the rate is constant across the window the envelope is exact and
  // every candidate is accepted -- no thinning draw.  That is the regime the
  // throughput bench runs in (flat rate), so the fast path matters.
  bool constant = amplitude_ == 0.0;
  if (constant && flash_) {
    const sim::Time fe = flash_->start + flash_->duration;
    const bool fully_in = t0 >= flash_->start && t1 <= fe;
    const bool fully_out = t1 <= flash_->start || t0 >= fe;
    constant = fully_in || fully_out;
  }
  const double mean_gap_ns = 1e9 / lam;
  double t = static_cast<double>(t0);
  const double end = static_cast<double>(t1);
  while (true) {
    t += rng.exponential(mean_gap_ns);
    if (t >= end) return;
    const auto ti = static_cast<sim::Time>(t);
    if (constant || rng.uniform() * lam < rate_at(ti)) out.push_back(ti);
  }
}

// ---------------------------------------------------------------------------
// SiteGenerator
// ---------------------------------------------------------------------------

SiteGenerator::SiteGenerator(Params p) : SiteGenerator(std::move(p), nullptr) {}

SiteGenerator::SiteGenerator(Params p,
                             std::shared_ptr<protocols::ServiceClient> direct)
    : params_(std::move(p)),
      direct_(std::move(direct)),
      zipf_(params_.zipf != nullptr
                ? params_.zipf
                : std::make_shared<const ZipfAliasTable>(params_.ol.zipf_s,
                                                         params_.ol.objects)),
      rate_(params_.ol.site_rate_hz(), params_.ol.diurnal_amplitude,
            params_.ol.diurnal_period, params_.ol.flash),
      hot_(params_.ol.hot_set_size > 0 ? params_.ol.hot_set_size : 1),
      // Sampling stream derived from (seed, site) only: the same arrivals
      // and objects come out on every engine, partition plan, and thread
      // count.  The golden-ratio multiplier decorrelates adjacent sites.
      rng_(params_.seed ^ (0x9E3779B97F4A7C15ULL *
                           static_cast<std::uint64_t>(params_.site + 1))) {}

void SiteGenerator::start() {
  DQ_INVARIANT(params_.ol.batch_window > 0, "batch window must be positive");
  obs::MetricsRegistry& m = world().metrics();
  offered_c_ = &m.counter("open_loop.offered");
  completed_c_ = &m.counter("open_loop.completed");
  failed_c_ = &m.counter("open_loop.failed");
  batches_c_ = &m.counter("open_loop.batches");
  const std::string site = "s" + std::to_string(params_.site);
  site_offered_ = &m.counter("site.offered." + site);
  site_completed_ = &m.counter("site.completed." + site);
  site_latency_ = &m.histogram("site.latency_ms." + site);
  home_ = world().topology().home_of(id());
  next_window_ = world().now();
  world().set_timer(id(), 0, [this] { run_batch(); });
}

void SiteGenerator::run_batch() {
  const sim::Time t0 = next_window_;
  // Shrink the window when the rate envelope says a full batch_window would
  // exceed max_batch_arrivals expected arrivals: bounded batch occupancy
  // keeps the partition's event heap cache-resident at any site rate.  The
  // cap is computed from the params alone, so the arrival schedule is the
  // same on every engine and at every thread count.
  sim::Duration window = params_.ol.batch_window;
  if (params_.ol.max_batch_arrivals > 0) {
    const double lam = rate_.max_rate(t0, t0 + window);  // Hz
    if (lam > 0.0) {
      const double cap_ns =
          static_cast<double>(params_.ol.max_batch_arrivals) * 1e9 / lam;
      if (cap_ns < static_cast<double>(window)) {
        window = std::max<sim::Duration>(1, static_cast<sim::Duration>(cap_ns));
      }
    }
  }
  const sim::Time t1 = std::min<sim::Time>(t0 + window, params_.ol.horizon);
  batches_c_->inc();
  arrivals_.clear();
  rate_.draw_arrivals(rng_, t0, t1, arrivals_);
  // One counter update per batch, not per request (inc() is on the profile
  // at full emission rate).
  const auto n = static_cast<std::uint64_t>(arrivals_.size());
  offered_ += n;
  offered_c_->inc(n);
  site_offered_->inc(n);
  // When the zipf draw is the only randomness per arrival (reads only, full
  // locality, no flash-crowd hot set, via front end), sample the whole batch
  // through the prefetching path.  The rng sequence -- and so every report
  // byte -- is identical to the per-arrival loop; only the memory-level
  // parallelism differs.  The condition depends on params alone, never on
  // drawn values.
  const bool batched_zipf = direct_ == nullptr && params_.write_ratio <= 0.0 &&
                            params_.locality >= 1.0 && !params_.ol.flash;
  if (batched_zipf) {
    zipf_->sample_many(rng_, arrivals_.size(), objects_);
    for (std::size_t k = 0; k < arrivals_.size(); ++k) {
      emit_read(arrivals_[k], ObjectId(objects_[k]));
    }
  } else {
    for (const sim::Time a : arrivals_) emit(a);
  }
  next_window_ = t1;
  if (t1 < params_.ol.horizon) {
    world().set_timer(id(), t1 - world().now(), [this] { run_batch(); });
  } else {
    finish_emission();
  }
}

NodeId SiteGenerator::pick_front_end() {
  // locality == 1 is the common (and bench) case; skip the draw entirely.
  if (params_.locality >= 1.0 || rng_.chance(params_.locality)) return home_;
  const auto& topo = world().topology();
  const std::size_t n = topo.num_servers();
  if (n <= 1) return home_;
  while (true) {
    const NodeId s = topo.server(rng_.below(n));
    if (s != home_) return s;
  }
}

ObjectId SiteGenerator::sample_object(sim::Time at) {
  std::uint64_t obj = zipf_->sample(rng_);
  if (rate_.flash_active(at)) {
    // Flash crowd: popularity collapses onto the recently touched set; the
    // alias table itself is never rebuilt.
    if (!hot_.empty() && rng_.chance(params_.ol.hot_fraction)) {
      obj = hot_.pick(rng_);
    }
    hot_.touch(obj);
  }
  return ObjectId(obj);
}

void SiteGenerator::emit(sim::Time arrival) {
  const bool is_write =
      params_.write_ratio > 0.0 && rng_.chance(params_.write_ratio);
  const msg::OpKind kind = is_write ? msg::OpKind::kWrite : msg::OpKind::kRead;
  const ObjectId object = sample_object(arrival);
  Value value;
  if (is_write) {
    value = "s" + std::to_string(params_.site) + "-" +
            std::to_string(++write_seq_);
  }

  if (direct_ != nullptr) {
    // Direct mode (majority, primary/backup): the protocol client issues the
    // op itself, so each arrival costs one timer on this partition's queue.
    const std::uint64_t token = ++direct_seq_;
    if (params_.ol.track_replies) {
      OpRecord rec;
      rec.client = ClientId(id().value());
      rec.kind = kind;
      rec.object = object;
      rec.invoked = arrival;
      rec.value = value;
      pending_.emplace(token, std::move(rec));
    }
    world().set_timer(id(), arrival - world().now(),
                      [this, token, kind, object, value = std::move(value)] {
                        issue_direct(token, kind, object, value);
                      });
    return;
  }

  // Via front end: the whole batch is already drawn, so hand the arrival
  // time to the network layer -- one delivery event per request, no
  // per-request timer (World::send_at).
  const NodeId fe = pick_front_end();
  // Fire-and-forget mode never matches a reply, so don't mint an rpc id
  // (0 marks one-way traffic, see sim::Envelope).
  const RequestId rpc =
      params_.ol.track_replies ? world().fresh_rpc_id() : RequestId(0);
  if (params_.ol.track_replies) {
    OpRecord rec;
    rec.client = ClientId(id().value());
    rec.kind = kind;
    rec.object = object;
    rec.invoked = arrival;
    rec.value = value;
    pending_.emplace(rpc.value(), std::move(rec));
  }
  msg::AppRequest req;
  req.op = kind;
  req.object = object;
  req.value = std::move(value);
  world().send_at(id(), fe, arrival, rpc, std::move(req));
}

void SiteGenerator::emit_read(sim::Time arrival, ObjectId object) {
  const RequestId rpc =
      params_.ol.track_replies ? world().fresh_rpc_id() : RequestId(0);
  if (params_.ol.track_replies) {
    OpRecord rec;
    rec.client = ClientId(id().value());
    rec.kind = msg::OpKind::kRead;
    rec.object = object;
    rec.invoked = arrival;
    pending_.emplace(rpc.value(), std::move(rec));
  }
  msg::AppRequest req;
  req.op = msg::OpKind::kRead;
  req.object = object;
  world().send_at(id(), home_, arrival, rpc, std::move(req));
}

void SiteGenerator::issue_direct(std::uint64_t token, msg::OpKind kind,
                                 ObjectId object, Value value) {
  if (kind == msg::OpKind::kWrite) {
    direct_->write(object, std::move(value),
                   [this, token](bool ok, LogicalClock lc) {
                     complete(token, ok, Value{}, lc);
                   });
  } else {
    direct_->read(object, [this, token](bool ok, VersionedValue vv) {
      complete(token, ok, std::move(vv.value), vv.clock);
    });
  }
}

void SiteGenerator::complete(std::uint64_t key, bool ok, Value value,
                             LogicalClock lc) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;  // duplicate, or already drained
  OpRecord rec = std::move(it->second);
  pending_.erase(it);
  rec.ok = ok;
  rec.completed = world().now();
  if (rec.kind == msg::OpKind::kRead) rec.value = std::move(value);
  rec.clock = lc;
  if (ok) {
    ++completed_;
    completed_c_->inc();
    site_completed_->inc();
    site_latency_->observe(sim::to_ms(rec.completed - rec.invoked));
  } else {
    ++failed_;
    failed_c_->inc();
    ++(rec.kind == msg::OpKind::kRead ? rejected_reads_ : rejected_writes_);
  }
  history_.record(std::move(rec));
  if (emission_done_ && pending_.empty()) {
    drain_timer_.cancel();
    drain_done_ = true;
  }
}

void SiteGenerator::finish_emission() {
  emission_done_ = true;
  if (!params_.ol.track_replies) return;
  if (pending_.empty()) {
    drain_done_ = true;
    return;
  }
  drain_timer_ = world().set_timer(id(), params_.ol.drain,
                                   [this] { finish_drain(); });
}

void SiteGenerator::finish_drain() {
  drain_done_ = true;
  for (auto& [key, rec] : pending_) {
    rec.ok = false;
    rec.completed = world().now();
    ++failed_;
    failed_c_->inc();
    ++(rec.kind == msg::OpKind::kRead ? rejected_reads_ : rejected_writes_);
    history_.record(std::move(rec));
  }
  pending_.clear();
}

void SiteGenerator::on_message(const sim::Envelope& env) {
  if (direct_ != nullptr && direct_->on_message(env)) return;
  const auto* rep = std::get_if<msg::AppReply>(&env.body);
  if (rep == nullptr) return;
  if (!params_.ol.track_replies) return;
  complete(env.rpc_id.value(), rep->ok, rep->value, rep->clock);
}

}  // namespace dq::workload
