// Open-loop aggregated workload engine.
//
// The paper's closed-loop AppClient issues the next request only after the
// previous reply; that caps offered load at (clients / RTT) and can never
// reproduce the sustained arrival processes that staleness / age-of-
// information behavior depends on.  Here one SiteGenerator per edge site
// aggregates an arbitrary number of logical clients as a *rate process*:
// simulated-client count costs nothing per client -- no per-client actor,
// no per-client event, just a per-site arrival rate.
//
// Performance is the point, at three layers:
//   1. O(1) object sampling: Zipf(s, N) popularity over up to millions of
//      objects via a Walker/Vose alias table built once per trial (no
//      per-draw pow/log, no CDF binary search), plus a small LRU-style
//      hot-set remap so flash crowds concentrate mass on recently touched
//      objects without rebuilding the table.
//   2. O(1) amortized arrival sampling: nonhomogeneous Poisson arrivals
//      (diurnal sinusoid + optional flash-crowd spike) by thinning against
//      a per-window max-rate envelope, drawn in batches that are sorted by
//      construction -- the scheduler sees one timer per batch, not one per
//      request.
//   3. Partition-local emission: a generator is attached at its client
//      node, which the partition plan co-locates with its home server, so
//      its batch timer runs on that partition's scheduler and its emitted
//      request events go straight into the partition's queue / RNG stream /
//      metrics lane (World::send_at).  Reports stay byte-identical at any
//      --world-threads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "msg/wire.h"
#include "obs/metrics.h"
#include "protocols/service_client.h"
#include "sim/time.h"
#include "sim/world.h"
#include "workload/history.h"

namespace dq::workload {

// A load spike: between [start, start + duration) the arrival rate is
// multiplied and object popularity collapses onto the hot set.
struct FlashCrowd {
  sim::Time start = 0;
  sim::Duration duration = 0;
  double multiplier = 1.0;
};

struct OpenLoopParams {
  // Logical clients aggregated per site and the per-client request rate.
  // The site's offered rate is the product; neither factor costs anything
  // individually.
  std::size_t clients_per_site = 1000;
  double client_rate_hz = 0.1;

  // Object popularity: Zipf(s) over `objects` ids.
  double zipf_s = 0.99;
  std::size_t objects = 100000;

  // Diurnal load: rate(t) = site_rate * (1 + amplitude * sin(2*pi*t /
  // period)).  amplitude in [0, 1); 0 = flat.
  double diurnal_amplitude = 0.0;
  sim::Duration diurnal_period = sim::seconds(60);

  // Optional flash crowd (rate spike + popularity concentration).
  std::optional<FlashCrowd> flash;
  // During a flash, a draw lands in the hot set with this probability; the
  // hot set tracks the `hot_set_size` most recently touched objects.
  double hot_fraction = 0.8;
  std::size_t hot_set_size = 16;

  // Emission horizon and batching.  Arrivals are drawn per batch_window;
  // after `horizon` the generator stops emitting and waits up to `drain`
  // for outstanding replies before recording them as failed.
  sim::Duration horizon = sim::seconds(10);
  sim::Duration batch_window = sim::milliseconds(100);
  sim::Duration drain = sim::seconds(30);

  // Upper bound on expected arrivals per batch.  Every arrival in a batch
  // becomes a pending delivery the moment the batch runs, so at high rates
  // an uncapped window floods the partition's event heap until it falls out
  // of cache and inflates the per-event cost.  When a window would exceed
  // this, the generator shrinks the window (deterministically, from the
  // rate envelope alone) instead.  0 disables the cap.
  std::size_t max_batch_arrivals = 4096;

  // When false the generator fires requests and forgets them: no pending
  // map, no history, no reply matching.  Benches drive sink servers this
  // way to measure pure emission throughput.
  bool track_replies = true;

  [[nodiscard]] double site_rate_hz() const {
    return static_cast<double>(clients_per_site) * client_rate_hz;
  }
};

// Walker/Vose alias table over the Zipf(s, n) pmf: O(n) build (the only
// place pow() appears), O(1) sample from a single 64-bit draw.  Immutable
// after construction, so one table is shared by every site in a trial.
class ZipfAliasTable {
 public:
  ZipfAliasTable(double s, std::size_t n);

  [[nodiscard]] std::size_t size() const { return cols_.size(); }

  // One rng draw: high 32 bits pick the column, low 32 bits the coin.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const {
    const std::uint64_t r = rng();
    const std::size_t n = cols_.size();
    const std::size_t i =
        static_cast<std::size_t>(((r >> 32) * static_cast<std::uint64_t>(n)) >>
                                 32);
    const double u = static_cast<double>(r & 0xffffffffULL) * 0x1.0p-32;
    const Col c = cols_[i];
    return u < c.prob ? i : c.alias;
  }

  // Exactly `count` draws with the same rng sequence (and therefore the
  // same results) as `count` calls of sample(), but in two passes: the
  // first records the raw draws and prefetches each column, the second
  // resolves them.  At bench scale the table is ~1 MB (131072 packed
  // columns), so the dependent random load in sample() is a cache miss per
  // draw; issuing the whole batch's loads ahead of use overlaps them.
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const;

  // Closed-form pmf, for the chi-square test.
  [[nodiscard]] double pmf(std::size_t i) const;

 private:
  // Keep-probability and alias packed into 8 bytes so every draw touches
  // exactly one cache line of a table that can span millions of objects (a
  // draw is a *random* index -- at 100k+ objects the table dominates the
  // sampler's cache footprint).  float precision only rounds each column's
  // split point by <= 2^-24; the realized distribution is still Zipf to
  // well below what the chi-square test can resolve.
  struct Col {
    float prob = 1.0F;          // P(column i keeps its own index)
    std::uint32_t alias = 0;
  };

  double s_ = 1.0;
  double norm_ = 1.0;  // sum over i of (i+1)^-s
  std::vector<Col> cols_;
};

// The K most recently touched objects, most recent first.  K is small
// (default 16), so linear scans beat any fancier structure -- and a plain
// vector keeps the state partition-owned and allocation-free after warmup.
class HotSet {
 public:
  explicit HotSet(std::size_t capacity) : capacity_(capacity) {
    members_.reserve(capacity);
  }

  void touch(std::uint64_t obj) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == obj) {
        members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    members_.insert(members_.begin(), obj);
    if (members_.size() > capacity_) members_.pop_back();
  }

  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] std::uint64_t pick(Rng& rng) const {
    return members_[rng.below(members_.size())];
  }

 private:
  std::size_t capacity_;
  std::vector<std::uint64_t> members_;
};

// Nonhomogeneous Poisson arrival process: diurnal sinusoid times an
// optional flash-crowd multiplier, sampled by thinning against a per-window
// max-rate envelope.  Amortized O(1) per arrival; batches come out sorted.
class RateModel {
 public:
  RateModel(double base_hz, double amplitude, sim::Duration period,
            std::optional<FlashCrowd> flash);

  [[nodiscard]] double rate_at(sim::Time t) const;
  // Tight upper bound on rate_at over [t0, t1): the sinusoid's global max
  // times the flash multiplier only if the window intersects the flash.
  [[nodiscard]] double max_rate(sim::Time t0, sim::Time t1) const;

  [[nodiscard]] bool flash_active(sim::Time t) const {
    return flash_ && t >= flash_->start &&
           t < flash_->start + flash_->duration;
  }

  // Append the arrivals in [t0, t1) to `out` (ascending by construction).
  void draw_arrivals(Rng& rng, sim::Time t0, sim::Time t1,
                     std::vector<sim::Time>& out) const;

 private:
  double base_hz_;
  double amplitude_;
  double period_ns_;
  std::optional<FlashCrowd> flash_;
};

// One open-loop generator, attached at a client node ("edge site").  Via-
// front-end mode batches arrivals and hands each to World::send_at (one
// scheduler event per request); direct mode (majority, primary/backup) arms
// one timer per arrival that drives the embedded ServiceClient.
class SiteGenerator final : public sim::Actor {
 public:
  struct Params {
    OpenLoopParams ol;
    double write_ratio = 0.05;
    double locality = 1.0;   // via-front-end mode only
    std::size_t site = 0;
    std::uint64_t seed = 42;
    // Shared per-trial alias table; built locally when null.
    std::shared_ptr<const ZipfAliasTable> zipf;
  };

  // Via-front-end mode.
  explicit SiteGenerator(Params p);
  // Direct mode: the generator owns a protocol service client.
  SiteGenerator(Params p, std::shared_ptr<protocols::ServiceClient> direct);

  // Registers instruments and arms the first batch timer.  Call from the
  // coordinating thread (after World::attach, before the first run) --
  // instrument registration is setup-time-only.
  void start();

  void on_message(const sim::Envelope& env) override;

  [[nodiscard]] bool done() const {
    if (!params_.ol.track_replies) return emission_done_;
    return emission_done_ && (pending_.empty() || drain_done_);
  }

  [[nodiscard]] const History& history() const { return history_; }
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t failed() const { return failed_; }
  [[nodiscard]] std::uint64_t rejected_reads() const {
    return rejected_reads_;
  }
  [[nodiscard]] std::uint64_t rejected_writes() const {
    return rejected_writes_;
  }

 private:
  void run_batch();
  void emit(sim::Time arrival);
  // Fast path: read request for a pre-sampled object straight to the home
  // front end.  Used when the batch qualifies for batched Zipf sampling.
  void emit_read(sim::Time arrival, ObjectId object);
  void issue_direct(std::uint64_t token, msg::OpKind kind, ObjectId object,
                    Value value);
  void complete(std::uint64_t key, bool ok, Value value, LogicalClock lc);
  void finish_emission();
  void finish_drain();
  [[nodiscard]] ObjectId sample_object(sim::Time at);
  [[nodiscard]] NodeId pick_front_end();

  Params params_;
  std::shared_ptr<protocols::ServiceClient> direct_;
  std::shared_ptr<const ZipfAliasTable> zipf_;
  RateModel rate_;
  HotSet hot_;
  // Sampling stream owned by this generator, derived from (seed, site):
  // identical regardless of engine, partition plan, or thread count.
  Rng rng_;

  NodeId home_;  // cached home front end (resolved once in start())
  sim::Time next_window_ = 0;
  std::vector<sim::Time> arrivals_;  // batch scratch, reused
  std::vector<std::uint64_t> objects_;  // batched-sampling scratch, reused
  bool emission_done_ = false;
  bool drain_done_ = false;
  sim::TimerToken drain_timer_;
  std::uint64_t write_seq_ = 0;
  std::uint64_t direct_seq_ = 0;

  // Outstanding requests keyed by rpc id (via front end) or a synthetic
  // token (direct mode).  Ordered map: determinism rules ban unordered
  // containers in partition-owned state.
  std::map<std::uint64_t, OpRecord> pending_;
  History history_;
  std::uint64_t offered_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_reads_ = 0, rejected_writes_ = 0;

  // Cached instruments (registered in start(); lookups are setup-only).
  obs::Counter* offered_c_ = nullptr;
  obs::Counter* completed_c_ = nullptr;
  obs::Counter* failed_c_ = nullptr;
  obs::Counter* batches_c_ = nullptr;
  obs::Counter* site_offered_ = nullptr;
  obs::Counter* site_completed_ = nullptr;
  obs::Histogram* site_latency_ = nullptr;
};

}  // namespace dq::workload
