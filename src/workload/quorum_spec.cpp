#include "workload/quorum_spec.h"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "common/assert.h"

namespace dq::workload {

QuorumSpec QuorumSpec::majority(std::size_t n) {
  DQ_INVARIANT(n > 0, "majority quorum needs at least one member");
  return {Shape::kMajority, n, 0, 0};
}

QuorumSpec QuorumSpec::grid(std::size_t rows, std::size_t cols) {
  DQ_INVARIANT(rows > 0 && cols > 0, "grid quorum needs rows, cols > 0");
  return {Shape::kGrid, rows * cols, rows, cols};
}

QuorumSpec QuorumSpec::read_one(std::size_t n) {
  DQ_INVARIANT(n > 0, "read-one quorum needs at least one member");
  return {Shape::kReadOne, n, 0, 0};
}

namespace {

// Strict all-digits parse; nullopt on anything else (including empty).
std::optional<std::size_t> parse_count(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t v = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return std::nullopt;
    v = v * 10 + static_cast<std::size_t>(c - '0');
    if (v > 1'000'000) return std::nullopt;  // nonsense guard
  }
  if (v == 0) return std::nullopt;
  return v;
}

}  // namespace

std::optional<QuorumSpec> QuorumSpec::parse(const std::string& s) {
  const auto colon = s.find(':');
  if (colon == std::string::npos) {
    // Bare number = majority (backward compatible with the old --iqs=N).
    if (auto n = parse_count(s)) return QuorumSpec::majority(*n);
    return std::nullopt;
  }
  const std::string kind = s.substr(0, colon);
  const std::string arg = s.substr(colon + 1);
  if (kind == "majority") {
    if (auto n = parse_count(arg)) return QuorumSpec::majority(*n);
    return std::nullopt;
  }
  if (kind == "read-one" || kind == "read_one") {
    if (auto n = parse_count(arg)) return QuorumSpec::read_one(*n);
    return std::nullopt;
  }
  if (kind == "grid") {
    const auto x = arg.find('x');
    if (x == std::string::npos) return std::nullopt;
    const auto r = parse_count(arg.substr(0, x));
    const auto c = parse_count(arg.substr(x + 1));
    if (!r || !c) return std::nullopt;
    return QuorumSpec::grid(*r, *c);
  }
  return std::nullopt;
}

std::shared_ptr<const quorum::QuorumSystem> QuorumSpec::build(
    std::vector<NodeId> members) const {
  DQ_INVARIANT(members.size() == size_,
               "QuorumSpec::build: member count does not match spec size");
  switch (shape_) {
    case Shape::kMajority:
      return quorum::ThresholdQuorum::majority(std::move(members));
    case Shape::kGrid:
      return std::make_shared<quorum::GridQuorum>(std::move(members), rows_,
                                                  cols_);
    case Shape::kReadOne:
      return quorum::ThresholdQuorum::read_one(std::move(members));
  }
  return nullptr;  // unreachable
}

std::string QuorumSpec::describe() const {
  switch (shape_) {
    case Shape::kMajority:
      return "majority:" + std::to_string(size_);
    case Shape::kGrid:
      return "grid:" + std::to_string(rows_) + "x" + std::to_string(cols_);
    case Shape::kReadOne:
      return "read-one:" + std::to_string(size_);
  }
  return "?";
}

}  // namespace dq::workload
