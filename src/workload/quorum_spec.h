// QuorumSpec: a validated, declarative description of a quorum system for
// experiment configuration.
//
// Replaces the old flat (iqs_size, iqs_grid_rows, iqs_grid_cols) trio in
// ExperimentParams: a spec names both the shape and the membership count, so
// an invalid combination (grid whose rows*cols disagree with its size, a
// zero-member system) is rejected at construction instead of deep inside
// deployment building.
//
//   QuorumSpec::majority(5)    // any 3 of 5 read AND write
//   QuorumSpec::grid(3, 3)     // Cheung et al. grid over 9 members
//   QuorumSpec::read_one(9)    // read 1 / write all (the headline OQS)
//
// parse() accepts the textual forms used by dqsim and the benches:
//   "majority:5" | "grid:3x3" | "read-one:9" | "5" (bare number = majority)
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "quorum/quorum.h"

namespace dq::workload {

class QuorumSpec {
 public:
  enum class Shape : std::uint8_t { kMajority, kGrid, kReadOne };

  // Named constructors validate and abort (DQ_INVARIANT) on nonsense such
  // as zero members.
  [[nodiscard]] static QuorumSpec majority(std::size_t n);
  [[nodiscard]] static QuorumSpec grid(std::size_t rows, std::size_t cols);
  [[nodiscard]] static QuorumSpec read_one(std::size_t n);

  // Parse "majority:5", "grid:3x3", "read-one:9", or a bare number
  // (= majority).  Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<QuorumSpec> parse(const std::string& s);

  [[nodiscard]] Shape shape() const { return shape_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  // Instantiate over a concrete member list (members.size() must equal
  // size()).
  [[nodiscard]] std::shared_ptr<const quorum::QuorumSystem> build(
      std::vector<NodeId> members) const;

  // The textual form parse() accepts, e.g. "grid:3x3".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const QuorumSpec& a, const QuorumSpec& b) {
    return a.shape_ == b.shape_ && a.size_ == b.size_ && a.rows_ == b.rows_ &&
           a.cols_ == b.cols_;
  }

 private:
  QuorumSpec(Shape shape, std::size_t size, std::size_t rows, std::size_t cols)
      : shape_(shape), size_(size), rows_(rows), cols_(cols) {}

  Shape shape_;
  std::size_t size_;
  std::size_t rows_ = 0;  // grid only
  std::size_t cols_ = 0;
};

}  // namespace dq::workload
