#include "workload/report.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace dq::workload::report {

namespace {

// Minimal JSON building: every name in this schema is a plain identifier,
// but message-type and metric names are escaped anyway for safety.
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string hist_json(const obs::HistogramData& h) {
  std::string out = "{";
  out += "\"count\":" + num(h.count);
  out += ",\"mean\":" + num(h.mean());
  out += ",\"min\":" + num(h.min);
  out += ",\"max\":" + num(h.max);
  out += ",\"p50\":" + num(h.quantile(0.50));
  out += ",\"p95\":" + num(h.quantile(0.95));
  out += ",\"p99\":" + num(h.quantile(0.99));
  out += "}";
  return out;
}

// {"k1":v1,"k2":v2,...} from a map, with per-value renderer.
template <typename Map, typename Render>
std::string obj_json(const Map& m, Render render) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ",";
    first = false;
    out += "\"" + esc(k) + "\":" + render(v);
  }
  out += "}";
  return out;
}

}  // namespace

std::string to_json(const ExperimentParams& params,
                    const ExperimentResult& result) {
  const obs::MetricsSnapshot& m = result.metrics;
  std::string out = "{";
  out += "\"schema\":\"dq.report.v1\"";
  out += ",\"protocol\":\"" + esc(protocol_name(params.protocol)) + "\"";

  out += ",\"config\":{";
  out += "\"iqs\":\"" + esc(params.iqs.describe()) + "\"";
  out += ",\"oqs_read_quorum\":" + num(std::uint64_t(params.oqs_read_quorum));
  out += ",\"servers\":" + num(std::uint64_t(params.topo.num_servers));
  out += ",\"clients\":" + num(std::uint64_t(params.topo.num_clients));
  out += ",\"requests_per_client\":" +
         num(std::uint64_t(params.requests_per_client));
  out += ",\"write_ratio\":" + num(params.write_ratio);
  out += ",\"locality\":" + num(params.locality);
  out += ",\"lease_ms\":" + num(sim::to_ms(params.lease_length));
  out += ",\"num_volumes\":" + num(std::uint64_t(params.num_volumes));
  out += ",\"max_drift\":" + num(params.max_drift);
  out += ",\"loss\":" + num(params.loss);
  // Durability / crash-plane keys appear only when the corresponding knob
  // is set, so reports from WAL-less runs keep their exact bytes (the
  // golden determinism suite and checked-in baselines depend on that; the
  // schema validator tolerates extra keys).
  if (params.wal) {
    out += ",\"wal\":{";
    out += "\"policy\":\"" + std::string(store::to_string(params.wal->policy)) +
           "\"";
    out += ",\"sync_ms\":" + num(sim::to_ms(params.wal->sync_latency));
    out += ",\"flush_ms\":" + num(sim::to_ms(params.wal->flush_interval));
    out += ",\"torn_tail\":";
    out += params.wal->torn_tail_faults ? "true" : "false";
    out += "}";
  }
  if (params.crashes) {
    out += ",\"crash_mttc_ms\":" +
           num(sim::to_ms(params.crashes->mean_time_to_crash));
    out += ",\"crash_downtime_ms\":" +
           num(sim::to_ms(params.crashes->mean_downtime));
  }
  out += ",\"seed\":" + num(std::uint64_t(params.seed));
  out += "}";

  out += ",\"requests\":{";
  out += "\"completed_reads\":" + num(result.completed_reads);
  out += ",\"completed_writes\":" + num(result.completed_writes);
  out += ",\"rejected_reads\":" + num(result.rejected_reads);
  out += ",\"rejected_writes\":" + num(result.rejected_writes);
  out += ",\"total\":" + num(result.total_requests());
  out += "}";

  out += ",\"availability\":" + num(result.availability());

  out += ",\"latency_ms\":{";
  out += "\"read\":" + result.read_ms.to_json();
  out += ",\"write\":" + result.write_ms.to_json();
  out += ",\"all\":" + result.all_ms.to_json();
  out += "}";

  out += ",\"messages\":{";
  out += "\"total\":" + num(result.total_messages);
  out += ",\"bytes\":" + num(result.total_bytes);
  out += ",\"per_request\":" + num(result.messages_per_request);
  out += ",\"bytes_per_request\":" + num(result.bytes_per_request);
  out += ",\"by_type\":" +
         obj_json(result.message_table,
                  [](std::uint64_t v) { return num(v); });
  out += "}";

  // DQVL write-phase breakdown; an empty object for baseline protocols
  // (no dqvl.write.* histograms registered).
  out += ",\"write_phases\":{";
  {
    bool first = true;
    const std::pair<const char*, const char*> kPhases[] = {
        {"suppress", "dqvl.write.suppress_ms"},
        {"invalidate", "dqvl.write.invalidate_ms"},
        {"lease_wait", "dqvl.write.lease_wait_ms"},
    };
    for (const auto& [key, metric] : kPhases) {
      const obs::HistogramData* h = m.histogram(metric);
      if (h == nullptr) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + std::string(key) + "\":" + hist_json(*h);
    }
  }
  out += "}";

  out += ",\"iqs_load\":" +
         obj_json(m.counters_with_prefix("iqs.load."),
                  [](std::uint64_t v) { return num(v); });

  out += ",\"metrics\":{";
  out += "\"counters\":" +
         obj_json(m.counters, [](std::uint64_t v) { return num(v); });
  out += ",\"gauges\":" +
         obj_json(m.gauges, [](const obs::GaugeSnapshot& g) {
           return "{\"value\":" + num(g.value) + ",\"max\":" + num(g.max) +
                  "}";
         });
  out += ",\"histograms\":" +
         obj_json(m.histograms,
                  [](const obs::HistogramData& h) { return hist_json(h); });
  out += "}";

  out += ",\"sim_duration_ms\":" + num(sim::to_ms(result.sim_duration));
  // Staleness section, present only when the run recorded read ages
  // (--staleness): absent-by-default keeps the exact bytes of reports from
  // runs without it, like the wal/crash config keys above.
  if (const obs::HistogramData* ages = m.histogram("staleness.read_age_ms")) {
    out += ",\"staleness\":{";
    out += "\"reads\":" + num(m.counter("staleness.reads"));
    out += ",\"stale_reads\":" + num(m.counter("staleness.stale_reads"));
    out += ",\"read_age_ms\":" + hist_json(*ages);
    out += "}";
  }
  // Open-loop section, present only for open-loop runs, like staleness.
  // Offered / completed / failed come from the generators' counters; the
  // per-site block carries each site's offered load and latency tail, and
  // load_skew is max-site-offered over mean-site-offered (1.0 = perfectly
  // even).
  if (params.open_loop) {
    const OpenLoopParams& ol = *params.open_loop;
    const std::size_t sites = params.topo.num_clients;
    out += ",\"open_loop\":{";
    out += "\"sites\":" + num(std::uint64_t(sites));
    out += ",\"clients_per_site\":" + num(std::uint64_t(ol.clients_per_site));
    out += ",\"logical_clients\":" +
           num(std::uint64_t(ol.clients_per_site * sites));
    out += ",\"objects\":" + num(std::uint64_t(ol.objects));
    out += ",\"zipf_s\":" + num(ol.zipf_s);
    out += ",\"site_rate_hz\":" + num(ol.site_rate_hz());
    out += ",\"horizon_ms\":" + num(sim::to_ms(ol.horizon));
    out += ",\"offered\":" + num(m.counter("open_loop.offered"));
    out += ",\"completed\":" + num(m.counter("open_loop.completed"));
    out += ",\"failed\":" + num(m.counter("open_loop.failed"));
    out += ",\"batches\":" + num(m.counter("open_loop.batches"));
    std::uint64_t max_offered = 0, total_offered = 0;
    for (std::size_t i = 0; i < sites; ++i) {
      const std::uint64_t v =
          m.counter("site.offered.s" + std::to_string(i));
      max_offered = v > max_offered ? v : max_offered;
      total_offered += v;
    }
    const double mean_offered =
        sites == 0 ? 0.0
                   : static_cast<double>(total_offered) /
                         static_cast<double>(sites);
    out += ",\"load_skew\":" +
           num(mean_offered > 0.0
                   ? static_cast<double>(max_offered) / mean_offered
                   : 0.0);
    out += ",\"per_site\":{";
    for (std::size_t i = 0; i < sites; ++i) {
      const std::string key = "s" + std::to_string(i);
      if (i != 0) out += ",";
      out += "\"" + key + "\":{";
      out += "\"offered\":" + num(m.counter("site.offered." + key));
      out += ",\"completed\":" + num(m.counter("site.completed." + key));
      const obs::HistogramData* h = m.histogram("site.latency_ms." + key);
      if (h != nullptr) out += ",\"latency_ms\":" + hist_json(*h);
      out += "}";
    }
    out += "}";
    out += "}";
  }
  out += ",\"violations\":" + num(std::uint64_t(result.violations.size()));
  out += "}";
  return out;
}

bool write_json(const ExperimentParams& params, const ExperimentResult& result,
                const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string doc = to_json(params, result);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

void print_table(const ExperimentResult& result, std::FILE* out) {
  const obs::MetricsSnapshot& m = result.metrics;
  if (m.empty()) {
    std::fprintf(out, "(no metrics recorded)\n");
    return;
  }
  std::fprintf(out, "counters:\n");
  for (const auto& [name, v] : m.counters) {
    std::fprintf(out, "  %-32s %12" PRIu64 "\n", name.c_str(), v);
  }
  if (!m.gauges.empty()) {
    std::fprintf(out, "gauges (value / max):\n");
    for (const auto& [name, g] : m.gauges) {
      std::fprintf(out, "  %-32s %12" PRId64 " / %" PRId64 "\n", name.c_str(),
                   g.value, g.max);
    }
  }
  if (!m.histograms.empty()) {
    std::fprintf(out, "histograms (count / mean / p50 / p99 ms):\n");
    for (const auto& [name, h] : m.histograms) {
      std::fprintf(out, "  %-32s %8" PRIu64 "  %10.3f %10.3f %10.3f\n",
                   name.c_str(), h.count, h.mean(), h.quantile(0.5),
                   h.quantile(0.99));
    }
  }
}

}  // namespace dq::workload::report
