// Run reports: render an ExperimentResult (plus the params that produced it)
// as JSON or as a human-readable metrics table.
//
// The JSON schema is versioned as "dq.report.v1" and validated by
// tools/check_metrics_schema.py; the interesting sections:
//
//   schema          "dq.report.v1"
//   protocol        protocol_name() string
//   config          the experiment knobs, incl. the IQS QuorumSpec string
//   requests        completed/rejected read and write counts
//   availability    fraction of requests completed
//   latency_ms      read/write/all Summary (count, mean, min, max, p50/95/99)
//   messages        totals, per-request rates, per-type table
//   write_phases    DQVL write-latency breakdown: suppress / invalidate /
//                   lease_wait histograms (empty object for baselines)
//   iqs_load        per-IQS-node request counters, keyed "n<id>"
//   metrics         full registry dump (counters, gauges, histograms)
//   sim_duration_ms virtual time consumed
//   violations      consistency-check violation count
#pragma once

#include <cstdio>
#include <string>

#include "workload/experiment.h"

namespace dq::workload::report {

// The full JSON document (no trailing newline).
[[nodiscard]] std::string to_json(const ExperimentParams& params,
                                  const ExperimentResult& result);

// Write to_json() to `path`.  Returns false and sets *error on I/O failure.
bool write_json(const ExperimentParams& params, const ExperimentResult& result,
                const std::string& path, std::string* error);

// Human-readable dump of result.metrics (the --metrics table in dqsim).
void print_table(const ExperimentResult& result, std::FILE* out);

}  // namespace dq::workload::report
