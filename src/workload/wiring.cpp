// Builtin protocol registrations: the factories that wire each protocol's
// servers and service clients into a Deployment.
//
// This TU is part of the workload library that every binary already links
// (experiment.cpp calls ensure_builtins_registered() below), so the
// registrations cannot be dead-stripped the way standalone self-registering
// TUs in a static library can.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "protocols/dq_adapter.h"
#include "protocols/dynamo.h"
#include "protocols/hermes.h"
#include "protocols/majority.h"
#include "protocols/primary_backup.h"
#include "protocols/registry.h"
#include "protocols/rowa.h"
#include "protocols/rowa_async.h"
#include "quorum/quorum.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

using protocols::Capability;
using protocols::ConsistencyClass;
using protocols::ProtocolInfo;
using protocols::Registry;

// --- DQVL family -----------------------------------------------------------

enum class DqvlVariant : std::uint8_t { kHeadline, kAtomic, kBasic };

void build_dqvl(Deployment& dep, DqvlVariant variant) {
  const ExperimentParams& params = dep.params();
  sim::World& world = dep.world();
  const auto& topo = world.topology();
  const QuorumSpec& spec = params.iqs;
  DQ_INVARIANT(spec.size() >= 1 && spec.size() <= topo.num_servers(),
               "IQS spec size out of range");

  std::vector<NodeId> all = topo.servers();
  std::vector<NodeId> iqs_members(
      all.begin(), all.begin() + static_cast<std::ptrdiff_t>(spec.size()));
  auto cfg = std::make_shared<core::DqConfig>(core::DqConfig::headline(
      all, iqs_members,
      variant == DqvlVariant::kBasic ? sim::kTimeInfinity
                                     : params.lease_length));
  cfg->iqs = spec.build(iqs_members);
  if (params.oqs_read_quorum > 1) {
    // |orq| = r implies |owq| = n - r + 1 for intersection.
    const std::size_t n = all.size();
    DQ_INVARIANT(params.oqs_read_quorum <= n, "oqs_read_quorum too large");
    cfg->oqs = std::make_shared<quorum::ThresholdQuorum>(
        all, params.oqs_read_quorum, n - params.oqs_read_quorum + 1);
  }
  cfg->object_lease_length = params.object_lease_length;
  cfg->volumes = store::VolumeMap(params.num_volumes);
  cfg->max_delayed_per_volume = params.max_delayed_per_volume;
  cfg->max_drift = params.max_drift;
  cfg->suppression_enabled = params.suppression;
  cfg->proactive_volume_renewal = params.proactive_renewal;
  cfg->batch_volume_renewals = params.batch_renewals;
  cfg->rpc = dep.rpc_options();
  cfg->wal = params.wal;

  Deployment::DqvlRuntime rt;
  rt.cfg = cfg;

  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    const NodeId n = topo.server(i);
    EdgeNode& node = dep.server_node(i);

    // Front end (service client) -- must see replies first.
    std::shared_ptr<protocols::ServiceClient> sc;
    if (variant == DqvlVariant::kAtomic) {
      sc = std::make_shared<protocols::DqAtomicServiceClient>(world, n,
                                                              rt.cfg);
    } else {
      sc = std::make_shared<protocols::DqServiceClient>(world, n, rt.cfg);
    }
    dep.install_front_end(i, std::move(sc));

    // OQS member (every server).
    auto oqs = std::make_unique<core::OqsServer>(world, n, rt.cfg);
    core::OqsServer* oqs_raw = oqs.get();
    node.add_handler([oqs_raw](const sim::Envelope& e) {
      return oqs_raw->on_message(e);
    });
    node.add_crash_hook([oqs_raw] { oqs_raw->on_crash(); },
                        [oqs_raw] { oqs_raw->on_recover(); });
    rt.oqs.emplace(n.value(), std::move(oqs));

    // IQS member (first iqs_size servers).
    if (rt.cfg->iqs->is_member(n)) {
      auto iqs = std::make_unique<core::IqsServer>(world, n, rt.cfg);
      core::IqsServer* iqs_raw = iqs.get();
      node.add_handler([iqs_raw](const sim::Envelope& e) {
        return iqs_raw->on_message(e);
      });
      node.add_crash_hook([iqs_raw] { iqs_raw->on_crash(); },
                          [iqs_raw] { iqs_raw->on_recover(); });
      rt.iqs.emplace(n.value(), std::move(iqs));
    }
  }
  dep.set_dqvl_runtime(std::move(rt));
  dep.install_app_clients();
}

// --- majority --------------------------------------------------------------

void build_majority(Deployment& dep) {
  sim::World& world = dep.world();
  const auto& topo = world.topology();
  auto system = std::shared_ptr<const quorum::QuorumSystem>(
      quorum::ThresholdQuorum::majority(topo.servers()));
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    auto srv = std::make_shared<protocols::MajorityServer>(
        world, topo.server(i), dep.params().wal);
    protocols::MajorityServer* raw = srv.get();
    dep.server_node(i).add_handler([raw](const sim::Envelope& e) {
      return raw->on_message(e);
    });
    dep.server_node(i).add_crash_hook([raw] { raw->on_crash(); },
                                      [raw] { raw->on_recover(); });
    dep.retain(std::move(srv));
  }
  // Direct-access clients (the paper's majority latency is insensitive to
  // edge locality).
  dep.install_direct_clients([&dep, &world, system](NodeId cn) {
    return std::static_pointer_cast<protocols::ServiceClient>(
        std::make_shared<protocols::MajorityClient>(world, cn, system,
                                                    dep.rpc_options()));
  });
}

// --- primary/backup --------------------------------------------------------

void build_primary_backup(Deployment& dep, protocols::PbMode mode) {
  sim::World& world = dep.world();
  const auto& topo = world.topology();
  auto cfg = std::make_shared<protocols::PbConfig>();
  // Primary on the last server: with the default client homes (0, 1, 2, ...)
  // no client is colocated with the primary, matching the paper's setting
  // where the primary is a WAN hop away.
  cfg->primary = topo.server(topo.num_servers() - 1);
  cfg->replicas = topo.servers();
  cfg->mode = mode;
  cfg->rpc = dep.rpc_options();
  cfg->wal = dep.params().wal;
  std::shared_ptr<const protocols::PbConfig> ccfg = cfg;

  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    auto srv = std::make_shared<protocols::PbServer>(world, topo.server(i),
                                                     ccfg);
    protocols::PbServer* raw = srv.get();
    dep.server_node(i).add_handler([raw](const sim::Envelope& e) {
      return raw->on_message(e);
    });
    dep.server_node(i).add_crash_hook([raw] { raw->on_crash(); },
                                      [raw] { raw->on_recover(); });
    dep.retain(std::move(srv));
  }
  dep.install_direct_clients([&world, ccfg](NodeId cn) {
    return std::static_pointer_cast<protocols::ServiceClient>(
        std::make_shared<protocols::PbClient>(world, cn, ccfg));
  });
}

// --- ROWA ------------------------------------------------------------------

void build_rowa(Deployment& dep) {
  sim::World& world = dep.world();
  const auto& topo = world.topology();
  auto system = std::shared_ptr<const quorum::QuorumSystem>(
      quorum::ThresholdQuorum::rowa(topo.servers()));
  std::vector<std::shared_ptr<protocols::RowaServer>> servers;
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    servers.push_back(
        std::make_shared<protocols::RowaServer>(world, topo.server(i)));
  }
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    const NodeId n = topo.server(i);
    auto sc = std::make_shared<protocols::RowaClient>(
        world, n, system, servers[i].get(), dep.rpc_options());
    dep.install_front_end(i, std::move(sc));
    protocols::RowaServer* srv_raw = servers[i].get();
    dep.server_node(i).add_handler([srv_raw](const sim::Envelope& e) {
      return srv_raw->on_message(e);
    });
    dep.retain(servers[i]);
  }
  dep.install_app_clients();
}

// --- ROWA-Async ------------------------------------------------------------

void build_rowa_async(Deployment& dep) {
  sim::World& world = dep.world();
  const auto& topo = world.topology();
  auto cfg = std::make_shared<protocols::RowaAsyncConfig>();
  cfg->replicas = topo.servers();
  cfg->rpc = dep.rpc_options();
  std::shared_ptr<const protocols::RowaAsyncConfig> ccfg = cfg;
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    const NodeId n = topo.server(i);
    auto srv = std::make_shared<protocols::RowaAsyncServer>(world, n, ccfg);
    auto sc = std::make_shared<protocols::RowaAsyncClient>(world, n, n,
                                                           dep.rpc_options());
    dep.install_front_end(i, std::move(sc));
    protocols::RowaAsyncServer* srv_raw = srv.get();
    dep.server_node(i).add_handler([srv_raw](const sim::Envelope& e) {
      return srv_raw->on_message(e);
    });
    srv->start_anti_entropy();
    dep.retain(std::move(srv));
  }
  dep.install_app_clients();
}

// --- Hermes ----------------------------------------------------------------

void build_hermes(Deployment& dep) {
  sim::World& world = dep.world();
  const auto& topo = world.topology();
  auto cfg = std::make_shared<protocols::HermesConfig>();
  cfg->replicas = topo.servers();
  cfg->rpc = dep.rpc_options();
  cfg->wal = dep.params().wal;
  std::shared_ptr<const protocols::HermesConfig> ccfg = cfg;
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    const NodeId n = topo.server(i);
    auto srv = std::make_shared<protocols::HermesServer>(world, n, ccfg);
    auto sc = std::make_shared<protocols::HermesClient>(world, n, n,
                                                        dep.rpc_options());
    dep.install_front_end(i, std::move(sc));
    protocols::HermesServer* srv_raw = srv.get();
    dep.server_node(i).add_handler([srv_raw](const sim::Envelope& e) {
      return srv_raw->on_message(e);
    });
    dep.server_node(i).add_crash_hook([srv_raw] { srv_raw->on_crash(); },
                                      [srv_raw] { srv_raw->on_recover(); });
    dep.retain(std::move(srv));
  }
  dep.install_app_clients();
}

// --- Dynamo ----------------------------------------------------------------

void build_dynamo(Deployment& dep) {
  sim::World& world = dep.world();
  const auto& topo = world.topology();
  auto cfg = std::make_shared<protocols::DynamoConfig>();
  cfg->ring = topo.servers();
  // N/R/W = 3/1/2 (local-read flavored), clamped for tiny test topologies.
  cfg->n = std::min<std::size_t>(3, cfg->ring.size());
  cfg->r = 1;
  cfg->w = std::min<std::size_t>(2, cfg->n);
  cfg->rpc = dep.rpc_options();
  cfg->wal = dep.params().wal;
  std::shared_ptr<const protocols::DynamoConfig> ccfg = cfg;
  for (std::size_t i = 0; i < topo.num_servers(); ++i) {
    const NodeId n = topo.server(i);
    auto srv = std::make_shared<protocols::DynamoServer>(world, n, ccfg);
    auto sc = std::make_shared<protocols::DynamoCoordinator>(world, n, ccfg);
    dep.install_front_end(i, std::move(sc));
    protocols::DynamoServer* srv_raw = srv.get();
    dep.server_node(i).add_handler([srv_raw](const sim::Envelope& e) {
      return srv_raw->on_message(e);
    });
    dep.server_node(i).add_crash_hook([srv_raw] { srv_raw->on_crash(); },
                                      [srv_raw] { srv_raw->on_recover(); });
    srv->start_handoff();
    dep.retain(std::move(srv));
  }
  dep.install_app_clients();
}

// --- registration ----------------------------------------------------------

void add(const char* name, const char* display, Capability caps,
         std::function<void(Deployment&)> build) {
  ProtocolInfo info;
  info.name = name;
  info.display_name = display;
  info.caps = caps;
  info.build = std::move(build);
  Registry::instance().add(std::move(info));
}

void register_builtins() {
  constexpr Capability kDqvlCaps{/*supports_wal=*/true,
                                 /*supports_crash_recovery=*/true,
                                 ConsistencyClass::kRegular};
  add("dqvl", "DQVL", kDqvlCaps,
      [](Deployment& d) { build_dqvl(d, DqvlVariant::kHeadline); });
  add("dqvl-atomic", "DQVL-atomic",
      {true, true, ConsistencyClass::kAtomic},
      [](Deployment& d) { build_dqvl(d, DqvlVariant::kAtomic); });
  add("dq-basic", "DQ-basic", kDqvlCaps,
      [](Deployment& d) { build_dqvl(d, DqvlVariant::kBasic); });
  add("majority", "majority", {true, true, ConsistencyClass::kRegular},
      [](Deployment& d) { build_majority(d); });
  add("pb", "primary/backup", {true, true, ConsistencyClass::kRegular},
      [](Deployment& d) {
        build_primary_backup(d, protocols::PbMode::kAsyncPropagation);
      });
  add("pb-sync", "primary/backup-sync",
      {true, true, ConsistencyClass::kRegular}, [](Deployment& d) {
        build_primary_backup(d, protocols::PbMode::kSyncPropagation);
      });
  add("rowa", "ROWA", {false, false, ConsistencyClass::kRegular},
      [](Deployment& d) { build_rowa(d); });
  add("rowa-async", "ROWA-Async",
      {false, false, ConsistencyClass::kEventual},
      [](Deployment& d) { build_rowa_async(d); });
  add("hermes", "Hermes", {true, true, ConsistencyClass::kAtomic},
      [](Deployment& d) { build_hermes(d); });
  add("dynamo", "Dynamo", {true, true, ConsistencyClass::kEventual},
      [](Deployment& d) { build_dynamo(d); });
}

void ensure_builtins_registered() {
  static const bool once = [] {
    register_builtins();
    return true;
  }();
  (void)once;
}

}  // namespace

const protocols::ProtocolInfo* find_protocol(const std::string& name) {
  ensure_builtins_registered();
  return Registry::instance().find(name);
}

std::vector<const protocols::ProtocolInfo*> all_protocols() {
  ensure_builtins_registered();
  return Registry::instance().list();
}

}  // namespace dq::workload
