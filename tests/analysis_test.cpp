// Analytical model tests: the closed forms behind Figures 8 and 9, cross-
// checked against exhaustive quorum enumeration and against each other.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/availability.h"
#include "analysis/overhead.h"
#include "quorum/quorum.h"

namespace dq::analysis {
namespace {

std::vector<NodeId> nodes(std::size_t n) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Binomial tail
// ---------------------------------------------------------------------------

TEST(BinomialTail, Extremes) {
  EXPECT_DOUBLE_EQ(binomial_tail_at_least(5, 0, 0.3), 1.0);
  EXPECT_NEAR(binomial_tail_at_least(5, 5, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(binomial_tail_at_least(5, 1, 1.0), 0.0, 1e-12);
}

TEST(BinomialTail, MatchesQuorumEnumeration) {
  for (std::size_t n : {3u, 5u, 9u, 15u}) {
    auto q = quorum::ThresholdQuorum::majority(nodes(n));
    for (double p : {0.01, 0.1, 0.3}) {
      EXPECT_NEAR(binomial_tail_at_least(n, n / 2 + 1, p),
                  quorum::exact_availability(*q, quorum::Kind::kRead, p),
                  1e-10)
          << "n=" << n << " p=" << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Availability model (Figure 8 shapes)
// ---------------------------------------------------------------------------

TEST(AvailabilityModel, DqvlTracksMajorityInHeadlineConfig) {
  // Paper: "DQVL's availability tracks that of the majority quorum."
  AvailabilityModel m;  // n = iqs = 15, p = 0.01
  for (double w : {0.0, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(m.dqvl(w), m.majority(w), 1e-9) << "w=" << w;
  }
}

TEST(AvailabilityModel, PrimaryBackupIsFlatAtNodeAvailability) {
  AvailabilityModel m;
  EXPECT_DOUBLE_EQ(m.primary_backup(0.0), 0.99);
  EXPECT_DOUBLE_EQ(m.primary_backup(1.0), 0.99);
}

TEST(AvailabilityModel, RowaWriteAvailabilityCollapsesWithWrites) {
  AvailabilityModel m;
  // Read-only ROWA is nearly perfect; write-only is poor (needs all 15 up).
  EXPECT_GE(m.rowa(0.0), 1.0 - 1e-12);
  EXPECT_NEAR(1.0 - m.rowa(1.0), 1.0 - std::pow(0.99, 15), 1e-12);
  EXPECT_GT(1.0 - m.rowa(1.0), 0.13);
}

TEST(AvailabilityModel, RowaAsyncNoStaleIsOrdersWorseThanQuorums) {
  // Paper: rejecting stale reads makes ROWA-Async "several orders of
  // magnitude worse than other quorum based protocols".
  AvailabilityModel m;
  const double w = 0.25;
  const double unavail_async = 1.0 - m.rowa_async_no_stale(w);
  const double unavail_maj = 1.0 - m.majority(w);
  EXPECT_GT(unavail_async / unavail_maj, 1e3);
}

TEST(AvailabilityModel, RowaAsyncStaleOkIsBest) {
  AvailabilityModel m;
  for (double w : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_GE(m.rowa_async_stale_ok(w) + 1e-15, m.majority(w));
    EXPECT_GE(m.rowa_async_stale_ok(w) + 1e-15, m.rowa(w));
  }
}

TEST(AvailabilityModel, AvailabilityImprovesWithReplicaCount) {
  // Figure 8(b): quorum-based availability improves with n; p/b does not.
  const double w = 0.25;
  double prev_maj = 0.0;
  for (std::size_t n : {3u, 5u, 7u, 9u, 11u, 13u, 15u}) {
    AvailabilityModel m;
    m.n = n;
    m.iqs = n;
    EXPECT_GE(m.majority(w), prev_maj);
    prev_maj = m.majority(w);
    EXPECT_DOUBLE_EQ(m.primary_backup(w), 0.99);
  }
  EXPECT_GT(prev_maj, 0.9999999);
}

TEST(AvailabilityModel, DqvlGeneralTakesMinima) {
  EXPECT_DOUBLE_EQ(AvailabilityModel::dqvl_general(0.0, 0.5, 0.9, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(AvailabilityModel::dqvl_general(1.0, 0.5, 0.9, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(AvailabilityModel::dqvl_general(0.5, 1.0, 0.8, 1.0), 0.8);
}

TEST(AvailabilityModel, DqvlWithSmallIqsIsLimitedByIqs) {
  AvailabilityModel m;
  m.n = 15;
  m.iqs = 5;
  AvailabilityModel big;  // iqs = 15
  // A 5-node IQS has lower availability than a 15-node one at p = 0.01.
  EXPECT_LT(m.dqvl(0.5), big.dqvl(0.5));
}

// ---------------------------------------------------------------------------
// Overhead model (Figure 9 shapes)
// ---------------------------------------------------------------------------

TEST(OverheadModel, ReadOnlyCosts) {
  OverheadModel m;  // n = iqs = 15
  EXPECT_DOUBLE_EQ(m.majority_read(), 16.0);  // 2 * 8
  EXPECT_DOUBLE_EQ(m.pb_read(), 2.0);
  EXPECT_DOUBLE_EQ(m.rowa_read(), 2.0);
  EXPECT_DOUBLE_EQ(m.dqvl_read(0.0), 2.0);  // read hit
}

TEST(OverheadModel, DqvlReadHitBeatsEveryQuorumProtocol) {
  OverheadModel m;
  EXPECT_LT(m.dqvl_avg(0.0), m.majority_avg(0.0));
}

TEST(OverheadModel, DqvlExcessOverMajorityPeaksMidway) {
  // Figure 9(a): interleaved reads and writes are DQVL's worst case -- its
  // overhead relative to the majority protocol peaks around w = 0.5 (at the
  // extremes DQVL matches or beats majority: all read hits at w = 0, all
  // write suppresses at w = 1).
  OverheadModel m;
  auto excess = [&](double w) { return m.dqvl_avg(w) - m.majority_avg(w); };
  EXPECT_LT(excess(0.0), 0.0);
  EXPECT_GT(excess(0.5), excess(0.0));
  EXPECT_GT(excess(0.5), excess(1.0));
  EXPECT_GT(excess(0.5), 0.0);
}

TEST(OverheadModel, DqvlWorstCaseExceedsMajority) {
  // Paper: "the dual-quorum protocol requires significantly more message
  // exchanges than traditional quorum protocols" in the worst case.
  OverheadModel m;
  EXPECT_GT(m.dqvl_avg(0.5), m.majority_avg(0.5));
}

TEST(OverheadModel, FixedIqsMakesDqvlComparableToMajorityAtScale) {
  // Figure 9(b): fix IQS at 5 and grow the OQS; majority grows with n while
  // DQVL's write-side renewal cost stays bounded by the IQS.
  for (std::size_t n : {15u, 25u, 45u}) {
    OverheadModel dqvl{n, /*iqs=*/5};
    OverheadModel maj{n, n};
    const double w = 0.05;  // the target read-dominated workload
    EXPECT_LT(dqvl.dqvl_avg(w), maj.majority_avg(w)) << "n=" << n;
  }
}

TEST(OverheadModel, WriteSuppressIsCheaperThanWriteThrough) {
  OverheadModel m;
  EXPECT_LT(m.dqvl_write(0.0), m.dqvl_write(1.0));
  // Suppressed write == two IQS majority rounds: 2*8 + 2*8 messages.
  EXPECT_DOUBLE_EQ(m.dqvl_write(0.0), 32.0);
}

TEST(DqvlAvailability, GenericCompositionMatchesHeadlineFormula) {
  // 15-node OQS with |orq| = 1 and a 15-node majority IQS must reproduce
  // the closed-form headline model exactly.
  std::vector<NodeId> members = nodes(15);
  auto oqs = quorum::ThresholdQuorum::read_one(members);
  auto iqs = quorum::ThresholdQuorum::majority(members);
  AvailabilityModel m;  // n = iqs = 15, p = 0.01
  for (double w : {0.0, 0.25, 0.8}) {
    EXPECT_NEAR(dqvl_availability(w, *oqs, *iqs, 0.01), m.dqvl(w), 1e-9)
        << "w = " << w;
  }
}

TEST(DqvlAvailability, GridIqsIsSlightlyLessAvailableThanMajority) {
  std::vector<NodeId> members = nodes(9);
  auto oqs = quorum::ThresholdQuorum::read_one(members);
  auto maj = quorum::ThresholdQuorum::majority(members);
  quorum::GridQuorum grid(members, 3, 3);
  const double w = 0.25;
  const double av_maj = dqvl_availability(w, *oqs, *maj, 0.01);
  const double av_grid = dqvl_availability(w, *oqs, grid, 0.01);
  EXPECT_LT(av_grid, av_maj);
  // ... but still at least four nines at p = 0.01.
  EXPECT_GT(av_grid, 0.9999);
}

TEST(DqvlAvailability, WideOqsReadQuorumHurtsReadsHelpsNothing) {
  // |orq| = 3 over 9: reads need 3 live OQS nodes instead of 1; the write
  // side is unchanged (IQS-bound).  Availability can only go down.
  std::vector<NodeId> members = nodes(9);
  auto narrow = quorum::ThresholdQuorum::read_one(members);
  quorum::ThresholdQuorum wide(members, 3, 7);
  auto iqs = quorum::ThresholdQuorum::majority(members);
  for (double w : {0.0, 0.5}) {
    EXPECT_LE(dqvl_availability(w, wide, *iqs, 0.05),
              dqvl_availability(w, *narrow, *iqs, 0.05) + 1e-12);
  }
}

TEST(OverheadModel, RowaWriteScalesLinearly) {
  OverheadModel a{10, 10}, b{20, 20};
  EXPECT_DOUBLE_EQ(b.rowa_write(), 2.0 * a.rowa_write());
}

}  // namespace
}  // namespace dq::analysis
