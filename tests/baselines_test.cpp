// Behavior tests for the four baseline protocols: the latency and
// availability characteristics the paper attributes to each, exercised
// through the deployment harness.
#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace dq::workload {
namespace {

ExperimentParams base(std::string proto, std::uint64_t seed = 5) {
  ExperimentParams p;
  p.protocol = proto;
  p.requests_per_client = 100;
  p.seed = seed;
  return p;
}

// ---------------------------------------------------------------------------
// Majority quorum
// ---------------------------------------------------------------------------

TEST(Majority, ReadsPayOneWanRoundTripWritesTwo) {
  ExperimentParams p = base("majority");
  p.write_ratio = 0.5;
  const auto r = run_experiment(p);
  // Read: client->quorum RTT (86 ms) + processing.
  EXPECT_NEAR(r.read_ms.mean(), 87.0, 2.0);
  // Write: clock-read round plus write round.
  EXPECT_NEAR(r.write_ms.mean(), 174.0, 3.0);
  EXPECT_TRUE(r.violations.empty());
}

TEST(Majority, ToleratesMinorityFailure) {
  ExperimentParams p = base("majority");
  p.requests_per_client = 40;
  Deployment dep(p);
  // 4 of 9 down: majority of 5 still reachable.
  for (std::size_t i = 0; i < 4; ++i) {
    dep.world().set_up(dep.world().topology().server(i), false);
  }
  const auto r = dep.run();
  EXPECT_EQ(r.rejected_reads + r.rejected_writes, 0u);
  EXPECT_TRUE(r.violations.empty());
}

TEST(Majority, RejectsWhenMajorityUnreachable) {
  ExperimentParams p = base("majority");
  p.requests_per_client = 5;
  p.op_deadline = sim::seconds(5);
  Deployment dep(p);
  for (std::size_t i = 0; i < 5; ++i) {
    dep.world().set_up(dep.world().topology().server(i), false);
  }
  const auto r = dep.run();
  EXPECT_EQ(r.completed_reads + r.completed_writes, 0u);
  EXPECT_EQ(r.rejected_reads + r.rejected_writes, 15u);
}

// ---------------------------------------------------------------------------
// Primary/backup
// ---------------------------------------------------------------------------

TEST(PrimaryBackup, OneRoundTripForBothOps) {
  ExperimentParams p = base("pb");
  p.write_ratio = 0.5;
  const auto r = run_experiment(p);
  EXPECT_NEAR(r.read_ms.mean(), 87.0, 2.0);
  EXPECT_NEAR(r.write_ms.mean(), 87.0, 2.0);
  EXPECT_TRUE(r.violations.empty());
}

TEST(PrimaryBackup, SyncModeWritesPayBackupRound) {
  ExperimentParams p = base("pb-sync");
  p.write_ratio = 1.0;
  const auto r = run_experiment(p);
  // Client->primary (86) + primary->backups round (80) + processing.
  EXPECT_NEAR(r.write_ms.mean(), 167.0, 3.0);
  EXPECT_TRUE(r.violations.empty());
}

TEST(PrimaryBackup, SyncBackupsHoldEveryAckedWrite) {
  ExperimentParams p = base("pb-sync");
  p.write_ratio = 1.0;
  p.requests_per_client = 20;
  Deployment dep(p);
  const auto r = dep.run();
  ASSERT_TRUE(r.violations.empty());
  EXPECT_EQ(r.completed_writes, 60u);
}

TEST(PrimaryBackup, UnavailableWhenPrimaryDown) {
  ExperimentParams p = base("pb");
  p.requests_per_client = 4;
  p.op_deadline = sim::seconds(5);
  Deployment dep(p);
  // Primary is the last server in this deployment.
  dep.world().set_up(
      dep.world().topology().server(dep.world().topology().num_servers() - 1),
      false);
  const auto r = dep.run();
  EXPECT_EQ(r.completed_reads + r.completed_writes, 0u);
}

// ---------------------------------------------------------------------------
// ROWA
// ---------------------------------------------------------------------------

TEST(Rowa, LocalReadsWanWrites) {
  ExperimentParams p = base("rowa");
  p.write_ratio = 0.5;
  const auto r = run_experiment(p);
  EXPECT_NEAR(r.read_ms.mean(), 9.0, 1.5);    // home RTT + processing
  EXPECT_NEAR(r.write_ms.mean(), 89.0, 2.0);  // write-all round
  EXPECT_TRUE(r.violations.empty());
}

TEST(Rowa, WriteBlocksWhileAnyReplicaDown) {
  ExperimentParams p = base("rowa");
  p.write_ratio = 1.0;
  p.requests_per_client = 3;
  p.op_deadline = sim::seconds(5);
  Deployment dep(p);
  dep.world().set_up(dep.world().topology().server(8), false);
  const auto r = dep.run();
  EXPECT_EQ(r.completed_writes, 0u);
  EXPECT_EQ(r.rejected_writes, 9u);
}

TEST(Rowa, ReadsSurviveAllButOneReplicaDown) {
  ExperimentParams p = base("rowa");
  p.write_ratio = 0.0;
  p.requests_per_client = 10;
  Deployment dep(p);
  // Keep only the clients' home servers (0, 1, 2) up.
  for (std::size_t i = 3; i < 9; ++i) {
    dep.world().set_up(dep.world().topology().server(i), false);
  }
  const auto r = dep.run();
  EXPECT_EQ(r.completed_reads, 30u);
}

// ---------------------------------------------------------------------------
// ROWA-Async
// ---------------------------------------------------------------------------

TEST(RowaAsync, EverythingIsLocal) {
  ExperimentParams p = base("rowa-async");
  p.write_ratio = 0.5;
  const auto r = run_experiment(p);
  EXPECT_NEAR(r.read_ms.mean(), 9.0, 1.5);
  EXPECT_NEAR(r.write_ms.mean(), 9.0, 1.5);
}

TEST(RowaAsync, CanServeStaleReadsAcrossNodes) {
  // Two clients sharing one object through different home servers observe
  // each other's writes only after propagation: the checker must flag at
  // least the race window under heavy interleaving with gossip loss.
  ExperimentParams p = base("rowa-async");
  p.write_ratio = 0.5;
  p.requests_per_client = 150;
  p.loss = 0.4;  // drop most push gossip; anti-entropy heals slowly
  p.choose_object = [](Rng&) { return ObjectId(1); };
  const auto r = run_experiment(p);
  EXPECT_FALSE(r.violations.empty())
      << "ROWA-Async is expected to violate regular semantics here";
}

TEST(RowaAsync, AntiEntropyConvergesReplicasAfterLoss) {
  ExperimentParams p = base("rowa-async");
  p.write_ratio = 1.0;
  p.requests_per_client = 30;
  p.loss = 0.3;
  Deployment dep(p);
  auto r = dep.run();
  EXPECT_EQ(r.completed_writes, 90u);
  // Stop the loss and let anti-entropy finish the job.
  dep.world().faults().set_loss_probability(0.0);
  dep.world().run_for(sim::seconds(60));
  // All replicas converged: a read anywhere returns the same clock.
  ExperimentParams probe = p;
  (void)probe;
  // Convergence is observed indirectly: one more pass of reads everywhere
  // would need fresh clients; instead assert no gossip remains undelivered
  // by checking the world went quiet.
  const auto before = dep.world().message_stats().total();
  dep.world().run_for(sim::seconds(10));
  // Only periodic anti-entropy digests should remain (one per server per
  // second, possibly answered).
  const auto after = dep.world().message_stats().total();
  EXPECT_LE(after - before, 9u * 10u * 2u);
}

TEST(RowaAsync, RemainsAvailableWithMostReplicasDown) {
  ExperimentParams p = base("rowa-async");
  p.write_ratio = 0.5;
  p.requests_per_client = 20;
  Deployment dep(p);
  for (std::size_t i = 3; i < 9; ++i) {
    dep.world().set_up(dep.world().topology().server(i), false);
  }
  const auto r = dep.run();
  EXPECT_EQ(r.rejected_reads + r.rejected_writes, 0u);
}

// ---------------------------------------------------------------------------
// Cross-protocol response-time ordering (Figure 6(a) invariants)
// ---------------------------------------------------------------------------

TEST(CrossProtocol, ReadLatencyOrderingAtTargetWorkload) {
  std::map<std::string, ExperimentResult> results;
  for (std::string proto : paper_protocols()) {
    ExperimentParams p = base(proto, 17);
    p.write_ratio = 0.05;
    p.requests_per_client = 200;
    results.emplace(proto, run_experiment(p));
  }
  const double dqvl = results.at("dqvl").read_ms.mean();
  const double pb = results.at("pb").read_ms.mean();
  const double maj = results.at("majority").read_ms.mean();
  const double rowa = results.at("rowa").read_ms.mean();
  const double async = results.at("rowa-async").read_ms.mean();

  // Paper: "DQVL provides at least a six times read response time
  // improvement over primary/backup and majority quorum".
  EXPECT_GT(pb / dqvl, 6.0);
  EXPECT_GT(maj / dqvl, 6.0);
  // And is competitive with ROWA / ROWA-Async (within ~2x of local).
  EXPECT_LT(dqvl / rowa, 2.0);
  EXPECT_LT(dqvl / async, 2.0);
}

TEST(CrossProtocol, DqvlWriteApproachesMajorityAtHighWriteRatio) {
  ExperimentParams dq = base("dqvl", 23);
  dq.write_ratio = 1.0;
  dq.requests_per_client = 150;
  ExperimentParams maj = base("majority", 23);
  maj.write_ratio = 1.0;
  maj.requests_per_client = 150;
  const double dq_w = run_experiment(dq).write_ms.mean();
  const double maj_w = run_experiment(maj).write_ms.mean();
  // Pure write bursts suppress invalidations: DQVL == majority's two rounds.
  EXPECT_NEAR(dq_w, maj_w, 10.0);
}

}  // namespace
}  // namespace dq::workload
