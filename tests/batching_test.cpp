// Batched volume-lease renewal tests: correctness (delayed invalidations
// still land, acks still trim queues), message savings, and regular
// semantics with batching enabled.
#include <gtest/gtest.h>

#include "protocols/dq_adapter.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

ExperimentParams batched_params() {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.lease_length = sim::seconds(1);
  p.num_volumes = 8;
  p.proactive_renewal = true;
  p.batch_renewals = true;
  return p;
}

TEST(BatchedRenewals, KeepReadsHitAcrossLeaseBoundaries) {
  ExperimentParams p = batched_params();
  p.requests_per_client = 0;
  Deployment dep(p);
  auto& w = dep.world();
  auto client = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  dep.server_node(0).add_handler(
      [client](const sim::Envelope& e) { return client->on_message(e); });

  auto read_latency = [&](ObjectId o) {
    bool done = false;
    const sim::Time t0 = w.now();
    client->read(o, [&](bool, VersionedValue) { done = true; });
    while (!done) w.run_for(sim::milliseconds(5));
    return w.now() - t0;
  };
  // Touch all 8 volumes once (misses), starting the batched loop.
  for (std::uint64_t k = 0; k < 8; ++k) read_latency(ObjectId(k));
  // Ride across several lease boundaries: everything stays a hit because
  // the batch refreshes all leases proactively.
  for (int round = 0; round < 5; ++round) {
    w.run_for(sim::milliseconds(900));
    for (std::uint64_t k = 0; k < 8; ++k) {
      EXPECT_LE(read_latency(ObjectId(k)), sim::milliseconds(15))
          << "round " << round << " obj " << k;
    }
  }
  EXPECT_GT(w.message_stats().by_type("DqVolRenewBatch"), 0u);
}

TEST(BatchedRenewals, OneBatchCoversManyVolumes) {
  ExperimentParams p = batched_params();
  p.requests_per_client = 0;
  Deployment dep(p);
  auto& w = dep.world();
  auto client = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  dep.server_node(0).add_handler(
      [client](const sim::Envelope& e) { return client->on_message(e); });
  for (std::uint64_t k = 0; k < 8; ++k) {
    bool done = false;
    client->read(ObjectId(k), [&](bool, VersionedValue) { done = true; });
    while (!done) w.run_for(sim::milliseconds(5));
  }
  const auto singles_before = w.message_stats().by_type("DqVolRenew");
  w.run_for(sim::seconds(10));  // many renewal periods
  // All proactive traffic is batched: per-volume renewals do not grow.
  EXPECT_EQ(w.message_stats().by_type("DqVolRenew"), singles_before);
  const auto batches = w.message_stats().by_type("DqVolRenewBatch");
  EXPECT_GT(batches, 0u);
  // Coarse amortization check: 8 volumes x ~20 rounds would need ~160
  // per-volume messages per IQS member; batches are far fewer.
  EXPECT_LT(batches, 160u);
}

TEST(BatchedRenewals, DelayedInvalidationsStillArriveViaBatch) {
  ExperimentParams p = batched_params();
  p.requests_per_client = 0;
  Deployment dep(p);
  auto& w = dep.world();
  auto reader = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  auto writer = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(1), dep.dq_config());
  dep.server_node(0).add_handler(
      [reader](const sim::Envelope& e) { return reader->on_message(e); });
  dep.server_node(1).add_handler(
      [writer](const sim::Envelope& e) { return writer->on_message(e); });
  auto spin = [&](bool& f) {
    while (!f) w.run_for(sim::milliseconds(5));
  };

  bool done = false;
  writer->write(ObjectId(3), "v1", [&](bool, LogicalClock) { done = true; });
  spin(done);
  done = false;
  VersionedValue vv;
  reader->read(ObjectId(3), [&](bool, VersionedValue got) {
    vv = got;
    done = true;
  });
  spin(done);
  ASSERT_EQ(vv.value, "v1");

  // Cut server 0 off; write v2 (completes via lease expiry, queues a
  // delayed invalidation); reconnect; the batched renewal must deliver it.
  const NodeId s0 = w.topology().server(0);
  w.set_up(s0, false);
  done = false;
  writer->write(ObjectId(3), "v2", [&](bool, LogicalClock) { done = true; });
  spin(done);
  w.set_up(s0, true);
  w.run_for(sim::seconds(3));  // a few batched renewal rounds

  done = false;
  reader->read(ObjectId(3), [&](bool, VersionedValue got) {
    vv = got;
    done = true;
  });
  spin(done);
  EXPECT_EQ(vv.value, "v2");
  // The queue at the IQS side was trimmed by the batch ack.
  const VolumeId v = dep.dq_config()->volumes.volume_of(ObjectId(3));
  std::size_t residual = 0;
  for (NodeId i : dep.dq_config()->iqs->members()) {
    residual += dep.iqs_server(i)->delayed_queue_size(v, s0);
  }
  EXPECT_EQ(residual, 0u);
}

TEST(BatchedRenewals, RegularSemanticsSweep) {
  for (std::uint64_t seed : {51ull, 52ull}) {
    ExperimentParams p = batched_params();
    p.write_ratio = 0.35;
    p.requests_per_client = 70;
    p.max_drift = 0.01;
    p.seed = seed;
    p.choose_object = [](Rng& rng) { return ObjectId(rng.below(16)); };
    const auto r = run_experiment(p);
    EXPECT_TRUE(r.violations.empty())
        << "seed " << seed << ": " << r.violations.front().reason;
  }
}

}  // namespace
}  // namespace dq::workload
