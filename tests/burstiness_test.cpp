// Tests for the burst workload model and the paper's burst-related claims.
#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace dq::workload {
namespace {

TEST(Burstiness, StationaryWriteFractionIsPreserved) {
  for (double b : {0.0, 0.5, 0.9}) {
    ExperimentParams p;
    p.protocol = "rowa-async";
    p.write_ratio = 0.3;
    p.burstiness = b;
    p.requests_per_client = 2000;
    p.seed = 3;
    const auto r = run_experiment(p);
    const double measured =
        static_cast<double>(r.completed_writes) /
        static_cast<double>(r.completed_reads + r.completed_writes);
    EXPECT_NEAR(measured, 0.3, 0.05) << "burstiness " << b;
  }
}

TEST(Burstiness, BurstsMakeRunsLonger) {
  // Count kind-runs in the recorded history: with burstiness the expected
  // run length grows by ~1/(1-b).
  auto mean_run_length = [](double b) {
    ExperimentParams p;
    p.protocol = "rowa-async";
    p.write_ratio = 0.5;
    p.burstiness = b;
    p.topo.num_clients = 1;
    p.requests_per_client = 3000;
    p.seed = 5;
    const auto r = run_experiment(p);
    std::size_t runs = 0;
    msg::OpKind prev{};
    bool first = true;
    for (const auto& op : r.history.ops()) {
      if (first || op.kind != prev) ++runs;
      prev = op.kind;
      first = false;
    }
    return static_cast<double>(r.history.size()) /
           static_cast<double>(runs);
  };
  const double iid = mean_run_length(0.0);
  const double bursty = mean_run_length(0.9);
  EXPECT_NEAR(iid, 2.0, 0.3);     // w = 0.5 iid: mean run ~2
  EXPECT_GT(bursty, 3.0 * iid);   // 0.9 burstiness: much longer runs
}

TEST(Burstiness, DqvlBenefitsMajorityDoesNot) {
  auto overall = [](std::string proto, double b) {
    ExperimentParams p;
    p.protocol = proto;
    p.write_ratio = 0.3;
    p.burstiness = b;
    p.requests_per_client = 250;
    p.seed = 7;
    p.choose_object = [](Rng&) { return ObjectId(5); };
    return run_experiment(p).all_ms.mean();
  };
  const double dq_iid = overall("dqvl", 0.0);
  const double dq_bursty = overall("dqvl", 0.9);
  EXPECT_LT(dq_bursty, dq_iid * 0.75)
      << "bursts must help DQVL (hits + suppresses)";
  const double mj_iid = overall("majority", 0.0);
  const double mj_bursty = overall("majority", 0.9);
  EXPECT_NEAR(mj_bursty, mj_iid, mj_iid * 0.1)
      << "majority has no cache to warm";
}

TEST(Burstiness, StillRegularUnderBurstyContention) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 0.4;
  p.burstiness = 0.85;
  p.requests_per_client = 80;
  p.lease_length = sim::milliseconds(700);
  p.seed = 11;
  p.choose_object = [](Rng&) { return ObjectId(1); };
  const auto r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty());
}

}  // namespace
}  // namespace dq::workload
