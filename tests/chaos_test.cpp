// Chaos suite: long randomized runs combining everything the fault plane
// can do -- node churn, message loss, duplication, delay jitter, clock
// drift, short leases, epoch GC pressure, contention, bursts -- and
// asserting the one property that must survive it all: every completed
// read is regular.
#include <gtest/gtest.h>

#include <tuple>

#include "workload/experiment.h"

namespace dq::workload {
namespace {

using ChaosCase = std::tuple<std::string, std::uint64_t>;

class Chaos : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(Chaos, RegularSemanticsSurviveEverything) {
  const auto [proto, seed] = GetParam();
  ExperimentParams p;
  p.protocol = proto;
  p.seed = seed;
  p.write_ratio = 0.35;
  p.burstiness = 0.6;
  p.locality = 0.85;
  p.requests_per_client = 120;
  p.lease_length = sim::milliseconds(600);
  p.object_lease_length = sim::seconds(3);
  p.num_volumes = 3;
  p.max_delayed_per_volume = 4;   // force epoch GC under churn
  p.max_drift = 0.02;
  p.loss = 0.04;
  p.topo.jitter = 0.3;            // reordering
  p.op_deadline = sim::seconds(25);
  p.failures = sim::FailureInjector::Params::for_unavailability(
      0.06, sim::seconds(15));    // frequent short outages
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(5)); };

  Deployment dep(p);
  // Sprinkle duplication on top.
  dep.world().faults().set_duplication_probability(0.03);
  dep.start_clients();
  while (!dep.clients_done() &&
         dep.world().now() < sim::seconds(200000)) {
    dep.world().run_for(sim::seconds(2));
  }
  EXPECT_TRUE(dep.clients_done()) << "workload wedged under chaos";
  const auto r = dep.collect();
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size()
      << " violations, first: " << r.violations.front().reason;
  // Progress despite the chaos: most requests complete.
  EXPECT_GT(r.availability(), 0.5);
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> out;
  for (std::string proto : {"dqvl", "dqvl-atomic",
                         "majority"}) {
    for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
      out.emplace_back(proto, seed);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Storm, Chaos, ::testing::ValuesIn(chaos_cases()),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      std::string name = protocol_name(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// Crash-restart chaos: the full fault plane -- exponential crash/restart
// renewal processes over every server (real process deaths: WAL tails and
// waiters lost, soft state wiped), unavailability churn, message loss,
// clock drift, reordering -- over WAL-equipped protocols with torn-tail
// faults on.  Every completed read must still be regular: acks are gated
// on durability, recovery bumps epochs, and the grace window rides out
// residual pre-crash leases.
using CrashChaosCase = std::tuple<std::string, std::uint64_t>;

class CrashChaos : public ::testing::TestWithParam<CrashChaosCase> {};

ExperimentParams crash_chaos_params(std::string proto, std::uint64_t seed) {
  ExperimentParams p;
  p.protocol = proto;
  p.seed = seed;
  p.write_ratio = 0.3;
  p.locality = 0.85;
  p.requests_per_client = 100;
  p.lease_length = sim::seconds(1);
  p.num_volumes = 2;
  p.max_delayed_per_volume = 4;
  p.max_drift = 0.02;
  p.loss = 0.03;
  p.topo.jitter = 0.2;
  p.op_deadline = sim::seconds(25);
  store::WalParams w;
  w.policy = store::SyncPolicy::kGroupCommit;
  w.torn_tail_faults = true;
  p.wal = w;
  sim::CrashInjector::Params c;
  c.mean_time_to_crash = sim::seconds(15);
  c.mean_downtime = sim::seconds(1);
  p.crashes = c;
  p.failures = sim::FailureInjector::Params::for_unavailability(
      0.04, sim::seconds(20));
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(5)); };
  return p;
}

TEST_P(CrashChaos, AllReadsRegularAcrossCrashRestarts) {
  const auto [proto, seed] = GetParam();
  const ExperimentParams p = crash_chaos_params(proto, seed);
  const ExperimentResult r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size()
      << " violations, first: " << r.violations.front().reason;
  EXPECT_GT(r.availability(), 0.5);
  // Crashes actually happened and were recovered from.
  const std::uint64_t recoveries =
      r.metrics.counter("iqs.recoveries") +
      r.metrics.counter("oqs.recoveries") +
      r.metrics.counter("proto.majority.recoveries") +
      r.metrics.counter("proto.pb.recoveries");
  EXPECT_GT(recoveries, 0u) << "no server ever crash-restarted";
}

std::vector<CrashChaosCase> crash_chaos_cases() {
  std::vector<CrashChaosCase> out;
  for (std::string proto : {"dqvl", "majority",
                         "pb-sync"}) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      out.emplace_back(proto, seed);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    CrashStorm, CrashChaos, ::testing::ValuesIn(crash_chaos_cases()),
    [](const ::testing::TestParamInfo<CrashChaosCase>& info) {
      std::string name = protocol_name(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// At least one chaos seed must actually exercise the torn-tail path (a
// partially-written record dropped at replay) -- otherwise the matrix
// could silently stop covering it.
TEST(CrashChaosTorn, TornTailPathIsExercised) {
  std::uint64_t torn = 0;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const ExperimentResult r =
        run_experiment(crash_chaos_params("dqvl", seed));
    EXPECT_TRUE(r.violations.empty()) << "seed " << seed;
    torn += r.metrics.counter("wal.replay.torn_dropped");
  }
  EXPECT_GT(torn, 0u)
      << "no DQVL chaos seed dropped a torn record; re-pick seeds";
}

// Crash-restart churn (process deaths, not just unreachability): OQS soft
// state evaporates and must be re-derived; IQS durable state survives.
TEST(ChaosExtra, CrashRestartChurn) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.seed = 404;
  p.write_ratio = 0.3;
  p.requests_per_client = 100;
  p.lease_length = sim::seconds(1);
  p.op_deadline = sim::seconds(20);
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(4)); };
  Deployment dep(p);
  auto& w = dep.world();
  // Every 3 seconds, crash-restart a random server.
  std::function<void()> churn = [&] {
    const auto idx = w.rng().below(w.topology().num_servers());
    const NodeId n = w.topology().server(idx);
    w.crash(n);
    w.scheduler().schedule_after(sim::milliseconds(500),
                                 [&w, n] { w.restart(n); });
    w.scheduler().schedule_after(sim::seconds(3), churn);
  };
  w.scheduler().schedule_after(sim::seconds(2), churn);

  dep.start_clients();
  while (!dep.clients_done() && w.now() < sim::seconds(100000)) {
    w.run_for(sim::seconds(2));
  }
  EXPECT_TRUE(dep.clients_done());
  const auto r = dep.collect();
  EXPECT_TRUE(r.violations.empty())
      << "first: " << r.violations.front().reason;
}

}  // namespace
}  // namespace dq::workload
