// Chaos suite: long randomized runs combining everything the fault plane
// can do -- node churn, message loss, duplication, delay jitter, clock
// drift, short leases, epoch GC pressure, contention, bursts -- and
// asserting the one property that must survive it all: every completed
// read is regular.
#include <gtest/gtest.h>

#include <tuple>

#include "workload/experiment.h"

namespace dq::workload {
namespace {

using ChaosCase = std::tuple<Protocol, std::uint64_t>;

class Chaos : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(Chaos, RegularSemanticsSurviveEverything) {
  const auto [proto, seed] = GetParam();
  ExperimentParams p;
  p.protocol = proto;
  p.seed = seed;
  p.write_ratio = 0.35;
  p.burstiness = 0.6;
  p.locality = 0.85;
  p.requests_per_client = 120;
  p.lease_length = sim::milliseconds(600);
  p.object_lease_length = sim::seconds(3);
  p.num_volumes = 3;
  p.max_delayed_per_volume = 4;   // force epoch GC under churn
  p.max_drift = 0.02;
  p.loss = 0.04;
  p.topo.jitter = 0.3;            // reordering
  p.op_deadline = sim::seconds(25);
  p.failures = sim::FailureInjector::Params::for_unavailability(
      0.06, sim::seconds(15));    // frequent short outages
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(5)); };

  Deployment dep(p);
  // Sprinkle duplication on top.
  dep.world().faults().set_duplication_probability(0.03);
  dep.start_clients();
  while (!dep.clients_done() &&
         dep.world().now() < sim::seconds(200000)) {
    dep.world().run_for(sim::seconds(2));
  }
  EXPECT_TRUE(dep.clients_done()) << "workload wedged under chaos";
  const auto r = dep.collect();
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size()
      << " violations, first: " << r.violations.front().reason;
  // Progress despite the chaos: most requests complete.
  EXPECT_GT(r.availability(), 0.5);
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> out;
  for (Protocol proto : {Protocol::kDqvl, Protocol::kDqvlAtomic,
                         Protocol::kMajority}) {
    for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
      out.emplace_back(proto, seed);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Storm, Chaos, ::testing::ValuesIn(chaos_cases()),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      std::string name = protocol_name(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// Crash-restart churn (process deaths, not just unreachability): OQS soft
// state evaporates and must be re-derived; IQS durable state survives.
TEST(ChaosExtra, CrashRestartChurn) {
  ExperimentParams p;
  p.protocol = Protocol::kDqvl;
  p.seed = 404;
  p.write_ratio = 0.3;
  p.requests_per_client = 100;
  p.lease_length = sim::seconds(1);
  p.op_deadline = sim::seconds(20);
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(4)); };
  Deployment dep(p);
  auto& w = dep.world();
  // Every 3 seconds, crash-restart a random server.
  std::function<void()> churn = [&] {
    const auto idx = w.rng().below(w.topology().num_servers());
    const NodeId n = w.topology().server(idx);
    w.crash(n);
    w.scheduler().schedule_after(sim::milliseconds(500),
                                 [&w, n] { w.restart(n); });
    w.scheduler().schedule_after(sim::seconds(3), churn);
  };
  w.scheduler().schedule_after(sim::seconds(2), churn);

  dep.start_clients();
  while (!dep.clients_done() && w.now() < sim::seconds(100000)) {
    w.run_for(sim::seconds(2));
  }
  EXPECT_TRUE(dep.clients_done());
  const auto r = dep.collect();
  EXPECT_TRUE(r.violations.empty())
      << "first: " << r.violations.front().reason;
}

}  // namespace
}  // namespace dq::workload
