// Unit tests for common substrate: strong ids, logical clocks, RNG, stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/version.h"
#include "sim/clock.h"

namespace dq {
namespace {

TEST(TaggedId, ComparesByValue) {
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
  EXPECT_LT(NodeId(3), NodeId(4));
}

TEST(TaggedId, Hashable) {
  std::unordered_set<ObjectId> s;
  s.insert(ObjectId(1));
  s.insert(ObjectId(1));
  s.insert(ObjectId(2));
  EXPECT_EQ(s.size(), 2u);
}

TEST(LogicalClock, OrdersByCounterThenWriter) {
  LogicalClock a{1, 5}, b{2, 1}, c{1, 6};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(c, b);
  EXPECT_EQ(LogicalClock::zero(), LogicalClock{});
}

TEST(LogicalClock, AdvanceIncrementsCounterAndStampsWriter) {
  const LogicalClock base{7, 3};
  const LogicalClock next = base.advanced_by(ClientId(9));
  EXPECT_EQ(next.counter, 8u);
  EXPECT_EQ(next.writer, 9u);
  EXPECT_GT(next, base);
}

TEST(LogicalClock, ConcurrentAdvancesAreTotallyOrdered) {
  const LogicalClock base{7, 3};
  const LogicalClock a = base.advanced_by(ClientId(1));
  const LogicalClock b = base.advanced_by(ClientId(2));
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(9), 9u);
  }
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, ChanceExtremes) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(Rng, SampleWithoutReplacementIsDistinctSubset) {
  Rng r(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = r.sample_without_replacement(10, 4);
    ASSERT_EQ(s.size(), 4u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (auto x : s) EXPECT_LT(x, 10u);
  }
}

TEST(Rng, SampleRequestingAllReturnsAll) {
  Rng r(5);
  auto s = r.sample_without_replacement(4, 9);
  EXPECT_EQ(s.size(), 4u);
}

TEST(Rng, SampleCoversAllElementsEventually) {
  Rng r(6);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    for (auto x : r.sample_without_replacement(6, 2)) seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(99), 0.0);
}

TEST(DriftClock, PerfectClockIsIdentity) {
  sim::DriftClock c;
  EXPECT_EQ(c.local_time(12345), 12345);
  EXPECT_EQ(c.global_time(12345), 12345);
}

TEST(DriftClock, LocalAndGlobalAreInverse) {
  sim::DriftClock c(1000, 1.0001);
  for (sim::Time t : {sim::Time{0}, sim::Time{1000000}, sim::Time{999999999}}) {
    EXPECT_NEAR(static_cast<double>(c.global_time(c.local_time(t))),
                static_cast<double>(t), 2.0);
  }
}

TEST(DriftClock, RandomClockStaysWithinDriftEnvelope) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    auto c = sim::DriftClock::random(rng, 0.01, sim::seconds(1));
    EXPECT_GE(c.rate(), 0.99);
    EXPECT_LE(c.rate(), 1.01);
    EXPECT_GE(c.offset(), 0);
    EXPECT_LE(c.offset(), sim::seconds(1));
  }
}

TEST(VersionedValue, EqualityComparesValueAndClock) {
  VersionedValue a{"x", {1, 2}}, b{"x", {1, 2}}, c{"x", {1, 3}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dq
