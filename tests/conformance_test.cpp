// Pseudo-code conformance: subtle details of Figures 4 and 5 that the
// broader suites do not pin down explicitly.
#include <gtest/gtest.h>

#include <memory>

#include "core/iqs_server.h"
#include "protocols/dq_adapter.h"
#include "workload/experiment.h"
#include "workload/node.h"

namespace dq::workload {
namespace {

// The logical clock returned by processLCReadRequest is the node's GLOBAL
// clock ("each node in IQS maintains a logical clock logicalClock whose
// value is always at least as large as the node's largest lastWriteLC_o for
// ANY object o") -- a write to one object must advance the clock other
// objects' writers observe.
TEST(Conformance, LogicalClockIsGlobalAcrossObjects) {
  sim::Topology::Params tp;
  tp.num_servers = 2;
  tp.num_clients = 0;
  tp.processing_delay = 0;
  sim::World w{sim::Topology(tp), 3};
  auto cfg = std::make_shared<core::DqConfig>(core::DqConfig::headline(
      {NodeId(1)}, {NodeId(0)}, sim::seconds(5)));
  core::IqsServer iqs(w, NodeId(0), cfg);
  EdgeNode node;
  node.add_handler([&](const sim::Envelope& e) { return iqs.on_message(e); });
  w.attach(NodeId(0), node);

  struct Capture final : sim::Actor {
    void on_message(const sim::Envelope& env) override {
      if (const auto* r = std::get_if<msg::DqLcReadReply>(&env.body)) {
        last = r->clock;
      }
    }
    LogicalClock last;
  } probe;
  w.attach(NodeId(1), probe);

  w.send(NodeId(1), NodeId(0), RequestId(1),
         msg::DqWrite{ObjectId(100), "x", {9, 1}});
  w.run_for(sim::seconds(1));
  w.send(NodeId(1), NodeId(0), RequestId(2), msg::DqLcRead{ObjectId(200)});
  w.run_for(sim::seconds(1));
  EXPECT_EQ(probe.last, (LogicalClock{9, 1}))
      << "LC read of object 200 must reflect the write to object 100";
}

// "if (lc > lastWriteLC_o)" -- an EQUAL clock must not re-apply (first
// writer wins for identical clocks; our clocks are unique anyway, but the
// guard must be strict).
TEST(Conformance, EqualClockWriteDoesNotClobber) {
  sim::Topology::Params tp;
  tp.num_servers = 2;
  tp.num_clients = 0;
  tp.processing_delay = 0;
  sim::World w{sim::Topology(tp), 3};
  auto cfg = std::make_shared<core::DqConfig>(core::DqConfig::headline(
      {NodeId(1)}, {NodeId(0)}, sim::seconds(5)));
  core::IqsServer iqs(w, NodeId(0), cfg);
  EdgeNode node;
  node.add_handler([&](const sim::Envelope& e) { return iqs.on_message(e); });
  w.attach(NodeId(0), node);
  struct Sink final : sim::Actor {
    void on_message(const sim::Envelope&) override {}
  } sink;
  w.attach(NodeId(1), sink);

  w.send(NodeId(1), NodeId(0), RequestId(1),
         msg::DqWrite{ObjectId(1), "first", {5, 2}});
  w.run_for(sim::seconds(1));
  w.send(NodeId(1), NodeId(0), RequestId(2),
         msg::DqWrite{ObjectId(1), "second", {5, 2}});
  w.run_for(sim::seconds(1));
  EXPECT_EQ(iqs.value_of(ObjectId(1)), "first");
}

// The client write protocol: the chosen clock strictly exceeds the maximum
// completed write's clock observed at an IQS read quorum, so consecutive
// writes through any clients are totally ordered consistently with real
// time.
TEST(Conformance, WriteClocksStrictlyIncreaseAcrossClients) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 1.0;
  p.requests_per_client = 30;
  p.seed = 77;
  p.choose_object = [](Rng&) { return ObjectId(4); };
  const auto r = run_experiment(p);
  // Sort completed writes by completion time; clocks must respect the order
  // for non-overlapping pairs (check_atomic covers this too, but assert the
  // raw monotonicity here for the write-only workload).
  std::vector<const OpRecord*> writes;
  for (const auto& op : r.history.ops()) {
    if (op.ok && op.kind == msg::OpKind::kWrite) writes.push_back(&op);
  }
  ASSERT_GE(writes.size(), 2u);
  for (const OpRecord* a : writes) {
    for (const OpRecord* b : writes) {
      if (a->completed <= b->invoked) {
        EXPECT_LT(a->clock, b->clock)
            << "non-overlapping writes must carry increasing clocks";
      }
    }
  }
}

// processObjRenewal must update lastReadLC even when the object was never
// written (renewal of an unknown object installs a callback for it).
TEST(Conformance, RenewalOfUnknownObjectInstallsCallback) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.requests_per_client = 0;
  Deployment dep(p);
  auto& w = dep.world();
  auto client = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  dep.server_node(0).add_handler(
      [client](const sim::Envelope& e) { return client->on_message(e); });
  bool done = false;
  VersionedValue vv;
  client->read(ObjectId(42), [&](bool, VersionedValue got) {
    vv = got;
    done = true;
  });
  while (!done) w.run_for(sim::milliseconds(10));
  // Unwritten object: initial value, clock zero.
  EXPECT_TRUE(vv.value.empty());
  EXPECT_EQ(vv.clock, LogicalClock::zero());
  // A later write must invalidate that cached emptiness before completing,
  // and the reader then sees the write -- the callback was real.
  auto writer = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(1), dep.dq_config());
  dep.server_node(1).add_handler(
      [writer](const sim::Envelope& e) { return writer->on_message(e); });
  done = false;
  writer->write(ObjectId(42), "now-exists",
                [&](bool, LogicalClock) { done = true; });
  while (!done) w.run_for(sim::milliseconds(10));
  done = false;
  client->read(ObjectId(42), [&](bool, VersionedValue got) {
    vv = got;
    done = true;
  });
  while (!done) w.run_for(sim::milliseconds(10));
  EXPECT_EQ(vv.value, "now-exists");
}

// A read of a never-written object through the full stack returns the
// initial value and is regular.
TEST(Conformance, ReadYourOwnWriteAlwaysHolds) {
  // Read-your-writes through one front end follows from regularity (the
  // write completed before the read began).  Sweep it explicitly.
  for (std::uint64_t seed : {31ull, 32ull}) {
    ExperimentParams p;
    p.protocol = "dqvl";
    p.write_ratio = 0.5;
    p.topo.num_clients = 1;  // single client: every read follows its writes
    p.requests_per_client = 80;
    p.seed = seed;
    const auto r = run_experiment(p);
    ASSERT_TRUE(r.violations.empty());
    // Stronger: the single client's reads always return its LAST write.
    Value last_written;
    LogicalClock last_clock;
    for (const auto& op : r.history.ops()) {
      if (op.kind == msg::OpKind::kWrite) {
        last_written = op.value;
        last_clock = op.clock;
      } else if (!last_written.empty()) {
        EXPECT_EQ(op.value, last_written);
        EXPECT_EQ(op.clock, last_clock);
      }
    }
  }
}

}  // namespace
}  // namespace dq::workload
