// Property suite: regular semantics under adversarial conditions.
//
// Every strong protocol (DQVL, basic DQ, majority, primary/backup-sync,
// ROWA) must produce regular histories across random seeds, message loss,
// contention on shared objects, clock drift, and short lease configurations.
// ROWA-Async is the negative control: under partitions it must eventually
// produce a violation (if it never did, the checker would be vacuous).
#include <gtest/gtest.h>

#include <tuple>

#include "workload/experiment.h"

namespace dq::workload {
namespace {

// (protocol, seed, loss, write_ratio)
using Case = std::tuple<std::string, std::uint64_t, double, double>;

class RegularSemantics : public ::testing::TestWithParam<Case> {};

TEST_P(RegularSemantics, HoldsUnderContentionAndLoss) {
  const auto [proto, seed, loss, write_ratio] = GetParam();
  ExperimentParams p;
  p.protocol = proto;
  p.seed = seed;
  p.loss = loss;
  p.write_ratio = write_ratio;
  p.requests_per_client = 60;
  p.lease_length = sim::milliseconds(700);  // short: lots of renewals
  p.max_drift = 0.01;
  p.num_volumes = 2;
  // All three clients fight over two objects: maximal interleaving.
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(2)); };
  const auto r = run_experiment(p);
  EXPECT_EQ(r.rejected_reads + r.rejected_writes, 0u);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size()
      << " violations, first: " << r.violations.front().reason;
}

std::vector<Case> strong_cases() {
  std::vector<Case> out;
  for (std::string proto :
       {"dqvl", "dq-basic", "majority",
        "pb-sync", "rowa"}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      for (double loss : {0.0, 0.05}) {
        for (double w : {0.3, 0.7}) {
          out.emplace_back(proto, seed, loss, w);
        }
      }
    }
  }
  return out;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = protocol_name(std::get<0>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  name += "_s" + std::to_string(std::get<1>(info.param));
  name += std::get<2>(info.param) > 0 ? "_lossy" : "_clean";
  name += std::get<3>(info.param) > 0.5 ? "_writeheavy" : "_mixed";
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegularSemantics,
                         ::testing::ValuesIn(strong_cases()), case_name);

// DQVL with a 1-node IQS degenerates gracefully (single home for writes,
// cached reads everywhere).
TEST(RegularSemanticsExtra, DqvlSingletonIqs) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.iqs = workload::QuorumSpec::majority(1);
  p.write_ratio = 0.4;
  p.requests_per_client = 80;
  p.choose_object = [](Rng&) { return ObjectId(5); };
  const auto r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty());
}

// DQVL with a larger OQS read quorum (paper section 6 future work).
TEST(RegularSemanticsExtra, DqvlReadQuorumOfThree) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.oqs_read_quorum = 3;
  p.write_ratio = 0.4;
  p.requests_per_client = 60;
  p.seed = 31;
  p.choose_object = [](Rng&) { return ObjectId(5); };
  const auto r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty());
}

// Many volumes with cross-volume traffic.
TEST(RegularSemanticsExtra, DqvlManyVolumes) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.num_volumes = 8;
  p.lease_length = sim::milliseconds(500);
  p.write_ratio = 0.3;
  p.requests_per_client = 80;
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(16)); };
  const auto r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty());
}

// Suppression disabled must still be correct (it is an optimization).
TEST(RegularSemanticsExtra, DqvlWithoutSuppression) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.suppression = false;
  p.write_ratio = 0.5;
  p.requests_per_client = 60;
  p.choose_object = [](Rng&) { return ObjectId(5); };
  const auto r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty());
}

// Proactive renewal must not break correctness either.
TEST(RegularSemanticsExtra, DqvlWithProactiveRenewal) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.proactive_renewal = true;
  p.lease_length = sim::milliseconds(600);
  p.write_ratio = 0.3;
  p.requests_per_client = 80;
  p.choose_object = [](Rng&) { return ObjectId(5); };
  const auto r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty());
}

// Regular semantics under node churn (crash-like unreachability cycling),
// with deadlines so requests reject rather than hang.
TEST(RegularSemanticsExtra, DqvlUnderNodeChurn) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 0.3;
  p.requests_per_client = 60;
  p.lease_length = sim::seconds(1);
  p.op_deadline = sim::seconds(20);
  p.failures = sim::FailureInjector::Params::for_unavailability(
      0.05, sim::seconds(20));
  p.choose_object = [](Rng&) { return ObjectId(5); };
  p.seed = 43;
  const auto r = run_experiment(p);
  // Some requests may reject; none may be inconsistent.
  EXPECT_TRUE(r.violations.empty())
      << "first: " << r.violations.front().reason;
  EXPECT_GT(r.completed_reads + r.completed_writes, 0u);
}

// Negative control: ROWA-Async under a partition serves stale reads.
TEST(RegularSemanticsExtra, RowaAsyncViolatesUnderPartition) {
  ExperimentParams p;
  p.protocol = "rowa-async";
  p.write_ratio = 0.5;
  p.requests_per_client = 60;
  p.choose_object = [](Rng&) { return ObjectId(5); };
  Deployment dep(p);
  // Split {servers 0, 1 + their clients} from the rest: gossip cannot
  // cross, but each side keeps serving its local clients -- and the third
  // client (homed at server 2) writes on the other side.
  const auto& topo = dep.world().topology();
  dep.world().faults().set_group(topo.server(0), 1);
  dep.world().faults().set_group(topo.server(1), 1);
  dep.world().faults().set_group(topo.client(0), 1);  // homed at server 0
  dep.world().faults().set_group(topo.client(1), 1);  // homed at server 1
  const auto r = dep.run();
  EXPECT_EQ(r.rejected_reads + r.rejected_writes, 0u)
      << "ROWA-Async never rejects -- that is its problem";
  EXPECT_FALSE(r.violations.empty())
      << "expected stale reads across the partition";
}

// And the same partition leaves every strong protocol consistent (some
// requests reject instead).
TEST(RegularSemanticsExtra, DqvlStaysRegularUnderPartition) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 0.5;
  p.requests_per_client = 40;
  p.op_deadline = sim::seconds(30);
  p.lease_length = sim::seconds(1);
  p.choose_object = [](Rng&) { return ObjectId(5); };
  Deployment dep(p);
  for (std::size_t i = 0; i < 4; ++i) {
    dep.world().faults().set_group(dep.world().topology().server(i), 1);
  }
  dep.start_clients();
  dep.world().run_for(sim::seconds(120));
  dep.world().faults().heal();
  while (!dep.clients_done() &&
         dep.world().now() < sim::seconds(100000)) {
    dep.world().run_for(sim::seconds(1));
  }
  const auto r = dep.collect();
  EXPECT_TRUE(r.violations.empty())
      << "first: " << r.violations.front().reason;
}

}  // namespace
}  // namespace dq::workload
