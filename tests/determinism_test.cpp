// Determinism: every experiment is a pure function of its seed.  This is
// what makes the figure benches reproducible and failures debuggable.
#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/report.h"

namespace dq::workload {
namespace {

ExperimentParams adversarial(std::uint64_t seed) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 0.35;
  p.locality = 0.8;
  p.burstiness = 0.5;
  p.requests_per_client = 80;
  p.lease_length = sim::milliseconds(900);
  p.max_drift = 0.01;
  p.loss = 0.03;
  p.topo.jitter = 0.2;
  p.seed = seed;
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(3)); };
  return p;
}

TEST(Determinism, SameSeedSameExecution) {
  const auto a = run_experiment(adversarial(1234));
  const auto b = run_experiment(adversarial(1234));
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.message_table, b.message_table);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_DOUBLE_EQ(a.all_ms.mean(), b.all_ms.mean());
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history.ops()[i].invoked, b.history.ops()[i].invoked);
    EXPECT_EQ(a.history.ops()[i].completed, b.history.ops()[i].completed);
    EXPECT_EQ(a.history.ops()[i].value, b.history.ops()[i].value);
    EXPECT_EQ(a.history.ops()[i].clock, b.history.ops()[i].clock);
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_experiment(adversarial(1));
  const auto b = run_experiment(adversarial(2));
  // Loss and jitter guarantee different schedules; message totals almost
  // surely differ.
  EXPECT_NE(a.total_messages, b.total_messages);
}

TEST(Determinism, EveryProtocolIsDeterministic) {
  for (std::string proto : paper_protocols()) {
    ExperimentParams p;
    p.protocol = proto;
    p.write_ratio = 0.2;
    p.loss = 0.02;
    p.requests_per_client = 40;
    p.seed = 99;
    const auto a = run_experiment(p);
    const auto b = run_experiment(p);
    EXPECT_EQ(a.total_messages, b.total_messages) << protocol_name(proto);
    EXPECT_DOUBLE_EQ(a.all_ms.mean(), b.all_ms.mean())
        << protocol_name(proto);
  }
}

// The strongest form of the guarantee: not just equal aggregates, but a
// byte-identical dq.report.v1 document -- every counter, histogram bucket,
// and per-node load cell -- from two independently constructed worlds.
// This is exactly what dqlint's det-* rules defend: one hash-ordered walk
// or wall-clock read anywhere in the pipeline and these strings diverge.
TEST(Determinism, ReportJsonIsByteIdenticalAcrossWorlds) {
  const ExperimentParams p = adversarial(31337);
  const auto a = run_experiment(p);
  const auto b = run_experiment(p);
  const std::string ja = report::to_json(p, a);
  const std::string jb = report::to_json(p, b);
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, jb);
}

TEST(Determinism, ReportJsonDivergesAcrossSeeds) {
  const auto a = run_experiment(adversarial(7));
  const auto b = run_experiment(adversarial(8));
  EXPECT_NE(report::to_json(adversarial(7), a),
            report::to_json(adversarial(8), b));
}

}  // namespace
}  // namespace dq::workload
