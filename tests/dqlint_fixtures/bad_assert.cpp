// hyg-assert: NDEBUG-dependent assertions.
#include <cassert>

void check(int x) {
  assert(x > 0);                        // fires (plus the include above)
  static_assert(sizeof(int) >= 4);      // static_assert is fine
}
