// cap-consistency-lww (wiring variant): beta is registered as atomic, but
// its closure (BetaServer) resolves writes with a site-stamped lamport
// counter -- LWW machinery that cannot give atomic semantics.
#include "protocols/registry.h"

namespace dq::workload {
namespace {

std::unique_ptr<core::Server> build_beta(core::Node& node) {
  (void)node;
  return std::make_unique<protocols::BetaServer>();
}

void add(const char* name, const char* display, protocols::Capability caps,
         std::unique_ptr<core::Server> (*build)(core::Node&)) {
  (void)name;
  (void)display;
  (void)caps;
  (void)build;
}

}  // namespace

void register_fixture_protocols() {
  add("beta", "Beta (allegedly atomic)",
      {/*supports_wal=*/false, /*supports_crash_recovery=*/false,
       protocols::ConsistencyClass::kAtomic},
      &build_beta);
}

}  // namespace dq::workload
