// cap-recovery-claim (wiring variant): alpha claims
// supports_crash_recovery=true, but its build function never wires an
// add_crash_hook.  (The WAL claim is honest: AlphaServer owns a store::Wal.)
#include "protocols/registry.h"

namespace dq::workload {
namespace {

std::unique_ptr<core::Server> build_alpha(core::Node& node) {
  (void)node;
  return std::make_unique<protocols::AlphaServer>();
}

void add(const char* name, const char* display, protocols::Capability caps,
         std::unique_ptr<core::Server> (*build)(core::Node&)) {
  (void)name;
  (void)display;
  (void)caps;
  (void)build;
}

}  // namespace

void register_fixture_protocols() {
  add("alpha", "Alpha (durable)",
      {/*supports_wal=*/true, /*supports_crash_recovery=*/true,
       protocols::ConsistencyClass::kRegular},
      &build_alpha);
}

}  // namespace dq::workload
