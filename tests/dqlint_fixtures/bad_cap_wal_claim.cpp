// cap-wal-claim (wiring variant): alpha claims supports_wal=true, but its
// build function wires BetaServer, whose closure never touches store::Wal.
#include "protocols/registry.h"

namespace dq::workload {
namespace {

std::unique_ptr<core::Server> build_alpha(core::Node& node) {
  node.add_crash_hook([] {}, [] {});
  return std::make_unique<protocols::BetaServer>();
}

void add(const char* name, const char* display, protocols::Capability caps,
         std::unique_ptr<core::Server> (*build)(core::Node&)) {
  (void)name;
  (void)display;
  (void)caps;
  (void)build;
}

}  // namespace

void register_fixture_protocols() {
  add("alpha", "Alpha (durable)",
      {/*supports_wal=*/true, /*supports_crash_recovery=*/true,
       protocols::ConsistencyClass::kRegular},
      &build_alpha);
}

}  // namespace dq::workload
