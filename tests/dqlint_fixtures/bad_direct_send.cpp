// proto-direct-send: raw world_.send / send_tagged egress.
struct FakeWorld {
  template <class... A> void send(A...) {}
  template <class... A> void send_tagged(A...) {}
  template <class... A> void reply(A...) {}
};

struct Server {
  FakeWorld world_;
  void go() {
    world_.send(1, 2, 3);               // fires
    world_.send_tagged(1, 2, 3, true);  // fires
    world_.reply(1, 2);                 // reply path: does not fire
  }
};
