// durable-state: direct mutation of durable state bypassing the WAL.
struct LeaseState {
  unsigned long epoch = 0;
};

struct Store {
  void apply(int o, int v);
  void clear();
  int get(int o) const;
};

struct Server {
  LeaseState ls;
  Store store_;
  Store objects_;
  unsigned long node_epoch = 0;

  void bad(int o, int v) {
    ++ls.epoch;           // fires (pre-increment through a member qualifier)
    node_epoch += 1;      // fires (compound assignment on an epoch field)
    store_.apply(o, v);   // fires (store mutation without a WAL append)
    objects_.clear();     // fires (wholesale wipe of logged state)
  }

  int fine(int o) const {
    const unsigned long snapshot = ls.epoch;  // read-only access stays quiet
    return store_.get(o) + static_cast<int>(snapshot);
  }
};
