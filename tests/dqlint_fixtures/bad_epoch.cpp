// proto-epoch-compare: raw comparisons and max() over epoch fields.
#include <algorithm>

struct Lease {
  unsigned long epoch = 0;
};

bool check(const Lease& l, unsigned long vol_epoch, unsigned long cur) {
  if (vol_epoch == cur) {                       // fires (raw ==)
    return true;
  }
  unsigned long e = std::max(l.epoch, cur);     // fires (max over epoch)
  return e > 1;
}
