// flow-dead-message (user-file variant): Pong never appears outside the
// wire layer -- no send site, nothing constructs or names it.
#include "msg/wire.h"

namespace dq::core {

msg::Payload make_ping(std::uint64_t nonce) { return msg::Ping{nonce}; }

int classify(const msg::Payload& p) {
  if (std::get_if<msg::Ping>(&p) != nullptr) return 1;
  return 0;
}

}  // namespace dq::core
