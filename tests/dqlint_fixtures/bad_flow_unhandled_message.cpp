// flow-unhandled-message (user-file variant): Pong is constructed (a send
// site exists) but no receiver ever dispatches on it.
#include "msg/wire.h"

namespace dq::core {

msg::Payload make_ping(std::uint64_t nonce) { return msg::Ping{nonce}; }
msg::Payload make_pong(std::uint64_t nonce) { return msg::Pong{nonce}; }

int classify(const msg::Payload& p) {
  if (std::get_if<msg::Ping>(&p) != nullptr) return 1;
  return 0;
}

}  // namespace dq::core
