// flow-unregistered (wire.h variant): `Orphan` is declared in the wire
// header but is neither a Payload alternative nor referenced anywhere else
// in the program -- dead cargo on the wire layer.
#include <cstdint>
#include <variant>

namespace dq::msg {

struct Ping {
  std::uint64_t nonce = 0;
};

struct Pong {
  std::uint64_t nonce = 0;
};

struct Orphan {
  std::uint32_t pad = 0;
};

using Payload = std::variant<Ping, Pong>;

}  // namespace dq::msg
