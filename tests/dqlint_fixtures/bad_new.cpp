// hyg-naked-new: manual memory management.
struct Foo {
  int x = 0;
};

int churn() {
  Foo* p = new Foo();                   // fires
  const int x = p->x;
  delete p;                             // fires
  return x;
}
