// proto-obs-read: reading an instrument in a decision path.
struct Counter {
  [[nodiscard]] unsigned long value() const { return v_; }
  void inc() { ++v_; }
  unsigned long v_ = 0;
};

struct Server {
  Counter* m_reads_ = nullptr;
  bool throttled() const {
    return m_reads_->value() > 100;     // fires
  }
  void record() { m_reads_->inc(); }    // writes are fine
};
