// part-local-static: one mutable function-local static shared by every
// partition worker that calls the function; the const table stays quiet.
namespace dq::sim {

int next_ticket() {
  static int ticket = 0;
  return ++ticket;
}

int table_lookup(int i) {
  static const int kTable[4] = {1, 2, 4, 8};
  return kTable[i & 3];
}

}  // namespace dq::sim
