// part-mutable-global: namespace-scope, thread_local, and class-static
// mutable state are all shared across parallel_world partitions; only the
// per-instance member stays quiet.
#include <cstdint>

namespace dq::sim {

std::uint64_t g_rounds = 0;

thread_local int t_scratch = 0;

struct Telemetry {
  static int shared_hits;
  int local_hits = 0;
};

}  // namespace dq::sim
