// det-ptr-key: pointer-keyed ordered containers.
#include <map>
#include <set>

struct Node;
struct Event;

std::map<Node*, int> by_node;             // fires
std::set<const Event*> pending;           // fires
std::map<std::pair<int, int>, Node*> ok;  // pointer VALUE is fine
