// det-rand: libc randomness.
#include <cstdlib>

int draw() {
  srand(42);                            // fires
  return rand();                        // fires
}
