// det-rng-engine / det-random-device: std <random> machinery and
// default-seeded Rng().
#include <random>

#include "common/rng.h"

unsigned draw() {
  std::random_device rd;                // fires det-random-device
  std::mt19937 gen(rd());               // fires det-rng-engine
  dq::Rng rng = dq::Rng();              // fires det-rng-engine (unseeded)
  (void)rng;
  return gen();
}
