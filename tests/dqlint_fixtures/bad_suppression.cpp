// Malformed or dead directives are themselves diagnostics.
#include <cstdlib>

// dqlint:allow(det-rand)
int a() { return rand(); }              // missing ': justification'

// dqlint:allow(not-a-rule): whatever
int b() { return rand(); }              // unknown rule id

// dqlint:allow(det-rand): nothing random happens on the next line
int c() { return 7; }                   // unused suppression
