// det-thread: std threading primitives outside src/run/.
//
// Lint input only -- never compiled.  Expected: 5 det-thread diagnostics
// (two includes, std::thread, std::mutex, std::async) and nothing else.
#include <thread>  // fires
#include <mutex>   // fires

struct Pool {
  void async(int) {}
};

void worker();

void f(Pool& pool) {
  std::thread t(worker);          // fires
  std::mutex m;                   // fires
  auto fut = std::async(worker);  // fires
  pool.async(1);                  // member call: quiet
  int thread = 0;                 // bare identifier: quiet
  (void)t;
  (void)m;
  (void)fut;
  (void)thread;
  // std::condition_variable in prose stays quiet.
}
