// det-unordered-container: both declarations below must fire.
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, int> table;     // fires
std::unordered_set<int> members;        // fires
