// det-wall-clock: wall-clock reads.
#include <chrono>
#include <ctime>

long stamp() {
  const long t = time(nullptr);                            // fires
  auto now = std::chrono::system_clock::now();             // fires
  (void)now;
  return t;
}
