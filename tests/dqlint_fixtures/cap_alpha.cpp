// Protocol-impl fixture: AlphaServer wires a durable log (store::Wal), the
// honest counterpart of cap_wiring.cpp's alpha registration.
#include "store/wal.h"

namespace dq::protocols {

class AlphaServer {
 public:
  void on_write(int key, int value) { wal_.append(key, value); }

 private:
  store::Wal wal_;
};

}  // namespace dq::protocols
