// Protocol-impl fixture: BetaServer resolves conflicts last-writer-wins via
// a site-stamped lamport counter and keeps no durable log -- the honest
// counterpart of the eventual, wal-free beta registration.
#include <cstdint>

namespace dq::protocols {

class BetaServer {
 public:
  void on_write(int key, int value) {
    ++lamport_;
    slot_key_ = key;
    slot_value_ = value;
  }

 private:
  std::uint64_t lamport_ = 0;
  int slot_key_ = 0;
  int slot_value_ = 0;
};

}  // namespace dq::protocols
