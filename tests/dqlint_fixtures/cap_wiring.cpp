// Registry-wiring fixture (stands in for src/workload/wiring.cpp): every
// capability claim matches the implementation closure.  alpha wires a WAL
// and crash hooks and claims atomic (its closure has no LWW helpers); beta
// claims nothing and is honestly eventual.
#include "protocols/registry.h"

namespace dq::workload {
namespace {

constexpr protocols::Capability kAlphaCaps{
    /*supports_wal=*/true, /*supports_crash_recovery=*/true,
    protocols::ConsistencyClass::kAtomic};

std::unique_ptr<core::Server> build_alpha(core::Node& node) {
  auto server = std::make_unique<protocols::AlphaServer>();
  node.add_crash_hook([] {}, [] {});
  return server;
}

std::unique_ptr<core::Server> build_beta(core::Node& node) {
  (void)node;
  return std::make_unique<protocols::BetaServer>();
}

void add(const char* name, const char* display, protocols::Capability caps,
         std::unique_ptr<core::Server> (*build)(core::Node&)) {
  (void)name;
  (void)display;
  (void)caps;
  (void)build;
}

}  // namespace

void register_fixture_protocols() {
  add("alpha", "Alpha (durable)", kAlphaCaps, &build_alpha);
  add("beta", "Beta (eventual)",
      {/*supports_wal=*/false, /*supports_crash_recovery=*/false,
       protocols::ConsistencyClass::kEventual},
      &build_beta);
}

}  // namespace dq::workload
