// Clean fixture: exercises the patterns dqlint must NOT flag, even with
// every rule active (scope-free fixture mode).  Lint input only -- this file
// is never compiled.
#include <map>
#include <memory>
#include <set>

#include "common/assert.h"
#include "msg/epoch.h"

struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;             // `= delete` is not a delete-expr
  Widget& operator=(const Widget&) = delete;
};

void ok(int held, int cur) {
  std::map<int, int> counts;                  // ordered container
  std::set<int> ids;
  auto w = std::make_unique<Widget>();        // no naked new
  DQ_INVARIANT(held >= 0, "held epochs are non-negative");
  if (dq::msg::epoch_matches(held, cur)) {    // helper, not a raw comparison
    counts[held] = cur;
  }
  // Prose mentioning rand() or time() or unordered_map never fires: the
  // lexer strips comments before rules run.
  const char* s = "assert(rand()); std::unordered_map<int*, int> m;";
  (void)s;
  (void)w;
  (void)ids;
}

void member_named_like_libc(Widget& w);
struct Clocky {
  int time_ms = 0;
  [[nodiscard]] int local_time(int now) const { return now + time_ms; }
};
