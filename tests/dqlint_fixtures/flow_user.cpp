// Core-side fixture: every payload has a send site (construction) and a
// dispatch site (get_if / holds_alternative), so the flow rules stay quiet.
#include "msg/wire.h"

namespace dq::core {

msg::Payload make_ping(std::uint64_t nonce) { return msg::Ping{nonce}; }
msg::Payload make_pong(std::uint64_t nonce) { return msg::Pong{nonce}; }

int classify(const msg::Payload& p) {
  if (std::get_if<msg::Ping>(&p) != nullptr) return 1;
  if (std::holds_alternative<msg::Pong>(p)) return 2;
  return 0;
}

}  // namespace dq::core
