// Wire-layer fixture (program mode, stands in for src/msg/wire.h): two
// payload structs, both registered as Payload alternatives.  Lint input
// only -- never compiled.
#include <cstdint>
#include <variant>

namespace dq::msg {

struct Ping {
  std::uint64_t nonce = 0;
};

struct Pong {
  std::uint64_t nonce = 0;
};

using Payload = std::variant<Ping, Pong>;

}  // namespace dq::msg
