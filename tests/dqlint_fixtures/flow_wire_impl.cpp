// Wire-impl fixture (stands in for src/msg/wire.cpp): the name and size
// visitors carry one operator()(const T&) overload per payload, so neither
// alternative is a wire stub.
#include "msg/wire.h"

namespace dq::msg {
namespace {

struct NameOf {
  const char* operator()(const Ping&) const { return "Ping"; }
  const char* operator()(const Pong&) const { return "Pong"; }
};

struct SizeOf {
  std::size_t operator()(const Ping&) const { return 16; }
  std::size_t operator()(const Pong&) const { return 16; }
};

}  // namespace

const char* payload_name(const Payload& p) { return std::visit(NameOf{}, p); }

std::size_t approximate_size(const Payload& p) {
  return std::visit(SizeOf{}, p);
}

}  // namespace dq::msg
