// Clean partition-ownership fixture: constants and per-instance state only,
// the patterns part-* must never flag.
#include <array>
#include <cstdint>

namespace dq::sim {

constexpr std::size_t kMaxPartitions = 16;
const std::array<int, 3> kWeights = {1, 2, 3};
inline constexpr double kLoadFactor = 0.75;

struct Lane {
  std::uint64_t executed = 0;  // per-instance, partition-owned
};

double scaled(int i) {
  static const double kScale = 1.5;
  return kScale * i;
}

}  // namespace dq::sim
