// A justified suppression silences the diagnostic and is recorded with its
// justification; nothing in this file should surface as a diagnostic.  Note
// the include needs its own directive: suppressions are per-site.

// dqlint:allow(det-unordered-container): header backs the suppressed use below.
#include <unordered_map>

// dqlint:allow(det-unordered-container): lookup-only cache, never iterated,
// so hash order cannot reach the wire or the event schedule.
std::unordered_map<int, int> cache;
