// det-thread escape hatch: justified suppressions are honored only under
// src/sim/parallel_* (src/run/ needs none -- it is exempt by prefix).
// Linted under any other path the directives themselves become
// lint-bad-suppression diagnostics and the violations stand.
// Lint input only -- never compiled.

// dqlint:allow(det-thread): worker pool for the conservative engine
#include <thread>

// dqlint:allow(det-thread): round-barrier handshake for the worker pool
std::mutex pool_mu;
