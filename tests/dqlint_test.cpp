// dqlint unit tests: every rule must fire on its bad fixture and stay quiet
// on the clean one; suppression and scope semantics are pinned down here.
//
// Fixtures (tests/dqlint_fixtures/) are lint input only -- never compiled.
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tools/dqlint/graph.h"
#include "tools/dqlint/lint.h"
#include "tools/dqlint/parse.h"

namespace dq::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(DQLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Lint a fixture with every rule active (scope-free mode).
FileReport lint_fixture(const std::string& name) {
  return lint_source(name, fixture(name), /*apply_scopes=*/false);
}

std::map<std::string, int> rule_counts(const FileReport& fr) {
  std::map<std::string, int> out;
  for (const Diagnostic& d : fr.diagnostics) ++out[d.rule];
  return out;
}

std::map<std::string, int> rule_counts(const RunReport& rr) {
  std::map<std::string, int> out;
  for (const Diagnostic& d : rr.diagnostics) ++out[d.rule];
  return out;
}

// Whole-program fixture mode: each (synthetic path, fixture) pair becomes
// one source; scopes APPLY, so the paths choose which rules are live --
// exactly how the CLI runs over the real tree.
RunReport lint_fixture_program(
    const std::vector<std::pair<std::string, std::string>>& mapping) {
  std::vector<SourceFile> files;
  files.reserve(mapping.size());
  for (const auto& [path, name] : mapping) {
    files.push_back({path, fixture(name)});
  }
  return lint_program(files, /*apply_scopes=*/true);
}

// The clean message-flow program: wire header + visitors + a core-side
// user that sends and dispatches every payload.
std::vector<std::pair<std::string, std::string>> flow_program() {
  return {{"src/msg/wire.h", "flow_wire.h"},
          {"src/msg/wire.cpp", "flow_wire_impl.cpp"},
          {"src/core/user.cpp", "flow_user.cpp"}};
}

// The clean capability program: registry wiring + both protocol impls.
std::vector<std::pair<std::string, std::string>> cap_program() {
  return {{"src/workload/wiring.cpp", "cap_wiring.cpp"},
          {"src/protocols/alpha.cpp", "cap_alpha.cpp"},
          {"src/protocols/beta.cpp", "cap_beta.cpp"}};
}

TEST(DqlintRules, CleanFixtureIsClean) {
  const FileReport fr = lint_fixture("clean.cpp");
  EXPECT_TRUE(fr.diagnostics.empty())
      << fr.diagnostics.front().file << ":" << fr.diagnostics.front().line
      << ": " << fr.diagnostics.front().rule << ": "
      << fr.diagnostics.front().message;
  EXPECT_TRUE(fr.suppressions.empty());
}

TEST(DqlintRules, UnorderedContainers) {
  // Two includes + two declarations.
  const auto counts = rule_counts(lint_fixture("bad_unordered.cpp"));
  EXPECT_EQ(counts.at("det-unordered-container"), 4);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, LibcRand) {
  const auto counts = rule_counts(lint_fixture("bad_rand.cpp"));
  EXPECT_EQ(counts.at("det-rand"), 2);  // srand + rand
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, WallClock) {
  const auto counts = rule_counts(lint_fixture("bad_wall_clock.cpp"));
  EXPECT_EQ(counts.at("det-wall-clock"), 2);  // time(nullptr) + system_clock
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, RngEngines) {
  const auto counts = rule_counts(lint_fixture("bad_rng.cpp"));
  EXPECT_EQ(counts.at("det-random-device"), 1);
  EXPECT_EQ(counts.at("det-rng-engine"), 2);  // mt19937 + unseeded Rng()
  EXPECT_EQ(counts.size(), 2u);
}

TEST(DqlintRules, PointerKeys) {
  const auto counts = rule_counts(lint_fixture("bad_ptr_key.cpp"));
  EXPECT_EQ(counts.at("det-ptr-key"), 2);  // pointer VALUE stays legal
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, ThreadPrimitives) {
  // Two includes + std::thread + std::mutex + std::async; member calls and
  // bare identifiers named `thread` stay quiet.
  const auto counts = rule_counts(lint_fixture("bad_thread.cpp"));
  EXPECT_EQ(counts.at("det-thread"), 5);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, DirectSend) {
  const auto counts = rule_counts(lint_fixture("bad_direct_send.cpp"));
  EXPECT_EQ(counts.at("proto-direct-send"), 2);  // send + send_tagged, not reply
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, EpochCompare) {
  const auto counts = rule_counts(lint_fixture("bad_epoch.cpp"));
  EXPECT_EQ(counts.at("proto-epoch-compare"), 2);  // raw == and std::max
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, DurableState) {
  // Pre-increment through a qualifier, compound assignment, store apply and
  // clear; reads of the same members stay quiet.
  const auto counts = rule_counts(lint_fixture("bad_durable_state.cpp"));
  EXPECT_EQ(counts.at("durable-state"), 4);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintScopes, DurableStateScopedToCoreExemptingOqs) {
  const std::string src = "void f() { objects_.clear(); }\n";
  EXPECT_EQ(lint_source("src/core/iqs_server.cpp", src, true)
                .diagnostics.size(),
            1u);
  // The OQS keeps soft state only (re-derived by renewals), so its wipes
  // are by design.
  EXPECT_TRUE(lint_source("src/core/oqs_server.cpp", src, true)
                  .diagnostics.empty());
  // Baseline protocols are outside the rule's scope.
  EXPECT_TRUE(
      lint_source("src/protocols/majority.cpp", src, true).diagnostics.empty());
}

TEST(DqlintRules, ObsRead) {
  const auto counts = rule_counts(lint_fixture("bad_obs_read.cpp"));
  EXPECT_EQ(counts.at("proto-obs-read"), 1);  // value() read; inc() is fine
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, Assert) {
  const auto counts = rule_counts(lint_fixture("bad_assert.cpp"));
  EXPECT_EQ(counts.at("hyg-assert"), 2);  // <cassert> + assert(); static_assert ok
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintRules, NakedNew) {
  const auto counts = rule_counts(lint_fixture("bad_new.cpp"));
  EXPECT_EQ(counts.at("hyg-naked-new"), 2);  // new + delete; `= delete` is fine
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintSuppression, JustifiedSuppressionSilencesAndRecords) {
  const FileReport fr = lint_fixture("suppressed.cpp");
  EXPECT_TRUE(fr.diagnostics.empty())
      << fr.diagnostics.front().rule << ": " << fr.diagnostics.front().message;
  ASSERT_EQ(fr.suppressions.size(), 2u);
  for (const Suppression& s : fr.suppressions) {
    EXPECT_EQ(s.rule, "det-unordered-container");
    EXPECT_FALSE(s.justification.empty());
  }
  EXPECT_NE(fr.suppressions[1].justification.find("lookup-only cache"),
            std::string::npos);
}

TEST(DqlintSuppression, MalformedAndUnusedDirectivesAreDiagnostics) {
  const auto counts = rule_counts(lint_fixture("bad_suppression.cpp"));
  EXPECT_EQ(counts.at("lint-bad-suppression"), 2);   // no ':', unknown rule
  EXPECT_EQ(counts.at("lint-unused-suppression"), 1);
  // The rand() calls under the two broken directives stay unsuppressed.
  EXPECT_EQ(counts.at("det-rand"), 2);
}

TEST(DqlintScopes, RulesOnlyFireInTheirDirectories) {
  const std::string src = "#include <unordered_map>\n"
                          "std::unordered_map<int, int> m;\n";
  EXPECT_EQ(lint_source("src/core/x.cpp", src, true).diagnostics.size(), 2u);
  EXPECT_EQ(lint_source("src/sim/x.h", src, true).diagnostics.size(), 2u);
  // workload/ and analysis/ may use hash maps (their output is re-sorted).
  EXPECT_TRUE(lint_source("src/workload/x.cpp", src, true).diagnostics.empty());
  EXPECT_TRUE(lint_source("src/analysis/x.cpp", src, true).diagnostics.empty());
}

TEST(DqlintScopes, OpenLoopEngineCarriesDetRules) {
  // The open-loop workload engine is det-scoped by file prefix: its
  // samplers run inside partition workers, so det-* applies to
  // src/workload/open_loop.* while the rest of src/workload/ stays exempt.
  const std::string hash = "#include <unordered_map>\n"
                           "std::unordered_map<int, int> m;\n";
  EXPECT_EQ(
      lint_source("src/workload/open_loop.cpp", hash, true).diagnostics.size(),
      2u);
  EXPECT_EQ(
      lint_source("src/workload/open_loop.h", hash, true).diagnostics.size(),
      2u);
  EXPECT_TRUE(
      lint_source("src/workload/experiment.cpp", hash, true)
          .diagnostics.empty());
  const std::string wall = fixture("bad_wall_clock.cpp");
  EXPECT_FALSE(lint_source("src/workload/open_loop.cpp", wall, true)
                   .diagnostics.empty());
  EXPECT_TRUE(
      lint_source("src/workload/report.cpp", wall, true).diagnostics.empty());
}

TEST(DqlintScopes, ExemptFileSkipsRule) {
  const std::string src = "void check(bool b) { assert(b); }\n";
  EXPECT_EQ(lint_source("src/sim/x.cpp", src, true).diagnostics.size(), 1u);
  EXPECT_TRUE(
      lint_source("src/common/assert.h", src, true).diagnostics.empty());
}

TEST(DqlintScopes, ThreadRuleExemptsParallelRunner) {
  const std::string src = "#include <thread>\nstd::thread t;\n";
  // Everywhere else the rule fires (include + declaration)...
  EXPECT_EQ(lint_source("src/sim/x.cpp", src, true).diagnostics.size(), 2u);
  EXPECT_EQ(lint_source("src/workload/x.cpp", src, true).diagnostics.size(),
            2u);
  // ...but src/run/ owns the trial fan-out and is exempt by prefix.
  EXPECT_TRUE(lint_source("src/run/parallel_runner.cpp", src, true)
                  .diagnostics.empty());
  EXPECT_TRUE(
      lint_source("src/run/parallel_runner.h", src, true).diagnostics.empty());
}

TEST(DqlintScopes, ThreadSuppressionsOnlyHonoredInParallelEngine) {
  const std::string src = fixture("suppressed_thread.cpp");
  // Under the sanctioned prefix the justified suppressions hold: the
  // conservative intra-trial engine owns real threading primitives.
  const FileReport ok = lint_source("src/sim/parallel_world.cpp", src, true);
  EXPECT_TRUE(ok.diagnostics.empty())
      << ok.diagnostics.front().rule << ": " << ok.diagnostics.front().message;
  EXPECT_EQ(ok.suppressions.size(), 2u);
  // Anywhere else in det-thread's scope the directive is itself a
  // diagnostic and the violation stands.
  const FileReport bad = lint_source("src/sim/world.cpp", src, true);
  const auto bad_counts = rule_counts(bad);
  EXPECT_EQ(bad_counts.at("lint-bad-suppression"), 2);
  EXPECT_EQ(bad_counts.at("det-thread"), 2);
  EXPECT_TRUE(bad.suppressions.empty());
  // src/run/ is exempt by prefix, so there is nothing to suppress: the
  // directives are dead weight and flagged as unused.
  const FileReport run = lint_source("src/run/pool.cpp", src, true);
  EXPECT_EQ(rule_counts(run).at("lint-unused-suppression"), 2);
}

TEST(DqlintScopes, DirectSendScopedToCore) {
  const std::string src = "void f() { world_.send(1); }\n";
  EXPECT_EQ(lint_source("src/core/x.cpp", src, true).diagnostics.size(), 1u);
  // Baseline protocols legitimately talk to the network directly.
  EXPECT_TRUE(
      lint_source("src/protocols/x.cpp", src, true).diagnostics.empty());
}

TEST(DqlintEngine, CommentsAndStringsNeverFire) {
  const std::string src =
      "// std::rand() and time() and unordered_map in prose\n"
      "/* assert(new int); system_clock */\n"
      "const char* s = \"rand() unordered_map<int*,int>\";\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src, true).diagnostics.empty());
}

TEST(DqlintEngine, MemberAndNonStdQualifiedCallsDoNotFire) {
  const std::string src =
      "void f(Clock& c) {\n"
      "  c.time(0);             // member named like libc\n"
      "  DriftClock::random(r); // class-qualified, not libc\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", src, true).diagnostics.empty());
  // std:: qualification IS libc-shaped and fires.
  const std::string bad = "long f() { return std::time(nullptr); }\n";
  EXPECT_EQ(lint_source("src/sim/x.cpp", bad, true).diagnostics.size(), 1u);
}

// ---------------------------------------------------------------------------
// Program-level (cross-TU) rules: flow-*, cap-*, part-*
// ---------------------------------------------------------------------------

TEST(DqlintProgram, CleanProgramIsClean) {
  auto mapping = flow_program();
  for (auto& e : cap_program()) mapping.push_back(e);
  mapping.emplace_back("src/sim/lanes.cpp", "part_clean.cpp");
  const RunReport rr = lint_fixture_program(mapping);
  EXPECT_TRUE(rr.diagnostics.empty())
      << rr.diagnostics.front().file << ":" << rr.diagnostics.front().line
      << ": " << rr.diagnostics.front().rule << ": "
      << rr.diagnostics.front().message;
  EXPECT_EQ(rr.files_scanned, 7u);
}

TEST(DqlintProgram, FlowUnregistered) {
  auto mapping = flow_program();
  mapping[0].second = "bad_flow_unregistered.cpp";  // wire.h with dead cargo
  const auto counts = rule_counts(lint_fixture_program(mapping));
  EXPECT_EQ(counts.at("flow-unregistered"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintProgram, FlowWireStub) {
  auto mapping = flow_program();
  mapping[1].second = "bad_flow_wire_stub.cpp";  // Pong missing SizeOf
  const RunReport rr = lint_fixture_program(mapping);
  const auto counts = rule_counts(rr);
  EXPECT_EQ(counts.at("flow-wire-stub"), 1);
  EXPECT_EQ(counts.size(), 1u);
  // The diagnostic anchors to the payload's declaration in the header, not
  // to the impl file where the overload is missing.
  ASSERT_EQ(rr.diagnostics.size(), 1u);
  EXPECT_EQ(rr.diagnostics[0].file, "src/msg/wire.h");
  EXPECT_NE(rr.diagnostics[0].message.find("Pong"), std::string::npos);
}

TEST(DqlintProgram, FlowDeadMessage) {
  auto mapping = flow_program();
  mapping[2].second = "bad_flow_dead_message.cpp";  // Pong never sent
  const auto counts = rule_counts(lint_fixture_program(mapping));
  EXPECT_EQ(counts.at("flow-dead-message"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintProgram, FlowUnhandledMessage) {
  auto mapping = flow_program();
  mapping[2].second = "bad_flow_unhandled_message.cpp";  // sent, no dispatch
  const auto counts = rule_counts(lint_fixture_program(mapping));
  EXPECT_EQ(counts.at("flow-unhandled-message"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintProgram, CapWalClaim) {
  const RunReport rr = lint_fixture_program(
      {{"src/workload/wiring.cpp", "bad_cap_wal_claim.cpp"},
       {"src/protocols/beta.cpp", "cap_beta.cpp"}});
  const auto counts = rule_counts(rr);
  EXPECT_EQ(counts.at("cap-wal-claim"), 1);
  EXPECT_EQ(counts.size(), 1u);
  ASSERT_EQ(rr.diagnostics.size(), 1u);
  // Anchored to the registration site in the wiring TU.
  EXPECT_EQ(rr.diagnostics[0].file, "src/workload/wiring.cpp");
}

TEST(DqlintProgram, CapRecoveryClaim) {
  const auto counts = rule_counts(lint_fixture_program(
      {{"src/workload/wiring.cpp", "bad_cap_recovery_claim.cpp"},
       {"src/protocols/alpha.cpp", "cap_alpha.cpp"}}));
  EXPECT_EQ(counts.at("cap-recovery-claim"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintProgram, CapConsistencyLww) {
  const RunReport rr = lint_fixture_program(
      {{"src/workload/wiring.cpp", "bad_cap_lww.cpp"},
       {"src/protocols/beta.cpp", "cap_beta.cpp"}});
  const auto counts = rule_counts(rr);
  EXPECT_EQ(counts.at("cap-consistency-lww"), 1);
  EXPECT_EQ(counts.size(), 1u);
  EXPECT_NE(rr.diagnostics[0].message.find("lamport_"), std::string::npos);
}

TEST(DqlintProgram, PartMutableGlobal) {
  // Namespace-scope + thread_local + class-static all fire; the instance
  // member stays quiet.
  const auto counts = rule_counts(lint_fixture_program(
      {{"src/sim/state.cpp", "bad_part_mutable_global.cpp"}}));
  EXPECT_EQ(counts.at("part-mutable-global"), 3);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintProgram, PartLocalStatic) {
  const auto counts = rule_counts(lint_fixture_program(
      {{"src/sim/ticket.cpp", "bad_part_local_static.cpp"}}));
  EXPECT_EQ(counts.at("part-local-static"), 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DqlintProgram, PartRulesScopedToDetDirs) {
  // The same mutable globals outside the deterministic core (workload/,
  // bench/) are legal: those layers never run inside a partition.
  EXPECT_TRUE(lint_fixture_program(
                  {{"src/workload/state.cpp", "bad_part_mutable_global.cpp"}})
                  .diagnostics.empty());
  EXPECT_TRUE(lint_fixture_program(
                  {{"bench/state.cpp", "bad_part_mutable_global.cpp"}})
                  .diagnostics.empty());
}

TEST(DqlintProgram, PartRulesCoverOpenLoopEngine) {
  // Generators run inside partition workers, so the partition-ownership
  // rules extend to the open-loop files by prefix (and only to them).
  // The fixture holds three offending declarations (namespace-scope,
  // thread_local, class-static).
  const auto counts = rule_counts(lint_fixture_program(
      {{"src/workload/open_loop.cpp", "bad_part_mutable_global.cpp"}}));
  EXPECT_EQ(counts.at("part-mutable-global"), 3);
  const auto local = rule_counts(lint_fixture_program(
      {{"src/workload/open_loop.cpp", "bad_part_local_static.cpp"}}));
  EXPECT_EQ(local.at("part-local-static"), 1);
  EXPECT_TRUE(lint_fixture_program(
                  {{"src/workload/flags.cpp", "bad_part_mutable_global.cpp"}})
                  .diagnostics.empty());
}

TEST(DqlintProgram, ProgramDiagnosticsAreSuppressible) {
  const std::string src =
      "namespace dq::sim {\n"
      "// dqlint:allow(part-mutable-global): test-only counter, never read\n"
      "// by partition workers\n"
      "int g_hits = 0;\n"
      "}  // namespace dq::sim\n";
  const RunReport rr = lint_program({{"src/sim/x.cpp", src}}, true);
  EXPECT_TRUE(rr.diagnostics.empty())
      << rr.diagnostics.front().rule << ": "
      << rr.diagnostics.front().message;
  ASSERT_EQ(rr.suppressions.size(), 1u);
  EXPECT_EQ(rr.suppressions[0].rule, "part-mutable-global");
  EXPECT_NE(rr.suppressions[0].justification.find("test-only counter"),
            std::string::npos);
}

TEST(DqlintProgram, ExtractRegistrationsReadsDescriptors) {
  const ParsedFile wiring =
      parse_file("src/workload/wiring.cpp", fixture("cap_wiring.cpp"));
  const auto regs = extract_registrations(wiring);
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs[0].name, "alpha");
  EXPECT_TRUE(regs[0].supports_wal);             // named kAlphaCaps constant
  EXPECT_TRUE(regs[0].supports_crash_recovery);
  EXPECT_EQ(regs[0].consistency, "kAtomic");
  ASSERT_EQ(regs[0].build_fns.size(), 1u);
  EXPECT_EQ(regs[0].build_fns[0], "build_alpha");
  EXPECT_EQ(regs[1].name, "beta");
  EXPECT_FALSE(regs[1].supports_wal);            // inline brace initializer
  EXPECT_FALSE(regs[1].supports_crash_recovery);
  EXPECT_EQ(regs[1].consistency, "kEventual");
}

TEST(DqlintScopes, DetRulesCoverBench) {
  // Benches emit dq.bench.v1 documents that must stay seed-deterministic,
  // so the det-* family covers bench/ too (wall clocks there carry
  // justified suppressions in the real tree).
  const std::string src = "#include <unordered_map>\n"
                          "std::unordered_map<int, int> m;\n";
  EXPECT_EQ(lint_source("bench/x.cpp", src, true).diagnostics.size(), 2u);
  const std::string clock = "long f() { return std::time(nullptr); }\n";
  EXPECT_EQ(lint_source("bench/x.cpp", clock, true).diagnostics.size(), 1u);
}

TEST(DqlintReport, RuleTableIsSane) {
  std::set<std::string> ids;
  for (const RuleInfo& r : rules()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id " << r.id;
    EXPECT_FALSE(r.description.empty()) << r.id;
  }
  EXPECT_GE(ids.size(), 24u);
  // The three program-level families are all represented.
  for (const char* id :
       {kRuleFlowUnregistered, kRuleFlowWireStub, kRuleFlowDeadMessage,
        kRuleFlowUnhandledMessage, kRuleCapWalClaim, kRuleCapRecoveryClaim,
        kRuleCapConsistencyLww, kRulePartMutableGlobal,
        kRulePartLocalStatic}) {
    EXPECT_EQ(ids.count(id), 1u) << id;
  }
}

TEST(DqlintReport, JsonEnvelope) {
  RunReport rr;
  rr.add(lint_fixture("bad_rand.cpp"));
  rr.add(lint_fixture("suppressed.cpp"));
  const std::string json = to_json(rr, "fixtures");
  EXPECT_NE(json.find("\"schema\":\"dq.lint.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":2"), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"det-rand\""), std::string::npos);
  EXPECT_NE(json.find("\"justification\":"), std::string::npos);
  // The per-rule rollup: suppressed.cpp carries two justified
  // det-unordered-container directives.
  EXPECT_NE(json.find("\"suppression_summary\":[{\"rule\":"
                      "\"det-unordered-container\",\"count\":2}]"),
            std::string::npos);

  RunReport clean;
  clean.add(lint_fixture("clean.cpp"));
  const std::string cj = to_json(clean, "fixtures");
  EXPECT_NE(cj.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(cj.find("\"diagnostics\":[]"), std::string::npos);
  EXPECT_NE(cj.find("\"suppression_summary\":[]"), std::string::npos);
}

}  // namespace
}  // namespace dq::lint
