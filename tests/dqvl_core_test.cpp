// Core DQVL protocol tests: read hit/miss, write suppress/through, lease-
// expiry write completion (the availability mechanism volume leases buy),
// delayed invalidations, epoch GC, crash recovery, and the paper's callback
// invariant under drifting clocks.
#include <gtest/gtest.h>

#include <memory>

#include "protocols/dq_adapter.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

// A deployment plus a standalone service client embedded on a chosen edge
// server, so tests can drive individual operations.
struct Fixture {
  explicit Fixture(ExperimentParams p) : params(std::move(p)) {
    params.requests_per_client = 0;
    dep = std::make_unique<Deployment>(params);
  }

  // Embed a client on server `idx` (lazily, at most one per server).
  protocols::DqServiceClient& client_on(std::size_t idx) {
    auto& slot = clients[idx];
    if (!slot) {
      const NodeId n = dep->world().topology().server(idx);
      slot = std::make_unique<protocols::DqServiceClient>(dep->world(), n,
                                                          dep->dq_config());
      auto* raw = slot.get();
      dep->server_node(idx).add_handler(
          [raw](const sim::Envelope& e) { return raw->on_message(e); });
    }
    return *slot;
  }

  // Synchronous-style helpers: run the world until the op completes.
  struct WriteResult {
    bool ok = false;
    LogicalClock lc;
    sim::Duration latency = 0;
  };
  WriteResult write(std::size_t idx, ObjectId o, Value v,
                    sim::Duration timeout = sim::seconds(300)) {
    WriteResult r;
    bool done = false;
    const sim::Time start = dep->world().now();
    client_on(idx).write(o, std::move(v), [&](bool ok, LogicalClock lc) {
      r.ok = ok;
      r.lc = lc;
      r.latency = dep->world().now() - start;
      done = true;
    });
    const sim::Time deadline = dep->world().now() + timeout;
    while (!done && dep->world().now() < deadline) {
      dep->world().run_for(sim::milliseconds(50));
    }
    r.latency = dep->world().now() - start;
    if (!done) r.ok = false;
    return r;
  }

  struct ReadResult {
    bool completed = false;
    bool ok = false;
    VersionedValue vv;
    sim::Duration latency = 0;
  };
  ReadResult read(std::size_t idx, ObjectId o,
                  sim::Duration timeout = sim::seconds(300)) {
    ReadResult r;
    const sim::Time start = dep->world().now();
    client_on(idx).read(o, [&](bool ok, VersionedValue vv) {
      r.completed = true;
      r.ok = ok;
      r.vv = std::move(vv);
      r.latency = dep->world().now() - start;
    });
    const sim::Time deadline = dep->world().now() + timeout;
    while (!r.completed && dep->world().now() < deadline) {
      dep->world().run_for(sim::milliseconds(50));
    }
    return r;
  }

  ExperimentParams params;
  std::unique_ptr<Deployment> dep;
  std::map<std::size_t, std::unique_ptr<protocols::DqServiceClient>> clients;
};

ExperimentParams dqvl_params(sim::Duration lease = sim::seconds(10)) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.lease_length = lease;
  return p;
}

// ---------------------------------------------------------------------------
// Read and write fast paths
// ---------------------------------------------------------------------------

TEST(DqvlCore, FirstReadMissesThenHitsLocally) {
  Fixture f(dqvl_params());
  f.write(1, ObjectId(5), "v1");
  const auto miss = f.read(0, ObjectId(5));
  EXPECT_TRUE(miss.ok);
  EXPECT_EQ(miss.vv.value, "v1");
  // Miss pays a server-server renewal round trip (~80 ms).
  EXPECT_GE(miss.latency, sim::milliseconds(70));

  const auto hit = f.read(0, ObjectId(5));
  EXPECT_EQ(hit.vv.value, "v1");
  // Hit is local: loopback + processing only.
  EXPECT_LE(hit.latency, sim::milliseconds(10));
}

TEST(DqvlCore, ColdWriteIsSuppressedNoInvalidations) {
  Fixture f(dqvl_params());
  const auto w = f.write(1, ObjectId(5), "v1");
  EXPECT_TRUE(w.ok);
  EXPECT_EQ(f.dep->world().message_stats().by_type("DqInval"), 0u);
}

TEST(DqvlCore, WriteAfterReadGoesThroughWithInvalidations) {
  Fixture f(dqvl_params());
  f.write(1, ObjectId(5), "v1");
  f.read(0, ObjectId(5));  // installs callbacks for server 0
  const auto before = f.dep->world().message_stats().by_type("DqInval");
  const auto w = f.write(1, ObjectId(5), "v2");
  EXPECT_TRUE(w.ok);
  EXPECT_GT(f.dep->world().message_stats().by_type("DqInval"), before);
  // And the reader sees the new value (after re-renewing).
  const auto r = f.read(0, ObjectId(5));
  EXPECT_EQ(r.vv.value, "v2");
}

TEST(DqvlCore, SecondWriteInBurstIsSuppressed) {
  // Singleton IQS: every write and renewal is processed by the same node,
  // so its callback bookkeeping fully determines suppression.  (With a
  // majority IQS, randomly selected quorums may include members with stale
  // callback knowledge, which legitimately re-invalidate.)
  ExperimentParams params = dqvl_params();
  params.iqs = workload::QuorumSpec::majority(1);
  Fixture f(params);
  f.write(1, ObjectId(5), "v1");
  f.read(0, ObjectId(5));
  f.write(1, ObjectId(5), "v2");  // write-through (invalidates server 0)
  const auto invals_after_first =
      f.dep->world().message_stats().by_type("DqInval");
  const auto w2 = f.write(1, ObjectId(5), "v3");  // burst: suppressed
  EXPECT_TRUE(w2.ok);
  EXPECT_EQ(f.dep->world().message_stats().by_type("DqInval"),
            invals_after_first);
}

TEST(DqvlCore, ReadersOnDifferentServersEachRenew) {
  Fixture f(dqvl_params());
  f.write(1, ObjectId(5), "v1");
  for (std::size_t s : {0u, 2u, 3u, 7u}) {
    const auto r = f.read(s, ObjectId(5));
    EXPECT_EQ(r.vv.value, "v1") << "server " << s;
  }
}

// ---------------------------------------------------------------------------
// Volume leases: bounded write blocking (the core availability win)
// ---------------------------------------------------------------------------

TEST(DqvlCore, WriteBlockedByUnreachableReaderCompletesAtLeaseExpiry) {
  const sim::Duration lease = sim::seconds(2);
  Fixture f(dqvl_params(lease));
  f.write(1, ObjectId(5), "v1");
  f.read(0, ObjectId(5));  // server 0 now holds valid leases

  // Server 0 drops off the network; its leases remain valid for up to L.
  f.dep->world().set_up(f.dep->world().topology().server(0), false);

  const auto w = f.write(1, ObjectId(5), "v2");
  EXPECT_TRUE(w.ok);
  // The write could not be acked by server 0; it completed via lease expiry,
  // so it took noticeable time but no more than ~L (plus slack for rounds).
  EXPECT_GE(w.latency, sim::milliseconds(200));
  EXPECT_LE(w.latency, lease + sim::seconds(2));
}

TEST(DqvlCore, RecoveredReaderSeesDelayedInvalidationOnRenewal) {
  const sim::Duration lease = sim::seconds(2);
  Fixture f(dqvl_params(lease));
  f.write(1, ObjectId(5), "v1");
  f.read(0, ObjectId(5));
  const NodeId s0 = f.dep->world().topology().server(0);
  f.dep->world().set_up(s0, false);
  f.write(1, ObjectId(5), "v2");  // completes via lease expiry

  f.dep->world().set_up(s0, true);
  // Server 0's volume lease has expired; its next read must renew and MUST
  // NOT serve the stale v1.
  const auto r = f.read(0, ObjectId(5));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.vv.value, "v2");
}

TEST(DqvlCore, BasicProtocolWriteBlocksUntilReaderReturns) {
  // Contrast: without leases (section 3.1), the same scenario blocks the
  // write until the unreachable OQS node comes back.
  ExperimentParams p = dqvl_params();
  p.protocol = "dq-basic";
  Fixture f(p);
  f.write(1, ObjectId(5), "v1");
  f.read(0, ObjectId(5));
  const NodeId s0 = f.dep->world().topology().server(0);
  f.dep->world().set_up(s0, false);

  bool done = false;
  f.client_on(1).write(ObjectId(5), "v2",
                       [&](bool, LogicalClock) { done = true; });
  f.dep->world().run_for(sim::seconds(30));
  EXPECT_FALSE(done) << "basic DQ write must block while the reader is gone";

  f.dep->world().set_up(s0, true);
  f.dep->world().run_for(sim::seconds(30));
  EXPECT_TRUE(done) << "write completes once the reader acks";
}

TEST(DqvlCore, WritesProceedDespiteMinorityIqsFailure) {
  Fixture f(dqvl_params());
  // IQS = servers 0..4 (majority 3); kill two members.
  f.dep->world().set_up(f.dep->world().topology().server(3), false);
  f.dep->world().set_up(f.dep->world().topology().server(4), false);
  const auto w = f.write(6, ObjectId(9), "v1");
  EXPECT_TRUE(w.ok);
  const auto r = f.read(6, ObjectId(9));
  EXPECT_EQ(r.vv.value, "v1");
}

// ---------------------------------------------------------------------------
// Epoch GC
// ---------------------------------------------------------------------------

TEST(DqvlCore, EpochGcBoundsDelayedQueueAndForcesRevalidation) {
  ExperimentParams p = dqvl_params(sim::seconds(1));
  p.max_delayed_per_volume = 3;
  Fixture f(p);
  const NodeId s0 = f.dep->world().topology().server(0);

  // Warm leases on server 0 for several objects in the (single) volume.
  for (std::uint64_t k = 0; k < 6; ++k) {
    f.write(1, ObjectId(k), "v1");
    f.read(0, ObjectId(k));
  }
  f.dep->world().set_up(s0, false);
  // Writes while server 0 is gone: each enqueues a delayed invalidation for
  // it once its lease lapses; more than 3 distinct objects trips the GC.
  for (std::uint64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(f.write(1, ObjectId(k), "v2").ok);
  }
  const VolumeId vol = f.dep->dq_config()->volumes.volume_of(ObjectId(0));
  bool some_epoch_advanced = false;
  for (NodeId i : f.dep->dq_config()->iqs->members()) {
    auto* iqs = f.dep->iqs_server(i);
    ASSERT_NE(iqs, nullptr);
    EXPECT_LE(iqs->delayed_queue_size(vol, s0), 3u + 1u);
    some_epoch_advanced |= iqs->epoch_of(vol, s0) > 0;
  }
  EXPECT_TRUE(some_epoch_advanced);

  // After recovery the reader must still converge on fresh values.
  f.dep->world().set_up(s0, true);
  for (std::uint64_t k = 0; k < 6; ++k) {
    const auto r = f.read(0, ObjectId(k));
    EXPECT_EQ(r.vv.value, "v2") << "object " << k;
  }
}

// ---------------------------------------------------------------------------
// Crash semantics
// ---------------------------------------------------------------------------

TEST(DqvlCore, OqsCrashClearsCacheButStaysCorrect) {
  Fixture f(dqvl_params());
  f.write(1, ObjectId(5), "v1");
  f.read(0, ObjectId(5));
  const NodeId s0 = f.dep->world().topology().server(0);
  auto* oqs = f.dep->oqs_server(s0);
  ASSERT_NE(oqs, nullptr);
  EXPECT_TRUE(oqs->condition_c(ObjectId(5)));

  f.dep->world().crash(s0);
  EXPECT_FALSE(oqs->condition_c(ObjectId(5)));
  EXPECT_TRUE(oqs->cached(ObjectId(5)).value.empty());

  f.dep->world().restart(s0);
  const auto r = f.read(0, ObjectId(5));
  EXPECT_EQ(r.vv.value, "v1");  // re-renewed from the IQS
}

TEST(DqvlCore, IqsCrashKeepsDurableStateAndWriteRetransmitsComplete) {
  Fixture f(dqvl_params());
  f.write(1, ObjectId(5), "v1");
  const NodeId s2 = f.dep->world().topology().server(2);  // an IQS member
  f.dep->world().crash(s2);
  f.dep->world().restart(s2);
  auto* iqs = f.dep->iqs_server(s2);
  ASSERT_NE(iqs, nullptr);
  // Durable state survived if this node was in the write quorum; at minimum
  // the next write and read still succeed.
  const auto w = f.write(1, ObjectId(5), "v2");
  EXPECT_TRUE(w.ok);
  EXPECT_EQ(f.read(4, ObjectId(5)).vv.value, "v2");
}

// ---------------------------------------------------------------------------
// The paper's callback invariant, sampled under drifting clocks
// ---------------------------------------------------------------------------

void check_invariant(Deployment& dep, const std::vector<ObjectId>& objects) {
  const auto cfg = dep.dq_config();
  for (NodeId j : cfg->oqs->members()) {
    auto* oqs = dep.oqs_server(j);
    ASSERT_NE(oqs, nullptr);
    for (NodeId i : cfg->iqs->members()) {
      auto* iqs = dep.iqs_server(i);
      ASSERT_NE(iqs, nullptr);
      for (ObjectId o : objects) {
        const VolumeId v = cfg->volumes.volume_of(o);
        if (oqs->volume_lease_valid(v, i) && oqs->object_lease_valid(o, i)) {
          // ... then i must still consider j's lease valid, and must not
          // consider j's callback revoked.
          EXPECT_TRUE(iqs->lease_valid(v, j))
              << "lease invariant violated: i=" << i << " j=" << j;
          EXPECT_FALSE(iqs->last_read_clock(o) < iqs->last_ack_clock(o, j))
              << "callback invariant violated: i=" << i << " j=" << j
              << " o=" << o;
        }
      }
    }
  }
}

TEST(DqvlCore, CallbackInvariantHoldsUnderDriftingClocks) {
  ExperimentParams p = dqvl_params(sim::milliseconds(1500));
  p.max_drift = 0.01;  // 1% clock rate error
  p.protocol = "dqvl";
  p.requests_per_client = 120;
  p.write_ratio = 0.3;
  p.seed = 13;
  // All clients share one object to force invalidation traffic.
  p.choose_object = [](Rng&) { return ObjectId(77); };
  Deployment dep(p);
  dep.start_clients();
  const std::vector<ObjectId> objects{ObjectId(77)};
  for (int step = 0; step < 400 && !dep.clients_done(); ++step) {
    dep.world().run_for(sim::milliseconds(100));
    check_invariant(dep, objects);
  }
  EXPECT_TRUE(dep.clients_done());
  const auto r = dep.collect();
  EXPECT_TRUE(r.violations.empty())
      << "first: " << r.violations.front().reason;
}

TEST(DqvlCore, CallbackInvariantHoldsUnderDriftAndLoss) {
  ExperimentParams p = dqvl_params(sim::milliseconds(800));
  p.max_drift = 0.02;
  p.loss = 0.05;
  p.requests_per_client = 60;
  p.write_ratio = 0.4;
  p.seed = 29;
  p.choose_object = [](Rng&) { return ObjectId(3); };
  Deployment dep(p);
  dep.start_clients();
  for (int step = 0; step < 3000 && !dep.clients_done(); ++step) {
    dep.world().run_for(sim::milliseconds(100));
    check_invariant(dep, {ObjectId(3)});
  }
  EXPECT_TRUE(dep.clients_done());
  const auto r = dep.collect();
  EXPECT_TRUE(r.violations.empty());
}

}  // namespace
}  // namespace dq::workload
