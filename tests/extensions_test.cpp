// Tests for the paper's future-work extensions implemented here:
//   * atomic-semantics client (section 6) -- read write-back,
//   * finite object leases (footnote 4),
//   * grid-quorum IQS (section 6).
#include <gtest/gtest.h>

#include <memory>

#include "protocols/dq_adapter.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

// ---------------------------------------------------------------------------
// Atomic semantics
// ---------------------------------------------------------------------------

TEST(AtomicSemantics, SweepPassesAtomicChecker) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    ExperimentParams p;
    p.protocol = "dqvl-atomic";
    p.write_ratio = 0.4;
    p.requests_per_client = 60;
    p.lease_length = sim::milliseconds(800);
    p.seed = seed;
    p.choose_object = [](Rng&) { return ObjectId(9); };
    const auto r = run_experiment(p);
    const auto atomic_violations = r.history.check_atomic();
    EXPECT_TRUE(atomic_violations.empty())
        << "seed " << seed << ": " << atomic_violations.front().reason;
  }
}

TEST(AtomicSemantics, ReadsPayTheConfirmationRound) {
  ExperimentParams reg;
  reg.protocol = "dqvl";
  reg.write_ratio = 0.05;
  reg.requests_per_client = 150;
  reg.seed = 5;
  ExperimentParams atom = reg;
  atom.protocol = "dqvl-atomic";
  const double reg_read = run_experiment(reg).read_ms.mean();
  const double atom_read = run_experiment(atom).read_ms.mean();
  // A confirmation write-quorum round costs ~one WAN RTT (80 ms).
  EXPECT_GT(atom_read, reg_read + 60.0);
  EXPECT_LT(atom_read, reg_read + 140.0);
}

// Deterministic new-old inversion: plain DQVL (regular) exposes it; the
// atomic client cannot.
class InversionScenario {
 public:
  explicit InversionScenario(bool atomic) {
    ExperimentParams p;
    p.protocol = atomic ? "dqvl-atomic" : "dqvl";
    p.lease_length = sim::seconds(4);
    p.requests_per_client = 0;
    dep = std::make_unique<Deployment>(p);
    auto& w = dep->world();
    auto make = [&](std::size_t idx) -> std::shared_ptr<protocols::ServiceClient> {
      const NodeId n = w.topology().server(idx);
      std::shared_ptr<protocols::ServiceClient> c;
      if (atomic) {
        c = std::make_shared<protocols::DqAtomicServiceClient>(
            w, n, dep->dq_config());
      } else {
        c = std::make_shared<protocols::DqServiceClient>(w, n,
                                                         dep->dq_config());
      }
      dep->server_node(idx).add_handler(
          [c](const sim::Envelope& e) { return c->on_message(e); });
      return c;
    };
    writer = make(5);
    reader_a = make(6);
    reader_b = make(7);
  }

  // Run until `flag` or `cap` sim-time elapses; returns flag.
  bool spin(const bool& flag, sim::Duration cap) {
    const sim::Time deadline = dep->world().now() + cap;
    while (!flag && dep->world().now() < deadline) {
      dep->world().run_for(sim::milliseconds(10));
    }
    return flag;
  }

  std::unique_ptr<Deployment> dep;
  std::shared_ptr<protocols::ServiceClient> writer, reader_a, reader_b;
};

TEST(AtomicSemantics, PlainDqvlAllowsNewOldInversion) {
  InversionScenario s(/*atomic=*/false);
  auto& w = s.dep->world();
  const ObjectId o(1);

  bool done = false;
  s.writer->write(o, "v1", [&](bool, LogicalClock) { done = true; });
  ASSERT_TRUE(s.spin(done, sim::seconds(30)));
  done = false;
  VersionedValue seen_b0;
  s.reader_b->read(o, [&](bool, VersionedValue vv) {
    seen_b0 = vv;
    done = true;
  });
  ASSERT_TRUE(s.spin(done, sim::seconds(30)));
  ASSERT_EQ(seen_b0.value, "v1");  // server 7 now holds valid leases

  // Server 7 (+ nobody else) splits off; its own loopback still works.
  w.faults().set_group(w.topology().server(7), 1);

  // Write v2: blocked on server 7's lease; reader A meanwhile renews and
  // observes v2 before the write completes.
  bool w2_done = false;
  s.writer->write(o, "v2", [&](bool, LogicalClock) { w2_done = true; });
  w.run_for(sim::milliseconds(500));
  EXPECT_FALSE(w2_done) << "write should still be blocked on server 7";

  bool ra_done = false;
  VersionedValue seen_a;
  sim::Time ra_completed = 0;
  s.reader_a->read(o, [&](bool, VersionedValue vv) {
    seen_a = vv;
    ra_completed = w.now();
    ra_done = true;
  });
  ASSERT_TRUE(s.spin(ra_done, sim::seconds(2)));
  EXPECT_EQ(seen_a.value, "v2") << "reader A renews into the new value";
  EXPECT_FALSE(w2_done);

  // Reader B (on the split-off server 7, leases still valid) now reads v1:
  // legal under regular semantics, a new-old inversion under atomic.
  bool rb_done = false;
  VersionedValue seen_b;
  s.reader_b->read(o, [&](bool, VersionedValue vv) {
    seen_b = vv;
    rb_done = true;
  });
  ASSERT_TRUE(s.spin(rb_done, sim::seconds(2)));
  EXPECT_EQ(seen_b.value, "v1");
  EXPECT_GT(seen_a.clock, seen_b.clock) << "that is the inversion";

  // Formalize with the checkers.
  History h;
  h.record({ClientId(6), msg::OpKind::kRead, o, ra_completed - 1,
            ra_completed, true, seen_a.value, seen_a.clock});
  h.record({ClientId(7), msg::OpKind::kRead, o, ra_completed + 1, w.now(),
            true, seen_b.value, seen_b.clock});
  h.record({ClientId(5), msg::OpKind::kWrite, o, 0, 1, true, "v1",
            seen_b.clock});
  h.record({ClientId(5), msg::OpKind::kWrite, o, 2, 0, false, "v2",
            seen_a.clock});  // never completed
  EXPECT_TRUE(h.check_regular().empty());
  EXPECT_FALSE(h.check_atomic().empty());
}

TEST(AtomicSemantics, AtomicClientPreventsTheInversion) {
  InversionScenario s(/*atomic=*/true);
  auto& w = s.dep->world();
  const ObjectId o(1);

  bool done = false;
  s.writer->write(o, "v1", [&](bool, LogicalClock) { done = true; });
  ASSERT_TRUE(s.spin(done, sim::seconds(30)));
  done = false;
  s.reader_b->read(o, [&](bool, VersionedValue) { done = true; });
  ASSERT_TRUE(s.spin(done, sim::seconds(30)));

  w.faults().set_group(w.topology().server(7), 1);

  bool w2_done = false;
  s.writer->write(o, "v2", [&](bool, LogicalClock) { w2_done = true; });
  w.run_for(sim::milliseconds(200));

  // Reader A's atomic read observes v2 and CONFIRMS it before returning:
  // once it returns, no node can serve anything older.  (Two mechanisms can
  // make that true -- either reader B's lease set already lost quorum to
  // the confirmation invalidations, or the confirmation blocks until B's
  // lease expires.  Which one fires depends on the random quorums; the
  // atomicity outcome below is what matters.)
  bool ra_done = false;
  VersionedValue seen_a;
  s.reader_a->read(o, [&](bool ok, VersionedValue vv) {
    ASSERT_TRUE(ok);
    seen_a = vv;
    ra_done = true;
  });
  ASSERT_TRUE(s.spin(ra_done, sim::seconds(30)));
  EXPECT_EQ(seen_a.value, "v2");

  // Reader B must now be unable to return the stale v1: inside the
  // partition its read blocks (no IQS read quorum can validate it) ...
  bool rb_done = false;
  VersionedValue seen_b;
  s.reader_b->read(o, [&](bool, VersionedValue vv) {
    seen_b = vv;
    rb_done = true;
  });
  w.run_for(sim::seconds(8));
  EXPECT_FALSE(rb_done)
      << "a stale read slipped through: got '" << seen_b.value << "'";

  // ... and after the partition heals, it returns the NEW value.
  w.faults().heal();
  ASSERT_TRUE(s.spin(rb_done, sim::seconds(60)));
  EXPECT_EQ(seen_b.value, "v2");
  EXPECT_GE(seen_b.clock, seen_a.clock) << "no new-old inversion";
}

// ---------------------------------------------------------------------------
// Finite object leases (footnote 4)
// ---------------------------------------------------------------------------

ExperimentParams finite_obj_params() {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.lease_length = sim::seconds(30);          // long volume lease
  p.object_lease_length = sim::seconds(1);    // short object leases
  p.requests_per_client = 0;
  return p;
}

TEST(FiniteObjectLeases, ReadMissesAgainAfterObjectLeaseExpiry) {
  Deployment dep(finite_obj_params());
  auto& w = dep.world();
  auto client = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  dep.server_node(0).add_handler(
      [client](const sim::Envelope& e) { return client->on_message(e); });

  auto read_latency = [&]() {
    bool done = false;
    sim::Time t0 = w.now();
    sim::Duration lat = 0;
    client->read(ObjectId(1), [&](bool, VersionedValue) {
      lat = w.now() - t0;
      done = true;
    });
    while (!done) w.run_for(sim::milliseconds(10));
    return lat;
  };

  const auto miss1 = read_latency();
  const auto hit = read_latency();
  EXPECT_GE(miss1, sim::milliseconds(70));
  EXPECT_LE(hit, sim::milliseconds(15));
  // Let the object lease lapse (the volume lease is still live).
  w.run_for(sim::seconds(2));
  const auto miss2 = read_latency();
  EXPECT_GE(miss2, sim::milliseconds(70))
      << "expired object lease must force a renewal";
}

TEST(FiniteObjectLeases, ExpiredObjectLeaseSuppressesInvalidations) {
  Deployment dep(finite_obj_params());
  auto& w = dep.world();
  auto reader = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(0), dep.dq_config());
  auto writer = std::make_shared<protocols::DqServiceClient>(
      w, w.topology().server(1), dep.dq_config());
  dep.server_node(0).add_handler(
      [reader](const sim::Envelope& e) { return reader->on_message(e); });
  dep.server_node(1).add_handler(
      [writer](const sim::Envelope& e) { return writer->on_message(e); });

  auto spin = [&](bool& f) {
    while (!f) w.run_for(sim::milliseconds(10));
  };
  bool done = false;
  writer->write(ObjectId(1), "v1", [&](bool, LogicalClock) { done = true; });
  spin(done);
  done = false;
  reader->read(ObjectId(1), [&](bool, VersionedValue) { done = true; });
  spin(done);

  // Wait out the object lease; the volume lease stays valid.
  w.run_for(sim::seconds(2));
  const auto invals_before = w.message_stats().by_type("DqInval");
  done = false;
  writer->write(ObjectId(1), "v2", [&](bool, LogicalClock) { done = true; });
  spin(done);
  EXPECT_EQ(w.message_stats().by_type("DqInval"), invals_before)
      << "no invalidation needed once the object lease lapsed";
  // And no delayed-invalidation entry accumulates either.
  const VolumeId v = dep.dq_config()->volumes.volume_of(ObjectId(1));
  for (NodeId i : dep.dq_config()->iqs->members()) {
    EXPECT_EQ(dep.iqs_server(i)->delayed_queue_size(
                  v, w.topology().server(0)),
              0u);
  }
  // Correctness: the reader still converges on v2.
  done = false;
  VersionedValue vv;
  reader->read(ObjectId(1), [&](bool, VersionedValue got) {
    vv = got;
    done = true;
  });
  spin(done);
  EXPECT_EQ(vv.value, "v2");
}

TEST(FiniteObjectLeases, RegularSemanticsSweep) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    ExperimentParams p;
    p.protocol = "dqvl";
    p.lease_length = sim::seconds(2);
    p.object_lease_length = sim::milliseconds(400);
    p.write_ratio = 0.4;
    p.requests_per_client = 60;
    p.max_drift = 0.01;
    p.seed = seed;
    p.choose_object = [](Rng&) { return ObjectId(2); };
    const auto r = run_experiment(p);
    EXPECT_TRUE(r.violations.empty())
        << "seed " << seed << ": " << r.violations.front().reason;
  }
}

// ---------------------------------------------------------------------------
// Grid-quorum IQS (section 6)
// ---------------------------------------------------------------------------

TEST(GridIqs, RegularSemanticsSweep) {
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    ExperimentParams p;
    p.protocol = "dqvl";
    p.iqs = workload::QuorumSpec::grid(2, 2);
    p.write_ratio = 0.4;
    p.requests_per_client = 60;
    p.seed = seed;
    p.choose_object = [](Rng&) { return ObjectId(4); };
    const auto r = run_experiment(p);
    EXPECT_EQ(r.rejected_reads + r.rejected_writes, 0u);
    EXPECT_TRUE(r.violations.empty())
        << "seed " << seed << ": " << r.violations.front().reason;
  }
}

TEST(GridIqs, SmallerReadQuorumThanMajority) {
  // A 3x3 grid reads from 3 nodes (one per column) where a majority of 9
  // reads from 5 -- the "reduce the overall system load" motivation.
  ExperimentParams p;
  p.protocol = "dqvl";
  p.topo.num_servers = 9;
  p.iqs = workload::QuorumSpec::grid(3, 3);
  Deployment dep(p);
  EXPECT_EQ(dep.dq_config()->iqs->quorum_size(quorum::Kind::kRead), 3u);
  EXPECT_EQ(dep.dq_config()->iqs->quorum_size(quorum::Kind::kWrite), 5u);
}

}  // namespace
}  // namespace dq::workload
