// Round-trip tests for the shared --flag vocabulary (workload/flags.h):
// parse_flag_map tokenizing, params_from_flags consuming exactly the keys it
// understands, the open-loop flag family, and the removal of the deprecated
// --grid alias (--iqs=grid:RxC is the only spelling).
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/flags.h"

namespace dq::workload {
namespace {

std::map<std::string, std::string> parse(std::vector<std::string> args,
                                         std::string* error = nullptr) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("test"));
  for (auto& a : args) argv.push_back(a.data());
  std::string local;
  auto out = parse_flag_map(static_cast<int>(argv.size()), argv.data(),
                            error != nullptr ? error : &local);
  return out;
}

TEST(Flags, ParseFlagMapSplitsNamesAndValues) {
  const auto m = parse({"--writes=0.2", "--staleness", "--seed=7"});
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at("writes"), "0.2");
  EXPECT_EQ(m.at("staleness"), "1");  // bare flag parses as "1"
  EXPECT_EQ(m.at("seed"), "7");
}

TEST(Flags, ParseFlagMapRejectsNonFlags) {
  std::string error;
  const auto m = parse({"writes=0.2"}, &error);
  EXPECT_TRUE(m.empty());
  EXPECT_NE(error.find("unrecognized argument"), std::string::npos);
}

TEST(Flags, RoundTripConsumesEveryKnownKey) {
  auto flags = parse({"--protocol=majority", "--writes=0.25",
                      "--locality=0.8", "--servers=7", "--clients=4",
                      "--requests=50", "--iqs=grid:2x3", "--seed=11",
                      "--jitter=0.1", "--loss=0.05", "--think-ms=20",
                      "--world-threads=2"});
  std::string error;
  const auto p = params_from_flags(flags, &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_TRUE(flags.empty()) << "leftover key: " << flags.begin()->first;
  EXPECT_EQ(p->protocol, "majority");
  EXPECT_DOUBLE_EQ(p->write_ratio, 0.25);
  EXPECT_DOUBLE_EQ(p->locality, 0.8);
  EXPECT_EQ(p->topo.num_servers, 7u);
  EXPECT_EQ(p->topo.num_clients, 4u);
  EXPECT_EQ(p->requests_per_client, 50u);
  EXPECT_EQ(p->iqs.describe(), "grid:2x3");
  EXPECT_EQ(p->seed, 11u);
  EXPECT_DOUBLE_EQ(p->topo.jitter, 0.1);
  EXPECT_DOUBLE_EQ(p->loss, 0.05);
  EXPECT_EQ(p->think_time, sim::milliseconds(20));
  EXPECT_EQ(p->world_threads, 2u);
  EXPECT_FALSE(p->open_loop.has_value());
}

TEST(Flags, GridAliasIsGone) {
  // --grid was a deprecated alias for --iqs=grid:RxC; it is no longer a
  // known key, so params_from_flags leaves it in the map for the caller's
  // unknown-flag rejection.
  auto flags = parse({"--grid=3x3"});
  std::string error;
  const auto p = params_from_flags(flags, &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_EQ(p->iqs.describe(), QuorumSpec::majority(5).describe());
  EXPECT_EQ(flags.count("grid"), 1u);
  for (const auto& h : experiment_flag_help()) {
    EXPECT_STRNE(h.name, "grid");
  }
}

TEST(Flags, OpenLoopFamilyParses) {
  auto flags = parse({"--open-loop", "--sites=5", "--clients-per-site=2000",
                      "--client-rate=0.5", "--zipf=1.1", "--objects=50000",
                      "--diurnal=0.3", "--flash-crowd=4:2:10",
                      "--open-seconds=6"});
  std::string error;
  const auto p = params_from_flags(flags, &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_TRUE(flags.empty());
  ASSERT_TRUE(p->open_loop.has_value());
  const OpenLoopParams& ol = *p->open_loop;
  EXPECT_EQ(p->topo.num_clients, 5u);
  EXPECT_EQ(ol.clients_per_site, 2000u);
  EXPECT_DOUBLE_EQ(ol.client_rate_hz, 0.5);
  EXPECT_DOUBLE_EQ(ol.zipf_s, 1.1);
  EXPECT_EQ(ol.objects, 50000u);
  EXPECT_DOUBLE_EQ(ol.diurnal_amplitude, 0.3);
  ASSERT_TRUE(ol.flash.has_value());
  EXPECT_EQ(ol.flash->start, sim::seconds(4));
  EXPECT_EQ(ol.flash->duration, sim::seconds(2));
  EXPECT_DOUBLE_EQ(ol.flash->multiplier, 10.0);
  EXPECT_EQ(ol.horizon, sim::seconds(6));
  EXPECT_DOUBLE_EQ(ol.site_rate_hz(), 1000.0);
}

TEST(Flags, OpenLoopSubFlagsAreLeftoverWithoutOptIn) {
  auto flags = parse({"--clients-per-site=2000", "--zipf=1.1"});
  std::string error;
  const auto p = params_from_flags(flags, &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_FALSE(p->open_loop.has_value());
  EXPECT_EQ(flags.count("clients-per-site"), 1u);
  EXPECT_EQ(flags.count("zipf"), 1u);
}

TEST(Flags, MalformedFlashCrowdFails) {
  auto flags = parse({"--open-loop", "--flash-crowd=nope"});
  std::string error;
  EXPECT_FALSE(params_from_flags(flags, &error).has_value());
  EXPECT_NE(error.find("flash-crowd"), std::string::npos);
}

TEST(Flags, OpenLoopRejectsInjection) {
  auto flags = parse({"--open-loop", "--node-unavail=0.01"});
  std::string error;
  EXPECT_FALSE(params_from_flags(flags, &error).has_value());
  EXPECT_NE(error.find("open-loop"), std::string::npos);
}

}  // namespace
}  // namespace dq::workload
