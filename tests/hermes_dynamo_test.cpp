// End-to-end coverage for the two registry baselines added alongside the
// dual-quorum protocols:
//
//   * Hermes (invalidation broadcast): linearizable -- held to
//     History::check_atomic under loss, jitter, and crash/restart churn.
//   * Dynamo (sloppy quorum + hinted handoff + read-repair): eventual --
//     clean when every object has a single writer site, provably stale
//     under partitions (the negative control for the staleness metric).
//
// Plus the determinism contract every protocol owes the harness: dq.report.v1
// bytes identical at any --jobs and any --world-threads >= 1, pinned by
// checked-in goldens.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "run/parallel_runner.h"
#include "workload/experiment.h"
#include "workload/report.h"

namespace dq::workload {
namespace {

// --- Hermes ----------------------------------------------------------------

TEST(Hermes, AtomicUnderLossAndContention) {
  ExperimentParams p;
  p.protocol = "hermes";
  p.write_ratio = 0.3;
  p.requests_per_client = 100;
  p.loss = 0.05;
  p.topo.jitter = 0.1;
  // One shared object: every client writes the same key through a different
  // coordinator, the worst case for linearizability.
  p.choose_object = [](Rng&) { return ObjectId(5); };
  p.seed = 11;
  const ExperimentResult r = run_experiment(p);
  EXPECT_EQ(r.completed_reads + r.completed_writes,
            3 * p.requests_per_client);
  const auto violations = r.history.check_atomic();
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front().reason);
}

TEST(Hermes, AtomicAcrossCrashRestartWithWal) {
  ExperimentParams p;
  p.protocol = "hermes";
  p.write_ratio = 0.3;
  p.requests_per_client = 60;
  p.loss = 0.02;
  p.op_deadline = sim::seconds(30);
  p.choose_object = [](Rng&) { return ObjectId(5); };
  store::WalParams w;
  w.policy = store::SyncPolicy::kSyncEveryWrite;
  p.wal = w;
  sim::CrashInjector::Params c;
  c.mean_time_to_crash = sim::seconds(15);
  c.mean_downtime = sim::seconds(1);
  p.crashes = c;
  p.seed = 3;
  const ExperimentResult r = run_experiment(p);
  // Replica crashes may reject some ops at their deadline; the survivors
  // must still form an atomic history (WAL replay + epoch replays cannot
  // resurrect stale versions).
  EXPECT_GT(r.completed_reads + r.completed_writes, 0u);
  const auto violations = r.history.check_atomic();
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front().reason);
}

// --- Dynamo ----------------------------------------------------------------

TEST(Dynamo, CleanWithSingleWriterObjects) {
  // Default workload: each client owns its profile object, so LWW clocks
  // from one coordinator order writes consistently; no loss, no partitions.
  ExperimentParams p;
  p.protocol = "dynamo";
  p.write_ratio = 0.2;
  p.requests_per_client = 80;
  p.seed = 9;
  const ExperimentResult r = run_experiment(p);
  EXPECT_EQ(r.completed_reads + r.completed_writes,
            3 * p.requests_per_client);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size() << " violations, first: "
      << (r.violations.empty() ? "" : r.violations.front().reason);
}

TEST(Dynamo, RecoversThroughCrashesWithWal) {
  ExperimentParams p;
  p.protocol = "dynamo";
  p.write_ratio = 0.3;
  p.requests_per_client = 60;
  p.op_deadline = sim::seconds(30);
  store::WalParams w;
  w.policy = store::SyncPolicy::kGroupCommit;
  p.wal = w;
  sim::CrashInjector::Params c;
  c.mean_time_to_crash = sim::seconds(15);
  c.mean_downtime = sim::seconds(1);
  p.crashes = c;
  p.seed = 17;
  const ExperimentResult r = run_experiment(p);
  // Sloppy quorums route around the crashed replica, so almost everything
  // completes; this is an availability baseline, not a consistency one.
  EXPECT_GT(r.completed_reads + r.completed_writes,
            3 * p.requests_per_client * 9 / 10);
}

// The negative control the staleness metric exists for: partition the
// cluster so two coordinator groups serve the same object from diverged
// replicas.  Dynamo keeps answering on both sides (sloppy quorums extend
// down the ring to whatever is reachable) -- and the checker and the
// staleness histogram must both expose the cost.
TEST(Dynamo, ServesStaleReadsUnderPartition) {
  ExperimentParams p;
  p.protocol = "dynamo";
  p.write_ratio = 0.5;
  p.requests_per_client = 60;
  p.choose_object = [](Rng&) { return ObjectId(5); };
  p.staleness = true;
  Deployment dep(p);
  // Split {servers 0, 1 + clients 0, 1} from the rest.  Object 5's home
  // replicas (servers 5, 6, 7) are all on the majority side; coordinators
  // 0 and 1 reach them only through ring extension onto their own island,
  // so the two sides' stores diverge until the partition would heal.
  const auto& topo = dep.world().topology();
  dep.world().faults().set_group(topo.server(0), 1);
  dep.world().faults().set_group(topo.server(1), 1);
  dep.world().faults().set_group(topo.client(0), 1);
  dep.world().faults().set_group(topo.client(1), 1);
  const ExperimentResult r = dep.run();
  EXPECT_FALSE(r.violations.empty())
      << "expected stale reads across the partition";
  EXPECT_GT(r.metrics.counter("staleness.stale_reads"), 0u)
      << "staleness histogram must count the stale reads the checker saw";
  const obs::HistogramData* ages = r.metrics.histogram("staleness.read_age_ms");
  ASSERT_NE(ages, nullptr);
  EXPECT_EQ(ages->count, r.completed_reads);
  EXPECT_GT(ages->max, 0.0);
}

// DQVL under the same contended single-object workload records all-zero
// ages: regular semantics means no read ever misses a preceding commit.
TEST(Dynamo, DqvlBaselineHasZeroStaleness) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 0.3;
  p.requests_per_client = 80;
  p.loss = 0.02;
  p.topo.jitter = 0.1;
  p.choose_object = [](Rng&) { return ObjectId(5); };
  p.staleness = true;
  p.seed = 21;
  const ExperimentResult r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.metrics.counter("staleness.stale_reads"), 0u);
  const obs::HistogramData* ages = r.metrics.histogram("staleness.read_age_ms");
  ASSERT_NE(ages, nullptr);
  EXPECT_EQ(ages->count, r.completed_reads);
  EXPECT_EQ(ages->max, 0.0);
}

// --- determinism & goldens -------------------------------------------------

// These parameters must not change: tests/golden/report_{hermes,dynamo}_*
// were generated from them (with --staleness on, so the goldens also pin the
// staleness section's bytes).
ExperimentParams golden_params(const std::string& proto, std::uint64_t seed) {
  ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = 0.2;
  p.locality = 0.9;
  p.requests_per_client = 100;
  p.loss = 0.02;
  p.topo.jitter = 0.1;
  p.staleness = true;
  p.seed = seed;
  return p;
}

std::string report_at(const ExperimentParams& base, std::size_t world_threads) {
  ExperimentParams p = base;
  p.world_threads = world_threads;
  Deployment dep(p);
  const ExperimentResult r = dep.run();
  return report::to_json(p, r);
}

std::string read_golden(const std::string& name) {
  const std::string path =
      std::string(DQ_GOLDEN_DIR) + "/report_" + name + ".json";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class NewProtocolGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(NewProtocolGolden, ByteIdenticalAcrossWorldThreads) {
  const auto base = golden_params(GetParam(), 7);
  const std::string serial = report_at(base, 1);
  EXPECT_EQ(serial, report_at(base, 4))
      << GetParam() << " diverges between --world-threads 1 and 4";
  // The generator wrote each document with a trailing newline.
  EXPECT_EQ(serial + "\n",
            read_golden(std::string(GetParam()) + "_seed7"))
      << GetParam() << " no longer matches its checked-in golden";
}

TEST_P(NewProtocolGolden, ByteIdenticalAcrossJobCounts) {
  std::vector<ExperimentParams> trials;
  for (std::uint64_t seed : {7ULL, 19ULL}) {
    ExperimentParams p = golden_params(GetParam(), seed);
    p.world_threads = 1;
    trials.push_back(p);
  }
  std::vector<std::string> serial, threaded;
  for (const auto& results : {run::run_experiments(trials, 1),
                              run::run_experiments(trials, 4)}) {
    auto& out = serial.empty() ? serial : threaded;
    for (std::size_t i = 0; i < results.size(); ++i) {
      out.push_back(report::to_json(trials[i], results[i]));
    }
  }
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i])
        << GetParam() << " trial " << i << " diverges at jobs=4";
  }
  EXPECT_EQ(serial[0] + "\n",
            read_golden(std::string(GetParam()) + "_seed7"));
}

INSTANTIATE_TEST_SUITE_P(Protocols, NewProtocolGolden,
                         ::testing::Values("hermes", "dynamo"));

}  // namespace
}  // namespace dq::workload
