// Tests for the regular-semantics checker itself, on synthetic histories.
// The checker is the oracle for every consistency property test, so it gets
// its own suite: legal histories must pass, illegal ones must be caught.
#include <gtest/gtest.h>

#include "workload/history.h"

namespace dq::workload {
namespace {

OpRecord write(std::uint64_t t0, std::uint64_t t1, const char* v,
               LogicalClock lc, bool ok = true, ObjectId o = ObjectId(1)) {
  OpRecord op;
  op.client = ClientId(1);
  op.kind = msg::OpKind::kWrite;
  op.object = o;
  op.invoked = static_cast<sim::Time>(t0);
  op.completed = static_cast<sim::Time>(t1);
  op.ok = ok;
  op.value = v;
  op.clock = lc;
  return op;
}

OpRecord read(std::uint64_t t0, std::uint64_t t1, const char* v,
              LogicalClock lc, bool ok = true, ObjectId o = ObjectId(1)) {
  OpRecord op = write(t0, t1, v, lc, ok, o);
  op.kind = msg::OpKind::kRead;
  return op;
}

TEST(HistoryChecker, EmptyHistoryIsRegular) {
  History h;
  EXPECT_TRUE(h.check_regular().empty());
}

TEST(HistoryChecker, ReadOfInitialValueBeforeAnyWriteIsLegal) {
  History h;
  h.record(read(0, 10, "", LogicalClock::zero()));
  h.record(write(20, 30, "a", {1, 1}));
  EXPECT_TRUE(h.check_regular().empty());
}

TEST(HistoryChecker, ReadOfInitialValueAfterCompletedWriteIsIllegal) {
  History h;
  h.record(write(0, 10, "a", {1, 1}));
  h.record(read(20, 30, "", LogicalClock::zero()));
  EXPECT_EQ(h.check_regular().size(), 1u);
}

TEST(HistoryChecker, ReadOfLatestCompletedWriteIsLegal) {
  History h;
  h.record(write(0, 10, "a", {1, 1}));
  h.record(write(20, 30, "b", {2, 1}));
  h.record(read(40, 50, "b", {2, 1}));
  EXPECT_TRUE(h.check_regular().empty());
}

TEST(HistoryChecker, ReadOfSupersededWriteIsIllegal) {
  History h;
  h.record(write(0, 10, "a", {1, 1}));
  h.record(write(20, 30, "b", {2, 1}));
  h.record(read(40, 50, "a", {1, 1}));  // stale!
  const auto v = h.check_regular();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].read.value, "a");
}

TEST(HistoryChecker, ConcurrentReadMayReturnEitherValue) {
  History h;
  h.record(write(0, 10, "a", {1, 1}));
  h.record(write(20, 60, "b", {2, 1}));  // overlaps both reads below
  h.record(read(30, 40, "a", {1, 1}));   // old value: legal (concurrent)
  h.record(read(30, 40, "b", {2, 1}));   // new value: legal too
  EXPECT_TRUE(h.check_regular().empty());
}

TEST(HistoryChecker, ValueMustMatchClock) {
  History h;
  h.record(write(0, 10, "a", {1, 1}));
  // Read claims the right clock but the wrong value.
  h.record(read(20, 30, "corrupt", {1, 1}));
  EXPECT_EQ(h.check_regular().size(), 1u);
}

TEST(HistoryChecker, IncompleteWriteIsForeverConcurrent) {
  History h;
  h.record(write(0, 0, "a", {1, 1}, /*ok=*/false));  // never completed
  h.record(read(100, 110, "a", {1, 1}));  // may expose it: legal
  h.record(read(200, 210, "", LogicalClock::zero()));  // may miss it: legal
  EXPECT_TRUE(h.check_regular().empty());
}

TEST(HistoryChecker, RejectedReadsAreNotChecked) {
  History h;
  h.record(write(0, 10, "a", {1, 1}));
  h.record(read(20, 30, "", LogicalClock::zero(), /*ok=*/false));
  EXPECT_TRUE(h.check_regular().empty());
}

TEST(HistoryChecker, ObjectsAreIndependent) {
  History h;
  h.record(write(0, 10, "a", {1, 1}, true, ObjectId(1)));
  h.record(read(20, 30, "", LogicalClock::zero(), true, ObjectId(2)));
  EXPECT_TRUE(h.check_regular().empty());
}

TEST(HistoryChecker, MonotonicityAcrossNonOverlappingWrites) {
  // Write b completed strictly after write a; a later read of a is stale
  // even though a has... a LOWER clock is required for this to be illegal.
  History h;
  h.record(write(0, 10, "a", {1, 1}));
  h.record(write(20, 30, "b", {2, 2}));
  h.record(write(40, 50, "c", {3, 1}));
  h.record(read(60, 70, "b", {2, 2}));  // superseded by c
  EXPECT_EQ(h.check_regular().size(), 1u);
}

TEST(HistoryChecker, ReadOverlappingManyWritesMayReturnAnyOfThem) {
  History h;
  h.record(write(0, 100, "a", {1, 1}));
  h.record(write(0, 100, "b", {1, 2}));
  h.record(write(0, 100, "c", {2, 1}));
  h.record(read(50, 60, "b", {1, 2}));
  EXPECT_TRUE(h.check_regular().empty());
}

TEST(HistoryChecker, IncompleteFirstWriteAllowsInitialOrInFlightValue) {
  // Crash-recovery corner case: the very first write to an object never
  // completes (say its ack was lost when the server crashed) and a read of
  // the never-(completely-)written object overlaps it.  BOTH outcomes are
  // legal -- the initial value (the write has not taken effect) and the
  // in-flight value (it has).  This leniency is exactly what lets a WAL
  // drop UNACKED writes at a crash without a violation; acked writes get
  // no such forgiveness.
  {
    History h;
    h.record(write(0, 100, "a", {1, 1}, /*ok=*/false));
    h.record(read(10, 20, "", LogicalClock::zero()));
    EXPECT_TRUE(h.check_regular().empty()) << "initial value must be legal";
  }
  {
    History h;
    h.record(write(0, 100, "a", {1, 1}, /*ok=*/false));
    h.record(read(10, 20, "a", {1, 1}));
    EXPECT_TRUE(h.check_regular().empty()) << "in-flight value must be legal";
  }
  {
    // A value from nowhere is still caught.
    History h;
    h.record(write(0, 100, "a", {1, 1}, /*ok=*/false));
    h.record(read(10, 20, "b", {2, 2}));
    EXPECT_EQ(h.check_regular().size(), 1u);
  }
  {
    // An incomplete write never stops being concurrent (w_end = infinity):
    // a read far in the future may still return either value.
    History h;
    h.record(write(0, 100, "a", {1, 1}, /*ok=*/false));
    h.record(read(50000, 50010, "a", {1, 1}));
    h.record(read(50000, 50010, "", LogicalClock::zero()));
    EXPECT_TRUE(h.check_regular().empty());
  }
}

TEST(HistoryChecker, DuplicateExecutionClockMismatchLegalOnlyWhileOverlapping) {
  // One logical write re-executed across a front-end crash: the history op
  // carries the finally-acked clock (2.1) while a concurrent reader saw the
  // first attempt's pair (same value, clock 1.1).  Legal during the op...
  {
    History h;
    h.record(write(0, 100, "a", {2, 1}));
    h.record(read(10, 20, "a", {1, 1}));
    EXPECT_TRUE(h.check_regular().empty());
  }
  // ...but once the write has completed, a mismatched clock is stale state
  // and stays a violation.
  {
    History h;
    h.record(write(0, 100, "a", {2, 1}));
    h.record(read(200, 210, "a", {1, 1}));
    EXPECT_EQ(h.check_regular().size(), 1u);
  }
}

TEST(HistoryChecker, AppendMergesHistories) {
  History a, b;
  a.record(write(0, 10, "a", {1, 1}));
  b.record(read(20, 30, "a", {1, 1}));
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.check_regular().empty());
}

}  // namespace
}  // namespace dq::workload
