// Handler-level unit tests for the IQS server: drive raw wire messages at a
// single IqsServer instance and inspect replies and state directly.  These
// pin down the per-message semantics of Figure 4's pseudo-code.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/iqs_server.h"
#include "workload/node.h"

namespace dq::core {
namespace {

// A harness with one IQS node (server 0), two OQS nodes (servers 1, 2), and
// a probe node (server 3) from which we inject client traffic.  Replies and
// invalidations are captured verbatim.
class IqsHarness : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kIqs = 0;
  static constexpr std::uint32_t kOqsA = 1;
  static constexpr std::uint32_t kOqsB = 2;
  static constexpr std::uint32_t kProbe = 3;

  IqsHarness() {
    sim::Topology::Params tp;
    tp.num_servers = 4;
    tp.num_clients = 0;
    tp.processing_delay = 0;  // unit tests look at logic, not latency
    world = std::make_unique<sim::World>(sim::Topology(tp), 7);

    auto cfg = std::make_shared<DqConfig>(DqConfig::headline(
        {NodeId(kOqsA), NodeId(kOqsB)}, {NodeId(kIqs)}, sim::seconds(5)));
    config = cfg;

    iqs = std::make_unique<IqsServer>(*world, NodeId(kIqs), config);
    iqs_node.add_handler(
        [this](const sim::Envelope& e) { return iqs->on_message(e); });
    world->attach(NodeId(kIqs), iqs_node);
    world->attach(NodeId(kOqsA), capture_a);
    world->attach(NodeId(kOqsB), capture_b);
    world->attach(NodeId(kProbe), capture_probe);
  }

  struct Capture final : sim::Actor {
    void on_message(const sim::Envelope& env) override {
      received.push_back(env);
    }
    std::vector<sim::Envelope> received;

    template <typename T>
    std::vector<T> of() const {
      std::vector<T> out;
      for (const auto& e : received) {
        if (const T* m = std::get_if<T>(&e.body)) out.push_back(*m);
      }
      return out;
    }
  };

  // Send from `src` to the IQS node and run the world dry.
  void inject(std::uint32_t src, msg::Payload body,
              std::uint64_t rpc = 999) {
    world->send(NodeId(src), NodeId(kIqs), RequestId(rpc), std::move(body));
    world->run_for(sim::seconds(1));
  }

  std::unique_ptr<sim::World> world;
  std::shared_ptr<const DqConfig> config;
  std::unique_ptr<IqsServer> iqs;
  workload::EdgeNode iqs_node;
  Capture capture_a, capture_b, capture_probe;
};

TEST_F(IqsHarness, LcReadReturnsGlobalClock) {
  inject(kProbe, msg::DqLcRead{ObjectId(1)});
  auto replies = capture_probe.of<msg::DqLcReadReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].clock, LogicalClock::zero());

  inject(kProbe, msg::DqWrite{ObjectId(1), "v", {5, 3}});
  inject(kProbe, msg::DqLcRead{ObjectId(1)});
  replies = capture_probe.of<msg::DqLcReadReply>();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1].clock, (LogicalClock{5, 3}));
}

TEST_F(IqsHarness, ColdWriteAcksWithoutInvalidations) {
  inject(kProbe, msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  EXPECT_EQ(capture_probe.of<msg::DqWriteAck>().size(), 1u);
  EXPECT_TRUE(capture_a.of<msg::DqInval>().empty());
  EXPECT_TRUE(capture_b.of<msg::DqInval>().empty());
  EXPECT_EQ(iqs->last_write_clock(ObjectId(1)), (LogicalClock{1, 1}));
  EXPECT_EQ(iqs->value_of(ObjectId(1)), "v1");
}

TEST_F(IqsHarness, StaleWriteDoesNotOverwriteButIsAcked) {
  inject(kProbe, msg::DqWrite{ObjectId(1), "new", {5, 1}});
  inject(kProbe, msg::DqWrite{ObjectId(1), "old", {2, 1}}, /*rpc=*/1000);
  EXPECT_EQ(iqs->value_of(ObjectId(1)), "new");
  EXPECT_EQ(iqs->last_write_clock(ObjectId(1)), (LogicalClock{5, 1}));
  EXPECT_EQ(capture_probe.of<msg::DqWriteAck>().size(), 2u);
}

TEST_F(IqsHarness, ObjRenewGrantsValueAndInstallsCallback) {
  inject(kProbe, msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  inject(kOqsA, msg::DqObjRenew{ObjectId(1), 0});
  auto replies = capture_a.of<msg::DqObjRenewReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].value, "v1");
  EXPECT_EQ(replies[0].clock, (LogicalClock{1, 1}));
  // Callback installed: lastReadLC == lastWriteLC.
  EXPECT_EQ(iqs->last_read_clock(ObjectId(1)), (LogicalClock{1, 1}));
}

TEST_F(IqsHarness, WriteAfterRenewalInvalidatesTheCachingNode) {
  inject(kProbe, msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  inject(kOqsA, msg::DqVolRenew{VolumeId(0), 0});
  inject(kOqsA, msg::DqObjRenew{ObjectId(1), 0});
  inject(kProbe, msg::DqWrite{ObjectId(1), "v2", {2, 1}}, /*rpc=*/1001);
  // Node A holds a volume lease + object callback: it must be invalidated.
  auto invals = capture_a.of<msg::DqInval>();
  ASSERT_GE(invals.size(), 1u);
  EXPECT_EQ(invals[0].clock, (LogicalClock{2, 1}));
  // Node B never renewed: no invalidation for it.
  EXPECT_TRUE(capture_b.of<msg::DqInval>().empty());
  // The ack to the client is withheld until A acks (or its lease expires).
  EXPECT_EQ(capture_probe.of<msg::DqWriteAck>().size(), 1u);  // only v1's

  // Deliver A's invalidation ack; the write completes.
  world->send(NodeId(kOqsA), NodeId(kIqs), invals.empty()
                                               ? RequestId(0)
                                               : RequestId(998),
              msg::DqInvalAck{ObjectId(1), {2, 1}});
  world->run_for(sim::seconds(1));
  EXPECT_EQ(capture_probe.of<msg::DqWriteAck>().size(), 2u);
  EXPECT_EQ(iqs->last_ack_clock(ObjectId(1), NodeId(kOqsA)),
            (LogicalClock{2, 1}));
}

TEST_F(IqsHarness, WriteCompletesByLeaseExpiryWhenAckNeverComes) {
  inject(kProbe, msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  inject(kOqsA, msg::DqVolRenew{VolumeId(0), 0});
  inject(kOqsA, msg::DqObjRenew{ObjectId(1), 0});
  world->set_up(NodeId(kOqsA), false);  // A will never ack

  world->send(NodeId(kProbe), NodeId(kIqs), RequestId(1002),
              msg::DqWrite{ObjectId(1), "v2", {2, 1}});
  world->run_for(sim::seconds(2));
  EXPECT_EQ(capture_probe.of<msg::DqWriteAck>().size(), 1u) << "still blocked";
  world->run_for(sim::seconds(8));  // lease (5 s) expires
  EXPECT_EQ(capture_probe.of<msg::DqWriteAck>().size(), 2u);
  // And a delayed invalidation was queued for A.
  EXPECT_GE(iqs->delayed_queue_size(VolumeId(0), NodeId(kOqsA)), 1u);
}

TEST_F(IqsHarness, VolRenewDeliversDelayedInvalidations) {
  inject(kProbe, msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  inject(kOqsA, msg::DqVolRenew{VolumeId(0), 0});
  inject(kOqsA, msg::DqObjRenew{ObjectId(1), 0});
  world->set_up(NodeId(kOqsA), false);
  inject(kProbe, msg::DqWrite{ObjectId(1), "v2", {2, 1}}, 1003);
  world->run_for(sim::seconds(10));  // write completed via expiry

  world->set_up(NodeId(kOqsA), true);
  inject(kOqsA, msg::DqVolRenew{VolumeId(0), 42}, 1004);
  auto replies = capture_a.of<msg::DqVolRenewReply>();
  ASSERT_GE(replies.size(), 2u);
  const auto& renewed = replies.back();
  ASSERT_EQ(renewed.delayed.size(), 1u);
  EXPECT_EQ(renewed.delayed[0].object, ObjectId(1));
  EXPECT_EQ(renewed.delayed[0].clock, (LogicalClock{2, 1}));
  EXPECT_EQ(renewed.requestor_time, 42);

  // Acking the renewal clears the queue.
  world->send(NodeId(kOqsA), NodeId(kIqs), RequestId(0),
              msg::DqVolRenewAck{VolumeId(0), {2, 1}});
  world->run_for(sim::seconds(1));
  EXPECT_EQ(iqs->delayed_queue_size(VolumeId(0), NodeId(kOqsA)), 0u);
}

TEST_F(IqsHarness, VolObjRenewCombinesBothGrants) {
  inject(kProbe, msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  inject(kOqsB, msg::DqVolObjRenew{VolumeId(0), ObjectId(1), 7});
  auto replies = capture_b.of<msg::DqVolObjRenewReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].obj.value, "v1");
  EXPECT_EQ(replies[0].vol.requestor_time, 7);
  EXPECT_TRUE(iqs->lease_valid(VolumeId(0), NodeId(kOqsB)));
}

TEST_F(IqsHarness, DuplicateWriteRetransmissionGetsSingleOutcome) {
  // Same rpc id twice: one waiter entry, but both deliveries eventually see
  // an ack (the engine's rpc-id match makes the second a no-op at the
  // client; the server simply re-acks).
  world->send(NodeId(kProbe), NodeId(kIqs), RequestId(555),
              msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  world->send(NodeId(kProbe), NodeId(kIqs), RequestId(555),
              msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  world->run_for(sim::seconds(1));
  EXPECT_GE(capture_probe.of<msg::DqWriteAck>().size(), 1u);
  EXPECT_EQ(iqs->value_of(ObjectId(1)), "v1");
}

TEST_F(IqsHarness, EpochBumpOnlyWhenLeaseExpired) {
  // Fill the delayed queue beyond any bound while the lease is valid: the
  // epoch must NOT advance (j could still be serving under it).
  inject(kOqsA, msg::DqVolRenew{VolumeId(0), 0});
  inject(kOqsA, msg::DqObjRenew{ObjectId(1), 0});
  EXPECT_EQ(iqs->epoch_of(VolumeId(0), NodeId(kOqsA)), 0u);
  // (Queue growth requires an expired lease in the first place, so this is
  // structural: enqueue implies expired implies bump is safe.)
}

TEST_F(IqsHarness, CrashDropsEnsureMachinesButKeepsDurableState) {
  inject(kProbe, msg::DqWrite{ObjectId(1), "v1", {1, 1}});
  iqs->on_crash();
  EXPECT_EQ(iqs->pending_ensures(), 0u);
  EXPECT_EQ(iqs->value_of(ObjectId(1)), "v1");
  EXPECT_EQ(iqs->last_write_clock(ObjectId(1)), (LogicalClock{1, 1}));
}

}  // namespace
}  // namespace dq::core
