// Cross-validation of the closed-form latency model against the simulator:
// the analytical evaluation style of the paper, closed end to end.
#include <gtest/gtest.h>

#include "analysis/latency.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

analysis::LatencyModel paper_model() { return {}; }  // 8/86/80 ms, d = 1

TEST(LatencyModel, PointValues) {
  const auto m = paper_model();
  EXPECT_DOUBLE_EQ(m.dqvl_read_hit(), 9.0);
  EXPECT_DOUBLE_EQ(m.dqvl_read_miss(), 89.0);
  EXPECT_DOUBLE_EQ(m.dqvl_write_suppress(), 170.0);
  EXPECT_DOUBLE_EQ(m.dqvl_write_through(), 250.0);
  EXPECT_DOUBLE_EQ(m.majority_read(), 87.0);
  EXPECT_DOUBLE_EQ(m.majority_write(), 174.0);
  EXPECT_DOUBLE_EQ(m.rowa_write(), 89.0);
}

TEST(LatencyModel, MatchesSimulatedBaselines) {
  const auto m = paper_model();
  for (double w : {0.1, 0.5}) {
    ExperimentParams p;
    p.write_ratio = w;
    p.requests_per_client = 300;
    p.seed = 17;

    p.protocol = "majority";
    auto r = run_experiment(p);
    EXPECT_NEAR(r.read_ms.mean(), m.majority_read(), 1.0);
    EXPECT_NEAR(r.write_ms.mean(), m.majority_write(), 2.0);

    p.protocol = "pb";
    r = run_experiment(p);
    EXPECT_NEAR(r.all_ms.mean(), m.pb_avg(w), 1.0);

    p.protocol = "rowa";
    r = run_experiment(p);
    EXPECT_NEAR(r.read_ms.mean(), m.rowa_read(), 1.0);
    EXPECT_NEAR(r.write_ms.mean(), m.rowa_write(), 1.0);

    p.protocol = "rowa-async";
    r = run_experiment(p);
    EXPECT_NEAR(r.all_ms.mean(), m.rowa_async_avg(w), 1.0);
  }
}

TEST(LatencyModel, MatchesSimulatedDqvlPathLatencies) {
  // Drive the four DQVL paths deterministically and compare point values.
  const auto m = paper_model();
  ExperimentParams p;
  p.protocol = "dqvl";
  p.requests_per_client = 200;
  p.write_ratio = 0.05;
  p.seed = 23;
  const auto r = run_experiment(p);
  // Read p50 is the hit path; max read is a miss (or lease renewal).
  EXPECT_NEAR(r.read_ms.percentile(50), m.dqvl_read_hit(), 1.0);
  EXPECT_GE(r.read_ms.max() + 0.5, m.dqvl_read_miss());
  // Writes at 5% mostly go through (a read usually intervened).
  EXPECT_NEAR(r.write_ms.percentile(50), m.dqvl_write_through(), 2.0);
  // The fastest observed write is a suppress.
  EXPECT_NEAR(r.write_ms.min(), m.dqvl_write_suppress(), 2.0);
}

TEST(LatencyModel, PredictsTheFig6bShape) {
  // Model-level reproduction of Figure 6(b)'s orderings.
  const auto m = paper_model();
  // Read-dominated: DQVL far below the strong baselines.
  EXPECT_LT(m.dqvl_avg(0.05), m.majority_avg(0.05) / 3.0);
  EXPECT_LT(m.dqvl_avg(0.05), m.pb_avg(0.05) / 3.0);
  // Write-dominated: DQVL within a hair of majority, above p/b and ROWA.
  EXPECT_NEAR(m.dqvl_avg(1.0), m.majority_avg(1.0), 5.0);
  EXPECT_GT(m.dqvl_avg(1.0), m.pb_avg(1.0));
  EXPECT_GT(m.dqvl_avg(1.0), m.rowa_avg(1.0));
}

TEST(LatencyModel, LocalityAdjustment) {
  const auto m = paper_model();
  // At locality 1 no change; at 0 every request pays the WAN hop delta.
  EXPECT_DOUBLE_EQ(m.with_locality(m.dqvl_read_hit(), 1.0),
                   m.dqvl_read_hit());
  EXPECT_DOUBLE_EQ(m.with_locality(m.dqvl_read_hit(), 0.0),
                   m.dqvl_read_hit() + 78.0);
  // Cross-check against the simulator (ROWA-Async isolates the hop).
  ExperimentParams p;
  p.protocol = "rowa-async";
  p.locality = 0.6;
  p.write_ratio = 0.0;
  p.requests_per_client = 600;
  p.seed = 29;
  const auto r = run_experiment(p);
  EXPECT_NEAR(r.read_ms.mean(), m.with_locality(m.rowa_async_read(), 0.6),
              3.0);
}

}  // namespace
}  // namespace dq::workload
