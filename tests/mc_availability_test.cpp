// Monte-Carlo cross-validation of the Figure 8 availability model: run the
// real protocols under exponential failure injection and compare measured
// rejection rates with the closed forms, in a coarse regime (p = 0.15,
// n = 5) where both are statistically measurable.
#include <gtest/gtest.h>

#include "analysis/availability.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

double measured_unavailability(std::string proto, double w, double p_node,
                               std::uint64_t seed) {
  ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = w;
  p.requests_per_client = 300;
  p.seed = seed;
  p.topo.num_servers = 5;
  p.iqs = workload::QuorumSpec::majority(5);
  p.lease_length = sim::milliseconds(500);
  // Deadline far below the mean repair time: waiting out a failure is
  // improbable, matching the model's instantaneous-availability view.
  p.op_deadline = sim::seconds(2);
  // Think time well above the deadline keeps the closed loop's cycle time
  // similar during outages (deadline + think) and normal operation
  // (latency + think); otherwise outages are under-sampled and measured
  // unavailability is biased low vs the open-workload model.
  p.think_time = sim::seconds(4);
  p.failures = sim::FailureInjector::Params::for_unavailability(
      p_node, sim::seconds(200));
  // Let the failure process reach steady state before measuring (fresh
  // deployments start with every node up -- ramp-up bias).
  Deployment dep(p);
  dep.world().run_for(sim::seconds(2000));
  dep.start_clients();
  while (!dep.clients_done() &&
         dep.world().now() < sim::seconds(1000000)) {
    dep.world().run_for(sim::seconds(5));
  }
  const auto r = dep.collect();
  return 1.0 - r.availability();
}

TEST(MonteCarloAvailability, MajorityMatchesModelWithinFactorThree) {
  const double p_node = 0.15;
  analysis::AvailabilityModel m;
  m.n = 5;
  m.iqs = 5;
  m.p = p_node;
  double measured = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    measured += measured_unavailability("majority", 0.5, p_node,
                                        seed);
  }
  measured /= 3;
  const double model = 1.0 - m.majority(0.5);
  EXPECT_GT(measured, model / 3.0);
  EXPECT_LT(measured, model * 3.0)
      << "measured " << measured << " vs model " << model;
}

TEST(MonteCarloAvailability, DqvlTracksMajorityInSimulationToo) {
  const double p_node = 0.15;
  double dq = 0, mj = 0;
  for (std::uint64_t seed : {4ull, 5ull, 6ull}) {
    dq += measured_unavailability("dqvl", 0.5, p_node, seed);
    mj += measured_unavailability("majority", 0.5, p_node, seed);
  }
  // Within a factor of ~4 of each other (DQVL adds the OQS invalidation
  // dependency on writes but hides some read failures behind leases).
  EXPECT_LT(dq / 3, (mj / 3) * 4 + 0.02);
}

TEST(MonteCarloAvailability, PrimaryBackupIsWorseThanMajorityHere) {
  const double p_node = 0.15;
  double pb = 0, mj = 0;
  for (std::uint64_t seed : {7ull, 8ull}) {
    pb += measured_unavailability("pb", 0.5, p_node,
                                  seed);
    mj += measured_unavailability("majority", 0.5, p_node, seed);
  }
  // Model: p/b unavailability ~0.15 vs majority ~0.027.
  EXPECT_GT(pb, mj);
  EXPECT_GT(pb / 2, 0.04);
}

TEST(MonteCarloAvailability, RowaWritesCollapseUnderFailures) {
  const double p_node = 0.15;
  const double rowa_w =
      measured_unavailability("rowa", 1.0, p_node, 9);
  // Model: 1 - (1-p)^5 ~= 0.56.  Allow a broad band (retransmission within
  // the deadline rides out the shortest failures).
  EXPECT_GT(rowa_w, 0.25);
}

}  // namespace
}  // namespace dq::workload
