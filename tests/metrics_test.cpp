// The obs metrics layer: registry semantics, histogram bucket math,
// snapshot merging, report rendering, QuorumSpec parsing, and the key
// property the whole design hangs on -- recording metrics perturbs nothing.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.h"
#include "workload/experiment.h"
#include "workload/quorum_spec.h"
#include "workload/report.h"

namespace dq::workload {
namespace {

// --------------------------------------------------------------------------
// Registry semantics
// --------------------------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableInstruments) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("a");
  c1.inc(3);
  // Registering more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  obs::Counter& c2 = reg.counter("a");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);
}

TEST(MetricsRegistry, GaugeTracksValueAndHighWaterMark) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("depth");
  g.add(+5);
  g.add(+2);
  g.add(-6);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max(), 7);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  EXPECT_EQ(g.max(), 7);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x");
  obs::Gauge& g = reg.gauge("y");
  obs::Histogram& h = reg.histogram("z");
  c.inc(7);
  g.add(4);
  h.observe(1.5);
  reg.reset();
  EXPECT_EQ(&c, &reg.counter("x"));  // same address after reset
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
  EXPECT_EQ(h.data().count, 0u);
}

// --------------------------------------------------------------------------
// Histogram bucket edges
// --------------------------------------------------------------------------

TEST(Histogram, BucketEdgesAreLogScale) {
  // upper(i) = 0.001 * 2^i ms.
  EXPECT_DOUBLE_EQ(obs::HistogramData::bucket_upper_ms(0), 0.001);
  EXPECT_DOUBLE_EQ(obs::HistogramData::bucket_upper_ms(1), 0.002);
  EXPECT_DOUBLE_EQ(obs::HistogramData::bucket_upper_ms(10), 1.024);
}

TEST(Histogram, BucketIndexRespectsEdges) {
  using HD = obs::HistogramData;
  // Bucket 0 holds everything at or below its upper edge, including 0.
  EXPECT_EQ(HD::bucket_index(0.0), 0u);
  EXPECT_EQ(HD::bucket_index(0.001), 0u);
  // Strictly above an edge falls into the next bucket.
  EXPECT_EQ(HD::bucket_index(0.0011), 1u);
  EXPECT_EQ(HD::bucket_index(0.002), 1u);
  // Values beyond the last edge land in the final (unbounded) bucket.
  EXPECT_EQ(HD::bucket_index(1e18), HD::kBuckets - 1);
  // Every bucket's own upper edge maps back to that bucket.
  for (std::size_t i = 0; i + 1 < HD::kBuckets; ++i) {
    EXPECT_EQ(HD::bucket_index(HD::bucket_upper_ms(i)), i) << i;
  }
}

TEST(Histogram, ObserveTracksCountSumExtrema) {
  obs::Histogram h;
  h.observe(1.0);
  h.observe(4.0);
  h.observe(0.0);
  const auto& d = h.data();
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.sum, 5.0);
  EXPECT_DOUBLE_EQ(d.min, 0.0);
  EXPECT_DOUBLE_EQ(d.max, 4.0);
  EXPECT_NEAR(d.mean(), 5.0 / 3.0, 1e-12);
}

TEST(Histogram, QuantilesAreExactAtExtremesAndBucketAccurateBetween) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(1.0);   // bucket of 1 ms
  for (int i = 0; i < 100; ++i) h.observe(64.0);  // much larger bucket
  const auto& d = h.data();
  EXPECT_DOUBLE_EQ(d.quantile(0.0), d.min);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), d.max);
  // p25 lives in the 1 ms bucket; bucket interpolation is within a factor
  // of two of the true value.
  EXPECT_LE(d.quantile(0.25), 2.0);
  // p75 lives in the 64 ms bucket.
  EXPECT_GE(d.quantile(0.75), 32.0);
  EXPECT_LE(d.quantile(0.75), 64.0 + 1e-9);
}

// --------------------------------------------------------------------------
// Snapshot merge
// --------------------------------------------------------------------------

TEST(MetricsSnapshot, MergeAddsCountersAndHistogramsMaxesGauges) {
  obs::MetricsRegistry a, b;
  a.counter("c").inc(2);
  b.counter("c").inc(5);
  b.counter("only_b").inc(1);
  a.gauge("g").add(3);
  b.gauge("g").add(9);
  a.histogram("h").observe(1.0);
  b.histogram("h").observe(3.0);

  obs::MetricsSnapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.counter("c"), 7u);
  EXPECT_EQ(s.counter("only_b"), 1u);
  EXPECT_EQ(s.counter("missing"), 0u);
  EXPECT_EQ(s.gauges.at("g").value, 9);
  EXPECT_EQ(s.gauges.at("g").max, 9);
  const obs::HistogramData* h = s.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 4.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 3.0);
}

TEST(MetricsSnapshot, CountersWithPrefixStripsThePrefix) {
  obs::MetricsRegistry reg;
  reg.counter(obs::node_metric("iqs.load", 0)).inc(4);
  reg.counter(obs::node_metric("iqs.load", 3)).inc(9);
  reg.counter("iqs.writes").inc(1);
  const auto loads = reg.snapshot().counters_with_prefix("iqs.load.");
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads.at("n0"), 4u);
  EXPECT_EQ(loads.at("n3"), 9u);
}

// --------------------------------------------------------------------------
// QuorumSpec
// --------------------------------------------------------------------------

TEST(QuorumSpec, ParseRoundTripsDescribe) {
  for (const char* s : {"majority:5", "grid:3x3", "read-one:9"}) {
    const auto spec = QuorumSpec::parse(s);
    ASSERT_TRUE(spec.has_value()) << s;
    EXPECT_EQ(spec->describe(), s);
  }
  // Bare number = majority.
  const auto bare = QuorumSpec::parse("7");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->describe(), "majority:7");
  for (const char* bad : {"", "grid:9", "grid:3x", "majority:", "majority:0",
                          "ring:5", "3x3"}) {
    EXPECT_FALSE(QuorumSpec::parse(bad).has_value()) << bad;
  }
}

TEST(QuorumSpec, BuildProducesIntersectingSystems) {
  std::vector<NodeId> nine;
  for (std::uint32_t i = 0; i < 9; ++i) nine.emplace_back(i);
  for (const QuorumSpec& spec :
       {QuorumSpec::majority(9), QuorumSpec::grid(3, 3),
        QuorumSpec::read_one(9)}) {
    ASSERT_EQ(spec.size(), 9u);
    const auto sys = spec.build(nine);
    ASSERT_NE(sys, nullptr);
    const auto report = quorum::check_intersection(*sys);
    EXPECT_TRUE(report.read_write_ok) << spec.describe();
    EXPECT_TRUE(report.write_write_ok) << spec.describe();
  }
}

TEST(QuorumSpec, ParamsCarryTheSpecDirectly) {
  ExperimentParams p;
  EXPECT_EQ(p.iqs.describe(), "majority:5");  // the default spec
  p.iqs = QuorumSpec::majority(7);
  EXPECT_EQ(p.iqs.describe(), "majority:7");
  p.iqs = QuorumSpec::grid(3, 3);
  EXPECT_EQ(p.iqs.describe(), "grid:3x3");
}

// --------------------------------------------------------------------------
// End-to-end: experiments populate the snapshot; recording changes nothing
// --------------------------------------------------------------------------

ExperimentParams small_dqvl(std::uint64_t seed) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 0.3;
  p.requests_per_client = 60;
  p.loss = 0.02;
  p.lease_length = sim::milliseconds(900);
  p.seed = seed;
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(3)); };
  return p;
}

TEST(MetricsEndToEnd, DqvlRunPopulatesCoreInstruments) {
  const auto r = run_experiment(small_dqvl(5));
  const obs::MetricsSnapshot& m = r.metrics;
  EXPECT_GT(m.counter("net.sent"), 0u);
  EXPECT_GT(m.counter("net.delivered"), 0u);
  EXPECT_GT(m.counter("qrpc.calls"), 0u);
  EXPECT_GT(m.counter("iqs.writes"), 0u);
  EXPECT_GT(m.counter("oqs.read.hits") + m.counter("oqs.read.misses"), 0u);
  EXPECT_FALSE(m.counters_with_prefix("iqs.load.").empty());
  // Every completed write is classified into exactly one phase.
  const auto* sup = m.histogram("dqvl.write.suppress_ms");
  const auto* inv = m.histogram("dqvl.write.invalidate_ms");
  const auto* lw = m.histogram("dqvl.write.lease_wait_ms");
  ASSERT_NE(sup, nullptr);
  ASSERT_NE(inv, nullptr);
  ASSERT_NE(lw, nullptr);
  EXPECT_GT(sup->count + inv->count + lw->count, 0u);
  // QRPC in-flight gauge must drain back to zero by the end of the run.
  EXPECT_EQ(m.gauges.at("qrpc.inflight").value, 0);
  EXPECT_GT(m.gauges.at("qrpc.inflight").max, 0);
}

TEST(MetricsEndToEnd, BaselineRunsPopulateProtocolCounters) {
  ExperimentParams p;
  p.requests_per_client = 40;
  p.write_ratio = 0.2;
  p.seed = 11;
  p.protocol = "majority";
  EXPECT_GT(run_experiment(p).metrics.counter("proto.majority.writes"), 0u);
  p.protocol = "pb";
  EXPECT_GT(run_experiment(p).metrics.counter("proto.pb.reads"), 0u);
  p.protocol = "rowa";
  EXPECT_GT(run_experiment(p).metrics.counter("proto.rowa.reads"), 0u);
  p.protocol = "rowa-async";
  EXPECT_GT(run_experiment(p).metrics.counter("proto.rowa_async.writes"), 0u);
}

// The determinism assertion the whole layer is designed around: a run that
// snapshots / inspects metrics produces bit-for-bit the same schedule,
// timestamps, and message counts as one that never touches them.
TEST(MetricsEndToEnd, MetricsDoNotPerturbTheSimulation) {
  // Run A: plain run, ignore metrics entirely.
  const auto a = run_experiment(small_dqvl(77));

  // Run B: same seed, but aggressively exercise the metrics surface
  // mid-run (snapshots allocate, quantiles do float math -- none of it may
  // touch the event schedule).
  Deployment dep(small_dqvl(77));
  dep.start_clients();
  obs::MetricsSnapshot probe;
  while (!dep.clients_done()) {
    dep.world().run_for(sim::seconds(1));  // same stepping as run()
    probe = dep.world().metrics().snapshot();
    for (const auto& [name, h] : probe.histograms) {
      (void)h.quantile(0.5);
    }
  }
  const auto b = dep.collect();

  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.message_table, b.message_table);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history.ops()[i].invoked, b.history.ops()[i].invoked);
    EXPECT_EQ(a.history.ops()[i].completed, b.history.ops()[i].completed);
  }
  // And the metric streams themselves are reproducible.
  EXPECT_EQ(a.metrics.counters, b.metrics.counters);
}

// --------------------------------------------------------------------------
// Report rendering
// --------------------------------------------------------------------------

TEST(Report, JsonContainsTheSchemaSections) {
  const auto p = small_dqvl(3);
  const auto r = run_experiment(p);
  const std::string json = report::to_json(p, r);
  for (const char* needle :
       {"\"schema\":\"dq.report.v1\"", "\"protocol\":\"DQVL\"",
        "\"iqs\":\"majority:5\"", "\"latency_ms\"", "\"write_phases\"",
        "\"suppress\"", "\"invalidate\"", "\"lease_wait\"", "\"iqs_load\"",
        "\"metrics\"", "\"sim_duration_ms\"", "\"violations\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, SummaryPercentilesAreMemoizedCorrectly) {
  Summary s;
  for (int i = 100; i >= 1; --i) s.add(i);  // reverse order
  EXPECT_DOUBLE_EQ(s.p50(), 50.5);
  // Adding after a query must invalidate the memoized sort.
  s.add(1000.0);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(s.p99(), s.percentile(99));
}

}  // namespace
}  // namespace dq::workload
