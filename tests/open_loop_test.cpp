// Open-loop workload engine (workload/open_loop.h): statistical checks on
// the samplers (alias-table Zipf vs the closed-form pmf, thinning vs the
// integrated sinusoid rate), the flash-crowd hot-set remap, drain-time
// failure accounting, and byte-identical determinism across --jobs and
// --world-threads pinned to a checked-in golden report.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "run/parallel_runner.h"
#include "workload/experiment.h"
#include "workload/open_loop.h"
#include "workload/report.h"

namespace dq::workload {
namespace {

// ---------------------------------------------------------------------------
// Zipf alias table

TEST(ZipfAliasTable, PmfMatchesClosedForm) {
  const ZipfAliasTable z(1.2, 16);
  double total = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // pmf ratio between ranks i and j is ((j+1)/(i+1))^s by definition.
  EXPECT_NEAR(z.pmf(0) / z.pmf(1), std::pow(2.0, 1.2), 1e-9);
  EXPECT_NEAR(z.pmf(3) / z.pmf(7), std::pow(2.0, 1.2), 1e-9);
}

TEST(ZipfAliasTable, ChiSquareAgainstPmf) {
  // 200k one-u64-draw samples from Zipf(1.0, 64) against the closed-form
  // pmf.  df = 63; the 99.9th percentile of chi2(63) is ~103.4, so a bound
  // of 110 fails with probability well under 1e-3 if the sampler is right
  // (and the seed is fixed, so the test is deterministic anyway).
  constexpr std::size_t kN = 64;
  constexpr std::size_t kDraws = 200000;
  const ZipfAliasTable z(1.0, kN);
  Rng rng(12345);
  std::vector<std::uint64_t> counts(kN, 0);
  for (std::size_t d = 0; d < kDraws; ++d) {
    const std::uint64_t i = z.sample(rng);
    ASSERT_LT(i, kN);
    ++counts[i];
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double expected = z.pmf(i) * kDraws;
    ASSERT_GT(expected, 5.0) << "bucket too small for chi-square at " << i;
    const double diff = counts[i] - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 110.0) << "chi2=" << chi2;
  // Rank 0 must dominate: Zipf(1.0, 64) puts ~21% of mass on the head.
  EXPECT_GT(counts[0], counts[kN - 1] * 10);
}

TEST(ZipfAliasTable, SampleManyMatchesSequentialSamples) {
  // The batched (prefetching) path must consume the rng stream and produce
  // results exactly as the per-draw path does: the emission fast path relies
  // on this to keep reports byte-identical.
  const ZipfAliasTable table(0.99, 4096);
  Rng a(42);
  Rng b(42);
  std::vector<std::uint64_t> batched;
  table.sample_many(a, 1000, batched);
  ASSERT_EQ(batched.size(), 1000u);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], table.sample(b)) << "draw " << i;
  }
  EXPECT_EQ(a(), b()) << "rng streams diverged after the batch";
}

TEST(ZipfAliasTable, DegenerateSizes) {
  const ZipfAliasTable one(0.99, 1);
  Rng rng(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(one.sample(rng), 0u);
  EXPECT_NEAR(one.pmf(0), 1.0, 1e-12);
  // s = 0 degenerates to uniform.
  const ZipfAliasTable flat(0.0, 8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(flat.pmf(i), 0.125, 1e-12);
}

// ---------------------------------------------------------------------------
// Hot set

TEST(HotSet, EvictsLeastRecentlyTouched) {
  HotSet hot(2);
  EXPECT_TRUE(hot.empty());
  hot.touch(10);
  hot.touch(20);
  hot.touch(30);  // evicts 10
  hot.touch(20);  // refresh, no growth
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    const auto obj = hot.pick(rng);
    EXPECT_TRUE(obj == 20 || obj == 30) << obj;
  }
}

// ---------------------------------------------------------------------------
// Nonhomogeneous Poisson thinning

TEST(RateModel, SinusoidEmpiricalRate) {
  // base 2000 Hz, 60% diurnal swing, 4 s period, drawn over two full
  // periods.  Per-1s-bucket counts must track the integrated rate within
  // 10% and the total within 3% (counts are ~2000/bucket, sd ~45, so these
  // bounds have huge margin at a fixed seed).
  const double base = 2000.0, amp = 0.6;
  const sim::Duration period = sim::seconds(4);
  const RateModel model(base, amp, period, std::nullopt);
  Rng rng(99);
  std::vector<sim::Time> arrivals;
  model.draw_arrivals(rng, 0, sim::seconds(8), arrivals);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    ASSERT_LE(arrivals[i - 1], arrivals[i]) << "arrivals not sorted";
  }
  const double period_s = sim::to_ms(period) / 1e3;
  auto integral = [&](double a, double b) {
    constexpr double kTwoPi = 6.283185307179586;
    return base * ((b - a) -
                   amp * period_s / kTwoPi *
                       (std::cos(kTwoPi * b / period_s) -
                        std::cos(kTwoPi * a / period_s)));
  };
  std::vector<std::size_t> bucket(8, 0);
  for (const sim::Time t : arrivals) {
    const auto b = static_cast<std::size_t>(t / sim::seconds(1));
    ASSERT_LT(b, bucket.size());
    ++bucket[b];
  }
  double total_expected = 0.0;
  for (std::size_t b = 0; b < bucket.size(); ++b) {
    const double expected =
        integral(static_cast<double>(b), static_cast<double>(b) + 1.0);
    total_expected += expected;
    EXPECT_NEAR(static_cast<double>(bucket[b]), expected, 0.10 * expected)
        << "bucket " << b;
  }
  EXPECT_NEAR(static_cast<double>(arrivals.size()), total_expected,
              0.03 * total_expected);
}

TEST(RateModel, FlashCrowdMultipliesRate) {
  FlashCrowd flash;
  flash.start = sim::seconds(2);
  flash.duration = sim::seconds(1);
  flash.multiplier = 4.0;
  const RateModel model(1000.0, 0.0, sim::seconds(60), flash);
  EXPECT_DOUBLE_EQ(model.rate_at(sim::seconds(1)), 1000.0);
  EXPECT_DOUBLE_EQ(model.rate_at(sim::seconds(2)), 4000.0);
  EXPECT_DOUBLE_EQ(model.rate_at(sim::seconds(3)), 1000.0);
  EXPECT_DOUBLE_EQ(model.max_rate(0, sim::seconds(1)), 1000.0);
  EXPECT_DOUBLE_EQ(model.max_rate(0, sim::seconds(8)), 4000.0);
  Rng rng(5);
  std::vector<sim::Time> before, during;
  model.draw_arrivals(rng, sim::seconds(1), sim::seconds(2), before);
  model.draw_arrivals(rng, sim::seconds(2), sim::seconds(3), during);
  EXPECT_NEAR(static_cast<double>(before.size()), 1000.0, 100.0);
  EXPECT_NEAR(static_cast<double>(during.size()), 4000.0, 300.0);
}

// ---------------------------------------------------------------------------
// End-to-end open-loop trials

ExperimentParams open_loop_params() {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.topo.num_servers = 6;
  p.topo.num_clients = 3;  // three edge sites
  p.topo.jitter = 0.1;
  p.iqs = QuorumSpec::majority(5);
  p.write_ratio = 0.2;
  p.locality = 0.9;
  p.loss = 0.01;
  p.seed = 7;
  OpenLoopParams ol;
  ol.clients_per_site = 1000;
  ol.client_rate_hz = 0.1;  // 100 Hz per site
  ol.zipf_s = 0.9;
  ol.objects = 256;
  // Default 60 s diurnal period: the amplitude still disables the
  // constant-rate fast path, and these params stay expressible as dqsim
  // flags (the golden below regenerates via dqsim --metrics-json).
  ol.diurnal_amplitude = 0.4;
  FlashCrowd flash;
  flash.start = sim::milliseconds(500);
  flash.duration = sim::milliseconds(500);
  flash.multiplier = 4.0;
  ol.flash = flash;
  ol.horizon = sim::seconds(2);
  p.open_loop = ol;
  return p;
}

std::string report_at(ExperimentParams p, std::size_t world_threads) {
  p.world_threads = world_threads;
  const auto result = run_experiment(p);
  return report::to_json(p, result);
}

TEST(OpenLoop, ByteIdenticalAcrossWorldThreadsAndJobs) {
  const ExperimentParams base = open_loop_params();
  const std::string reference = report_at(base, 1);
  for (const std::size_t threads : {2u, 4u}) {
    EXPECT_EQ(report_at(base, threads), reference)
        << "--world-threads=" << threads << " changed the report";
  }
  // Inter-trial parallelism: the same two trials through the parallel
  // runner at --jobs 1 and 4 must agree byte for byte.
  ExperimentParams second = base;
  second.seed = 11;
  const std::vector<ExperimentParams> trials{base, second};
  const auto at1 = run::run_experiments(trials, 1);
  const auto at4 = run::run_experiments(trials, 4);
  ASSERT_EQ(at1.size(), 2u);
  ASSERT_EQ(at4.size(), 2u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(report::to_json(trials[i], at1[i]),
              report::to_json(trials[i], at4[i]))
        << "trial " << i << " differs at --jobs=4";
  }
}

TEST(OpenLoop, GoldenReport) {
  // Pins the full dq.report.v1 bytes of the canonical open-loop trial
  // (diurnal + flash crowd + loss, 3 sites x 1000 logical clients).  An
  // intentional change to arrival sampling, emission order, or report
  // rendering must regenerate tests/golden/report_openloop_seed7.json.
  const std::string doc = report_at(open_loop_params(), 4);
  std::ifstream in(std::string(DQ_GOLDEN_DIR) +
                   "/report_openloop_seed7.json");
  ASSERT_TRUE(in.good()) << "golden file missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(doc + "\n", buf.str());
}

TEST(OpenLoop, OfferedEqualsCompletedPlusFailed) {
  ExperimentParams p = open_loop_params();
  p.loss = 0.3;  // heavy loss: drain must mark the survivors failed
  auto ol = *p.open_loop;
  ol.horizon = sim::seconds(1);
  ol.drain = sim::seconds(5);
  p.open_loop = ol;
  const auto result = run_experiment(p);
  const auto offered = result.metrics.counter("open_loop.offered");
  const auto completed = result.metrics.counter("open_loop.completed");
  const auto failed = result.metrics.counter("open_loop.failed");
  EXPECT_GT(offered, 0u);
  EXPECT_GT(failed, 0u) << "30% loss with no retransmit must fail requests";
  EXPECT_EQ(offered, completed + failed);
  EXPECT_EQ(result.history.size(), offered);
}

TEST(OpenLoop, LosslessRunCompletesEverything) {
  ExperimentParams p = open_loop_params();
  p.loss = 0.0;
  p.topo.jitter = 0.0;
  const auto result = run_experiment(p);
  const auto offered = result.metrics.counter("open_loop.offered");
  EXPECT_GT(offered, 0u);
  EXPECT_EQ(result.metrics.counter("open_loop.completed"), offered);
  EXPECT_EQ(result.metrics.counter("open_loop.failed"), 0u);
  EXPECT_TRUE(result.history.check_regular().empty());
}

TEST(OpenLoop, PerSiteCountersCoverAllSites) {
  const auto result = run_experiment(open_loop_params());
  const auto per_site = result.metrics.counters_with_prefix("site.offered.");
  ASSERT_EQ(per_site.size(), 3u);
  std::uint64_t sum = 0;
  for (const auto& [site, count] : per_site) {
    EXPECT_GT(count, 0u) << "site " << site << " emitted nothing";
    sum += count;
  }
  EXPECT_EQ(sum, result.metrics.counter("open_loop.offered"));
}

}  // namespace
}  // namespace dq::workload
