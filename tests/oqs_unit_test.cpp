// Handler-level unit tests for the OQS server: condition C, the renewal
// QRPC variation (which request type goes to which IQS node), invalidation
// handling, epoch transitions, and delayed-invalidation application --
// Figure 5's pseudo-code pinned message by message.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/oqs_server.h"
#include "workload/node.h"

namespace dq::core {
namespace {

class OqsHarness : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kIqsA = 0;
  static constexpr std::uint32_t kIqsB = 1;
  static constexpr std::uint32_t kOqs = 2;
  static constexpr std::uint32_t kClient = 3;

  OqsHarness() {
    sim::Topology::Params tp;
    tp.num_servers = 4;
    tp.num_clients = 0;
    tp.processing_delay = 0;
    world = std::make_unique<sim::World>(sim::Topology(tp), 11);

    // IQS = {A, B} with read and write quorums of 2 (both nodes), so C
    // requires valid leases from BOTH -- deterministic renewal targets.
    auto cfg = std::make_shared<DqConfig>();
    cfg->iqs = std::make_shared<quorum::ThresholdQuorum>(
        std::vector<NodeId>{NodeId(kIqsA), NodeId(kIqsB)}, 2, 2);
    cfg->oqs = quorum::ThresholdQuorum::read_one(
        std::vector<NodeId>{NodeId(kOqs)});
    cfg->lease_length = sim::seconds(5);
    config = cfg;

    oqs = std::make_unique<OqsServer>(*world, NodeId(kOqs), config);
    oqs_node.add_handler(
        [this](const sim::Envelope& e) { return oqs->on_message(e); });
    world->attach(NodeId(kOqs), oqs_node);
    world->attach(NodeId(kIqsA), iqs_a);
    world->attach(NodeId(kIqsB), iqs_b);
    world->attach(NodeId(kClient), client);
  }

  struct Capture final : sim::Actor {
    void on_message(const sim::Envelope& env) override {
      received.push_back(env);
    }
    std::vector<sim::Envelope> received;
    template <typename T>
    std::vector<T> of() const {
      std::vector<T> out;
      for (const auto& e : received) {
        if (const T* m = std::get_if<T>(&e.body)) out.push_back(*m);
      }
      return out;
    }
    template <typename T>
    std::vector<sim::Envelope> envelopes_of() const {
      std::vector<sim::Envelope> out;
      for (const auto& e : received) {
        if (std::holds_alternative<T>(e.body)) out.push_back(e);
      }
      return out;
    }
  };

  // Grant the OQS node leases from an IQS node by replying to its renewals.
  void grant_all_from(Capture& iqs_capture, std::uint32_t iqs_id,
                      const Value& value, LogicalClock lc,
                      msg::Epoch epoch = 0) {
    for (const auto& env : iqs_capture.received) {
      if (const auto* m = std::get_if<msg::DqVolObjRenew>(&env.body)) {
        msg::DqVolObjRenewReply r;
        r.vol = {m->volume, {}, config->lease_length, epoch,
                 m->requestor_time};
        r.obj = {m->object, value, lc, epoch, sim::kTimeInfinity,
                 m->requestor_time};
        world->reply(NodeId(iqs_id), env, r);
      } else if (const auto* m2 = std::get_if<msg::DqVolRenew>(&env.body)) {
        world->reply(NodeId(iqs_id), env,
                     msg::DqVolRenewReply{m2->volume, {},
                                          config->lease_length, epoch,
                                          m2->requestor_time});
      } else if (const auto* m3 = std::get_if<msg::DqObjRenew>(&env.body)) {
        world->reply(NodeId(iqs_id), env,
                     msg::DqObjRenewReply{m3->object, value, lc, epoch,
                                          sim::kTimeInfinity,
                                          m3->requestor_time});
      }
    }
    iqs_capture.received.clear();
    world->run_for(sim::milliseconds(200));
  }

  void send_read(std::uint64_t rpc = 77) {
    world->send(NodeId(kClient), NodeId(kOqs), RequestId(rpc),
                msg::DqRead{ObjectId(1)});
    world->run_for(sim::milliseconds(200));
  }

  std::unique_ptr<sim::World> world;
  std::shared_ptr<const DqConfig> config;
  std::unique_ptr<OqsServer> oqs;
  workload::EdgeNode oqs_node;
  Capture iqs_a, iqs_b, client;
};

TEST_F(OqsHarness, ColdReadSendsCombinedRenewalsToTheFullReadQuorum) {
  send_read();
  // Nothing valid: case (a) of the QRPC variation -- combined renewals.
  EXPECT_EQ(iqs_a.of<msg::DqVolObjRenew>().size(), 1u);
  EXPECT_EQ(iqs_b.of<msg::DqVolObjRenew>().size(), 1u);
  EXPECT_TRUE(client.of<msg::DqReadReply>().empty()) << "C not yet true";
}

TEST_F(OqsHarness, ReplyArrivesOnlyAfterBothGrants) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  EXPECT_TRUE(client.of<msg::DqReadReply>().empty())
      << "one grant is not a read quorum";
  EXPECT_FALSE(oqs->condition_c(ObjectId(1)));
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  auto replies = client.of<msg::DqReadReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].value, "v");
  EXPECT_EQ(replies[0].clock, (LogicalClock{3, 1}));
  EXPECT_TRUE(oqs->condition_c(ObjectId(1)));
}

TEST_F(OqsHarness, WarmReadIsAnsweredLocally) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  const auto msgs_before =
      iqs_a.received.size() + iqs_b.received.size();
  send_read(/*rpc=*/78);
  EXPECT_EQ(client.of<msg::DqReadReply>().size(), 2u);
  EXPECT_EQ(iqs_a.received.size() + iqs_b.received.size(), msgs_before)
      << "a hit must not contact the IQS";
}

TEST_F(OqsHarness, ReplyCarriesHighestValidClock) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "older", {3, 1});
  grant_all_from(iqs_b, kIqsB, "newer", {4, 1});
  auto replies = client.of<msg::DqReadReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].value, "newer");
  EXPECT_EQ(replies[0].clock, (LogicalClock{4, 1}));
}

TEST_F(OqsHarness, InvalidationFlipsValidityAndIsAcked) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  ASSERT_TRUE(oqs->condition_c(ObjectId(1)));

  world->send(NodeId(kIqsA), NodeId(kOqs), RequestId(500),
              msg::DqInval{ObjectId(1), {5, 1}});
  world->run_for(sim::milliseconds(200));
  auto acks = iqs_a.of<msg::DqInvalAck>();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].clock, (LogicalClock{5, 1}));
  EXPECT_FALSE(oqs->object_lease_valid(ObjectId(1), NodeId(kIqsA)));
  EXPECT_FALSE(oqs->condition_c(ObjectId(1)));
  // The volume lease itself is unaffected.
  EXPECT_TRUE(oqs->volume_lease_valid(VolumeId(0), NodeId(kIqsA)));
}

TEST_F(OqsHarness, StaleInvalidationIsIgnoredButStillAcked) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  world->send(NodeId(kIqsA), NodeId(kOqs), RequestId(501),
              msg::DqInval{ObjectId(1), {2, 1}});  // older than the grant
  world->run_for(sim::milliseconds(200));
  EXPECT_EQ(iqs_a.of<msg::DqInvalAck>().size(), 1u);
  EXPECT_TRUE(oqs->object_lease_valid(ObjectId(1), NodeId(kIqsA)))
      << "an older invalidation must not clobber a newer grant";
}

TEST_F(OqsHarness, DelayedInvalidationsApplyBeforeTheLeaseIsUsedAndAreAcked) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});

  // A renewal reply whose delayed list invalidates the object: validity
  // from A must flip even though the volume lease was just extended.
  msg::DqVolRenewReply r;
  r.volume = VolumeId(0);
  r.delayed = {{ObjectId(1), {6, 1}}};
  r.lease_length = config->lease_length;
  r.epoch = 0;
  r.requestor_time = world->local_now(NodeId(kOqs));
  world->send_tagged(NodeId(kIqsA), NodeId(kOqs), RequestId(0), r, true);
  world->run_for(sim::milliseconds(200));
  EXPECT_FALSE(oqs->object_lease_valid(ObjectId(1), NodeId(kIqsA)));
  EXPECT_TRUE(oqs->volume_lease_valid(VolumeId(0), NodeId(kIqsA)));
  auto acks = iqs_a.of<msg::DqVolRenewAck>();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].applied_up_to, (LogicalClock{6, 1}));
}

TEST_F(OqsHarness, EpochAdvanceInvalidatesAllObjectLeasesFromThatNode) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  ASSERT_TRUE(oqs->condition_c(ObjectId(1)));

  // A volume renewal with a bumped epoch: the object lease granted under
  // epoch 0 dies.
  msg::DqVolRenewReply r;
  r.volume = VolumeId(0);
  r.lease_length = config->lease_length;
  r.epoch = 1;
  r.requestor_time = world->local_now(NodeId(kOqs));
  world->send_tagged(NodeId(kIqsA), NodeId(kOqs), RequestId(0), r, true);
  world->run_for(sim::milliseconds(200));
  EXPECT_FALSE(oqs->object_lease_valid(ObjectId(1), NodeId(kIqsA)));
  EXPECT_FALSE(oqs->condition_c(ObjectId(1)));
}

TEST_F(OqsHarness, LeaseExpiryEndsConditionC) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  ASSERT_TRUE(oqs->condition_c(ObjectId(1)));
  world->run_for(sim::seconds(6));  // past the 5 s lease
  EXPECT_FALSE(oqs->condition_c(ObjectId(1)));
  EXPECT_FALSE(oqs->volume_lease_valid(VolumeId(0), NodeId(kIqsA)));
}

TEST_F(OqsHarness, ExpiredVolumeWithValidObjectSendsVolumeRenewalOnly) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  world->run_for(sim::seconds(6));  // volume expired; object lease infinite
  iqs_a.received.clear();
  iqs_b.received.clear();
  send_read(/*rpc=*/79);
  // Case (b) of the QRPC variation: volume renewal only.
  EXPECT_EQ(iqs_a.of<msg::DqVolRenew>().size(), 1u);
  EXPECT_TRUE(iqs_a.of<msg::DqVolObjRenew>().empty());
  EXPECT_TRUE(iqs_a.of<msg::DqObjRenew>().empty());
}

TEST_F(OqsHarness, InvalidObjectWithValidVolumeSendsObjectRenewalOnly) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  world->send(NodeId(kIqsA), NodeId(kOqs), RequestId(502),
              msg::DqInval{ObjectId(1), {9, 1}});
  world->run_for(sim::milliseconds(100));
  iqs_a.received.clear();
  iqs_b.received.clear();
  send_read(/*rpc=*/80);
  // Case (c): object renewal to A (volume still valid); B is fully valid...
  // but B's grant has clock 3 < 9, so the reply must wait for A's renewal
  // carrying the newer value -- exactly the concurrent-write dance from the
  // correctness argument (section 3.3).
  EXPECT_EQ(iqs_a.of<msg::DqObjRenew>().size(), 1u);
  EXPECT_TRUE(iqs_a.of<msg::DqVolRenew>().empty());
}

TEST_F(OqsHarness, CrashClearsAllSoftState) {
  send_read();
  grant_all_from(iqs_a, kIqsA, "v", {3, 1});
  grant_all_from(iqs_b, kIqsB, "v", {3, 1});
  ASSERT_TRUE(oqs->condition_c(ObjectId(1)));
  oqs->on_crash();
  EXPECT_FALSE(oqs->condition_c(ObjectId(1)));
  EXPECT_TRUE(oqs->cached(ObjectId(1)).value.empty());
  EXPECT_EQ(oqs->pending_reads(), 0u);
}

}  // namespace
}  // namespace dq::core
