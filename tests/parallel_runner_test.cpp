// The parallel trial runner's contract: parallelism is unobservable.  A
// dq.report.v1 document rendered from a trial run at --jobs 8 must be
// byte-identical to the one from --jobs 1 -- and both must be byte-identical
// to the reports the SERIAL simulator produced before the event-core rewrite
// (the checked-in tests/golden/ files), so the fast path provably changed
// nothing observable.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "run/parallel_runner.h"
#include "workload/report.h"

namespace dq::run {
namespace {

using workload::ExperimentParams;

// The golden matrix: two protocols x two seeds, with enough loss and jitter
// that the run exercises retries, reordering, and drops.  These parameters
// must not change -- tests/golden/*.json were generated from them.
ExperimentParams golden_params(std::string proto, std::uint64_t seed) {
  ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = 0.2;
  p.locality = 0.9;
  p.requests_per_client = 120;
  p.loss = 0.02;
  p.topo.jitter = 0.1;
  p.seed = seed;
  return p;
}

// Crash-heavy golden cells: WAL (group commit, torn-tail faults on) plus an
// exponential crash/restart process over every server.  Crash scheduling,
// WAL replay, and torn-tail sampling all draw from the seeded rng, so these
// reports too must be byte-identical at any --jobs value and against their
// checked-in goldens.  These parameters must not change either --
// tests/golden/report_*_crash_seed*.json were generated from them.
ExperimentParams crash_golden_params(std::string proto, std::uint64_t seed) {
  ExperimentParams p;
  p.protocol = proto;
  p.write_ratio = 0.3;
  p.locality = 0.85;
  p.requests_per_client = 100;
  p.lease_length = sim::seconds(1);
  p.loss = 0.02;
  p.topo.jitter = 0.1;
  p.op_deadline = sim::seconds(25);
  store::WalParams w;
  w.policy = store::SyncPolicy::kGroupCommit;
  w.torn_tail_faults = true;
  p.wal = w;
  sim::CrashInjector::Params c;
  c.mean_time_to_crash = sim::seconds(10);
  c.mean_downtime = sim::seconds(1);
  p.crashes = c;
  p.seed = seed;
  return p;
}

struct Cell {
  std::string proto;
  const char* name;
  std::uint64_t seed;
  bool crashes;
};

const Cell kCells[] = {
    {"dqvl", "dqvl", 7, false},
    {"dqvl", "dqvl", 11, false},
    {"majority", "majority", 7, false},
    {"majority", "majority", 11, false},
    {"dqvl", "dqvl_crash", 13, true},
    {"dqvl", "dqvl_crash", 29, true},
    {"majority", "majority_crash", 13, true},
};

std::vector<std::string> reports_at(std::size_t jobs) {
  std::vector<ExperimentParams> trials;
  for (const Cell& c : kCells) {
    trials.push_back(c.crashes ? crash_golden_params(c.proto, c.seed)
                               : golden_params(c.proto, c.seed));
  }
  const auto results = run_experiments(trials, jobs);
  std::vector<std::string> docs;
  for (std::size_t i = 0; i < results.size(); ++i) {
    docs.push_back(workload::report::to_json(trials[i], results[i]));
  }
  return docs;
}

std::string read_golden(const Cell& c) {
  const std::string path = std::string(DQ_GOLDEN_DIR) + "/report_" + c.name +
                           "_seed" + std::to_string(c.seed) + ".json";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ParallelRunner, ReportsByteIdenticalAcrossJobCounts) {
  const auto serial = reports_at(1);
  for (const std::size_t jobs : {2u, 8u}) {
    const auto threaded = reports_at(jobs);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], threaded[i])
          << "cell " << i << " diverges at jobs=" << jobs;
    }
  }
}

TEST(ParallelRunner, ReportsMatchPreRewriteGoldenFiles) {
  // The loss-only goldens pin the pre-event-core-rewrite simulator; the
  // *_crash goldens pin the durability subsystem's first release.
  const auto docs = reports_at(8);
  for (std::size_t i = 0; i < std::size(kCells); ++i) {
    // The generator wrote each document with a trailing newline.
    EXPECT_EQ(docs[i] + "\n", read_golden(kCells[i]))
        << "report for " << kCells[i].name << " seed " << kCells[i].seed
        << " no longer matches its checked-in golden";
  }
}

TEST(ParallelRunner, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_GE(resolve_jobs(0), 1u);  // hardware concurrency, never zero
  // Requests above the hardware concurrency clamp to it (with a stderr
  // note); at or below they are taken as given.
  const std::size_t hw = resolve_jobs(0);
  EXPECT_EQ(resolve_jobs(5), std::min<std::size_t>(5, hw));
  EXPECT_EQ(resolve_jobs(hw + 7), hw);
}

TEST(ParallelRunner, ParallelForIndexRunsEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {1u, 3u, 16u}) {
    constexpr std::size_t kN = 97;  // not a multiple of any worker count
    // Each index writes only its own slot, per the runner's contract, so
    // a correct runner has no write-write races here (the tsan smoke binary
    // checks the same machinery under -fsanitize=thread).
    std::vector<int> hits(kN, 0);
    parallel_for_index(kN, jobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at jobs=" << jobs;
    }
  }
}

TEST(ParallelRunner, ParallelForIndexHandlesEmptyAndSingle) {
  bool ran = false;
  parallel_for_index(0, 8, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  std::size_t seen = 0;
  parallel_for_index(1, 8, [&](std::size_t i) { seen = i + 1; });
  EXPECT_EQ(seen, 1u);
}

}  // namespace
}  // namespace dq::run
