// The partitioned (conservative parallel) world engine's contract:
//
//   1. WORKER-THREAD COUNT IS UNOBSERVABLE.  The partition plan is a pure
//      function of the topology, cross-partition mail merges in a fixed
//      (deliver_time, global_seq, dst_node) order, and every shared metrics
//      instrument is laned -- so a dq.report.v1 document rendered at
//      --world-threads 8 must be byte-identical to one from --world-threads
//      1 (same partitioned schedule, different concurrency).
//   2. THE SCHEDULE IS REPRODUCIBLE.  A golden report generated at
//      --world-threads 4 is checked in; every run at any thread count must
//      keep matching it byte for byte.
//
// The engine's schedule legitimately differs from the classic serial
// engine's (different rng stream assignment, different cross-partition
// interleaving) -- callers opt in -- so there is no cross-engine equality
// test, only cross-thread-count.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/parallel_world.h"
#include "sim/world.h"
#include "workload/experiment.h"
#include "workload/report.h"

namespace dq::sim {
namespace {

using workload::ExperimentParams;

// The golden cell: DQVL over a 12-server deployment with jitter, loss, and
// writes, so the run exercises retries, reordering, drops, and lease renewal
// across every partition boundary.  These parameters must not change --
// tests/golden/report_dqvl_world4_seed7.json was generated from them (at
// --world-threads 4).
ExperimentParams world_golden_params() {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.topo.num_servers = 12;
  p.topo.num_clients = 6;
  p.topo.jitter = 0.1;
  p.write_ratio = 0.2;
  p.locality = 0.9;
  p.requests_per_client = 80;
  p.loss = 0.02;
  p.seed = 7;
  p.world_threads = 1;  // overridden per test
  return p;
}

std::string report_at(ExperimentParams p, std::size_t world_threads) {
  p.world_threads = world_threads;
  const auto result = workload::run_experiment(p);
  return workload::report::to_json(p, result);
}

TEST(ParallelWorld, ReportsByteIdenticalAcrossWorldThreadCounts) {
  const ExperimentParams p = world_golden_params();
  const std::string at1 = report_at(p, 1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(at1, report_at(p, threads))
        << "dq.report.v1 diverges at --world-threads " << threads;
  }
}

TEST(ParallelWorld, ReportMatchesCheckedInGolden) {
  const std::string path =
      std::string(DQ_GOLDEN_DIR) + "/report_dqvl_world4_seed7.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  // The generator wrote the document with a trailing newline.
  EXPECT_EQ(report_at(world_golden_params(), 4) + "\n", buf.str())
      << "partitioned-engine report no longer matches its checked-in golden";
}

TEST(ParallelWorld, MajorityProtocolIdenticalAcrossThreadCounts) {
  ExperimentParams p = world_golden_params();
  p.protocol = "majority";
  p.seed = 11;
  EXPECT_EQ(report_at(p, 1), report_at(p, 4));
}

TEST(ParallelWorld, InjectionFallsBackToSerialEngine) {
  // Fault injectors mutate cross-partition reachability mid-run, so a
  // deployment with them configured must run serial even when world_threads
  // is set -- and therefore produce exactly the serial engine's report.
  ExperimentParams p = world_golden_params();
  p.failures = FailureInjector::Params::for_unavailability(0.05, seconds(50));
  p.requests_per_client = 40;
  ExperimentParams serial = p;
  serial.world_threads = 0;
  const std::string base = workload::report::to_json(
      serial, workload::run_experiment(serial));
  ExperimentParams wt = p;
  wt.world_threads = 4;
  const auto result = workload::run_experiment(wt);
  // Render under the serial params: world_threads itself is not part of the
  // report (it must never be, or thread counts would become observable).
  EXPECT_EQ(base, workload::report::to_json(serial, result));
}

// --- engine-level tests on a bare World --------------------------------------

class Echo final : public Actor {
 public:
  void on_message(const Envelope& env) override {
    log.push_back(env.src.value());
    if (!env.is_reply) world().reply(id(), env, msg::DqRead{ObjectId(0)});
  }
  std::vector<std::uint32_t> log;
};

TEST(ParallelWorld, CrossPartitionDeliveryOrderIsDeterministic) {
  Topology::Params tp;
  tp.num_servers = 8;
  tp.num_clients = 0;
  tp.jitter = 0.2;  // jittered delays exercise the merge's time ordering
  auto run_once = [&](std::size_t threads) {
    World::Parallelism par{8, threads};
    World w(Topology(tp), 99, par);
    std::vector<Echo> actors(8);
    for (std::uint32_t i = 0; i < 8; ++i) w.attach(NodeId(i), actors[i]);
    // Every server pings every other server: 56 cross-partition requests
    // (plan is one partition per server) plus 56 replies.
    for (std::uint32_t s = 0; s < 8; ++s) {
      for (std::uint32_t d = 0; d < 8; ++d) {
        if (s == d) continue;
        w.set_timer(NodeId(s), milliseconds(s + 1), [&w, s, d] {
          w.send(NodeId(s), NodeId(d), w.fresh_rpc_id(),
                 msg::DqRead{ObjectId(s * 8 + d)});
        });
      }
    }
    w.run_all();
    std::vector<std::uint32_t> all;
    for (const Echo& a : actors) {
      all.insert(all.end(), a.log.begin(), a.log.end());
    }
    return all;
  };
  const auto at1 = run_once(1);
  EXPECT_EQ(at1.size(), 112u);  // 56 requests + 56 replies, none lost
  EXPECT_EQ(at1, run_once(4));
  EXPECT_EQ(at1, run_once(8));
}

TEST(ParallelWorld, RunUntilAdvancesEveryPartitionClock) {
  Topology::Params tp;
  tp.num_servers = 4;
  tp.num_clients = 0;
  World w(Topology(tp), 1, World::Parallelism{4, 2});
  std::vector<Echo> actors(4);
  for (std::uint32_t i = 0; i < 4; ++i) w.attach(NodeId(i), actors[i]);
  w.run_until(seconds(5));
  EXPECT_EQ(w.now(), seconds(5));  // idle partitions still reach the deadline
  w.send(NodeId(0), NodeId(3), RequestId(1), msg::DqRead{ObjectId(1)});
  w.run_for(seconds(1));
  ASSERT_EQ(actors[3].log.size(), 1u);
}

TEST(ParallelWorld, PartitionCountNeverFollowsThreadCount) {
  Topology::Params tp;
  tp.num_servers = 6;
  tp.num_clients = 3;
  for (const std::size_t threads : {1u, 2u, 16u}) {
    World w(Topology(tp), 5,
            World::Parallelism{par::default_partition_count(Topology(tp)),
                               threads});
    EXPECT_EQ(w.partition_plan().count, 6u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace dq::sim
