// Volume prefetch (bulk revalidation) tests: warming a cold or restarted
// OQS node in one exchange instead of one miss per object.
#include <gtest/gtest.h>

#include "protocols/dq_adapter.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

struct PrefetchFixture {
  PrefetchFixture() {
    ExperimentParams p;
    p.protocol = "dqvl";
    p.requests_per_client = 0;
    dep = std::make_unique<Deployment>(p);
    auto& w = dep->world();
    client = std::make_shared<protocols::DqServiceClient>(
        w, w.topology().server(0), dep->dq_config());
    writer = std::make_shared<protocols::DqServiceClient>(
        w, w.topology().server(1), dep->dq_config());
    dep->server_node(0).add_handler(
        [this](const sim::Envelope& e) { return client->on_message(e); });
    dep->server_node(1).add_handler(
        [this](const sim::Envelope& e) { return writer->on_message(e); });
  }

  void write(ObjectId o, const Value& v) {
    bool done = false;
    writer->write(o, v, [&](bool, LogicalClock) { done = true; });
    while (!done) dep->world().run_for(sim::milliseconds(5));
  }

  sim::Duration read_latency(ObjectId o, Value* out = nullptr) {
    bool done = false;
    const sim::Time t0 = dep->world().now();
    client->read(o, [&](bool, VersionedValue vv) {
      if (out != nullptr) *out = vv.value;
      done = true;
    });
    while (!done) dep->world().run_for(sim::milliseconds(5));
    return dep->world().now() - t0;
  }

  void prefetch(std::size_t server_idx, VolumeId v) {
    auto* oqs = dep->oqs_server(dep->world().topology().server(server_idx));
    ASSERT_NE(oqs, nullptr);
    bool done = false;
    oqs->prefetch(v, [&](bool ok) {
      EXPECT_TRUE(ok);
      done = true;
    });
    while (!done) dep->world().run_for(sim::milliseconds(5));
  }

  std::unique_ptr<Deployment> dep;
  std::shared_ptr<protocols::DqServiceClient> client, writer;
};

TEST(Prefetch, WarmsEveryObjectOfTheVolumeInOneExchange) {
  PrefetchFixture f;
  for (std::uint64_t k = 0; k < 20; ++k) {
    f.write(ObjectId(k), "v" + std::to_string(k));
  }
  f.prefetch(0, VolumeId(0));
  // Every read is now a hit with the correct value.
  for (std::uint64_t k = 0; k < 20; ++k) {
    Value got;
    EXPECT_LE(f.read_latency(ObjectId(k), &got), sim::milliseconds(15)) << k;
    EXPECT_EQ(got, "v" + std::to_string(k));
  }
  // And it took one fetch per contacted IQS node, not 20 object renewals.
  auto& stats = f.dep->world().message_stats();
  EXPECT_GT(stats.by_type("DqVolFetch"), 0u);
  EXPECT_EQ(stats.by_type("DqObjRenew") + stats.by_type("DqVolObjRenew"),
            0u);
}

TEST(Prefetch, RestoresARestartedNode) {
  PrefetchFixture f;
  for (std::uint64_t k = 0; k < 5; ++k) f.write(ObjectId(k), "x");
  f.prefetch(0, VolumeId(0));
  ASSERT_LE(f.read_latency(ObjectId(2)), sim::milliseconds(15));

  const NodeId s0 = f.dep->world().topology().server(0);
  f.dep->world().crash(s0);
  f.dep->world().restart(s0);
  // Cold again.  One prefetch re-warms everything.
  f.prefetch(0, VolumeId(0));
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_LE(f.read_latency(ObjectId(k)), sim::milliseconds(15)) << k;
  }
}

TEST(Prefetch, FetchedStateIsCurrentNotStale) {
  PrefetchFixture f;
  f.write(ObjectId(1), "old");
  f.prefetch(0, VolumeId(0));
  f.write(ObjectId(1), "new");  // invalidates the prefetched copy
  Value got;
  f.read_latency(ObjectId(1), &got);
  EXPECT_EQ(got, "new");
}

TEST(Prefetch, ConsistencySweepWithPeriodicPrefetch) {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.write_ratio = 0.3;
  p.requests_per_client = 60;
  p.lease_length = sim::seconds(1);
  p.seed = 81;
  p.choose_object = [](Rng&) { return ObjectId(3); };
  Deployment dep(p);
  // Periodic prefetches from a bystander node racing the workload.
  auto* oqs = dep.oqs_server(dep.world().topology().server(7));
  std::function<void()> loop = [&] {
    oqs->prefetch(VolumeId(0), [](bool) {});
    dep.world().set_timer(dep.world().topology().server(7),
                          sim::milliseconds(400), loop);
  };
  loop();
  dep.start_clients();
  while (!dep.clients_done() &&
         dep.world().now() < sim::seconds(10000)) {
    dep.world().run_for(sim::seconds(1));
  }
  const auto r = dep.collect();
  EXPECT_TRUE(r.violations.empty())
      << "first: " << r.violations.front().reason;
}

}  // namespace
}  // namespace dq::workload
