// The pluggable protocol registry: builtin registrations, capability
// descriptors, display-name lookups, and dispatching a custom registered
// factory through the Deployment.
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "protocols/registry.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

TEST(ProtocolRegistry, AllBuiltinsRegistered) {
  const std::set<std::string> expected = {
      "dqvl", "dqvl-atomic", "dq-basic", "majority", "pb",
      "pb-sync", "rowa", "rowa-async", "hermes", "dynamo"};
  std::set<std::string> names;
  for (const protocols::ProtocolInfo* info : all_protocols()) {
    names.insert(info->name);
  }
  for (const std::string& n : expected) {
    EXPECT_TRUE(names.count(n)) << "builtin protocol not registered: " << n;
  }
}

TEST(ProtocolRegistry, ListIsNameSorted) {
  const auto infos = all_protocols();
  ASSERT_FALSE(infos.empty());
  for (std::size_t i = 1; i < infos.size(); ++i) {
    EXPECT_LT(infos[i - 1]->name, infos[i]->name);
  }
}

TEST(ProtocolRegistry, DisplayNamesMatchReportVocabulary) {
  // dq.report.v1 "protocol" values are pinned by checked-in goldens and
  // baselines; the registry must keep the exact strings.
  EXPECT_STREQ(protocol_name("dqvl"), "DQVL");
  EXPECT_STREQ(protocol_name("dqvl-atomic"), "DQVL-atomic");
  EXPECT_STREQ(protocol_name("dq-basic"), "DQ-basic");
  EXPECT_STREQ(protocol_name("majority"), "majority");
  EXPECT_STREQ(protocol_name("pb"), "primary/backup");
  EXPECT_STREQ(protocol_name("pb-sync"), "primary/backup-sync");
  EXPECT_STREQ(protocol_name("rowa"), "ROWA");
  EXPECT_STREQ(protocol_name("rowa-async"), "ROWA-Async");
  EXPECT_STREQ(protocol_name("hermes"), "Hermes");
  EXPECT_STREQ(protocol_name("dynamo"), "Dynamo");
  EXPECT_STREQ(protocol_name("no-such-protocol"), "?");
}

TEST(ProtocolRegistry, CapabilityDescriptors) {
  using protocols::ConsistencyClass;
  const auto* dqvl = find_protocol("dqvl");
  ASSERT_NE(dqvl, nullptr);
  EXPECT_TRUE(dqvl->caps.supports_wal);
  EXPECT_TRUE(dqvl->caps.supports_crash_recovery);
  EXPECT_EQ(dqvl->caps.consistency_class, ConsistencyClass::kRegular);

  const auto* hermes = find_protocol("hermes");
  ASSERT_NE(hermes, nullptr);
  EXPECT_TRUE(hermes->caps.supports_wal);
  EXPECT_TRUE(hermes->caps.supports_crash_recovery);
  EXPECT_EQ(hermes->caps.consistency_class, ConsistencyClass::kAtomic);

  const auto* dynamo = find_protocol("dynamo");
  ASSERT_NE(dynamo, nullptr);
  EXPECT_EQ(dynamo->caps.consistency_class, ConsistencyClass::kEventual);

  const auto* rowa = find_protocol("rowa");
  ASSERT_NE(rowa, nullptr);
  EXPECT_FALSE(rowa->caps.supports_wal);
  EXPECT_FALSE(rowa->caps.supports_crash_recovery);
}

TEST(ProtocolRegistry, ConsistencyClassNames) {
  using protocols::ConsistencyClass;
  EXPECT_STREQ(protocols::to_string(ConsistencyClass::kAtomic), "atomic");
  EXPECT_STREQ(protocols::to_string(ConsistencyClass::kRegular), "regular");
  EXPECT_STREQ(protocols::to_string(ConsistencyClass::kEventual), "eventual");
}

TEST(ProtocolRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(find_protocol(""), nullptr);
  EXPECT_EQ(find_protocol("DQVL"), nullptr);  // names are case-sensitive
}

TEST(ProtocolRegistry, PaperProtocolsAreRegistered) {
  for (const std::string& name : paper_protocols()) {
    EXPECT_NE(find_protocol(name), nullptr) << name;
  }
}

TEST(ProtocolRegistry, DescriptorConsistency) {
  // The invariants behind dqlint's cap-* rules and the --protocol=help
  // listing: every registered descriptor is internally coherent, fully
  // named, and listed exactly once.
  std::set<std::string> seen;
  for (const protocols::ProtocolInfo* info : all_protocols()) {
    EXPECT_FALSE(info->name.empty());
    EXPECT_FALSE(info->display_name.empty()) << info->name;
    // Crash recovery replays the WAL on restart, so the claim implies WAL
    // support.
    EXPECT_TRUE(!info->caps.supports_crash_recovery ||
                info->caps.supports_wal)
        << info->name << " claims crash recovery without a WAL";
    EXPECT_TRUE(seen.insert(info->name).second)
        << info->name << " would appear twice in --protocol=help";
    // find() round-trips to the same stable descriptor the listing shows.
    EXPECT_EQ(find_protocol(info->name), info) << info->name;
    EXPECT_TRUE(static_cast<bool>(info->build)) << info->name;
  }
}

TEST(ProtocolRegistry, CustomProtocolDispatchesThroughDeployment) {
  // A third-party protocol: registered once, then reachable by name through
  // the ordinary ExperimentParams/Deployment path.  The factory delegates
  // to the builtin majority wiring, so the run actually completes.
  static bool registered = false;
  static int builds = 0;
  if (!registered) {
    registered = true;
    protocols::ProtocolInfo info;
    info.name = "test-majority";
    info.display_name = "test/majority";
    info.caps = {true, true, protocols::ConsistencyClass::kRegular};
    info.build = [](Deployment& dep) {
      ++builds;
      find_protocol("majority")->build(dep);
    };
    protocols::Registry::instance().add(std::move(info));
  }

  EXPECT_STREQ(protocol_name("test-majority"), "test/majority");
  ExperimentParams p;
  p.protocol = "test-majority";
  p.requests_per_client = 20;
  const ExperimentResult r = run_experiment(p);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(r.completed_reads + r.completed_writes, 3 * 20u);
  EXPECT_TRUE(r.violations.empty());
}

}  // namespace
}  // namespace dq::workload
