// Randomized QRPC properties: across loss, duplication, jitter, and dead
// nodes, calls either complete with a true quorum of distinct responders or
// fail by deadline -- never hang, never double-count, never complete
// without a quorum.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "sim/world.h"

namespace dq::rpc {
namespace {

using quorum::Kind;
using quorum::ThresholdQuorum;

class Responder final : public sim::Actor {
 public:
  void on_message(const sim::Envelope& env) override {
    if (std::holds_alternative<msg::MajRead>(env.body)) {
      world().reply(id(), env, msg::MajReadReply{ObjectId(1), "v", {1, 1}});
    }
  }
};

class Host final : public sim::Actor {
 public:
  void on_message(const sim::Envelope& env) override {
    if (engine) engine->on_reply(env);
  }
  QrpcEngine* engine = nullptr;
};

// (seed, loss, dup, dead_nodes)
using PropCase = std::tuple<std::uint64_t, double, double, std::size_t>;

class QrpcProperty : public ::testing::TestWithParam<PropCase> {};

TEST_P(QrpcProperty, CompletesCorrectlyOrFailsByDeadline) {
  const auto [seed, loss, dup, dead] = GetParam();
  constexpr std::size_t kServers = 7;

  sim::Topology::Params tp;
  tp.num_servers = kServers;
  tp.num_clients = 1;
  tp.processing_delay = 0;
  tp.jitter = 0.5;
  sim::World world{sim::Topology(tp), seed};
  world.faults().set_loss_probability(loss);
  world.faults().set_duplication_probability(dup);

  Responder servers[kServers];
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < kServers; ++i) {
    const NodeId n(static_cast<std::uint32_t>(i));
    world.attach(n, servers[i]);
    members.push_back(n);
  }
  Host host;
  world.attach(NodeId(kServers), host);
  QrpcEngine engine(world, NodeId(kServers));
  host.engine = &engine;
  for (std::size_t i = 0; i < dead; ++i) {
    world.set_up(NodeId(static_cast<std::uint32_t>(i)), false);
  }

  auto system = ThresholdQuorum::majority(members);  // quorum of 4
  const bool quorum_possible = kServers - dead >= 4;

  // Issue several calls back to back.
  int completed_ok = 0, completed_fail = 0;
  std::vector<std::set<NodeId>> responder_sets;
  for (int c = 0; c < 5; ++c) {
    auto seen = std::make_shared<std::set<NodeId>>();
    QrpcOptions opts;
    opts.deadline = sim::seconds(30);
    engine.call(
        *system, Kind::kRead,
        [](NodeId) -> std::optional<msg::Payload> {
          return msg::MajRead{ObjectId(1)};
        },
        [seen](NodeId src, const msg::Payload&) {
          // Property: the engine never delivers two replies from one node.
          EXPECT_TRUE(seen->insert(src).second);
        },
        [&, seen](bool ok) {
          (ok ? completed_ok : completed_fail)++;
          if (ok) {
            // Property: completion implies a genuine quorum of DISTINCT
            // responders.
            EXPECT_GE(seen->size(), 4u);
          }
          responder_sets.push_back(*seen);
        },
        opts);
  }
  world.run_for(sim::seconds(120));

  // Property: no call hangs.
  EXPECT_EQ(completed_ok + completed_fail, 5);
  EXPECT_EQ(engine.inflight(), 0u);
  if (quorum_possible) {
    EXPECT_EQ(completed_ok, 5) << "a reachable quorum must be found";
  } else {
    EXPECT_EQ(completed_fail, 5) << "no quorum exists; all must time out";
  }
  // Property: dead nodes never respond.
  for (const auto& s : responder_sets) {
    for (std::size_t i = 0; i < dead; ++i) {
      EXPECT_EQ(s.count(NodeId(static_cast<std::uint32_t>(i))), 0u);
    }
  }
}

std::vector<PropCase> prop_cases() {
  std::vector<PropCase> out;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    out.emplace_back(seed, 0.0, 0.0, 0u);   // clean
    out.emplace_back(seed, 0.3, 0.0, 0u);   // lossy
    out.emplace_back(seed, 0.2, 0.3, 0u);   // lossy + duplicating
    out.emplace_back(seed, 0.1, 0.0, 3u);   // minority dead
    out.emplace_back(seed, 0.0, 0.0, 4u);   // quorum impossible
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QrpcProperty, ::testing::ValuesIn(prop_cases()),
    [](const ::testing::TestParamInfo<PropCase>& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_loss" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_dup" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100)) +
             "_dead" + std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace dq::rpc
