// QRPC engine tests: quorum completion, retransmission to fresh quorums
// under loss and dead nodes, deadlines, pokes, per-node request builders,
// and loopback request/reply discrimination.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "quorum/quorum.h"
#include "rpc/qrpc.h"
#include "sim/world.h"

namespace dq::rpc {
namespace {

using quorum::Kind;
using quorum::ThresholdQuorum;

std::vector<NodeId> nodes(std::size_t n) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

// Echo server: replies to MajRead with a MajReadReply.
class Echo final : public sim::Actor {
 public:
  void on_message(const sim::Envelope& env) override {
    ++requests;
    if (std::holds_alternative<msg::MajRead>(env.body)) {
      world().reply(id(), env, msg::MajReadReply{ObjectId(1), "v", {1, 1}});
    }
  }
  int requests = 0;
};

// Host actor for the engine under test.
class Caller final : public sim::Actor {
 public:
  void on_message(const sim::Envelope& env) override {
    if (engine) engine->on_reply(env);
  }
  QrpcEngine* engine = nullptr;
};

class QrpcTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kServers = 5;

  QrpcTest() {
    sim::Topology::Params tp;
    tp.num_servers = kServers;
    tp.num_clients = 1;
    tp.processing_delay = 0;
    world = std::make_unique<sim::World>(sim::Topology(tp), 3);
    for (std::size_t i = 0; i < kServers; ++i) {
      world->attach(NodeId(static_cast<std::uint32_t>(i)), echos[i]);
    }
    world->attach(NodeId(kServers), caller);
    engine = std::make_unique<QrpcEngine>(*world, NodeId(kServers));
    caller.engine = engine.get();
    system = ThresholdQuorum::majority(nodes(kServers));
  }

  std::unique_ptr<sim::World> world;
  Echo echos[kServers];
  Caller caller;
  std::unique_ptr<QrpcEngine> engine;
  std::unique_ptr<ThresholdQuorum> system;
};

TEST_F(QrpcTest, CompletesOnQuorumOfReplies) {
  int replies = 0;
  bool completed = false;
  engine->call(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        return msg::MajRead{ObjectId(1)};
      },
      [&](NodeId, const msg::Payload&) { ++replies; },
      [&](bool ok) {
        completed = true;
        EXPECT_TRUE(ok);
      });
  world->run_for(sim::seconds(1));
  EXPECT_TRUE(completed);
  EXPECT_EQ(replies, 3);  // majority of 5
  EXPECT_EQ(engine->inflight(), 0u);
}

TEST_F(QrpcTest, RetransmitsThroughLossUntilQuorum) {
  world->faults().set_loss_probability(0.6);
  bool completed = false;
  engine->call(
      *system, Kind::kWrite,
      [](NodeId) -> std::optional<msg::Payload> {
        return msg::MajRead{ObjectId(1)};
      },
      [](NodeId, const msg::Payload&) {},
      [&](bool ok) { completed = ok; });
  world->run_for(sim::seconds(60));
  EXPECT_TRUE(completed);
}

TEST_F(QrpcTest, RoutesAroundDeadNodesViaFreshQuorums) {
  // Two of five down: a majority of three is still formable, but the first
  // randomly selected quorum may include dead nodes -- retransmission must
  // find a live one.
  world->set_up(NodeId(0), false);
  world->set_up(NodeId(1), false);
  bool completed = false;
  engine->call(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        return msg::MajRead{ObjectId(1)};
      },
      [](NodeId, const msg::Payload&) {},
      [&](bool ok) { completed = ok; });
  world->run_for(sim::seconds(60));
  EXPECT_TRUE(completed);
}

TEST_F(QrpcTest, DeadlineFailsTheCall) {
  // Three of five down: no majority can respond.
  world->set_up(NodeId(0), false);
  world->set_up(NodeId(1), false);
  world->set_up(NodeId(2), false);
  bool completed = false, ok_result = true;
  QrpcOptions opts;
  opts.deadline = sim::seconds(3);
  engine->call(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        return msg::MajRead{ObjectId(1)};
      },
      [](NodeId, const msg::Payload&) {},
      [&](bool ok) {
        completed = true;
        ok_result = ok;
      },
      opts);
  world->run_for(sim::seconds(10));
  EXPECT_TRUE(completed);
  EXPECT_FALSE(ok_result);
  EXPECT_EQ(engine->inflight(), 0u);
}

TEST_F(QrpcTest, NullBuildSkipsNodes) {
  // Skip node 0 entirely; completion must still be reachable.
  std::map<std::uint32_t, int> sent;
  bool completed = false;
  engine->call_until(
      *system, Kind::kWrite,
      [&](NodeId n) -> std::optional<msg::Payload> {
        if (n == NodeId(0)) return std::nullopt;
        ++sent[n.value()];
        return msg::MajRead{ObjectId(1)};
      },
      [](NodeId, const msg::Payload&) {},
      [this] {
        return engine->inflight() == 0 ||
               echos[1].requests + echos[2].requests + echos[3].requests +
                       echos[4].requests >= 4;
      },
      [&](bool) { completed = true; });
  world->run_for(sim::seconds(30));
  EXPECT_TRUE(completed);
  EXPECT_EQ(sent.count(0), 0u);
}

TEST_F(QrpcTest, DoneAlreadyTrueCompletesWithoutSending) {
  bool completed = false;
  engine->call_until(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        ADD_FAILURE() << "must not send when done() holds at start";
        return std::nullopt;
      },
      [](NodeId, const msg::Payload&) {}, [] { return true; },
      [&](bool ok) { completed = ok; });
  EXPECT_TRUE(completed);
  EXPECT_EQ(world->message_stats().total(), 0u);
}

TEST_F(QrpcTest, PokeCompletesCallOnExternalStateChange) {
  bool external = false;
  bool completed = false;
  const CallId id = engine->call_until(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        return std::nullopt;  // nothing to send; purely external completion
      },
      [](NodeId, const msg::Payload&) {}, [&] { return external; },
      [&](bool ok) { completed = ok; });
  world->run_for(sim::seconds(1));
  EXPECT_FALSE(completed);
  external = true;
  engine->poke(id);
  EXPECT_TRUE(completed);
}

TEST_F(QrpcTest, CancelStopsRetransmissionsAndDropsCall) {
  const CallId id = engine->call(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        return msg::MajRead{ObjectId(1)};
      },
      [](NodeId, const msg::Payload&) {},
      [](bool) { ADD_FAILURE() << "cancelled call must not complete"; });
  engine->cancel(id);
  EXPECT_EQ(engine->inflight(), 0u);
  world->run_for(sim::seconds(30));
}

TEST_F(QrpcTest, DuplicateRepliesFromOneNodeCountOnce) {
  world->faults().set_duplication_probability(1.0);
  int replies = 0;
  engine->call(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        return msg::MajRead{ObjectId(1)};
      },
      [&](NodeId, const msg::Payload&) { ++replies; }, [](bool) {});
  world->run_for(sim::seconds(5));
  EXPECT_LE(replies, 5);  // at most one counted reply per node
}

TEST_F(QrpcTest, RepliesAfterCompletionAreNotConsumed) {
  bool completed = false;
  engine->call(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        return msg::MajRead{ObjectId(1)};
      },
      [](NodeId, const msg::Payload&) {}, [&](bool) { completed = true; });
  world->run_for(sim::seconds(5));
  ASSERT_TRUE(completed);
  // Stragglers (the 2 non-quorum replies) were offered to on_reply and
  // rejected; the engine has no live calls.
  EXPECT_EQ(engine->inflight(), 0u);
}

TEST_F(QrpcTest, LoopbackRequestIsNotMistakenForReply) {
  // The caller is not a member here, but direct injection tests the guard:
  // a request envelope carrying a known rpc id must not be consumed.
  bool completed = false;
  engine->call(
      *system, Kind::kRead,
      [](NodeId) -> std::optional<msg::Payload> {
        return msg::MajRead{ObjectId(1)};
      },
      [](NodeId, const msg::Payload&) {}, [&](bool) { completed = true; });
  // Forge a request envelope with is_reply = false.
  sim::Envelope forged{NodeId(0), NodeId(kServers), RequestId(1),
                       msg::MajRead{ObjectId(1)}, /*is_reply=*/false};
  EXPECT_FALSE(engine->on_reply(forged));
  EXPECT_FALSE(completed);
}

}  // namespace
}  // namespace dq::rpc
