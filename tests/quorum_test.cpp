// Quorum-system tests: construction invariants, pick/is_quorum coherence,
// grid structure, and the intersection + availability enumeration helpers.
// The parameterized suites sweep every configuration the experiments use.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "quorum/quorum.h"

namespace dq::quorum {
namespace {

std::vector<NodeId> nodes(std::size_t n) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ThresholdQuorum
// ---------------------------------------------------------------------------

TEST(ThresholdQuorum, MajorityFactorySizes) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 9u, 15u}) {
    auto q = ThresholdQuorum::majority(nodes(n));
    EXPECT_EQ(q->quorum_size(Kind::kRead), n / 2 + 1) << n;
    EXPECT_EQ(q->quorum_size(Kind::kWrite), n / 2 + 1) << n;
  }
}

TEST(ThresholdQuorum, RowaFactorySizes) {
  auto q = ThresholdQuorum::rowa(nodes(7));
  EXPECT_EQ(q->quorum_size(Kind::kRead), 1u);
  EXPECT_EQ(q->quorum_size(Kind::kWrite), 7u);
}

TEST(ThresholdQuorumDeath, RejectsNonIntersectingConfig) {
  // r + w <= n must be rejected.
  EXPECT_DEATH(ThresholdQuorum(nodes(5), 2, 3), "intersect");
  // 2w <= n must be rejected (write-write intersection).
  EXPECT_DEATH(ThresholdQuorum(nodes(6), 5, 2), "pairwise");
}

TEST(ThresholdQuorumDeath, RejectsDuplicateMembers) {
  std::vector<NodeId> dup{NodeId(1), NodeId(1), NodeId(2)};
  EXPECT_DEATH(ThresholdQuorum(dup, 2, 2), "distinct");
}

TEST(ThresholdQuorum, PickReturnsExactQuorumOfMembers) {
  auto q = ThresholdQuorum::majority(nodes(9));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    auto picked = q->pick(Kind::kRead, rng, std::nullopt);
    ASSERT_EQ(picked.size(), 5u);
    std::set<NodeId> uniq(picked.begin(), picked.end());
    EXPECT_EQ(uniq.size(), 5u);
    EXPECT_TRUE(q->is_quorum(Kind::kRead, uniq));
    for (NodeId m : picked) EXPECT_TRUE(q->is_member(m));
  }
}

TEST(ThresholdQuorum, PickPrefersLocalMember) {
  auto q = ThresholdQuorum::rowa(nodes(9));  // read quorum of 1
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    auto picked = q->pick(Kind::kRead, rng, NodeId(4));
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0], NodeId(4));
  }
}

TEST(ThresholdQuorum, PickIgnoresNonMemberPreference) {
  auto q = ThresholdQuorum::majority(nodes(5));
  Rng rng(1);
  auto picked = q->pick(Kind::kRead, rng, NodeId(99));
  ASSERT_EQ(picked.size(), 3u);
  for (NodeId m : picked) EXPECT_TRUE(q->is_member(m));
}

TEST(ThresholdQuorum, PickEventuallyCoversAllMembers) {
  auto q = ThresholdQuorum::majority(nodes(9));
  Rng rng(2);
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    for (NodeId m : q->pick(Kind::kWrite, rng, std::nullopt)) seen.insert(m);
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(ThresholdQuorum, IsQuorumCountsOnlyMembers) {
  auto q = ThresholdQuorum::majority(nodes(3));  // quorum = 2
  std::set<NodeId> acked{NodeId(0), NodeId(77), NodeId(88)};
  EXPECT_FALSE(q->is_quorum(Kind::kRead, acked));
  acked.insert(NodeId(1));
  EXPECT_TRUE(q->is_quorum(Kind::kRead, acked));
}

// ---------------------------------------------------------------------------
// GridQuorum
// ---------------------------------------------------------------------------

TEST(GridQuorum, QuorumSizes) {
  GridQuorum g(nodes(12), 3, 4);
  EXPECT_EQ(g.quorum_size(Kind::kRead), 4u);       // one per column
  EXPECT_EQ(g.quorum_size(Kind::kWrite), 6u);      // column + row cover
}

TEST(GridQuorumDeath, RejectsBadDimensions) {
  EXPECT_DEATH(GridQuorum(nodes(10), 3, 4), "cover");
}

TEST(GridQuorum, PickedReadQuorumCoversEveryColumn) {
  GridQuorum g(nodes(12), 3, 4);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    auto picked = g.pick(Kind::kRead, rng, std::nullopt);
    std::set<NodeId> s(picked.begin(), picked.end());
    EXPECT_TRUE(g.is_quorum(Kind::kRead, s));
  }
}

TEST(GridQuorum, PickedWriteQuorumIsWriteQuorum) {
  GridQuorum g(nodes(12), 3, 4);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    auto picked = g.pick(Kind::kWrite, rng, std::nullopt);
    std::set<NodeId> s(picked.begin(), picked.end());
    EXPECT_TRUE(g.is_quorum(Kind::kWrite, s));
  }
}

TEST(GridQuorum, ReadQuorumIsNotAWriteQuorum) {
  GridQuorum g(nodes(9), 3, 3);
  // One per column but no full column.
  std::set<NodeId> s{NodeId(0), NodeId(4), NodeId(8)};  // diagonal
  EXPECT_TRUE(g.is_quorum(Kind::kRead, s));
  EXPECT_FALSE(g.is_quorum(Kind::kWrite, s));
}

TEST(GridQuorum, FullColumnAloneIsNotAWriteQuorum) {
  GridQuorum g(nodes(9), 3, 3);
  // Column 0 = nodes 0, 3, 6; covers column 0 only.
  std::set<NodeId> s{NodeId(0), NodeId(3), NodeId(6)};
  EXPECT_FALSE(g.is_quorum(Kind::kWrite, s));
  s.insert(NodeId(1));
  s.insert(NodeId(2));
  EXPECT_TRUE(g.is_quorum(Kind::kWrite, s));
}

// ---------------------------------------------------------------------------
// Intersection checking (property-style across every experiment config)
// ---------------------------------------------------------------------------

struct IntersectCase {
  std::string name;
  std::function<std::unique_ptr<QuorumSystem>()> make;
};

class IntersectionProperty : public ::testing::TestWithParam<IntersectCase> {};

TEST_P(IntersectionProperty, ReadWriteAndWriteWriteIntersect) {
  auto qs = GetParam().make();
  const IntersectionReport rep = check_intersection(*qs);
  EXPECT_TRUE(rep.read_write_ok);
  EXPECT_TRUE(rep.write_write_ok);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, IntersectionProperty,
    ::testing::Values(
        IntersectCase{"majority3",
                      [] { return ThresholdQuorum::majority(nodes(3)); }},
        IntersectCase{"majority5",
                      [] { return ThresholdQuorum::majority(nodes(5)); }},
        IntersectCase{"majority9",
                      [] { return ThresholdQuorum::majority(nodes(9)); }},
        IntersectCase{"rowa9",
                      [] { return ThresholdQuorum::rowa(nodes(9)); }},
        IntersectCase{"readone15",
                      [] { return ThresholdQuorum::read_one(nodes(15)); }},
        IntersectCase{"r2w8",
                      [] {
                        return std::make_unique<ThresholdQuorum>(nodes(9), 2,
                                                                 8);
                      }},
        IntersectCase{"grid3x3",
                      [] { return std::make_unique<GridQuorum>(nodes(9), 3, 3); }},
        IntersectCase{"grid2x4",
                      [] { return std::make_unique<GridQuorum>(nodes(8), 2, 4); }},
        IntersectCase{"grid4x2",
                      [] { return std::make_unique<GridQuorum>(nodes(8), 4, 2); }}),
    [](const auto& info) { return info.param.name; });

// A deliberately broken system must be caught: read one-per-column grids do
// NOT have write-write intersection if writes were (incorrectly) defined as
// read quorums.  We emulate by checking a read-vs-read disjointness case.
TEST(Intersection, DetectsNonIntersectingPair) {
  GridQuorum g(nodes(9), 3, 3);
  // Two disjoint read quorums exist (rows of the grid): the checker must
  // also verify write-write, which holds; read-read disjointness is fine.
  std::set<NodeId> row0{NodeId(0), NodeId(1), NodeId(2)};
  std::set<NodeId> row1{NodeId(3), NodeId(4), NodeId(5)};
  EXPECT_TRUE(g.is_quorum(Kind::kRead, row0));
  EXPECT_TRUE(g.is_quorum(Kind::kRead, row1));
}

// ---------------------------------------------------------------------------
// Exact availability enumeration vs closed forms
// ---------------------------------------------------------------------------

TEST(ExactAvailability, MatchesClosedFormForRowaRead) {
  auto q = ThresholdQuorum::rowa(nodes(5));
  const double p = 0.1;
  EXPECT_NEAR(exact_availability(*q, Kind::kRead, p), 1 - std::pow(p, 5),
              1e-12);
  EXPECT_NEAR(exact_availability(*q, Kind::kWrite, p), std::pow(1 - p, 5),
              1e-12);
}

TEST(ExactAvailability, MajorityIsSymmetricAndReasonable) {
  auto q = ThresholdQuorum::majority(nodes(5));
  const double av = exact_availability(*q, Kind::kRead, 0.1);
  EXPECT_NEAR(av, exact_availability(*q, Kind::kWrite, 0.1), 1e-12);
  // P(>=3 of 5 up) with p_up = 0.9.
  EXPECT_NEAR(av, 0.99144, 1e-4);
}

TEST(ExactAvailability, GridReadClosedForm) {
  GridQuorum g(nodes(9), 3, 3);
  const double p = 0.2;
  // One live node per column: (1 - p^3)^3.
  EXPECT_NEAR(exact_availability(g, Kind::kRead, p),
              std::pow(1 - std::pow(p, 3), 3), 1e-12);
}

TEST(ExactAvailability, ZeroAndOneFailureProbabilities) {
  auto q = ThresholdQuorum::majority(nodes(7));
  EXPECT_DOUBLE_EQ(exact_availability(*q, Kind::kRead, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_availability(*q, Kind::kRead, 1.0), 0.0);
}

TEST(ExactAvailability, MonotoneInFailureProbability) {
  auto q = ThresholdQuorum::majority(nodes(9));
  double prev = 1.0;
  for (double p : {0.01, 0.05, 0.1, 0.3, 0.5, 0.9}) {
    const double av = exact_availability(*q, Kind::kRead, p);
    EXPECT_LE(av, prev + 1e-12);
    prev = av;
  }
}

}  // namespace
}  // namespace dq::quorum
