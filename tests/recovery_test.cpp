// Crash-recovery subsystem tests: WAL-backed IQS recovery (epoch bump +
// grace window), replay of durable store state, and the minimal recovery
// paths of the baseline protocols.
//
// The acceptance property for DQVL: a crash wipes the delayed-invalidation
// queues WITHOUT persisting them, and recovery compensates by advancing the
// epoch of every (volume, node) lease pair the log knows about -- so every
// pre-crash object lease is implicitly invalid and no stale read can ever
// be served off one.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/iqs_server.h"
#include "workload/experiment.h"

namespace dq::workload {
namespace {

ExperimentParams dqvl_wal_params() {
  ExperimentParams p;
  p.protocol = "dqvl";
  p.seed = 77;
  p.write_ratio = 0.3;
  p.requests_per_client = 80;
  p.lease_length = sim::seconds(2);
  p.op_deadline = sim::seconds(30);
  p.wal = store::WalParams{};  // group commit defaults
  p.choose_object = [](Rng& rng) { return ObjectId(rng.below(4)); };
  return p;
}

// Run the closed-loop workload to completion so leases exist and every
// acked write's WAL record has long since been flushed.
void run_to_completion(Deployment& dep) {
  dep.start_clients();
  while (!dep.clients_done() &&
         dep.world().now() < sim::seconds(100000)) {
    dep.world().run_for(sim::seconds(2));
  }
  ASSERT_TRUE(dep.clients_done()) << "workload wedged";
}

TEST(IqsRecovery, EpochBumpInvalidatesPreCrashObjectLeases) {
  ExperimentParams p = dqvl_wal_params();
  Deployment dep(p);
  run_to_completion(dep);

  const NodeId iqs_node = dep.world().topology().server(0);
  core::IqsServer* iqs = dep.iqs_server(iqs_node);
  ASSERT_NE(iqs, nullptr);

  // Snapshot every (volume, OQS node) pair that held a lease pre-crash.
  const VolumeId v0(0);
  std::map<NodeId, msg::Epoch> before;
  for (NodeId j : dep.world().topology().servers()) {
    if (iqs->lease_expiry(v0, j) != 0) before[j] = iqs->epoch_of(v0, j);
  }
  ASSERT_FALSE(before.empty()) << "no volume leases were ever granted";

  dep.world().crash(iqs_node);
  dep.world().run_for(sim::milliseconds(500));
  dep.world().restart(iqs_node);

  // The delayed queues are gone without ever being persisted; the epoch
  // advance is what makes that safe.
  for (const auto& [j, e] : before) {
    EXPECT_GT(iqs->epoch_of(v0, j), e)
        << "node " << j.value() << ": recovery must advance the epoch past "
        << "every pre-crash grant";
    EXPECT_EQ(iqs->delayed_queue_size(v0, j), 0u);
    EXPECT_FALSE(iqs->lease_valid(v0, j));
  }
  const auto snap = dep.world().metrics().snapshot();
  EXPECT_EQ(snap.counter("iqs.recoveries"), 1u);
}

TEST(IqsRecovery, ReplayRestoresDurableValuesAndClocks) {
  ExperimentParams p = dqvl_wal_params();
  Deployment dep(p);
  run_to_completion(dep);

  const NodeId iqs_node = dep.world().topology().server(0);
  core::IqsServer* iqs = dep.iqs_server(iqs_node);
  ASSERT_NE(iqs, nullptr);

  std::map<std::uint64_t, std::pair<Value, LogicalClock>> before;
  for (std::uint64_t o = 0; o < 4; ++o) {
    const LogicalClock lc = iqs->last_write_clock(ObjectId(o));
    if (!(lc == LogicalClock::zero())) {
      before[o] = {iqs->value_of(ObjectId(o)), lc};
    }
  }
  ASSERT_FALSE(before.empty()) << "no writes reached the IQS node";

  dep.world().crash(iqs_node);
  dep.world().run_for(sim::milliseconds(200));
  dep.world().restart(iqs_node);

  for (const auto& [o, vv] : before) {
    EXPECT_EQ(iqs->value_of(ObjectId(o)), vv.first) << "object " << o;
    EXPECT_EQ(iqs->last_write_clock(ObjectId(o)), vv.second)
        << "object " << o;
  }
}

TEST(IqsRecovery, GraceWindowOpensOnRecoveryAndCloses) {
  ExperimentParams p = dqvl_wal_params();
  Deployment dep(p);
  run_to_completion(dep);

  const NodeId iqs_node = dep.world().topology().server(0);
  core::IqsServer* iqs = dep.iqs_server(iqs_node);
  ASSERT_NE(iqs, nullptr);
  EXPECT_FALSE(iqs->in_recovery_grace());

  dep.world().crash(iqs_node);
  dep.world().run_for(sim::milliseconds(100));
  dep.world().restart(iqs_node);
  EXPECT_TRUE(iqs->in_recovery_grace())
      << "a recovered node must distrust its wiped lease bookkeeping";

  // Two padded lease lengths later every pre-crash volume lease has expired
  // at its holder and the window closes.
  dep.world().run_for(2 * p.lease_length + sim::seconds(1));
  EXPECT_FALSE(iqs->in_recovery_grace());
}

TEST(IqsRecovery, WithoutWalCrashKeepsLegacyDurableFiction) {
  ExperimentParams p = dqvl_wal_params();
  p.wal.reset();
  Deployment dep(p);
  run_to_completion(dep);

  const NodeId iqs_node = dep.world().topology().server(0);
  core::IqsServer* iqs = dep.iqs_server(iqs_node);
  ASSERT_NE(iqs, nullptr);
  const VolumeId v0(0);
  std::map<NodeId, msg::Epoch> before;
  for (NodeId j : dep.world().topology().servers()) {
    if (iqs->lease_expiry(v0, j) != 0) before[j] = iqs->epoch_of(v0, j);
  }
  ASSERT_FALSE(before.empty());

  dep.world().crash(iqs_node);
  dep.world().run_for(sim::milliseconds(100));
  dep.world().restart(iqs_node);

  // Legacy model: state behaves as if written through, epochs unchanged.
  for (const auto& [j, e] : before) EXPECT_EQ(iqs->epoch_of(v0, j), e);
  EXPECT_FALSE(iqs->in_recovery_grace());
}

// Under crash/restart churn driven by the injector, every completed read
// stays regular and recoveries actually happen (the real oracle for "no
// acked write was lost" is the history checker).
TEST(CrashInjection, DqvlStaysRegularUnderCrashChurn) {
  ExperimentParams p = dqvl_wal_params();
  p.requests_per_client = 120;
  sim::CrashInjector::Params c;
  c.mean_time_to_crash = sim::seconds(20);
  c.mean_downtime = sim::seconds(1);
  p.crashes = c;
  const ExperimentResult r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size()
      << " violations, first: " << r.violations.front().reason;
  EXPECT_GT(r.metrics.counter("iqs.recoveries") +
                r.metrics.counter("oqs.recoveries"),
            0u);
  EXPECT_GT(r.availability(), 0.5);
}

TEST(CrashInjection, MajorityRecoversFromItsWal) {
  ExperimentParams p = dqvl_wal_params();
  p.protocol = "majority";
  p.requests_per_client = 120;
  sim::CrashInjector::Params c;
  c.mean_time_to_crash = sim::seconds(20);
  c.mean_downtime = sim::seconds(1);
  p.crashes = c;
  const ExperimentResult r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size()
      << " violations, first: " << r.violations.front().reason;
  EXPECT_GT(r.metrics.counter("proto.majority.recoveries"), 0u);
}

TEST(CrashInjection, PrimaryBackupRecoversFromItsWal) {
  ExperimentParams p = dqvl_wal_params();
  p.protocol = "pb-sync";
  p.requests_per_client = 120;
  sim::CrashInjector::Params c;
  c.mean_time_to_crash = sim::seconds(30);
  c.mean_downtime = sim::seconds(1);
  p.crashes = c;
  const ExperimentResult r = run_experiment(p);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.size()
      << " violations, first: " << r.violations.front().reason;
  EXPECT_GT(r.metrics.counter("proto.pb.recoveries"), 0u);
}

}  // namespace
}  // namespace dq::workload
