// Unit tests for the discrete-event scheduler: time monotonicity, FIFO tie
// breaking, cancellation, and deadline semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace dq::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunsEventsInTimestampOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, EqualTimestampsRunInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, SchedulingInThePastClampsToNow) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run_all();
  ASSERT_EQ(s.now(), 100);
  bool ran = false;
  s.schedule_at(50, [&] { ran = true; });  // in the past
  s.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 100);  // did not travel back
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  EXPECT_EQ(s.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.run_until(100), 1u);
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWithoutEvents) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, CancelledEventsDoNotRun) {
  Scheduler s;
  bool ran = false;
  TimerToken t = s.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(t.pending());
  t.cancel();
  EXPECT_FALSE(t.pending());
  s.run_all();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelAfterFiringIsHarmless) {
  Scheduler s;
  int runs = 0;
  TimerToken t = s.schedule_at(10, [&] { ++runs; });
  s.run_all();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(t.pending());
  t.cancel();
  s.run_all();
  EXPECT_EQ(runs, 1);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  std::vector<Time> fired;
  std::function<void()> chain = [&] {
    fired.push_back(s.now());
    if (fired.size() < 5) s.schedule_after(10, chain);
  };
  s.schedule_at(0, chain);
  s.run_all();
  EXPECT_EQ(fired, (std::vector<Time>{0, 10, 20, 30, 40}));
}

TEST(Scheduler, ExecutedEventCountExcludesCancelled) {
  Scheduler s;
  s.schedule_at(1, [] {});
  TimerToken t = s.schedule_at(2, [] {});
  t.cancel();
  s.schedule_at(3, [] {});
  s.run_all();
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run_all();
  bool ran = false;
  s.schedule_after(-50, [&] { ran = true; });
  s.run_all();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace dq::sim
